#!/usr/bin/env bash
# Tier-1 verification: everything a PR must keep green.
#
#   build   release build of the whole workspace
#   test    the full test suite (unit + property + integration)
#   crash   the kill/resume fault matrix (ROBUSTNESS.md)
#   smoke   serving layer on an ephemeral port (endpoints, keep-alive +
#           pipelined reuse, /search/batch ≡ sequential singles,
#           request-grained shedding, degraded reload, clean shutdown)
#   bench   all Criterion bench targets compile (not run)
#   online  esharp bench --online smoke: interned and string-keyed read
#           paths return identical experts, report is well-formed
#   ingest  streaming-ingestion smoke over real sockets: append → search
#           → compact → search, bodies byte-identical per (query, epoch,
#           corpus_epoch), durable across restart
#   shards  sharded corpus smoke: build K=4 → zero-copy reload →
#           re-encode byte-identical to K=1, corruption fails at open
#   chaos   deterministic chaos gate: the stall×deadline×hedging matrix
#           on a virtual clock, plus the serve-layer smoke (partials
#           marked + uncached, hedging recovers stragglers, caps answer
#           413/431, panics answer 500, the supervisor heals workers)
#   ooc     out-of-core smoke: the clustering SQL with a 4 MiB buffer
#           pool over a larger-than-pool heap file is bit-identical to
#           the in-memory run; the heap-file corruption matrix and the
#           planner-equivalence property suite stay green
#   loop    event-loop gate: pipelining torture (every byte-boundary
#           split ≡ unsplit, under chaos stalls; malformed-behind-valid
#           answers then closes), batch ≡ sequential property suite,
#           and both smokes again under ESHARP_FORCE_POLL=1 so the
#           portable poll(2) backend stays honest on Linux
#   clippy  workspace lints, warnings are errors
#   panic   persistence/checkpoint/read-path/tail-tolerance modules —
#           plus the storage crate, the paged/planner modules, the
#           event-loop front end (poller/conn/event_loop), and the
#           batch planner path (corpus match, retriever, detector,
#           online) — keep their no-panic lint gate
#
# Usage: scripts/tier1.sh   (from the repo root or anywhere inside it)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release"
cargo build --release

echo "== tier-1: cargo test -q"
cargo test -q

echo "== tier-1: cargo test -q -p esharp-core --test crashsafety"
cargo test -q -p esharp-core --test crashsafety

echo "== tier-1: cargo test -q -p esharp-serve --test smoke (serving layer)"
cargo test -q -p esharp-serve --test smoke

echo "== tier-1: cargo bench --no-run"
cargo bench --no-run

echo "== tier-1: esharp bench --online smoke (interned vs string-keyed parity)"
online_dir="$(mktemp -d)"
trap 'rm -rf "$online_dir"' EXIT
./target/release/esharp bench --online --scale tiny --seed 7 --queries 200 \
  --json --out "$online_dir" >/dev/null
for key in '"bench": "online"' '"name": "interned"' '"name": "string_keyed"' \
           '"hot_path_speedup":' '"binary_load_secs":' '"results_identical": true'; do
  grep -qF "$key" "$online_dir/BENCH_online.json" || {
    echo "BENCH_online.json missing $key" >&2
    exit 1
  }
done

echo "== tier-1: ingest smoke (append → search → compact → search)"
cargo test -q -p esharp-serve --test ingest_smoke
cargo test -q -p esharp-ingest --test crashsafety_ingest

echo "== tier-1: sharded corpus smoke (K=4 search ≡ K=1, zero-copy reload, corruption matrix)"
cargo test -q -p esharp-microblog --test sharded_corpus
shard_dir="$(mktemp -d)"
./target/release/esharp build --scale tiny --seed 7 --out "$shard_dir" --shards 4 >/dev/null
for f in corpus.manifest global.bin tokens.seg \
         postings-0.seg postings-1.seg postings-2.seg postings-3.seg; do
  [ -s "$shard_dir/$f" ] || {
    echo "esharp build --shards 4 did not write $f" >&2
    exit 1
  }
done
rm -rf "$shard_dir"

echo "== tier-1: chaos gate (deterministic matrix + serve-layer smoke)"
cargo test -q -p esharp-core --test chaos_matrix
cargo test -q -p esharp-serve --test chaos_smoke

echo "== tier-1: out-of-core smoke (4 MiB pool clustering SQL ≡ in-memory)"
cargo test -q --release -p esharp-community --test out_of_core_smoke
cargo test -q -p esharp-storage --test corruption_matrix
cargo test -q -p esharp-relation --test planner_equiv

echo "== tier-1: event-loop gate (pipelining torture, batch ≡ singles, poll(2) fallback)"
cargo test -q -p esharp-serve --test pipelining
cargo test -q -p esharp-serve --test proptest_batch
ESHARP_FORCE_POLL=1 cargo test -q -p esharp-serve --test smoke
ESHARP_FORCE_POLL=1 cargo test -q -p esharp-serve --test pipelining

echo "== tier-1: cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "== tier-1: no-panic gate on the durability layer and read path"
for f in crates/relation/src/atomic.rs crates/relation/src/binfmt.rs \
         crates/graph/src/io.rs crates/core/src/domains.rs \
         crates/core/src/checkpoint.rs crates/core/src/shared.rs \
         crates/microblog/src/binio.rs crates/microblog/src/index.rs \
         crates/microblog/src/arena.rs crates/microblog/src/segio.rs \
         crates/serve/src/lib.rs crates/ingest/src/lib.rs \
         crates/fault/src/clock.rs crates/fault/src/budget.rs \
         crates/fault/src/chaos.rs crates/fault/src/breaker.rs \
         crates/microblog/src/bounded.rs \
         crates/storage/src/lib.rs crates/storage/src/atomic.rs \
         crates/storage/src/page.rs crates/storage/src/heap.rs \
         crates/storage/src/pool.rs crates/storage/src/spill.rs \
         crates/relation/src/paged.rs crates/relation/src/physical.rs \
         crates/relation/src/catalog.rs \
         crates/serve/src/poller.rs crates/serve/src/conn.rs \
         crates/serve/src/event_loop.rs \
         crates/microblog/src/corpus.rs crates/core/src/online.rs \
         crates/core/src/retriever.rs crates/expert/src/detector.rs; do
  grep -q 'deny(clippy::unwrap_used, clippy::expect_used)' "$f" || {
    echo "missing unwrap/expect deny gate in $f" >&2
    exit 1
  }
done

echo "== tier-1: OK"
