#!/usr/bin/env bash
# Tier-1 verification: everything a PR must keep green.
#
#   build   release build of the whole workspace
#   test    the full test suite (unit + property + integration)
#   crash   the kill/resume fault matrix (ROBUSTNESS.md)
#   smoke   serving layer on an ephemeral port (endpoints, shedding,
#           degraded reload, clean shutdown)
#   bench   all Criterion bench targets compile (not run)
#   clippy  workspace lints, warnings are errors
#   panic   persistence/checkpoint modules keep their no-panic lint gate
#
# Usage: scripts/tier1.sh   (from the repo root or anywhere inside it)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release"
cargo build --release

echo "== tier-1: cargo test -q"
cargo test -q

echo "== tier-1: cargo test -q -p esharp-core --test crashsafety"
cargo test -q -p esharp-core --test crashsafety

echo "== tier-1: cargo test -q -p esharp-serve --test smoke (serving layer)"
cargo test -q -p esharp-serve --test smoke

echo "== tier-1: cargo bench --no-run"
cargo bench --no-run

echo "== tier-1: cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "== tier-1: no-panic gate on the durability layer"
for f in crates/relation/src/atomic.rs crates/relation/src/binfmt.rs \
         crates/graph/src/io.rs crates/core/src/domains.rs \
         crates/core/src/checkpoint.rs crates/core/src/shared.rs \
         crates/serve/src/lib.rs; do
  grep -q 'deny(clippy::unwrap_used, clippy::expect_used)' "$f" || {
    echo "missing unwrap/expect deny gate in $f" >&2
    exit 1
  }
done

echo "== tier-1: OK"
