#!/usr/bin/env bash
# Tier-1 verification: everything a PR must keep green.
#
#   build   release build of the whole workspace
#   test    the full test suite (unit + property + integration)
#   bench   all Criterion bench targets compile (not run)
#   clippy  workspace lints, warnings are errors
#
# Usage: scripts/tier1.sh   (from the repo root or anywhere inside it)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release"
cargo build --release

echo "== tier-1: cargo test -q"
cargo test -q

echo "== tier-1: cargo bench --no-run"
cargo bench --no-run

echo "== tier-1: cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "== tier-1: OK"
