//! Slotted-page heap files.
//!
//! A heap file is two artifacts:
//!
//! * `<base>.heap` — a flat array of [`PAGE_SIZE`] slotted pages, each
//!   sealed with its own CRC;
//! * `<base>.meta` — a small checksummed metadata frame (page size,
//!   committed page count, record count, opaque user metadata) written
//!   **last** through [`crate::atomic::atomic_write`].
//!
//! The write discipline gives the same crash contract as the rest of the
//! workspace: pages are appended and fsynced first, metadata is renamed
//! into place only afterwards ([`HeapFile::sync`]). A crash mid-build
//! leaves the previous metadata pointing at the previous committed
//! prefix — never a half-table. Torn or bit-flipped pages are caught by
//! the per-page CRC at read time; a data file shorter than the committed
//! page count is rejected at open.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::atomic::{read_framed, write_framed};
use crate::page::{Page, PAGE_SIZE};
use esharp_fault::{fault_error, Fault, FaultInjector};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const META_MAGIC: &[u8; 4] = b"ESHP";
const META_VERSION: u16 = 1;

/// Process-unique heap identities; the buffer pool keys frames on them.
static HEAP_IDS: AtomicU64 = AtomicU64::new(1);

fn with_suffix(base: &Path, suffix: &str) -> PathBuf {
    let mut os = base.as_os_str().to_os_string();
    os.push(suffix);
    PathBuf::from(os)
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("heap file: {msg}"))
}

struct HeapState {
    file: File,
    /// Pages allocated so far (committed + not-yet-synced).
    pages: u64,
    /// Records appended so far (committed + not-yet-synced).
    records: u64,
}

/// An open heap file. All methods take `&self`; internal state is behind
/// a mutex so an `Arc<HeapFile>` can be shared with the buffer pool.
pub struct HeapFile {
    id: u64,
    data_path: PathBuf,
    meta_path: PathBuf,
    user_meta: Vec<u8>,
    state: Mutex<HeapState>,
    injector: Option<(Arc<dyn FaultInjector>, String)>,
}

impl HeapFile {
    /// Create a fresh, empty heap at `<base>.heap` / `<base>.meta`,
    /// truncating any previous one. `user_meta` is opaque to this layer
    /// (the relational layer stores the table schema there).
    pub fn create(base: impl AsRef<Path>, user_meta: &[u8]) -> io::Result<HeapFile> {
        let base = base.as_ref();
        if let Some(parent) = base.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let data_path = with_suffix(base, ".heap");
        let meta_path = with_suffix(base, ".meta");
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&data_path)?;
        let heap = HeapFile {
            id: HEAP_IDS.fetch_add(1, Ordering::Relaxed),
            data_path,
            meta_path,
            user_meta: user_meta.to_vec(),
            state: Mutex::new(HeapState {
                file,
                pages: 0,
                records: 0,
            }),
            injector: None,
        };
        heap.write_meta(0, 0)?;
        Ok(heap)
    }

    /// Open an existing heap. Rejects a missing/corrupt metadata frame
    /// and a data file shorter than the committed page count with
    /// `InvalidData`.
    pub fn open(base: impl AsRef<Path>) -> io::Result<HeapFile> {
        let base = base.as_ref();
        let data_path = with_suffix(base, ".heap");
        let meta_path = with_suffix(base, ".meta");
        let meta = read_framed(&meta_path)?;
        let (pages, records, user_meta) = decode_meta(&meta)?;
        let file = OpenOptions::new().read(true).write(true).open(&data_path)?;
        let len = file.metadata()?.len();
        if len < pages.saturating_mul(PAGE_SIZE as u64) {
            return Err(invalid("data file shorter than committed page count"));
        }
        Ok(HeapFile {
            id: HEAP_IDS.fetch_add(1, Ordering::Relaxed),
            data_path,
            meta_path,
            user_meta,
            state: Mutex::new(HeapState {
                file,
                pages,
                records,
            }),
            injector: None,
        })
    }

    /// Attach a fault injector to the page-write path. Sites are named
    /// `<prefix>:page<no>`; the metadata write keeps going through the
    /// (separately injectable) atomic-write layer.
    pub fn with_injector(mut self, injector: Arc<dyn FaultInjector>, prefix: &str) -> HeapFile {
        self.injector = Some((injector, prefix.to_string()));
        self
    }

    /// Process-unique identity (buffer-pool frame key).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Pages allocated (committed plus pending [`HeapFile::sync`]).
    pub fn page_count(&self) -> u64 {
        self.state.lock().pages
    }

    /// Records appended (committed plus pending [`HeapFile::sync`]).
    pub fn record_count(&self) -> u64 {
        self.state.lock().records
    }

    /// The opaque metadata stored at create time.
    pub fn user_meta(&self) -> &[u8] {
        &self.user_meta
    }

    /// Path of the page data file.
    pub fn data_path(&self) -> &Path {
        &self.data_path
    }

    /// Append a fresh empty (sealed) page; returns its page number.
    pub fn allocate_page(&self) -> io::Result<u64> {
        let mut state = self.state.lock();
        let no = state.pages;
        let mut page = Page::empty();
        page.seal();
        state.file.seek(SeekFrom::Start(no * PAGE_SIZE as u64))?;
        state.file.write_all(page.as_bytes())?;
        state.pages = no + 1;
        Ok(no)
    }

    /// Bump the record counter; committed at the next [`HeapFile::sync`].
    pub fn add_records(&self, n: u64) {
        self.state.lock().records += n;
    }

    /// Read and verify page `no`.
    pub fn read_page(&self, no: u64) -> io::Result<Page> {
        let mut state = self.state.lock();
        if no >= state.pages {
            return Err(invalid("page number out of range"));
        }
        let mut buf = vec![0u8; PAGE_SIZE];
        state.file.seek(SeekFrom::Start(no * PAGE_SIZE as u64))?;
        state.file.read_exact(&mut buf)?;
        Page::from_bytes(&buf)
    }

    /// Seal and write page `no` in place (the buffer pool's dirty-page
    /// writeback). In-place writes are not atomic — a torn one is caught
    /// by the page CRC at the next read, and the pool keeps its good
    /// in-memory copy when this returns an error.
    pub fn write_page(&self, no: u64, page: &mut Page) -> io::Result<()> {
        page.seal();
        let mut state = self.state.lock();
        if no >= state.pages {
            return Err(invalid("page number out of range"));
        }
        let fault = self
            .injector
            .as_ref()
            .and_then(|(inj, prefix)| {
                let site = format!("{prefix}:page{no}");
                inj.fault_at(&site, 0).map(|f| (f, site))
            });
        state.file.seek(SeekFrom::Start(no * PAGE_SIZE as u64))?;
        match fault {
            Some((f @ (Fault::IoError { .. } | Fault::Kill), site)) => {
                // Dies before a byte reaches the file.
                return Err(fault_error(f, &site));
            }
            Some((Fault::TornWrite { numerator, denominator }, site)) => {
                let den = denominator.max(1) as u64;
                let keep =
                    ((PAGE_SIZE as u64 * numerator.min(denominator) as u64) / den) as usize;
                state.file.write_all(&page.as_bytes()[..keep.min(PAGE_SIZE)])?;
                let _ = state.file.sync_all();
                return Err(fault_error(
                    Fault::TornWrite { numerator, denominator },
                    &site,
                ));
            }
            Some((Fault::BitFlip { offset, bit }, _)) => {
                // Silent corruption: the write "succeeds"; only the page
                // CRC can catch it downstream.
                let mut corrupt = page.as_bytes().to_vec();
                let idx = (offset % PAGE_SIZE as u64) as usize;
                corrupt[idx] ^= 1 << (bit % 8);
                state.file.write_all(&corrupt)?;
            }
            _ => state.file.write_all(page.as_bytes())?,
        }
        Ok(())
    }

    /// Fsync the data file, then atomically publish the current page and
    /// record counts in the metadata frame. Until this returns, readers
    /// opening the heap see the previous committed prefix.
    pub fn sync(&self) -> io::Result<()> {
        let (pages, records) = {
            let state = self.state.lock();
            state.file.sync_all()?;
            (state.pages, state.records)
        };
        self.write_meta(pages, records)
    }

    fn write_meta(&self, pages: u64, records: u64) -> io::Result<()> {
        let mut payload = Vec::with_capacity(30 + self.user_meta.len());
        payload.extend_from_slice(META_MAGIC);
        payload.extend_from_slice(&META_VERSION.to_le_bytes());
        payload.extend_from_slice(&(PAGE_SIZE as u32).to_le_bytes());
        payload.extend_from_slice(&pages.to_le_bytes());
        payload.extend_from_slice(&records.to_le_bytes());
        payload.extend_from_slice(&(self.user_meta.len() as u32).to_le_bytes());
        payload.extend_from_slice(&self.user_meta);
        write_framed(&self.meta_path, &payload)
    }
}

impl std::fmt::Debug for HeapFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapFile")
            .field("data", &self.data_path)
            .field("pages", &self.page_count())
            .field("records", &self.record_count())
            .finish()
    }
}

fn decode_meta(payload: &[u8]) -> io::Result<(u64, u64, Vec<u8>)> {
    if payload.len() < 4 + 2 + 4 + 8 + 8 + 4 {
        return Err(invalid("truncated metadata"));
    }
    if &payload[..4] != META_MAGIC {
        return Err(invalid("bad metadata magic"));
    }
    if u16::from_le_bytes([payload[4], payload[5]]) != META_VERSION {
        return Err(invalid("unsupported metadata version"));
    }
    let page_size = u32::from_le_bytes([payload[6], payload[7], payload[8], payload[9]]) as usize;
    if page_size != PAGE_SIZE {
        return Err(invalid("page size mismatch"));
    }
    let u64_at = |off: usize| -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&payload[off..off + 8]);
        u64::from_le_bytes(b)
    };
    let pages = u64_at(10);
    let records = u64_at(18);
    let meta_len =
        u32::from_le_bytes([payload[26], payload[27], payload[28], payload[29]]) as usize;
    let rest = &payload[30..];
    if rest.len() != meta_len {
        return Err(invalid("user metadata length mismatch"));
    }
    Ok((pages, records, rest.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use esharp_fault::FaultPlan;

    fn tmpbase(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("esharp_heap_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("table")
    }

    #[test]
    fn create_fill_sync_open_round_trips() {
        let base = tmpbase("roundtrip");
        let heap = HeapFile::create(&base, b"schema-bytes").unwrap();
        for i in 0..3u64 {
            let no = heap.allocate_page().unwrap();
            assert_eq!(no, i);
            let mut page = heap.read_page(no).unwrap();
            page.insert(format!("record-{i}").as_bytes()).unwrap();
            heap.write_page(no, &mut page).unwrap();
            heap.add_records(1);
        }
        heap.sync().unwrap();

        let back = HeapFile::open(&base).unwrap();
        assert_eq!(back.page_count(), 3);
        assert_eq!(back.record_count(), 3);
        assert_eq!(back.user_meta(), b"schema-bytes");
        let p1 = back.read_page(1).unwrap();
        assert_eq!(p1.record(0).unwrap(), b"record-1");
        assert!(back.read_page(3).is_err());
    }

    #[test]
    fn unsynced_pages_stay_invisible_after_reopen() {
        let base = tmpbase("unsynced");
        let heap = HeapFile::create(&base, b"").unwrap();
        heap.allocate_page().unwrap();
        heap.add_records(5);
        heap.sync().unwrap();
        // A second page is allocated but the process "crashes" before sync.
        heap.allocate_page().unwrap();
        drop(heap);
        let back = HeapFile::open(&base).unwrap();
        assert_eq!(back.page_count(), 1, "uncommitted page leaked into metadata");
        assert_eq!(back.record_count(), 5);
    }

    #[test]
    fn truncated_data_file_is_rejected_at_open() {
        let base = tmpbase("truncated");
        let heap = HeapFile::create(&base, b"").unwrap();
        heap.allocate_page().unwrap();
        heap.allocate_page().unwrap();
        heap.sync().unwrap();
        let data = with_suffix(&base, ".heap");
        drop(heap);
        let good = std::fs::read(&data).unwrap();
        std::fs::write(&data, &good[..good.len() - 1]).unwrap();
        let err = HeapFile::open(&base).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn torn_page_writeback_is_caught_by_the_page_crc() {
        let base = tmpbase("torn");
        let plan: Arc<dyn FaultInjector> = Arc::new(FaultPlan::new(0).trigger(
            "wb:page0",
            0,
            Fault::TornWrite { numerator: 1, denominator: 2 },
        ));
        let heap = HeapFile::create(&base, b"").unwrap().with_injector(plan, "wb");
        heap.allocate_page().unwrap();
        heap.sync().unwrap();
        let mut page = heap.read_page(0).unwrap();
        page.insert(b"torn victim").unwrap();
        assert!(heap.write_page(0, &mut page).is_err());
        // The on-disk page is torn; the CRC refuses it.
        let err = heap.read_page(0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // A clean rewrite heals it.
        let heap = HeapFile::open(&base).unwrap();
        let mut page = Page::empty();
        page.insert(b"healed").unwrap();
        heap.write_page(0, &mut page).unwrap();
        assert_eq!(heap.read_page(0).unwrap().record(0).unwrap(), b"healed");
    }
}
