//! Fixed-capacity buffer pool with clock (second-chance) eviction.
//!
//! The pool is the only path between the relational scan and the heap
//! files: every page fetch either hits a resident frame or evicts one
//! victim (writing it back first when dirty) and reads the page in.
//! Frames are pinned by RAII [`PageGuard`]s — a pinned frame is never a
//! victim, and a pool whose every frame is pinned reports an error
//! rather than deadlocking or growing past its grant.
//!
//! Counters (hits, misses, evictions, writebacks, recycles) are cheap
//! atomics; they feed the planner's cost feedback and the out-of-core
//! section of `BENCH_offline.json`.
//!
//! ## Scan-resistant admission
//!
//! A sequential scan larger than the pool floods a plain clock: by the
//! time the scan wraps, every previously hot page has been evicted and
//! the next scan misses on every fetch (0% hit rate). Scans therefore
//! fetch through a per-scan [`ScanHint`]: hinted pages are admitted
//! with the reference bit **clear**, and once the scan has faulted in
//! its small ring of frames (~capacity/8, at most 8), further misses
//! recycle the scan's own oldest unpinned ring frame instead of
//! evicting anyone else's. The net effect is MRU-like behavior for the
//! scan tail: the prefix admitted while the pool had room stays
//! resident, so a repeat scan hits on it.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::heap::HeapFile;
use crate::page::{Page, PAGE_SIZE};
use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// One pool frame. The page payload sits behind its own lock so guards
/// can read it without holding the pool-wide mutex.
struct Frame {
    page: RwLock<Page>,
    pin: AtomicU32,
    referenced: AtomicBool,
    dirty: AtomicBool,
    /// Which heap page this frame holds; manipulated under the pool lock.
    owner: Mutex<Option<(Arc<HeapFile>, u64)>>,
}

impl Frame {
    fn new() -> Arc<Frame> {
        Arc::new(Frame {
            page: RwLock::new(Page::empty()),
            pin: AtomicU32::new(0),
            referenced: AtomicBool::new(false),
            dirty: AtomicBool::new(false),
            owner: Mutex::new(None),
        })
    }
}

struct PoolInner {
    frames: Vec<Arc<Frame>>,
    map: HashMap<(u64, u64), usize>,
    clock: usize,
}

/// Counter snapshot of a pool's lifetime activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Fetches served from a resident frame.
    pub hits: u64,
    /// Fetches that had to read the page from disk.
    pub misses: u64,
    /// Victim frames recycled to make room.
    pub evictions: u64,
    /// Dirty pages written back (evictions + flushes).
    pub writebacks: u64,
    /// Scan-hint self-recycles: misses served by reusing the issuing
    /// scan's own ring frame instead of evicting a stranger.
    pub recycles: u64,
    /// Frame capacity, in pages.
    pub capacity: u64,
}

impl PoolStats {
    /// Hits as a fraction of all fetches (1.0 when nothing was fetched).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A fixed-capacity page cache shared by every scan in an execution.
pub struct BufferPool {
    capacity: usize,
    inner: Mutex<PoolInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    writebacks: AtomicU64,
    recycles: AtomicU64,
}

/// A per-scan admission hint: the ring of frame indices this scan has
/// faulted in. Create one per sequential scan with
/// [`BufferPool::scan_hint`] and pass it to every
/// [`BufferPool::fetch_hinted`] of that scan. Advisory: recycling only
/// ever touches unpinned frames, and the pool falls back to the clock
/// when the ring has nothing reusable.
pub struct ScanHint {
    /// Frame indices faulted in by this scan, oldest first.
    ring: Mutex<std::collections::VecDeque<usize>>,
    /// Ring capacity — the scan's resident footprint once the pool is
    /// full.
    cap: usize,
}

fn pool_err(msg: &str) -> io::Error {
    io::Error::other(format!("buffer pool: {msg}"))
}

impl BufferPool {
    /// A pool of `capacity_pages` frames (minimum 1).
    pub fn new(capacity_pages: usize) -> BufferPool {
        BufferPool {
            capacity: capacity_pages.max(1),
            inner: Mutex::new(PoolInner {
                frames: Vec::new(),
                map: HashMap::new(),
                clock: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            writebacks: AtomicU64::new(0),
            recycles: AtomicU64::new(0),
        }
    }

    /// A pool capped at `bytes` of page payload.
    pub fn with_capacity_bytes(bytes: usize) -> BufferPool {
        BufferPool::new(bytes / PAGE_SIZE)
    }

    /// Frame capacity in pages.
    pub fn capacity_pages(&self) -> usize {
        self.capacity
    }

    /// Lifetime counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            writebacks: self.writebacks.load(Ordering::Relaxed),
            recycles: self.recycles.load(Ordering::Relaxed),
            capacity: self.capacity as u64,
        }
    }

    /// A hint for one sequential scan: ~capacity/8 ring frames, at most
    /// 8 — a scan larger than the pool confines itself to this many
    /// frames once the pool is full.
    pub fn scan_hint(&self) -> ScanHint {
        ScanHint {
            ring: Mutex::new(std::collections::VecDeque::new()),
            cap: (self.capacity / 8).clamp(1, 8),
        }
    }

    /// Fetch (and pin) page `no` of `file`. Misses evict a victim via the
    /// clock hand — dirty victims are written back first, and a failed
    /// writeback aborts the eviction with the victim (and its good
    /// in-memory copy) left resident. Errors when every frame is pinned.
    pub fn fetch(&self, file: &Arc<HeapFile>, no: u64) -> io::Result<PageGuard> {
        self.fetch_hinted(file, no, None)
    }

    /// [`BufferPool::fetch`] under a scan hint: hinted misses are
    /// admitted unreferenced, and once `hint`'s ring is full they
    /// recycle the scan's own oldest unpinned ring frame instead of
    /// evicting a stranger through the clock.
    pub fn fetch_hinted(
        &self,
        file: &Arc<HeapFile>,
        no: u64,
        hint: Option<&ScanHint>,
    ) -> io::Result<PageGuard> {
        let key = (file.id(), no);
        let mut inner = self.inner.lock();
        if let Some(&idx) = inner.map.get(&key) {
            let frame = Arc::clone(&inner.frames[idx]);
            frame.pin.fetch_add(1, Ordering::Relaxed);
            // A re-hit earns the reference bit even for scan pages:
            // something wanted this page twice.
            frame.referenced.store(true, Ordering::Relaxed);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(PageGuard { frame });
        }
        self.misses.fetch_add(1, Ordering::Relaxed);

        let idx = if inner.frames.len() < self.capacity {
            inner.frames.push(Frame::new());
            inner.frames.len() - 1
        } else if let Some(idx) = self.recycle_from_ring(&mut inner, hint)? {
            idx
        } else {
            let idx = self.evict_one(&mut inner)?;
            self.evictions.fetch_add(1, Ordering::Relaxed);
            idx
        };

        // Read the page in while holding the pool lock: fetches are
        // serialized, which keeps the pin/map bookkeeping trivially
        // consistent. Scans overlap compute with I/O at page granularity
        // via the guard, not via concurrent faults on one pool.
        let page = file.read_page(no)?;
        let frame = Arc::clone(&inner.frames[idx]);
        *frame.page.write() = page;
        *frame.owner.lock() = Some((Arc::clone(file), no));
        frame.pin.store(1, Ordering::Relaxed);
        // Scan admissions stay unreferenced: if the clock does run, scan
        // pages are the first victims rather than the last.
        frame.referenced.store(hint.is_none(), Ordering::Relaxed);
        frame.dirty.store(false, Ordering::Relaxed);
        inner.map.insert(key, idx);
        if let Some(hint) = hint {
            let mut ring = hint.ring.lock();
            ring.push_back(idx);
            // Growth-phase overflow: the displaced frame simply stays
            // resident (unreferenced) — that prefix is what a repeat
            // scan will hit on.
            while ring.len() > hint.cap {
                ring.pop_front();
            }
        }
        Ok(PageGuard { frame })
    }

    /// Serve a miss by reclaiming the issuing scan's own oldest unpinned
    /// ring frame. `None` when there is no hint, the ring is not yet
    /// full, or every ring frame is pinned (fall back to the clock).
    fn recycle_from_ring(
        &self,
        inner: &mut PoolInner,
        hint: Option<&ScanHint>,
    ) -> io::Result<Option<usize>> {
        let Some(hint) = hint else {
            return Ok(None);
        };
        let mut ring = hint.ring.lock();
        if ring.len() < hint.cap {
            return Ok(None);
        }
        for i in 0..ring.len() {
            let idx = ring[i];
            if inner.frames[idx].pin.load(Ordering::Relaxed) > 0 {
                continue;
            }
            self.reclaim(inner, idx)?;
            ring.remove(i);
            self.recycles.fetch_add(1, Ordering::Relaxed);
            return Ok(Some(idx));
        }
        Ok(None)
    }

    /// Pick a victim with the clock hand and return its index reclaimed
    /// and ready for reuse.
    fn evict_one(&self, inner: &mut PoolInner) -> io::Result<usize> {
        let n = inner.frames.len();
        // Two full sweeps: the first clears reference bits, the second
        // must find an unpinned frame if one exists.
        for _ in 0..2 * n {
            let idx = inner.clock;
            inner.clock = (inner.clock + 1) % n;
            let frame = Arc::clone(&inner.frames[idx]);
            if frame.pin.load(Ordering::Relaxed) > 0 {
                continue;
            }
            if frame.referenced.swap(false, Ordering::Relaxed) {
                continue;
            }
            self.reclaim(inner, idx)?;
            return Ok(idx);
        }
        Err(pool_err("all frames pinned"))
    }

    /// Write back (when dirty) and unmap whatever page frame `idx`
    /// holds. The frame must be unpinned. Write-back happens before
    /// unmapping, so a failure leaves the page resident and dirty
    /// (never published torn as far as readers of this pool are
    /// concerned).
    fn reclaim(&self, inner: &mut PoolInner, idx: usize) -> io::Result<()> {
        let frame = Arc::clone(&inner.frames[idx]);
        let owner = frame.owner.lock().clone();
        if let Some((file, no)) = owner {
            if frame.dirty.load(Ordering::Relaxed) {
                let mut page = frame.page.write();
                file.write_page(no, &mut page)?;
                frame.dirty.store(false, Ordering::Relaxed);
                self.writebacks.fetch_add(1, Ordering::Relaxed);
            }
            inner.map.remove(&(file.id(), no));
        }
        *frame.owner.lock() = None;
        Ok(())
    }

    /// Write back every dirty resident page (pages stay resident).
    pub fn flush_all(&self) -> io::Result<()> {
        let inner = self.inner.lock();
        for frame in &inner.frames {
            if !frame.dirty.load(Ordering::Relaxed) {
                continue;
            }
            let owner = frame.owner.lock().clone();
            if let Some((file, no)) = owner {
                let mut page = frame.page.write();
                file.write_page(no, &mut page)?;
                frame.dirty.store(false, Ordering::Relaxed);
                self.writebacks.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity_pages", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

/// A pinned page. The frame cannot be evicted while any guard on it is
/// alive; dropping the guard unpins it.
pub struct PageGuard {
    frame: Arc<Frame>,
}

impl PageGuard {
    /// Read access to the pinned page.
    pub fn page(&self) -> RwLockReadGuard<'_, Page> {
        self.frame.page.read()
    }

    /// Write access; marks the frame dirty so eviction writes it back.
    pub fn page_mut(&self) -> RwLockWriteGuard<'_, Page> {
        self.frame.dirty.store(true, Ordering::Relaxed);
        self.frame.page.write()
    }
}

impl Drop for PageGuard {
    fn drop(&mut self) {
        self.frame.pin.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpbase(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("esharp_pool_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("t")
    }

    fn heap_with_pages(name: &str, pages: u64) -> Arc<HeapFile> {
        let heap = HeapFile::create(tmpbase(name), b"").unwrap();
        for i in 0..pages {
            let no = heap.allocate_page().unwrap();
            let mut p = heap.read_page(no).unwrap();
            p.insert(format!("page-{i}").as_bytes()).unwrap();
            heap.write_page(no, &mut p).unwrap();
        }
        heap.sync().unwrap();
        Arc::new(heap)
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let heap = heap_with_pages("counts", 4);
        let pool = BufferPool::new(8);
        for _ in 0..3 {
            for no in 0..4 {
                let g = pool.fetch(&heap, no).unwrap();
                assert_eq!(
                    g.page().record(0).unwrap(),
                    format!("page-{no}").as_bytes()
                );
            }
        }
        let s = pool.stats();
        assert_eq!(s.misses, 4);
        assert_eq!(s.hits, 8);
        assert_eq!(s.evictions, 0);
        assert!((s.hit_rate() - 8.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn eviction_cycles_through_a_small_pool() {
        let heap = heap_with_pages("evict", 6);
        let pool = BufferPool::new(2);
        for round in 0..2 {
            for no in 0..6 {
                let g = pool.fetch(&heap, no).unwrap();
                assert_eq!(
                    g.page().record(0).unwrap(),
                    format!("page-{no}").as_bytes(),
                    "round {round}"
                );
            }
        }
        let s = pool.stats();
        assert_eq!(s.hits + s.misses, 12);
        assert!(s.evictions >= 10, "stats: {s:?}");
    }

    #[test]
    fn all_pinned_errors_instead_of_deadlocking() {
        let heap = heap_with_pages("pinned", 3);
        let pool = BufferPool::new(2);
        let _a = pool.fetch(&heap, 0).unwrap();
        let _b = pool.fetch(&heap, 1).unwrap();
        assert!(pool.fetch(&heap, 2).is_err());
        drop(_a);
        assert!(pool.fetch(&heap, 2).is_ok());
    }

    #[test]
    fn dirty_pages_are_written_back_on_eviction() {
        let heap = heap_with_pages("dirty", 3);
        let pool = BufferPool::new(1);
        {
            let g = pool.fetch(&heap, 0).unwrap();
            g.page_mut().insert(b"mutation").unwrap();
        }
        // Touching other pages forces page 0 out through writeback.
        let _ = pool.fetch(&heap, 1).unwrap();
        let _ = pool.fetch(&heap, 2).unwrap();
        assert!(pool.stats().writebacks >= 1);
        let on_disk = heap.read_page(0).unwrap();
        assert_eq!(on_disk.record(1).unwrap(), b"mutation");
    }

    #[test]
    fn unhinted_repeat_scans_thrash_but_hinted_scans_keep_a_prefix() {
        // 24 pages through an 8-frame pool, scanned three times.
        let heap = heap_with_pages("scan_thrash", 24);

        // Plain clock: sequential flooding — after the warm-up scan the
        // repeats still miss every page.
        let plain = BufferPool::new(8);
        for _ in 0..3 {
            for no in 0..24 {
                let _ = plain.fetch(&heap, no).unwrap();
            }
        }
        assert_eq!(plain.stats().hits, 0, "{:?}", plain.stats());

        // Scan hint: each scan confines its churn to the ring, so the
        // prefix admitted while the pool had room stays resident and
        // every repeat scan hits on it.
        let pool = BufferPool::new(8);
        for scan in 0..3 {
            let hint = pool.scan_hint();
            for no in 0..24 {
                let g = pool.fetch_hinted(&heap, no, Some(&hint)).unwrap();
                assert_eq!(
                    g.page().record(0).unwrap(),
                    format!("page-{no}").as_bytes(),
                    "scan {scan}"
                );
            }
        }
        let s = pool.stats();
        // Ring cap = (8/8).clamp(1,8) = 1: 7 prefix frames stay resident,
        // so scans 2 and 3 hit on 7 pages each. The only clock work is
        // replacing the previous scan's abandoned tail frame (once per
        // repeat scan); everything else recycles within the ring.
        assert_eq!(s.hits, 14, "{s:?}");
        assert!(s.recycles > s.evictions, "{s:?}");
        assert!(s.evictions <= 2, "hinted scans must not churn the clock: {s:?}");
        assert!(s.hit_rate() > 0.0);
    }

    #[test]
    fn pinned_ring_frames_fall_back_to_the_clock() {
        let heap = heap_with_pages("scan_pinned", 6);
        let pool = BufferPool::new(2);
        let hint = pool.scan_hint(); // ring cap 1
        let _held = pool.fetch_hinted(&heap, 0, Some(&hint)).unwrap();
        let _held2 = pool.fetch_hinted(&heap, 1, Some(&hint)).unwrap();
        // Both frames pinned: the ring has nothing reusable and the
        // clock has no victim either.
        assert!(pool.fetch_hinted(&heap, 2, Some(&hint)).is_err());
        drop(_held);
        // Page 0's frame is unpinned but no longer in the ring (cap 1
        // evicted it from tracking) — the clock reclaims it.
        let g = pool.fetch_hinted(&heap, 2, Some(&hint)).unwrap();
        assert_eq!(g.page().record(0).unwrap(), b"page-2");
        assert!(pool.stats().evictions >= 1, "{:?}", pool.stats());
    }

    #[test]
    fn hinted_recycle_writes_back_dirty_pages() {
        let heap = heap_with_pages("scan_dirty", 4);
        let pool = BufferPool::new(1);
        let hint = pool.scan_hint(); // ring cap 1: every miss recycles
        {
            let g = pool.fetch_hinted(&heap, 0, Some(&hint)).unwrap();
            g.page_mut().insert(b"scan-mutation").unwrap();
        }
        let _ = pool.fetch_hinted(&heap, 1, Some(&hint)).unwrap();
        assert!(pool.stats().recycles >= 1);
        assert!(pool.stats().writebacks >= 1);
        assert_eq!(heap.read_page(0).unwrap().record(1).unwrap(), b"scan-mutation");
    }

    #[test]
    fn flush_writes_dirty_pages_without_evicting() {
        let heap = heap_with_pages("flush", 1);
        let pool = BufferPool::new(2);
        {
            let g = pool.fetch(&heap, 0).unwrap();
            g.page_mut().insert(b"flushed").unwrap();
        }
        pool.flush_all().unwrap();
        assert_eq!(heap.read_page(0).unwrap().record(1).unwrap(), b"flushed");
        // Still resident: refetch is a hit.
        let before = pool.stats().hits;
        let _ = pool.fetch(&heap, 0).unwrap();
        assert_eq!(pool.stats().hits, before + 1);
    }
}
