//! Fixed-capacity buffer pool with clock (second-chance) eviction.
//!
//! The pool is the only path between the relational scan and the heap
//! files: every page fetch either hits a resident frame or evicts one
//! victim (writing it back first when dirty) and reads the page in.
//! Frames are pinned by RAII [`PageGuard`]s — a pinned frame is never a
//! victim, and a pool whose every frame is pinned reports an error
//! rather than deadlocking or growing past its grant.
//!
//! Counters (hits, misses, evictions, writebacks) are cheap atomics;
//! they feed the planner's cost feedback and the out-of-core section of
//! `BENCH_offline.json`.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::heap::HeapFile;
use crate::page::{Page, PAGE_SIZE};
use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// One pool frame. The page payload sits behind its own lock so guards
/// can read it without holding the pool-wide mutex.
struct Frame {
    page: RwLock<Page>,
    pin: AtomicU32,
    referenced: AtomicBool,
    dirty: AtomicBool,
    /// Which heap page this frame holds; manipulated under the pool lock.
    owner: Mutex<Option<(Arc<HeapFile>, u64)>>,
}

impl Frame {
    fn new() -> Arc<Frame> {
        Arc::new(Frame {
            page: RwLock::new(Page::empty()),
            pin: AtomicU32::new(0),
            referenced: AtomicBool::new(false),
            dirty: AtomicBool::new(false),
            owner: Mutex::new(None),
        })
    }
}

struct PoolInner {
    frames: Vec<Arc<Frame>>,
    map: HashMap<(u64, u64), usize>,
    clock: usize,
}

/// Counter snapshot of a pool's lifetime activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Fetches served from a resident frame.
    pub hits: u64,
    /// Fetches that had to read the page from disk.
    pub misses: u64,
    /// Victim frames recycled to make room.
    pub evictions: u64,
    /// Dirty pages written back (evictions + flushes).
    pub writebacks: u64,
    /// Frame capacity, in pages.
    pub capacity: u64,
}

impl PoolStats {
    /// Hits as a fraction of all fetches (1.0 when nothing was fetched).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A fixed-capacity page cache shared by every scan in an execution.
pub struct BufferPool {
    capacity: usize,
    inner: Mutex<PoolInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    writebacks: AtomicU64,
}

fn pool_err(msg: &str) -> io::Error {
    io::Error::other(format!("buffer pool: {msg}"))
}

impl BufferPool {
    /// A pool of `capacity_pages` frames (minimum 1).
    pub fn new(capacity_pages: usize) -> BufferPool {
        BufferPool {
            capacity: capacity_pages.max(1),
            inner: Mutex::new(PoolInner {
                frames: Vec::new(),
                map: HashMap::new(),
                clock: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            writebacks: AtomicU64::new(0),
        }
    }

    /// A pool capped at `bytes` of page payload.
    pub fn with_capacity_bytes(bytes: usize) -> BufferPool {
        BufferPool::new(bytes / PAGE_SIZE)
    }

    /// Frame capacity in pages.
    pub fn capacity_pages(&self) -> usize {
        self.capacity
    }

    /// Lifetime counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            writebacks: self.writebacks.load(Ordering::Relaxed),
            capacity: self.capacity as u64,
        }
    }

    /// Fetch (and pin) page `no` of `file`. Misses evict a victim via the
    /// clock hand — dirty victims are written back first, and a failed
    /// writeback aborts the eviction with the victim (and its good
    /// in-memory copy) left resident. Errors when every frame is pinned.
    pub fn fetch(&self, file: &Arc<HeapFile>, no: u64) -> io::Result<PageGuard> {
        let key = (file.id(), no);
        let mut inner = self.inner.lock();
        if let Some(&idx) = inner.map.get(&key) {
            let frame = Arc::clone(&inner.frames[idx]);
            frame.pin.fetch_add(1, Ordering::Relaxed);
            frame.referenced.store(true, Ordering::Relaxed);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(PageGuard { frame });
        }
        self.misses.fetch_add(1, Ordering::Relaxed);

        let idx = if inner.frames.len() < self.capacity {
            inner.frames.push(Frame::new());
            inner.frames.len() - 1
        } else {
            let idx = self.evict_one(&mut inner)?;
            self.evictions.fetch_add(1, Ordering::Relaxed);
            idx
        };

        // Read the page in while holding the pool lock: fetches are
        // serialized, which keeps the pin/map bookkeeping trivially
        // consistent. Scans overlap compute with I/O at page granularity
        // via the guard, not via concurrent faults on one pool.
        let page = file.read_page(no)?;
        let frame = Arc::clone(&inner.frames[idx]);
        *frame.page.write() = page;
        *frame.owner.lock() = Some((Arc::clone(file), no));
        frame.pin.store(1, Ordering::Relaxed);
        frame.referenced.store(true, Ordering::Relaxed);
        frame.dirty.store(false, Ordering::Relaxed);
        inner.map.insert(key, idx);
        Ok(PageGuard { frame })
    }

    /// Pick a victim with the clock hand, write it back if dirty, and
    /// return its index with the frame unmapped and ready for reuse.
    fn evict_one(&self, inner: &mut PoolInner) -> io::Result<usize> {
        let n = inner.frames.len();
        // Two full sweeps: the first clears reference bits, the second
        // must find an unpinned frame if one exists.
        for _ in 0..2 * n {
            let idx = inner.clock;
            inner.clock = (inner.clock + 1) % n;
            let frame = Arc::clone(&inner.frames[idx]);
            if frame.pin.load(Ordering::Relaxed) > 0 {
                continue;
            }
            if frame.referenced.swap(false, Ordering::Relaxed) {
                continue;
            }
            // Victim found. Write back before unmapping, so a failure
            // leaves the page resident and dirty (never published torn
            // as far as readers of this pool are concerned).
            let owner = frame.owner.lock().clone();
            if let Some((file, no)) = owner {
                if frame.dirty.load(Ordering::Relaxed) {
                    let mut page = frame.page.write();
                    file.write_page(no, &mut page)?;
                    frame.dirty.store(false, Ordering::Relaxed);
                    self.writebacks.fetch_add(1, Ordering::Relaxed);
                }
                inner.map.remove(&(file.id(), no));
            }
            *frame.owner.lock() = None;
            return Ok(idx);
        }
        Err(pool_err("all frames pinned"))
    }

    /// Write back every dirty resident page (pages stay resident).
    pub fn flush_all(&self) -> io::Result<()> {
        let inner = self.inner.lock();
        for frame in &inner.frames {
            if !frame.dirty.load(Ordering::Relaxed) {
                continue;
            }
            let owner = frame.owner.lock().clone();
            if let Some((file, no)) = owner {
                let mut page = frame.page.write();
                file.write_page(no, &mut page)?;
                frame.dirty.store(false, Ordering::Relaxed);
                self.writebacks.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity_pages", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

/// A pinned page. The frame cannot be evicted while any guard on it is
/// alive; dropping the guard unpins it.
pub struct PageGuard {
    frame: Arc<Frame>,
}

impl PageGuard {
    /// Read access to the pinned page.
    pub fn page(&self) -> RwLockReadGuard<'_, Page> {
        self.frame.page.read()
    }

    /// Write access; marks the frame dirty so eviction writes it back.
    pub fn page_mut(&self) -> RwLockWriteGuard<'_, Page> {
        self.frame.dirty.store(true, Ordering::Relaxed);
        self.frame.page.write()
    }
}

impl Drop for PageGuard {
    fn drop(&mut self) {
        self.frame.pin.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpbase(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("esharp_pool_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("t")
    }

    fn heap_with_pages(name: &str, pages: u64) -> Arc<HeapFile> {
        let heap = HeapFile::create(tmpbase(name), b"").unwrap();
        for i in 0..pages {
            let no = heap.allocate_page().unwrap();
            let mut p = heap.read_page(no).unwrap();
            p.insert(format!("page-{i}").as_bytes()).unwrap();
            heap.write_page(no, &mut p).unwrap();
        }
        heap.sync().unwrap();
        Arc::new(heap)
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let heap = heap_with_pages("counts", 4);
        let pool = BufferPool::new(8);
        for _ in 0..3 {
            for no in 0..4 {
                let g = pool.fetch(&heap, no).unwrap();
                assert_eq!(
                    g.page().record(0).unwrap(),
                    format!("page-{no}").as_bytes()
                );
            }
        }
        let s = pool.stats();
        assert_eq!(s.misses, 4);
        assert_eq!(s.hits, 8);
        assert_eq!(s.evictions, 0);
        assert!((s.hit_rate() - 8.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn eviction_cycles_through_a_small_pool() {
        let heap = heap_with_pages("evict", 6);
        let pool = BufferPool::new(2);
        for round in 0..2 {
            for no in 0..6 {
                let g = pool.fetch(&heap, no).unwrap();
                assert_eq!(
                    g.page().record(0).unwrap(),
                    format!("page-{no}").as_bytes(),
                    "round {round}"
                );
            }
        }
        let s = pool.stats();
        assert_eq!(s.hits + s.misses, 12);
        assert!(s.evictions >= 10, "stats: {s:?}");
    }

    #[test]
    fn all_pinned_errors_instead_of_deadlocking() {
        let heap = heap_with_pages("pinned", 3);
        let pool = BufferPool::new(2);
        let _a = pool.fetch(&heap, 0).unwrap();
        let _b = pool.fetch(&heap, 1).unwrap();
        assert!(pool.fetch(&heap, 2).is_err());
        drop(_a);
        assert!(pool.fetch(&heap, 2).is_ok());
    }

    #[test]
    fn dirty_pages_are_written_back_on_eviction() {
        let heap = heap_with_pages("dirty", 3);
        let pool = BufferPool::new(1);
        {
            let g = pool.fetch(&heap, 0).unwrap();
            g.page_mut().insert(b"mutation").unwrap();
        }
        // Touching other pages forces page 0 out through writeback.
        let _ = pool.fetch(&heap, 1).unwrap();
        let _ = pool.fetch(&heap, 2).unwrap();
        assert!(pool.stats().writebacks >= 1);
        let on_disk = heap.read_page(0).unwrap();
        assert_eq!(on_disk.record(1).unwrap(), b"mutation");
    }

    #[test]
    fn flush_writes_dirty_pages_without_evicting() {
        let heap = heap_with_pages("flush", 1);
        let pool = BufferPool::new(2);
        {
            let g = pool.fetch(&heap, 0).unwrap();
            g.page_mut().insert(b"flushed").unwrap();
        }
        pool.flush_all().unwrap();
        assert_eq!(heap.read_page(0).unwrap().record(1).unwrap(), b"flushed");
        // Still resident: refetch is a hit.
        let before = pool.stats().hits;
        let _ = pool.fetch(&heap, 0).unwrap();
        assert_eq!(pool.stats().hits, before + 1);
    }
}
