//! Fixed-size slotted pages with a per-page CRC32.
//!
//! Layout (all little-endian):
//!
//! ```text
//! 0..4   crc32 over bytes 4..PAGE_SIZE (sealed on write)
//! 4..6   slot count u16
//! 6..8   free_upper u16 — start of the record area
//! 8..    slot directory, 4 bytes per slot: record offset u16 | length u16
//! ...    free space
//! ...    records, appended downward from PAGE_SIZE
//! ```
//!
//! The same checksummed-frame discipline as the binfmt v2 table format:
//! a page read back from disk is verified before a single record is
//! decoded, so truncation, torn in-place writes and silent bit flips all
//! surface as `InvalidData`, never as a plausible-but-wrong row.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::atomic::crc32;
use std::io;

/// Size of every page, on disk and in every buffer-pool frame.
pub const PAGE_SIZE: usize = 8192;
/// Bytes 0..8: crc (4) + slot count (2) + free_upper (2).
pub const PAGE_HEADER: usize = 8;
const SLOT_SIZE: usize = 4;

/// Largest record a single page can hold (one slot, nothing else).
pub const MAX_RECORD: usize = PAGE_SIZE - PAGE_HEADER - SLOT_SIZE;

/// One in-memory slotted page.
#[derive(Clone)]
pub struct Page {
    bytes: Box<[u8]>,
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("slotted page: {msg}"))
}

impl Page {
    /// A fresh page with zero records.
    pub fn empty() -> Page {
        let mut bytes = vec![0u8; PAGE_SIZE].into_boxed_slice();
        bytes[6..8].copy_from_slice(&(PAGE_SIZE as u16).to_le_bytes());
        Page { bytes }
    }

    /// Number of records stored.
    pub fn slot_count(&self) -> usize {
        u16::from_le_bytes([self.bytes[4], self.bytes[5]]) as usize
    }

    fn free_upper(&self) -> usize {
        u16::from_le_bytes([self.bytes[6], self.bytes[7]]) as usize
    }

    /// Bytes still available for one more record (slot entry included).
    pub fn free_space(&self) -> usize {
        let lower = PAGE_HEADER + self.slot_count() * SLOT_SIZE;
        self.free_upper().saturating_sub(lower)
    }

    /// True when no record has been inserted.
    pub fn is_empty(&self) -> bool {
        self.slot_count() == 0
    }

    /// Append a record; returns its slot id, or `None` when the page is
    /// full. Records longer than [`MAX_RECORD`] never fit.
    pub fn insert(&mut self, record: &[u8]) -> Option<u16> {
        let needed = record.len() + SLOT_SIZE;
        if needed > self.free_space() || record.len() > MAX_RECORD {
            return None;
        }
        let slot = self.slot_count();
        let off = self.free_upper() - record.len();
        self.bytes[off..off + record.len()].copy_from_slice(record);
        let entry = PAGE_HEADER + slot * SLOT_SIZE;
        self.bytes[entry..entry + 2].copy_from_slice(&(off as u16).to_le_bytes());
        self.bytes[entry + 2..entry + 4].copy_from_slice(&(record.len() as u16).to_le_bytes());
        self.bytes[4..6].copy_from_slice(&((slot + 1) as u16).to_le_bytes());
        self.bytes[6..8].copy_from_slice(&(off as u16).to_le_bytes());
        Some(slot as u16)
    }

    /// The record in `slot`, if present.
    pub fn record(&self, slot: u16) -> Option<&[u8]> {
        let slot = slot as usize;
        if slot >= self.slot_count() {
            return None;
        }
        let entry = PAGE_HEADER + slot * SLOT_SIZE;
        let off = u16::from_le_bytes([self.bytes[entry], self.bytes[entry + 1]]) as usize;
        let len = u16::from_le_bytes([self.bytes[entry + 2], self.bytes[entry + 3]]) as usize;
        self.bytes.get(off..off + len)
    }

    /// Iterate records in slot order.
    pub fn records(&self) -> impl Iterator<Item = &[u8]> + '_ {
        (0..self.slot_count() as u16).filter_map(move |s| self.record(s))
    }

    /// Recompute the CRC so [`Page::as_bytes`] is a valid on-disk image.
    pub fn seal(&mut self) {
        let crc = crc32(&self.bytes[4..]);
        self.bytes[..4].copy_from_slice(&crc.to_le_bytes());
    }

    /// The raw `PAGE_SIZE` image. Only valid on disk after [`Page::seal`].
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Verify and adopt an on-disk page image. Rejects wrong length, CRC
    /// mismatch, and any slot directory entry pointing outside the record
    /// area with `InvalidData`.
    pub fn from_bytes(bytes: &[u8]) -> io::Result<Page> {
        if bytes.len() != PAGE_SIZE {
            return Err(invalid("wrong page length"));
        }
        let stored = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        if crc32(&bytes[4..]) != stored {
            return Err(invalid("checksum mismatch"));
        }
        let page = Page {
            bytes: bytes.to_vec().into_boxed_slice(),
        };
        // Structural sanity on top of the CRC: a page sealed by a buggy
        // writer must still be unable to make `record()` read out of
        // bounds.
        let slots = page.slot_count();
        let lower = PAGE_HEADER + slots * SLOT_SIZE;
        let upper = page.free_upper();
        if lower > upper || upper > PAGE_SIZE {
            return Err(invalid("slot directory overlaps record area"));
        }
        for s in 0..slots {
            let entry = PAGE_HEADER + s * SLOT_SIZE;
            let off = u16::from_le_bytes([page.bytes[entry], page.bytes[entry + 1]]) as usize;
            let len = u16::from_le_bytes([page.bytes[entry + 2], page.bytes[entry + 3]]) as usize;
            if off < upper || off + len > PAGE_SIZE {
                return Err(invalid("slot points outside the record area"));
            }
        }
        Ok(page)
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("slots", &self.slot_count())
            .field("free", &self.free_space())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_read_back_in_order() {
        let mut p = Page::empty();
        assert_eq!(p.insert(b"alpha"), Some(0));
        assert_eq!(p.insert(b"beta"), Some(1));
        assert_eq!(p.record(0).unwrap(), b"alpha");
        assert_eq!(p.record(1).unwrap(), b"beta");
        assert_eq!(p.records().collect::<Vec<_>>(), vec![&b"alpha"[..], b"beta"]);
        assert!(p.record(2).is_none());
    }

    #[test]
    fn fills_up_and_rejects_when_full() {
        let mut p = Page::empty();
        let rec = [7u8; 100];
        let mut n = 0;
        while p.insert(&rec).is_some() {
            n += 1;
        }
        // 104 bytes per record (100 + slot entry) in 8184 usable bytes.
        assert_eq!(n, (PAGE_SIZE - PAGE_HEADER) / (100 + 4));
        assert_eq!(p.slot_count(), n);
        // Oversized records never fit, even in an empty page.
        assert!(Page::empty().insert(&[0u8; MAX_RECORD + 1]).is_none());
        assert!(Page::empty().insert(&[0u8; MAX_RECORD]).is_some());
    }

    #[test]
    fn empty_records_are_allowed() {
        let mut p = Page::empty();
        assert_eq!(p.insert(b""), Some(0));
        assert_eq!(p.record(0).unwrap(), b"");
    }

    #[test]
    fn seal_round_trips_through_bytes() {
        let mut p = Page::empty();
        p.insert(b"payload");
        p.seal();
        let back = Page::from_bytes(p.as_bytes()).unwrap();
        assert_eq!(back.record(0).unwrap(), b"payload");
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let mut p = Page::empty();
        p.insert(b"some record data");
        p.insert(b"another one");
        p.seal();
        let good = p.as_bytes().to_vec();
        // Flipping any bit of the used region must fail the CRC. (The
        // whole page is covered, including the free space — sweep a
        // sample of it rather than all 64 Kbit for test speed.)
        for byte in (0..good.len()).step_by(97).chain([0, 1, 5, 7, good.len() - 1]) {
            for bit in 0..8 {
                let mut bad = good.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    Page::from_bytes(&bad).is_err(),
                    "bit flip at byte {byte} bit {bit} accepted"
                );
            }
        }
    }

    #[test]
    fn wrong_length_is_rejected() {
        let mut p = Page::empty();
        p.seal();
        let good = p.as_bytes();
        assert!(Page::from_bytes(&good[..PAGE_SIZE - 1]).is_err());
        let mut long = good.to_vec();
        long.push(0);
        assert!(Page::from_bytes(&long).is_err());
    }

    #[test]
    fn resealed_corrupt_directory_is_structurally_rejected() {
        // A writer bug that seals a bad slot directory passes the CRC;
        // the structural check must still refuse it.
        let mut p = Page::empty();
        p.insert(b"x");
        // Point slot 0 past the end of the page.
        let entry = PAGE_HEADER;
        p.bytes[entry..entry + 2].copy_from_slice(&((PAGE_SIZE - 1) as u16).to_le_bytes());
        p.bytes[entry + 2..entry + 4].copy_from_slice(&8u16.to_le_bytes());
        p.seal();
        assert!(Page::from_bytes(p.as_bytes()).is_err());
    }
}
