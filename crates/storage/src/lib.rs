//! # esharp-storage
//!
//! Out-of-core storage for the e# reproduction. The paper's offline stage
//! (§6, Table 9) chews through 998 GB of query logs — three orders of
//! magnitude past what the in-memory relational engine can hold — so this
//! crate provides the layer that lets the clustering SQL run over inputs
//! larger than RAM:
//!
//! * [`atomic`] — the crash-safe persistence primitives every writer in
//!   the workspace routes through (CRC32, write-temp-then-rename, the
//!   checksummed `ESCK` byte-frame container). Moved here from
//!   `esharp-relation` so storage can sit *below* the engine.
//! * [`page`] — fixed-size slotted pages with a per-page CRC in the same
//!   v2 checksummed-frame discipline as the binfmt table format: a torn
//!   or bit-flipped page is rejected at read, never decoded into a
//!   plausible-but-wrong relation.
//! * [`heap`] — heap files: a flat array of slotted pages plus a small
//!   metadata artifact written last via [`atomic::atomic_write`], so a
//!   crash mid-build leaves either the previous heap or a consistent
//!   committed prefix, never a half-table.
//! * [`pool`] — a fixed-capacity buffer pool with clock (second-chance)
//!   eviction, pin/unpin accounting via RAII guards, dirty-page
//!   writeback, and hit/miss/eviction counters the planner and the bench
//!   report read.
//! * [`spill`] — checksummed run files for operators that exceed their
//!   memory grant (external merge sort, partitioned hash spill). Spill
//!   data is recomputable, so it trades fsync durability for speed but
//!   keeps per-frame CRCs: a bad disk still fails loudly.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod atomic;
pub mod heap;
pub mod page;
pub mod pool;
pub mod spill;

pub use heap::HeapFile;
pub use page::{Page, PAGE_SIZE};
pub use pool::{BufferPool, PageGuard, PoolStats, ScanHint};
pub use spill::{SpillDir, SpillHandle, SpillReader, SpillWriter};
