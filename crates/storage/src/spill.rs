//! Checksummed spill files for operators that exceed their memory grant.
//!
//! A spill file is a sequence of frames, `len u64 LE | crc32 u32 |
//! payload`. Spilled data is recomputable from the operator's inputs, so
//! frames are buffered-written without fsync — losing them in a crash
//! costs a re-run, not an artifact — but every frame carries a CRC so a
//! failing disk corrupts loudly instead of silently reordering a sort.
//!
//! [`SpillDir`] owns a unique temporary directory and deletes it (runs
//! and all) when dropped, so an aborted query leaves nothing behind.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::atomic::crc32;
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static SPILL_COUNTER: AtomicU64 = AtomicU64::new(0);

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("spill frame: {msg}"))
}

/// A process-unique temporary directory for one operator's spill runs.
/// Removed recursively on drop.
#[derive(Debug)]
pub struct SpillDir {
    path: PathBuf,
}

impl SpillDir {
    /// Create a fresh spill directory under `root` (usually the system
    /// temp dir or the query's scratch space).
    pub fn new(root: &Path, label: &str) -> io::Result<SpillDir> {
        let n = SPILL_COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = root.join(format!(
            "esharp_spill_{label}_{}_{n}",
            std::process::id()
        ));
        fs::create_dir_all(&path)?;
        Ok(SpillDir { path })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Start a new run file inside the directory.
    pub fn writer(&self, name: &str) -> io::Result<SpillWriter> {
        SpillWriter::create(self.path.join(name))
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

/// Sequentially appends checksummed frames to one run file.
#[derive(Debug)]
pub struct SpillWriter {
    path: PathBuf,
    file: BufWriter<File>,
    frames: u64,
    bytes: u64,
}

impl SpillWriter {
    /// Create (truncate) the run file at `path`.
    pub fn create(path: impl Into<PathBuf>) -> io::Result<SpillWriter> {
        let path = path.into();
        let file = BufWriter::new(File::create(&path)?);
        Ok(SpillWriter {
            path,
            file,
            frames: 0,
            bytes: 0,
        })
    }

    /// Append one frame.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        self.file.write_all(&(payload.len() as u64).to_le_bytes())?;
        self.file.write_all(&crc32(payload).to_le_bytes())?;
        self.file.write_all(payload)?;
        self.frames += 1;
        self.bytes += 12 + payload.len() as u64;
        Ok(())
    }

    /// Flush and close, returning a handle the reader side opens.
    pub fn finish(mut self) -> io::Result<SpillHandle> {
        self.file.flush()?;
        Ok(SpillHandle {
            path: self.path,
            frames: self.frames,
            bytes: self.bytes,
        })
    }
}

/// A finished spill run: path plus frame/byte counts for accounting.
#[derive(Debug, Clone)]
pub struct SpillHandle {
    /// Run file path (inside a [`SpillDir`]).
    pub path: PathBuf,
    /// Frames written.
    pub frames: u64,
    /// Total bytes written, headers included.
    pub bytes: u64,
}

impl SpillHandle {
    /// Open the run for sequential reading.
    pub fn reader(&self) -> io::Result<SpillReader> {
        Ok(SpillReader {
            file: BufReader::new(File::open(&self.path)?),
            remaining: self.frames,
        })
    }
}

/// Sequential frame reader over one spill run.
#[derive(Debug)]
pub struct SpillReader {
    file: BufReader<File>,
    remaining: u64,
}

impl SpillReader {
    /// The next frame's payload, or `None` after the last. Verifies the
    /// frame CRC and errors with `InvalidData` on any mismatch.
    pub fn next_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let mut header = [0u8; 12];
        self.file
            .read_exact(&mut header)
            .map_err(|_| invalid("truncated header"))?;
        let len = u64::from_le_bytes([
            header[0], header[1], header[2], header[3], header[4], header[5], header[6], header[7],
        ]) as usize;
        let expected = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
        let mut payload = vec![0u8; len];
        self.file
            .read_exact(&mut payload)
            .map_err(|_| invalid("truncated payload"))?;
        if crc32(&payload) != expected {
            return Err(invalid("checksum mismatch"));
        }
        self.remaining -= 1;
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_in_order() {
        let dir = SpillDir::new(&std::env::temp_dir(), "rt").unwrap();
        let mut w = dir.writer("run-0").unwrap();
        w.append(b"first").unwrap();
        w.append(b"").unwrap();
        w.append(b"third frame").unwrap();
        let handle = w.finish().unwrap();
        assert_eq!(handle.frames, 3);
        let mut r = handle.reader().unwrap();
        assert_eq!(r.next_frame().unwrap().unwrap(), b"first");
        assert_eq!(r.next_frame().unwrap().unwrap(), b"");
        assert_eq!(r.next_frame().unwrap().unwrap(), b"third frame");
        assert!(r.next_frame().unwrap().is_none());
    }

    #[test]
    fn corrupt_frame_fails_loudly() {
        let dir = SpillDir::new(&std::env::temp_dir(), "corrupt").unwrap();
        let mut w = dir.writer("run-0").unwrap();
        w.append(b"sort run payload").unwrap();
        let handle = w.finish().unwrap();
        let mut bytes = fs::read(&handle.path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&handle.path, &bytes).unwrap();
        let mut r = handle.reader().unwrap();
        let err = r.next_frame().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn spill_dir_cleans_up_after_itself() {
        let path;
        {
            let dir = SpillDir::new(&std::env::temp_dir(), "cleanup").unwrap();
            let mut w = dir.writer("run-0").unwrap();
            w.append(b"x").unwrap();
            w.finish().unwrap();
            path = dir.path().to_path_buf();
            assert!(path.exists());
        }
        assert!(!path.exists());
    }
}
