//! Crash-safe persistence primitives shared by every writer in the
//! pipeline: CRC32, write-temp-then-rename, and a checksummed byte-frame
//! container.
//!
//! The weekly offline job (§6, Table 9 — 65 VMs, 998 GB of logs) dies
//! mid-write as a matter of course at production scale. Every artifact
//! writer in the workspace (`esharp-graph::io::save_graph`,
//! `DomainCollection::save`, table export, checkpoint manifests, heap
//! file metadata) routes through
//! [`atomic_write`]: the payload goes to a unique temporary file
//! in the destination directory, is fsynced, and only then renamed over
//! the final path. A torn write can therefore never shadow a good
//! artifact — the worst case is a stale `.tmp` file next to it.
//!
//! Fault injection (`esharp-fault`) threads through the `_with` variants
//! only; the plain entry points never consult an injector, so default
//! builds pay nothing.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use esharp_fault::{fault_error, Fault, FaultInjector, RetryPolicy};
use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// CRC-32 (IEEE 802.3, the zlib polynomial), table-driven, implemented
/// in-tree — the offline container has no access to a checksum crate.
///
/// Slicing-by-8: eight bytes per iteration through eight derived tables
/// instead of one byte through one. Checksumming runs over every
/// persisted artifact on every load (the corpus alone is megabytes), so
/// the byte-at-a-time loop was a measurable slice of binary load time.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLES: [[u32; 256]; 8] = build_crc_tables();
    let mut crc: u32 = !0;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = TABLES[7][(lo & 0xff) as usize]
            ^ TABLES[6][((lo >> 8) & 0xff) as usize]
            ^ TABLES[5][((lo >> 16) & 0xff) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xff) as usize]
            ^ TABLES[2][((hi >> 8) & 0xff) as usize]
            ^ TABLES[1][((hi >> 16) & 0xff) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

const fn build_crc_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xedb88320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    // tables[t][b] = crc of byte b followed by t zero bytes, so eight
    // lookups combine to one 8-byte step.
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xff) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

/// Monotonic suffix so concurrent writers in one process never collide on
/// a temporary name.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_path(path: &Path) -> PathBuf {
    let n = TMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    let pid = std::process::id();
    let name = path
        .file_name()
        .map(|f| f.to_string_lossy().into_owned())
        .unwrap_or_else(|| "artifact".to_string());
    path.with_file_name(format!(".{name}.tmp.{pid}.{n}"))
}

/// Atomically replace `path` with `bytes`: write to a unique temporary
/// file in the same directory, fsync it, then rename over `path`. Parent
/// directories are created as needed.
pub fn atomic_write(path: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    write_attempt(path.as_ref(), bytes, None)
}

/// [`atomic_write`] with fault injection and bounded retry. `site` names
/// this operation for the injector (convention: `write:<file>`).
pub fn atomic_write_with(
    path: impl AsRef<Path>,
    bytes: &[u8],
    injector: &dyn FaultInjector,
    site: &str,
    retry: &RetryPolicy,
) -> io::Result<()> {
    let path = path.as_ref();
    retry.run(|attempt| write_attempt(path, bytes, injector.fault_at(site, attempt).map(|f| (f, site))))
}

/// One write attempt, optionally perturbed by an injected fault.
fn write_attempt(path: &Path, bytes: &[u8], fault: Option<(Fault, &str)>) -> io::Result<()> {
    if let Some((f @ (Fault::IoError { .. } | Fault::Kill), site)) = fault {
        // Dies before touching the filesystem.
        return Err(fault_error(f, site));
    }
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let tmp = temp_path(path);
    let result = (|| -> io::Result<()> {
        let mut file = File::create(&tmp)?;
        match fault {
            Some((Fault::TornWrite { numerator, denominator }, site)) => {
                // The simulated crash: a prefix reaches the temp file, the
                // rename never happens, the destination stays untouched.
                let den = denominator.max(1) as u64;
                let keep = ((bytes.len() as u64 * numerator.min(denominator) as u64) / den) as usize;
                file.write_all(&bytes[..keep.min(bytes.len())])?;
                let _ = file.sync_all();
                return Err(fault_error(
                    Fault::TornWrite { numerator, denominator },
                    site,
                ));
            }
            Some((Fault::BitFlip { offset, bit }, _)) if !bytes.is_empty() => {
                // Silent corruption: the write "succeeds"; only a checksum
                // can catch it downstream.
                let mut corrupt = bytes.to_vec();
                let idx = (offset % corrupt.len() as u64) as usize;
                corrupt[idx] ^= 1 << (bit % 8);
                file.write_all(&corrupt)?;
            }
            _ => file.write_all(bytes)?,
        }
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, path)?;
        // Best effort: persist the rename itself.
        if let Some(parent) = path.parent() {
            if let Ok(dir) = File::open(parent) {
                let _ = dir.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Magic of the checksummed byte-frame container ([`write_framed`]).
pub const FRAME_MAGIC: &[u8; 4] = b"ESCK";
const FRAME_VERSION: u16 = 1;
/// magic(4) + version(2) + payload length(8) + crc32(4).
const FRAME_HEADER: usize = 4 + 2 + 8 + 4;

/// Wrap `payload` in a checksummed frame
/// (`"ESCK" | version u16 | len u64 | crc32 u32 | payload`, all LE) and
/// write it atomically to `path`. Any torn write, truncation or single
/// bit flip anywhere in the file is detected by [`read_framed`].
pub fn write_framed(path: impl AsRef<Path>, payload: &[u8]) -> io::Result<()> {
    atomic_write(path, &frame(payload))
}

/// [`write_framed`] with fault injection and retry.
pub fn write_framed_with(
    path: impl AsRef<Path>,
    payload: &[u8],
    injector: &dyn FaultInjector,
    site: &str,
    retry: &RetryPolicy,
) -> io::Result<()> {
    atomic_write_with(path, &frame(payload), injector, site, retry)
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(FRAME_MAGIC);
    out.extend_from_slice(&FRAME_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Read and verify a frame written by [`write_framed`], returning the
/// payload. Errors (never panics) on bad magic, version, length mismatch
/// or checksum mismatch.
pub fn read_framed(path: impl AsRef<Path>) -> io::Result<Vec<u8>> {
    let mut file = File::open(path.as_ref())?;
    let mut data = Vec::new();
    file.read_to_end(&mut data)?;
    unframe(&data)
}

/// Verify and strip the [`write_framed`] container from an in-memory
/// buffer.
pub fn unframe(data: &[u8]) -> io::Result<Vec<u8>> {
    let err = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, format!("checked frame: {msg}"));
    if data.len() < FRAME_HEADER {
        return Err(err("truncated header"));
    }
    if &data[..4] != FRAME_MAGIC {
        return Err(err("bad magic"));
    }
    let version = u16::from_le_bytes([data[4], data[5]]);
    if version != FRAME_VERSION {
        return Err(err("unsupported version"));
    }
    let len = u64::from_le_bytes(
        data[6..14]
            .try_into()
            .map_err(|_| err("truncated length"))?,
    ) as usize;
    let crc = u32::from_le_bytes(
        data[14..18]
            .try_into()
            .map_err(|_| err("truncated checksum"))?,
    );
    let payload = &data[FRAME_HEADER..];
    if payload.len() != len {
        return Err(err("payload length mismatch"));
    }
    if crc32(payload) != crc {
        return Err(err("checksum mismatch"));
    }
    Ok(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use esharp_fault::{FaultPlan, NoFaults};

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("esharp_atomic_{name}"));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf43926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_slicing_matches_bytewise_reference() {
        // The one-table, one-byte-per-step reference the slicing-by-8
        // implementation must agree with at every length (remainder
        // handling covers 0..8 tail bytes).
        fn reference(bytes: &[u8]) -> u32 {
            let mut crc: u32 = !0;
            for &b in bytes {
                let mut c = (crc ^ b as u32) & 0xff;
                for _ in 0..8 {
                    c = if c & 1 != 0 { 0xedb88320 ^ (c >> 1) } else { c >> 1 };
                }
                crc = (crc >> 8) ^ c;
            }
            !crc
        }
        let data: Vec<u8> = (0..1024u32).map(|i| (i.wrapping_mul(2654435761) >> 13) as u8).collect();
        for len in (0..64).chain([255, 1000, 1024]) {
            assert_eq!(crc32(&data[..len]), reference(&data[..len]), "len {len}");
        }
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_temp() {
        let dir = tmpdir("replace");
        let path = dir.join("artifact.bin");
        atomic_write(&path, b"first").unwrap();
        atomic_write(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| e.as_ref().unwrap().file_name() != "artifact.bin")
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn torn_write_never_shadows_a_good_artifact() {
        let dir = tmpdir("torn");
        let path = dir.join("artifact.bin");
        atomic_write(&path, b"known good").unwrap();
        let plan = FaultPlan::new(0).trigger(
            "write:artifact",
            0,
            Fault::TornWrite { numerator: 1, denominator: 2 },
        );
        let err = atomic_write_with(
            &path,
            b"replacement that tears",
            &plan,
            "write:artifact",
            &RetryPolicy::none(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("torn"));
        assert_eq!(fs::read(&path).unwrap(), b"known good");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn transient_io_error_is_retried_away() {
        let dir = tmpdir("retry");
        let path = dir.join("artifact.bin");
        let plan = FaultPlan::new(0)
            .trigger("write:a", 0, Fault::IoError { transient: true })
            .trigger("write:a", 1, Fault::IoError { transient: true });
        atomic_write_with(&path, b"payload", &plan, "write:a", &RetryPolicy { max_attempts: 3 })
            .unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"payload");
        // Same plan, no retries: the first transient error surfaces.
        let plan2 = FaultPlan::new(0).trigger("write:a", 0, Fault::IoError { transient: true });
        assert!(
            atomic_write_with(&path, b"x", &plan2, "write:a", &RetryPolicy::none()).is_err()
        );
        assert_eq!(fs::read(&path).unwrap(), b"payload");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn framed_round_trip_and_full_corruption_matrix() {
        let dir = tmpdir("framed");
        let path = dir.join("framed.bin");
        let payload = b"the quick brown fox jumps over the lazy dog";
        write_framed(&path, payload).unwrap();
        assert_eq!(read_framed(&path).unwrap(), payload);

        let good = fs::read(&path).unwrap();
        // Truncation at every byte boundary errors.
        for cut in 0..good.len() {
            assert!(unframe(&good[..cut]).is_err(), "cut at {cut} accepted");
        }
        // Every single-bit flip errors.
        for byte in 0..good.len() {
            for bit in 0..8 {
                let mut bad = good.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    unframe(&bad).is_err(),
                    "bit flip at byte {byte} bit {bit} accepted"
                );
            }
        }
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn injected_bit_flip_is_caught_by_the_frame() {
        let dir = tmpdir("bitflip");
        let path = dir.join("framed.bin");
        let plan = FaultPlan::new(0).trigger(
            "write:f",
            0,
            Fault::BitFlip { offset: 21, bit: 3 },
        );
        write_framed_with(&path, b"some payload bytes", &plan, "write:f", &RetryPolicy::none())
            .unwrap();
        // The write itself succeeded; the read detects the corruption.
        assert!(read_framed(&path).is_err());
        // A clean rewrite heals it.
        write_framed_with(&path, b"some payload bytes", &NoFaults, "write:f", &RetryPolicy::none())
            .unwrap();
        assert_eq!(read_framed(&path).unwrap(), b"some payload bytes");
        let _ = fs::remove_dir_all(dir);
    }
}
