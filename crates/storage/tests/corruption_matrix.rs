//! Corruption matrix for paged heap files (`<base>.heap` / `<base>.meta`).
//!
//! The heap's contract mirrors the binary-corpus container's: a read
//! either returns exactly the committed pages or it errors with
//! `InvalidData` — never a plausible-but-wrong page, never a panic. The
//! matrix drives that mechanically: every truncation boundary of both
//! files, every single-bit flip of every page image, a strided sweep of
//! bit flips through the real open/read path, and every fault the
//! injector can land mid-writeback (kill, I/O error, torn prefixes) —
//! none of which may ever publish a torn page as valid data.

use esharp_fault::{Fault, FaultInjector, FaultPlan};
use esharp_storage::{BufferPool, HeapFile, Page, PAGE_SIZE};
use std::io::ErrorKind;
use std::path::PathBuf;
use std::sync::Arc;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "esharp_corruption_{name}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Build a committed two-page heap with recognizable records and return
/// `(dir, base)`. Dropping the dir path does not clean up; tests remove it.
fn sample_heap(name: &str) -> (PathBuf, PathBuf) {
    let dir = tmpdir(name);
    let base = dir.join("table");
    let heap = HeapFile::create(&base, b"schema: matrix sample").unwrap();
    for pageno in 0..2u64 {
        let no = heap.allocate_page().unwrap();
        let mut page = heap.read_page(no).unwrap();
        for rec in 0..5 {
            page.insert(format!("page{pageno}-record{rec}").as_bytes())
                .unwrap();
            heap.add_records(1);
        }
        heap.write_page(no, &mut page).unwrap();
    }
    heap.sync().unwrap();
    (dir, base)
}

#[test]
fn every_truncation_of_the_data_file_is_rejected_at_open() {
    let (dir, base) = sample_heap("trunc_data");
    let data_path = base.with_extension("heap");
    let good = std::fs::read(&data_path).unwrap();
    assert_eq!(good.len(), 2 * PAGE_SIZE);
    for cut in 0..good.len() {
        std::fs::write(&data_path, &good[..cut]).unwrap();
        let err = HeapFile::open(&base).unwrap_err();
        assert_eq!(
            err.kind(),
            ErrorKind::InvalidData,
            "truncation to {cut}/{} bytes was accepted",
            good.len()
        );
    }
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn every_truncation_of_the_metadata_file_is_rejected_at_open() {
    let (dir, base) = sample_heap("trunc_meta");
    let meta_path = base.with_extension("meta");
    let good = std::fs::read(&meta_path).unwrap();
    for cut in 0..good.len() {
        std::fs::write(&meta_path, &good[..cut]).unwrap();
        assert!(
            HeapFile::open(&base).is_err(),
            "metadata truncation to {cut}/{} bytes was accepted",
            good.len()
        );
    }
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn every_single_bit_flip_in_every_page_image_is_rejected() {
    // The page CRC covers bytes 4.., and a flip inside bytes 0..4 changes
    // the stored CRC itself — so all 8 × PAGE_SIZE variants of each page
    // must fail verification. Exhaustive over the in-memory image (the
    // same `Page::from_bytes` every file read goes through).
    let (dir, base) = sample_heap("flip_page");
    let good = std::fs::read(base.with_extension("heap")).unwrap();
    for pageno in 0..good.len() / PAGE_SIZE {
        let image = &good[pageno * PAGE_SIZE..(pageno + 1) * PAGE_SIZE];
        let mut corrupt = image.to_vec();
        for byte in 0..PAGE_SIZE {
            for bit in 0..8u8 {
                corrupt[byte] ^= 1 << bit;
                let res = Page::from_bytes(&corrupt);
                corrupt[byte] ^= 1 << bit; // restore for the next flip
                let err = match res {
                    Err(e) => e,
                    Ok(_) => panic!("page {pageno}: flip of byte {byte} bit {bit} was accepted"),
                };
                assert_eq!(err.kind(), ErrorKind::InvalidData);
            }
        }
    }
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn strided_bit_flips_through_the_file_read_path_are_rejected() {
    // The exhaustive matrix above runs on page images; this sweep rewrites
    // the actual file for a stride of bit positions and drives the full
    // open → read_page path, proving the CRC check is wired into file
    // reads (and that a flipped page errors without disturbing its
    // neighbors).
    let (dir, base) = sample_heap("flip_file");
    let data_path = base.with_extension("heap");
    let good = std::fs::read(&data_path).unwrap();
    let total_bits = good.len() * 8;
    for flip in (0..total_bits).step_by(131) {
        let (byte, bit) = (flip / 8, (flip % 8) as u8);
        let mut corrupt = good.clone();
        corrupt[byte] ^= 1 << bit;
        std::fs::write(&data_path, &corrupt).unwrap();
        let heap = HeapFile::open(&base).unwrap();
        let hit = (byte / PAGE_SIZE) as u64;
        let err = heap.read_page(hit).unwrap_err();
        assert_eq!(
            err.kind(),
            ErrorKind::InvalidData,
            "flip of byte {byte} bit {bit} was accepted by read_page({hit})"
        );
        // The sibling page is untouched and still reads clean.
        let other = 1 - hit;
        let page = heap.read_page(other).unwrap();
        assert_eq!(page.slot_count(), 5);
    }
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn every_single_bit_flip_in_the_metadata_file_is_rejected() {
    let (dir, base) = sample_heap("flip_meta");
    let meta_path = base.with_extension("meta");
    let good = std::fs::read(&meta_path).unwrap();
    for byte in 0..good.len() {
        for bit in 0..8u8 {
            let mut corrupt = good.clone();
            corrupt[byte] ^= 1 << bit;
            std::fs::write(&meta_path, &corrupt).unwrap();
            assert!(
                HeapFile::open(&base).is_err(),
                "metadata flip of byte {byte} bit {bit} was accepted"
            );
        }
    }
    std::fs::remove_dir_all(dir).unwrap();
}

/// Writeback faults to land on the dirty-page flush: a clean kill, a hard
/// I/O error, and torn prefixes at several boundaries.
fn writeback_faults() -> Vec<Fault> {
    vec![
        Fault::Kill,
        Fault::IoError { transient: false },
        Fault::TornWrite { numerator: 1, denominator: 8 },
        Fault::TornWrite { numerator: 1, denominator: 2 },
        Fault::TornWrite { numerator: 7, denominator: 8 },
    ]
}

#[test]
fn kill_during_writeback_never_publishes_a_torn_page() {
    for (i, fault) in writeback_faults().into_iter().enumerate() {
        let dir = tmpdir(&format!("wb_{i}"));
        let base = dir.join("table");

        // Commit page 0 with known contents.
        let heap = HeapFile::create(&base, b"").unwrap();
        let no = heap.allocate_page().unwrap();
        let mut page = heap.read_page(no).unwrap();
        page.insert(b"committed-v1").unwrap();
        heap.write_page(no, &mut page).unwrap();
        heap.add_records(1);
        heap.sync().unwrap();
        drop(heap);

        // Reopen with the fault armed on the page-0 writeback, dirty the
        // page through the pool, and flush into the fault.
        let plan: Arc<dyn FaultInjector> =
            Arc::new(FaultPlan::new(0).trigger("wb:page0", 0, fault.clone()));
        let heap = Arc::new(HeapFile::open(&base).unwrap().with_injector(plan, "wb"));
        let pool = BufferPool::new(2);
        {
            let guard = pool.fetch(&heap, 0).unwrap();
            guard.page_mut().insert(b"uncommitted-v2").unwrap();
        }
        let flush = pool.flush_all();
        assert!(flush.is_err(), "fault {fault:?} did not surface from flush");

        // The pool's in-memory copy survives the failed writeback: readers
        // going through the pool still see both records.
        {
            let guard = pool.fetch(&heap, 0).unwrap();
            assert_eq!(guard.page().slot_count(), 2);
        }

        // Simulated crash: a fresh open reads only what the disk has.
        // The contract is that the disk never yields a torn page as valid
        // data — the read is either the committed v1 image or InvalidData.
        drop(pool);
        drop(heap);
        let back = HeapFile::open(&base).unwrap();
        assert_eq!(back.record_count(), 1);
        match back.read_page(0) {
            Ok(page) => {
                let records: Vec<&[u8]> = page.records().collect();
                assert_eq!(
                    records,
                    vec![b"committed-v1".as_slice()],
                    "fault {fault:?} published a partially-written page as valid"
                );
            }
            Err(err) => assert_eq!(
                err.kind(),
                ErrorKind::InvalidData,
                "fault {fault:?} produced a non-InvalidData read error"
            ),
        }
        std::fs::remove_dir_all(dir).unwrap();
    }
}
