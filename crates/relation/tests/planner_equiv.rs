//! Planner equivalence: the optimized physical plan — predicate,
//! projection and limit pushdown into the paged scan, cost-chosen join
//! build side and strategy, and spilling operators at tiny memory
//! grants — must produce **bit-identical** tables to the naive
//! unoptimized in-memory executor, over random tables and queries.
//!
//! The optimized side runs the worst case on purpose: tables registered
//! as *paged* heap files behind a two-frame buffer pool, memory grants
//! small enough to force external sort, partitioned hash-join spill and
//! aggregate spill, and both serial and multi-worker clusters.

use esharp_relation::{
    run_sql, run_sql_unoptimized, BufferPool, Catalog, Cluster, DataType, ExecContext,
    PagedTable, Schema, Table, Value,
};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Rows for the fact table `t(k int, v int, name str)`.
fn arb_t(max_rows: usize) -> impl Strategy<Value = Table> {
    prop::collection::vec((0i64..8, -100i64..100), 0..max_rows).prop_map(|rows| {
        let schema = Schema::of(&[
            ("k", DataType::Int),
            ("v", DataType::Int),
            ("name", DataType::Str),
        ]);
        Table::from_rows(
            schema,
            rows.into_iter()
                .map(|(k, v)| vec![Value::Int(k), Value::Int(v), Value::str(format!("n{}", k % 4))])
                .collect(),
        )
        .unwrap()
    })
}

/// Rows for the dimension table `u(k2 int, w int)`.
fn arb_u(max_rows: usize) -> impl Strategy<Value = Table> {
    prop::collection::vec((0i64..8, -50i64..50), 0..max_rows).prop_map(|rows| {
        let schema = Schema::of(&[("k2", DataType::Int), ("w", DataType::Int)]);
        Table::from_rows(
            schema,
            rows.into_iter()
                .map(|(k, w)| vec![Value::Int(k), Value::Int(w)])
                .collect(),
        )
        .unwrap()
    })
}

/// Query shapes whose output is fully deterministic on both paths (scans
/// preserve row order; every group-by/join query totally orders its
/// output), so plain `==` on the result tables is the right comparison.
fn query(shape: u8, x: i64, n: usize) -> String {
    match shape % 7 {
        // Pushdown trifecta: predicate + projection + limit into the scan.
        0 => format!("select name, v from t where v >= {x} and k < 6 limit {n}"),
        // Distinct blocks projection pruning; sort above.
        1 => "select distinct k from t order by k".into(),
        // Join with residual filter; total order on all output columns.
        2 => format!(
            "select k, v, w from t inner join u on k = k2 \
             where w >= {x} order by k, v, w limit {n}"
        ),
        // Aggregate with every function over int inputs.
        3 => format!(
            "select k, sum(v) as sv, count(*) as c, min(v) as lo, max(v) as hi, \
             avg(v) as mean from t where v >= {x} group by k order by k"
        ),
        // Join feeding an aggregate (the clustering-SQL shape).
        4 => "select k, sum(w) as sw from t inner join u on k = k2 group by k order by k".into(),
        // Union-all: branch-ordered concatenation, deterministic as-is;
        // the pushdown clones the (per-branch) predicates downward.
        5 => format!(
            "select k, v from t where v >= {x} \
             union all select k2 as k, w as v from u where w >= {x}"
        ),
        // Sort with a descending key and a limit on top.
        _ => format!("select k, v from t order by v desc, k limit {n}"),
    }
}

static CASE: AtomicU64 = AtomicU64::new(0);

/// Run `sql` through the optimizer against *paged* tables with a tiny
/// buffer pool and the given grant, and through the naive logical
/// executor against in-memory tables. Returns both results.
fn run_both(
    t: &Table,
    u: &Table,
    sql: &str,
    grant: usize,
    workers: usize,
) -> (Table, Table) {
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "esharp_planner_equiv_{}_{case}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();

    let paged_catalog = Catalog::new();
    let pool = std::sync::Arc::new(BufferPool::new(2));
    let paged_t = PagedTable::create(&dir.join("t"), t).unwrap();
    let paged_u = PagedTable::create(&dir.join("u"), u).unwrap();
    paged_catalog.register_paged("t", paged_t.into(), pool.clone());
    paged_catalog.register_paged("u", paged_u.into(), pool);
    let ctx_opt = ExecContext::new(paged_catalog)
        .with_cluster(Cluster::new(workers))
        .with_memory_grant(grant)
        .with_spill_root(dir.join("spill"));

    let mem_catalog = Catalog::new();
    mem_catalog.register("t", t.clone());
    mem_catalog.register("u", u.clone());
    let ctx_naive = ExecContext::new(mem_catalog);

    let optimized = run_sql(sql, &ctx_opt).unwrap();
    let naive = run_sql_unoptimized(sql, &ctx_naive).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
    (optimized, naive)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline property: optimized out-of-core execution under a
    /// spill-forcing grant is bit-identical to the naive in-memory path.
    #[test]
    fn optimized_plan_is_bit_identical_to_naive_exec(
        t in arb_t(50),
        u in arb_u(30),
        shape in 0u8..7,
        x in -60i64..60,
        n in 1usize..25,
        grant_idx in 0usize..3,
        many_workers in any::<bool>(),
    ) {
        // Tiny grants force external sort / hash spill; the large one
        // keeps everything in memory on the same physical plan shapes.
        let grant = [64usize, 512, 1 << 20][grant_idx];
        let workers = if many_workers { 3 } else { 1 };
        let sql = query(shape, x, n);
        let (optimized, naive) = run_both(&t, &u, &sql, grant, workers);
        prop_assert_eq!(
            optimized, naive,
            "optimized != naive for {} (grant {}, {} workers)", sql, grant, workers
        );
    }
}
