//! Property-based round-trip tests for the two table serialization
//! formats (binary and CSV) over arbitrary tables.

use esharp_relation::binfmt::{decode_table, encode_table};
use esharp_relation::csv::{from_csv_with_schema, to_csv};
use esharp_relation::{Column, DataType, Field, Schema, Table, Value};
use proptest::prelude::*;
use std::sync::Arc;

/// An arbitrary table: random column mix, up to 30 rows.
fn arb_table() -> impl Strategy<Value = Table> {
    let col_kinds = prop::collection::vec(0u8..4, 1..5);
    (col_kinds, 0usize..30).prop_flat_map(|(kinds, rows)| {
        let fields: Vec<Field> = kinds
            .iter()
            .enumerate()
            .map(|(i, &k)| Field::new(format!("c{i}"), tag_to_dtype(k)))
            .collect();
        let column_strategies: Vec<BoxedStrategy<Column>> = kinds
            .iter()
            .map(|&k| column_strategy(k, rows))
            .collect();
        (Just(fields), column_strategies).prop_map(|(fields, columns)| {
            Table::new(Arc::new(Schema::new(fields).unwrap()), columns).unwrap()
        })
    })
}

fn tag_to_dtype(k: u8) -> DataType {
    match k {
        0 => DataType::Bool,
        1 => DataType::Int,
        2 => DataType::Float,
        _ => DataType::Str,
    }
}

fn column_strategy(kind: u8, rows: usize) -> BoxedStrategy<Column> {
    match kind {
        0 => prop::collection::vec(any::<bool>(), rows)
            .prop_map(Column::Bool)
            .boxed(),
        1 => prop::collection::vec(any::<i64>(), rows)
            .prop_map(Column::Int)
            .boxed(),
        2 => prop::collection::vec(-1e9f64..1e9, rows)
            .prop_map(Column::Float)
            .boxed(),
        _ => prop::collection::vec("[ -~]{0,12}", rows) // printable ASCII incl. commas/quotes
            .prop_map(|v| Column::Str(v.into_iter().map(|s| Arc::from(s.as_str())).collect()))
            .boxed(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn binary_round_trip(table in arb_table()) {
        let decoded = decode_table(encode_table(&table)).unwrap();
        prop_assert_eq!(decoded, table);
    }

    #[test]
    fn binary_decode_never_panics_on_corruption(table in arb_table(), cut in 0usize..200) {
        let encoded = encode_table(&table);
        let cut = cut.min(encoded.len());
        // Truncation must yield Err (or Ok for the full buffer) — never panic.
        let prefix = encoded.slice(0..cut);
        let _ = decode_table(prefix);
    }

    #[test]
    fn csv_round_trip(table in arb_table()) {
        let csv = to_csv(&table);
        let back = from_csv_with_schema(&csv, Arc::clone(table.schema())).unwrap();
        // CSV is text: floats must survive because Rust's Display for f64
        // round-trips; compare cell by cell.
        prop_assert_eq!(back.num_rows(), table.num_rows());
        for (a, b) in back.iter_rows().zip(table.iter_rows()) {
            for (x, y) in a.iter().zip(b.iter()) {
                match (x, y) {
                    (Value::Float(p), Value::Float(q)) => {
                        prop_assert!((p - q).abs() <= f64::EPSILON * p.abs().max(1.0))
                    }
                    _ => prop_assert_eq!(x, y),
                }
            }
        }
    }
}
