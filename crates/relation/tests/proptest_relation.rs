//! Property-based tests of the relational operators against naive models.

use esharp_relation::ops::{aggregate, distinct, hash_join, limit, sort, AggFunc, AggSpec, JoinSide, SortKey};
use esharp_relation::exec::{hash_partition, Cluster, JoinStrategy};
use esharp_relation::{Catalog, DataType, ExecContext, Expr, Schema, Table, Value};
use proptest::prelude::*;
use std::collections::HashMap;

/// A random two-column table: small integer key, arbitrary value.
fn arb_table(max_rows: usize) -> impl Strategy<Value = Table> {
    prop::collection::vec((0i64..8, -100i64..100), 0..max_rows).prop_map(|rows| {
        let schema = Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]);
        Table::from_rows(
            schema,
            rows.into_iter()
                .map(|(k, v)| vec![Value::Int(k), Value::Int(v)])
                .collect(),
        )
        .unwrap()
    })
}

proptest! {
    #[test]
    fn filter_returns_subset_and_matches_model(t in arb_table(60), threshold in -100i64..100) {
        let ctx = ExecContext::new(Catalog::new());
        let pred = Expr::col("v").ge(Expr::lit(threshold)).compile(t.schema(), &ctx.udfs).unwrap();
        let out = esharp_relation::ops::filter(&t, &pred).unwrap();
        let expected = t
            .iter_rows()
            .filter(|r| r[1].as_int().unwrap() >= threshold)
            .count();
        prop_assert_eq!(out.num_rows(), expected);
        for row in out.iter_rows() {
            prop_assert!(row[1].as_int().unwrap() >= threshold);
        }
    }

    #[test]
    fn join_row_count_matches_key_multiplicity_product(
        l in arb_table(40),
        r in arb_table(40),
    ) {
        let out = hash_join(&l, &r, &[0], &[0], JoinSide::BuildRight).unwrap();
        let mut left_counts: HashMap<i64, usize> = HashMap::new();
        for row in l.iter_rows() {
            *left_counts.entry(row[0].as_int().unwrap()).or_insert(0) += 1;
        }
        let mut expected = 0usize;
        for row in r.iter_rows() {
            expected += left_counts.get(&row[0].as_int().unwrap()).copied().unwrap_or(0);
        }
        prop_assert_eq!(out.num_rows(), expected);
    }

    #[test]
    fn join_is_build_side_invariant(l in arb_table(30), r in arb_table(30)) {
        let a = hash_join(&l, &r, &[0], &[0], JoinSide::BuildRight).unwrap();
        let b = hash_join(&l, &r, &[0], &[0], JoinSide::BuildLeft).unwrap();
        prop_assert_eq!(a.sorted_rows(), b.sorted_rows());
    }

    #[test]
    fn parallel_join_matches_serial_for_all_strategies(
        l in arb_table(50),
        r in arb_table(50),
        workers in 2usize..6,
    ) {
        let serial = hash_join(&l, &r, &[0], &[0], JoinSide::BuildRight).unwrap();
        for strategy in [JoinStrategy::Broadcast, JoinStrategy::CoPartitioned] {
            let par = Cluster::new(workers).join(&l, &r, &[0], &[0], strategy).unwrap();
            prop_assert_eq!(serial.sorted_rows(), par.sorted_rows());
        }
    }

    #[test]
    fn aggregate_sum_count_match_model(t in arb_table(80)) {
        let out = aggregate(
            &t,
            &[0],
            &[AggSpec::count("n"), AggSpec::on(AggFunc::Sum, 1, "s")],
        )
        .unwrap();
        let mut model: HashMap<i64, (i64, i64)> = HashMap::new();
        for row in t.iter_rows() {
            let e = model.entry(row[0].as_int().unwrap()).or_insert((0, 0));
            e.0 += 1;
            e.1 += row[1].as_int().unwrap();
        }
        prop_assert_eq!(out.num_rows(), model.len());
        for row in out.iter_rows() {
            let (n, s) = model[&row[0].as_int().unwrap()];
            prop_assert_eq!(row[1].as_int().unwrap(), n);
            prop_assert_eq!(row[2].as_int().unwrap(), s);
        }
    }

    #[test]
    fn parallel_aggregate_matches_serial(t in arb_table(80), workers in 2usize..6) {
        let aggs = [
            AggSpec::count("n"),
            AggSpec::on(AggFunc::Min, 1, "mn"),
            AggSpec::on(AggFunc::Max, 1, "mx"),
            AggSpec::argmax(1, 1, "am"),
        ];
        let serial = aggregate(&t, &[0], &aggs).unwrap();
        let par = Cluster::new(workers).aggregate(&t, &[0], &aggs).unwrap();
        prop_assert_eq!(serial.sorted_rows(), par.sorted_rows());
    }

    #[test]
    fn sort_is_an_ordered_permutation(t in arb_table(50)) {
        let out = sort(&t, &[SortKey::asc(1), SortKey::asc(0)]).unwrap();
        prop_assert_eq!(out.num_rows(), t.num_rows());
        prop_assert_eq!(out.sorted_rows(), t.sorted_rows());
        let values: Vec<i64> = out.iter_rows().map(|r| r[1].as_int().unwrap()).collect();
        for pair in values.windows(2) {
            prop_assert!(pair[0] <= pair[1]);
        }
    }

    #[test]
    fn distinct_then_distinct_is_idempotent(t in arb_table(50)) {
        let once = distinct(&t).unwrap();
        let twice = distinct(&once).unwrap();
        prop_assert_eq!(once.sorted_rows(), twice.sorted_rows());
        prop_assert!(once.num_rows() <= t.num_rows());
    }

    #[test]
    fn limit_never_exceeds(t in arb_table(40), n in 0usize..60) {
        let out = limit(&t, n).unwrap();
        prop_assert_eq!(out.num_rows(), n.min(t.num_rows()));
    }

    #[test]
    fn hash_partition_is_a_colocated_partition(t in arb_table(60), parts in 1usize..6) {
        let partitions = hash_partition(&t, &[0], parts);
        prop_assert_eq!(partitions.len(), parts);
        let total: usize = partitions.iter().map(Table::num_rows).sum();
        prop_assert_eq!(total, t.num_rows());
        // Each key appears in exactly one partition.
        for key in 0i64..8 {
            let holders = partitions
                .iter()
                .filter(|p| p.iter_rows().any(|r| r[0] == Value::Int(key)))
                .count();
            prop_assert!(holders <= 1);
        }
    }

    #[test]
    fn sql_where_group_matches_operators(t in arb_table(60), threshold in -100i64..100) {
        let catalog = Catalog::new();
        catalog.register("t", t.clone());
        let ctx = ExecContext::new(catalog);
        let sql = format!(
            "select k, count(*) as n, sum(v) as s from t where v >= {threshold} group by k"
        );
        let via_sql = esharp_relation::run_sql(&sql, &ctx).unwrap();

        let pred = Expr::col("v").ge(Expr::lit(threshold)).compile(t.schema(), &ctx.udfs).unwrap();
        let filtered = esharp_relation::ops::filter(&t, &pred).unwrap();
        let via_ops = aggregate(
            &filtered,
            &[0],
            &[AggSpec::count("n"), AggSpec::on(AggFunc::Sum, 1, "s")],
        )
        .unwrap();
        prop_assert_eq!(via_sql.sorted_rows(), via_ops.sorted_rows());
    }
}
