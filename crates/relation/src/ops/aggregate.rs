//! Hash aggregation with grouping.
//!
//! Includes the non-standard `argmax(order, value)` aggregate that the
//! paper's community-detection SQL (Figure 4) uses for the neighborhood
//! separation step: per group, return `value` of the row where `order` is
//! maximal (deterministic tie-break on the smaller `value`).

use crate::column::Column;
use crate::error::{RelError, RelResult};
use crate::schema::{Field, Schema};
use crate::table::Table;
use crate::value::{DataType, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Row count (`count(*)`).
    Count,
    /// Sum of a numeric column.
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Arithmetic mean (always FLOAT).
    Avg,
    /// `argmax(order, value)`: the `value` at the maximal `order`.
    ArgMax,
}

/// One aggregate output column.
#[derive(Debug, Clone)]
pub struct AggSpec {
    /// The aggregate function.
    pub func: AggFunc,
    /// Input column (the value column; `None` only for `Count`).
    pub col: Option<usize>,
    /// Ordering column for `ArgMax`.
    pub by: Option<usize>,
    /// Output column name.
    pub name: String,
}

impl AggSpec {
    /// `count(*) as name`.
    pub fn count(name: impl Into<String>) -> Self {
        AggSpec {
            func: AggFunc::Count,
            col: None,
            by: None,
            name: name.into(),
        }
    }

    /// A single-column aggregate.
    pub fn on(func: AggFunc, col: usize, name: impl Into<String>) -> Self {
        AggSpec {
            func,
            col: Some(col),
            by: None,
            name: name.into(),
        }
    }

    /// `argmax(by, col) as name`.
    pub fn argmax(by: usize, col: usize, name: impl Into<String>) -> Self {
        AggSpec {
            func: AggFunc::ArgMax,
            col: Some(col),
            by: Some(by),
            name: name.into(),
        }
    }

    fn output_type(&self, input: &Schema) -> RelResult<DataType> {
        Ok(match self.func {
            AggFunc::Count => DataType::Int,
            AggFunc::Avg => DataType::Float,
            AggFunc::Sum | AggFunc::Min | AggFunc::Max | AggFunc::ArgMax => {
                let col = self.col.ok_or_else(|| {
                    RelError::InvalidPlan(format!("aggregate {} needs a column", self.name))
                })?;
                input.field(col).dtype
            }
        })
    }
}

/// Per-group accumulator state.
#[derive(Debug, Clone)]
enum AggState {
    Count(i64),
    SumInt(i64),
    SumFloat(f64),
    MinMax(Option<Value>),
    Avg { sum: f64, n: i64 },
    ArgMax { best: Option<(Value, Value)> },
}

impl AggState {
    fn new(spec: &AggSpec, input: &Schema) -> RelResult<Self> {
        Ok(match spec.func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => match input.field(spec.col.unwrap()).dtype {
                DataType::Int => AggState::SumInt(0),
                DataType::Float => AggState::SumFloat(0.0),
                other => {
                    return Err(RelError::TypeMismatch {
                        expected: "numeric".into(),
                        actual: other.to_string(),
                        context: "sum".into(),
                    })
                }
            },
            AggFunc::Min | AggFunc::Max => AggState::MinMax(None),
            AggFunc::Avg => AggState::Avg { sum: 0.0, n: 0 },
            AggFunc::ArgMax => AggState::ArgMax { best: None },
        })
    }

    fn update(&mut self, spec: &AggSpec, table: &Table, row: usize) -> RelResult<()> {
        match self {
            AggState::Count(n) => *n += 1,
            AggState::SumInt(acc) => {
                let v = table.column(spec.col.unwrap()).value(row);
                *acc += v.as_int().ok_or_else(|| type_err("sum", &v))?;
            }
            AggState::SumFloat(acc) => {
                let v = table.column(spec.col.unwrap()).value(row);
                *acc += v.as_float().ok_or_else(|| type_err("sum", &v))?;
            }
            AggState::MinMax(best) => {
                let v = table.column(spec.col.unwrap()).value(row);
                let replace = match (&*best, spec.func) {
                    (None, _) => true,
                    (Some(b), AggFunc::Min) => v < *b,
                    (Some(b), AggFunc::Max) => v > *b,
                    _ => unreachable!(),
                };
                if replace {
                    *best = Some(v);
                }
            }
            AggState::Avg { sum, n } => {
                let v = table.column(spec.col.unwrap()).value(row);
                *sum += v.as_float().ok_or_else(|| type_err("avg", &v))?;
                *n += 1;
            }
            AggState::ArgMax { best } => {
                let order = table.column(spec.by.unwrap()).value(row);
                let value = table.column(spec.col.unwrap()).value(row);
                let replace = match best {
                    None => true,
                    // Strictly greater order wins; on equal order, the
                    // smaller value wins so results do not depend on input
                    // order (the paper's Step 2 just says "keep the
                    // closest"; we need determinism for the SQL-vs-native
                    // equivalence tests).
                    Some((bo, bv)) => order > *bo || (order == *bo && value < *bv),
                };
                if replace {
                    *best = Some((order, value));
                }
            }
        }
        Ok(())
    }

    fn finish(self, spec: &AggSpec) -> RelResult<Value> {
        Ok(match self {
            AggState::Count(n) => Value::Int(n),
            AggState::SumInt(acc) => Value::Int(acc),
            AggState::SumFloat(acc) => Value::Float(acc),
            AggState::MinMax(best) => best.ok_or_else(|| {
                RelError::Eval(format!("{}: empty group", spec.name))
            })?,
            AggState::Avg { sum, n } => {
                if n == 0 {
                    return Err(RelError::Eval(format!("{}: empty group", spec.name)));
                }
                Value::Float(sum / n as f64)
            }
            AggState::ArgMax { best } => {
                best.map(|(_, v)| v).ok_or_else(|| {
                    RelError::Eval(format!("{}: empty group", spec.name))
                })?
            }
        })
    }
}

fn type_err(context: &str, v: &Value) -> RelError {
    RelError::TypeMismatch {
        expected: "numeric".into(),
        actual: v.data_type().to_string(),
        context: context.into(),
    }
}

/// Group `input` by the given key columns and evaluate the aggregates.
///
/// Output columns are the group keys (original names) followed by one
/// column per aggregate. Groups are emitted in ascending key order, making
/// the operator fully deterministic.
pub fn aggregate(input: &Table, group_keys: &[usize], aggs: &[AggSpec]) -> RelResult<Table> {
    let in_schema = input.schema();
    let mut fields: Vec<Field> = group_keys
        .iter()
        .map(|&k| in_schema.field(k).clone())
        .collect();
    for spec in aggs {
        fields.push(Field::new(spec.name.clone(), spec.output_type(in_schema)?));
    }
    let out_schema = Arc::new(Schema::new(fields)?);

    let mut groups: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
    for row in 0..input.num_rows() {
        let key: Vec<Value> = group_keys
            .iter()
            .map(|&k| input.column(k).value(row))
            .collect();
        let states = match groups.get_mut(&key) {
            Some(s) => s,
            None => {
                let fresh = aggs
                    .iter()
                    .map(|spec| AggState::new(spec, in_schema))
                    .collect::<RelResult<Vec<_>>>()?;
                groups.entry(key.clone()).or_insert(fresh)
            }
        };
        for (state, spec) in states.iter_mut().zip(aggs) {
            state.update(spec, input, row)?;
        }
    }

    // Deterministic output order.
    let mut entries: Vec<(Vec<Value>, Vec<AggState>)> = groups.into_iter().collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));

    let mut columns: Vec<Column> = out_schema
        .fields()
        .iter()
        .map(|f| Column::with_capacity(f.dtype, entries.len()))
        .collect();
    for (key, states) in entries {
        for (i, v) in key.into_iter().enumerate() {
            columns[i].push(v)?;
        }
        for (i, (state, spec)) in states.into_iter().zip(aggs).enumerate() {
            columns[group_keys.len() + i].push(state.finish(spec)?)?;
        }
    }
    Table::new(out_schema, columns)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input() -> Table {
        let schema = Schema::of(&[
            ("grp", DataType::Str),
            ("x", DataType::Int),
            ("w", DataType::Float),
        ]);
        Table::from_rows(
            schema,
            vec![
                vec![Value::str("a"), Value::Int(1), Value::Float(0.5)],
                vec![Value::str("a"), Value::Int(5), Value::Float(0.1)],
                vec![Value::str("b"), Value::Int(2), Value::Float(0.9)],
                vec![Value::str("a"), Value::Int(3), Value::Float(0.7)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn count_sum_avg_min_max() {
        let t = input();
        let out = aggregate(
            &t,
            &[0],
            &[
                AggSpec::count("n"),
                AggSpec::on(AggFunc::Sum, 1, "sx"),
                AggSpec::on(AggFunc::Avg, 1, "ax"),
                AggSpec::on(AggFunc::Min, 1, "mn"),
                AggSpec::on(AggFunc::Max, 1, "mx"),
            ],
        )
        .unwrap();
        assert_eq!(out.num_rows(), 2);
        // Group "a" comes first (sorted output).
        assert_eq!(
            out.row(0),
            vec![
                Value::str("a"),
                Value::Int(3),
                Value::Int(9),
                Value::Float(3.0),
                Value::Int(1),
                Value::Int(5)
            ]
        );
    }

    #[test]
    fn argmax_picks_value_at_max_order() {
        let t = input();
        // Per group: x at maximal w.
        let out = aggregate(&t, &[0], &[AggSpec::argmax(2, 1, "best")]).unwrap();
        assert_eq!(out.row(0), vec![Value::str("a"), Value::Int(3)]); // w=0.7
        assert_eq!(out.row(1), vec![Value::str("b"), Value::Int(2)]);
    }

    #[test]
    fn argmax_breaks_ties_on_smaller_value() {
        let schema = Schema::of(&[("g", DataType::Int), ("v", DataType::Str), ("w", DataType::Float)]);
        let t = Table::from_rows(
            schema,
            vec![
                vec![Value::Int(0), Value::str("zzz"), Value::Float(1.0)],
                vec![Value::Int(0), Value::str("aaa"), Value::Float(1.0)],
            ],
        )
        .unwrap();
        let out = aggregate(&t, &[0], &[AggSpec::argmax(2, 1, "best")]).unwrap();
        assert_eq!(out.row(0)[1], Value::str("aaa"));
    }

    #[test]
    fn global_aggregate_with_no_keys() {
        let t = input();
        let out = aggregate(&t, &[], &[AggSpec::count("n")]).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.row(0), vec![Value::Int(4)]);
    }

    #[test]
    fn sum_over_strings_rejected() {
        let t = input();
        assert!(aggregate(&t, &[], &[AggSpec::on(AggFunc::Sum, 0, "s")]).is_err());
    }
}
