//! Row filtering and projection.

use crate::column::Column;
use crate::error::{RelError, RelResult};
use crate::expr::{CompiledExpr, Expr};
use crate::schema::{Field, Schema};
use crate::table::Table;
use crate::udf::UdfRegistry;
use crate::value::DataType;
use std::sync::Arc;

/// Keep only the rows for which `predicate` evaluates to `true`.
pub fn filter(input: &Table, predicate: &CompiledExpr) -> RelResult<Table> {
    let mut mask = Vec::with_capacity(input.num_rows());
    for row in 0..input.num_rows() {
        let v = predicate.eval(input, row)?;
        let keep = v.as_bool().ok_or_else(|| RelError::TypeMismatch {
            expected: "BOOL".into(),
            actual: v.data_type().to_string(),
            context: "filter predicate".into(),
        })?;
        mask.push(keep);
    }
    Ok(input.filter_rows(&mask))
}

/// One output column of a projection: a compiled expression, its output
/// name and its output type.
pub struct ProjectionSpec {
    /// Compiled expression producing the column.
    pub expr: CompiledExpr,
    /// Output column name.
    pub name: String,
    /// Output column type.
    pub dtype: DataType,
}

impl ProjectionSpec {
    /// Compile a logical `(expr, alias)` pair against an input schema.
    pub fn compile(
        expr: &Expr,
        alias: Option<&str>,
        schema: &Schema,
        udfs: &UdfRegistry,
    ) -> RelResult<Self> {
        Ok(ProjectionSpec {
            expr: expr.compile(schema, udfs)?,
            name: alias
                .map(str::to_string)
                .unwrap_or_else(|| expr.default_name()),
            dtype: expr.output_type(schema, udfs)?,
        })
    }
}

/// Evaluate each projection over every input row, producing a new table.
pub fn project(input: &Table, specs: &[ProjectionSpec]) -> RelResult<Table> {
    let schema = Arc::new(Schema::new(
        specs
            .iter()
            .map(|s| Field::new(s.name.clone(), s.dtype))
            .collect(),
    )?);
    let mut columns: Vec<Column> = specs
        .iter()
        .map(|s| Column::with_capacity(s.dtype, input.num_rows()))
        .collect();
    for row in 0..input.num_rows() {
        for (spec, col) in specs.iter().zip(columns.iter_mut()) {
            col.push(spec.expr.eval(input, row)?)?;
        }
    }
    Table::new(schema, columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn input() -> Table {
        let schema = Schema::of(&[("q", DataType::Str), ("clicks", DataType::Int)]);
        Table::from_rows(
            schema,
            vec![
                vec![Value::str("NFL"), Value::Int(60)],
                vec![Value::str("49ers"), Value::Int(20)],
                vec![Value::str("nasdaq"), Value::Int(80)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn filter_keeps_matching_rows() {
        let t = input();
        let udfs = UdfRegistry::with_builtins();
        let pred = Expr::col("clicks")
            .ge(Expr::lit(50_i64))
            .compile(t.schema(), &udfs)
            .unwrap();
        let out = filter(&t, &pred).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.row(0)[0], Value::str("NFL"));
    }

    #[test]
    fn filter_rejects_non_boolean_predicate() {
        let t = input();
        let udfs = UdfRegistry::with_builtins();
        let pred = Expr::col("clicks").compile(t.schema(), &udfs).unwrap();
        assert!(filter(&t, &pred).is_err());
    }

    #[test]
    fn project_renames_and_computes() {
        let t = input();
        let udfs = UdfRegistry::with_builtins();
        let specs = vec![
            ProjectionSpec::compile(
                &Expr::call("lower", vec![Expr::col("q")]),
                Some("query"),
                t.schema(),
                &udfs,
            )
            .unwrap(),
            ProjectionSpec::compile(
                &Expr::col("clicks").binary(crate::expr::BinOp::Mul, Expr::lit(2_i64)),
                Some("double"),
                t.schema(),
                &udfs,
            )
            .unwrap(),
        ];
        let out = project(&t, &specs).unwrap();
        assert_eq!(out.schema().fields()[0].name, "query");
        assert_eq!(out.row(0), vec![Value::str("nfl"), Value::Int(120)]);
    }
}
