//! Physical operators.
//!
//! Each operator is a pure function from materialized [`crate::Table`]s to a new
//! [`crate::Table`]. Parallel execution (see [`crate::exec`]) partitions inputs and
//! runs these same operators per partition, which is exactly the
//! map-reduce-over-relational-operators execution model the paper assumes
//! for SCOPE/Hive (§4.2.3).

mod aggregate;
mod join;
mod project;
mod set;
mod sort;

pub use aggregate::{aggregate, AggFunc, AggSpec};
pub use join::{hash_join, JoinSide};
pub use project::{filter, project, ProjectionSpec};
pub use set::{distinct, limit, union_all};
pub use sort::{sort, SortKey};
