//! Sorting.

use crate::error::RelResult;
use crate::table::Table;

/// One sort key: column index plus direction.
#[derive(Debug, Clone, Copy)]
pub struct SortKey {
    /// Column to order by.
    pub col: usize,
    /// True for ascending order.
    pub ascending: bool,
}

impl SortKey {
    /// Ascending key on `col`.
    pub fn asc(col: usize) -> Self {
        SortKey {
            col,
            ascending: true,
        }
    }

    /// Descending key on `col`.
    pub fn desc(col: usize) -> Self {
        SortKey {
            col,
            ascending: false,
        }
    }
}

/// Stable sort by the given keys (first key most significant).
pub fn sort(input: &Table, keys: &[SortKey]) -> RelResult<Table> {
    let mut indices: Vec<usize> = (0..input.num_rows()).collect();
    indices.sort_by(|&a, &b| {
        for key in keys {
            let col = input.column(key.col);
            let ord = col.value(a).cmp(&col.value(b));
            let ord = if key.ascending { ord } else { ord.reverse() };
            if !ord.is_eq() {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(input.gather(&indices))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::{DataType, Value};

    fn input() -> Table {
        let schema = Schema::of(&[("name", DataType::Str), ("score", DataType::Float)]);
        Table::from_rows(
            schema,
            vec![
                vec![Value::str("b"), Value::Float(2.0)],
                vec![Value::str("a"), Value::Float(3.0)],
                vec![Value::str("c"), Value::Float(2.0)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn sorts_descending_with_tiebreak() {
        let t = input();
        let out = sort(&t, &[SortKey::desc(1), SortKey::asc(0)]).unwrap();
        let names: Vec<Value> = out.iter_rows().map(|r| r[0].clone()).collect();
        assert_eq!(
            names,
            vec![Value::str("a"), Value::str("b"), Value::str("c")]
        );
    }

    #[test]
    fn sort_is_stable() {
        let t = input();
        let out = sort(&t, &[SortKey::asc(1)]).unwrap();
        // b precedes c among equal scores because it appeared first.
        assert_eq!(out.row(0)[0], Value::str("b"));
        assert_eq!(out.row(1)[0], Value::str("c"));
    }
}
