//! Set-flavored operators: union, distinct, limit.

use crate::error::{RelError, RelResult};
use crate::table::Table;
use crate::value::Value;
use std::collections::HashSet;

/// Bag union: concatenate tables with identical schemas.
pub fn union_all(parts: &[Table]) -> RelResult<Table> {
    if parts.is_empty() {
        return Err(RelError::InvalidPlan("union of zero inputs".into()));
    }
    Table::concat(parts)
}

/// Remove duplicate rows, keeping the first occurrence of each.
pub fn distinct(input: &Table) -> RelResult<Table> {
    let mut seen: HashSet<Vec<Value>> = HashSet::with_capacity(input.num_rows());
    let mut keep = Vec::with_capacity(input.num_rows());
    for row in 0..input.num_rows() {
        let values = input.row(row);
        if seen.insert(values) {
            keep.push(row);
        }
    }
    Ok(input.gather(&keep))
}

/// Keep the first `n` rows.
pub fn limit(input: &Table, n: usize) -> RelResult<Table> {
    let n = n.min(input.num_rows());
    let indices: Vec<usize> = (0..n).collect();
    Ok(input.gather(&indices))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::DataType;

    fn table(vals: &[i64]) -> Table {
        let schema = Schema::of(&[("x", DataType::Int)]);
        Table::from_rows(schema, vals.iter().map(|&v| vec![Value::Int(v)]).collect()).unwrap()
    }

    #[test]
    fn union_concatenates() {
        let out = union_all(&[table(&[1, 2]), table(&[3])]).unwrap();
        assert_eq!(out.num_rows(), 3);
    }

    #[test]
    fn distinct_removes_duplicates_keeping_first() {
        let out = distinct(&table(&[3, 1, 3, 2, 1])).unwrap();
        let vals: Vec<Value> = out.iter_rows().map(|r| r[0].clone()).collect();
        assert_eq!(vals, vec![Value::Int(3), Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn limit_truncates_and_clamps() {
        assert_eq!(limit(&table(&[1, 2, 3]), 2).unwrap().num_rows(), 2);
        assert_eq!(limit(&table(&[1]), 10).unwrap().num_rows(), 1);
    }
}
