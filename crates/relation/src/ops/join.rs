//! Hash equi-join.

use crate::error::{RelError, RelResult};
use crate::table::Table;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// Which side the hash table is built on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinSide {
    /// Build on the left input, probe with the right.
    BuildLeft,
    /// Build on the right input, probe with the left (the default: in the
    /// pipeline the right side is the small `communities` table).
    BuildRight,
}

/// Inner hash equi-join of `left` and `right` on the given key columns.
///
/// Output schema is `left ++ right` with colliding right-side names suffixed
/// by `_r` (the SQL binder projects/aliases on top of this). Output row
/// order follows the probe side, which makes the operator deterministic for
/// a given build side.
pub fn hash_join(
    left: &Table,
    right: &Table,
    left_keys: &[usize],
    right_keys: &[usize],
    side: JoinSide,
) -> RelResult<Table> {
    if left_keys.len() != right_keys.len() || left_keys.is_empty() {
        return Err(RelError::InvalidPlan(format!(
            "join key arity mismatch: {} vs {}",
            left_keys.len(),
            right_keys.len()
        )));
    }
    for (&lk, &rk) in left_keys.iter().zip(right_keys) {
        let lt = left.schema().field(lk).dtype;
        let rt = right.schema().field(rk).dtype;
        if lt != rt {
            return Err(RelError::TypeMismatch {
                expected: lt.to_string(),
                actual: rt.to_string(),
                context: "join keys".into(),
            });
        }
    }

    let (build, probe, build_keys, probe_keys, build_is_left) = match side {
        JoinSide::BuildLeft => (left, right, left_keys, right_keys, true),
        JoinSide::BuildRight => (right, left, right_keys, left_keys, false),
    };

    // Build phase: key -> row indices.
    let mut index: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(build.num_rows());
    for row in 0..build.num_rows() {
        let key: Vec<Value> = build_keys
            .iter()
            .map(|&k| build.column(k).value(row))
            .collect();
        index.entry(key).or_default().push(row);
    }

    // Probe phase: collect matching (left_row, right_row) index pairs.
    let mut left_idx = Vec::new();
    let mut right_idx = Vec::new();
    let mut key = Vec::with_capacity(probe_keys.len());
    for row in 0..probe.num_rows() {
        key.clear();
        key.extend(probe_keys.iter().map(|&k| probe.column(k).value(row)));
        if let Some(matches) = index.get(&key) {
            for &b in matches {
                if build_is_left {
                    left_idx.push(b);
                    right_idx.push(row);
                } else {
                    left_idx.push(row);
                    right_idx.push(b);
                }
            }
        }
    }

    let out_schema = Arc::new(left.schema().join(right.schema(), "_r")?);
    let mut columns = Vec::with_capacity(out_schema.len());
    for col in left.columns() {
        columns.push(col.gather(&left_idx));
    }
    for col in right.columns() {
        columns.push(col.gather(&right_idx));
    }
    Table::new(out_schema, columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::DataType;

    fn graph() -> Table {
        let schema = Schema::of(&[
            ("query1", DataType::Str),
            ("query2", DataType::Str),
            ("distance", DataType::Float),
        ]);
        Table::from_rows(
            schema,
            vec![
                vec![Value::str("49ers"), Value::str("nfl"), Value::Float(0.29)],
                vec![
                    Value::str("nfl"),
                    Value::str("football"),
                    Value::Float(0.4),
                ],
            ],
        )
        .unwrap()
    }

    fn communities() -> Table {
        let schema = Schema::of(&[("comm_name", DataType::Str), ("query", DataType::Str)]);
        Table::from_rows(
            schema,
            vec![
                vec![Value::str("c1"), Value::str("49ers")],
                vec![Value::str("c2"), Value::str("nfl")],
                vec![Value::str("c2"), Value::str("football")],
            ],
        )
        .unwrap()
    }

    #[test]
    fn inner_join_matches_keys() {
        let g = graph();
        let c = communities();
        // graph.query1 = communities.query
        let out = hash_join(&g, &c, &[0], &[1], JoinSide::BuildRight).unwrap();
        assert_eq!(out.num_rows(), 2);
        let names: Vec<_> = out
            .schema()
            .fields()
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        assert_eq!(
            names,
            vec!["query1", "query2", "distance", "comm_name", "query"]
        );
    }

    #[test]
    fn join_output_agrees_across_build_sides() {
        let g = graph();
        let c = communities();
        let a = hash_join(&g, &c, &[1], &[1], JoinSide::BuildRight).unwrap();
        let b = hash_join(&g, &c, &[1], &[1], JoinSide::BuildLeft).unwrap();
        assert_eq!(a.sorted_rows(), b.sorted_rows());
    }

    #[test]
    fn join_duplicates_multiply() {
        let schema = Schema::of(&[("k", DataType::Int)]);
        let l = Table::from_rows(
            Arc::clone(&schema),
            vec![vec![Value::Int(1)], vec![Value::Int(1)]],
        )
        .unwrap();
        let r = Table::from_rows(
            schema,
            vec![vec![Value::Int(1)], vec![Value::Int(1)], vec![Value::Int(2)]],
        )
        .unwrap();
        let out = hash_join(&l, &r, &[0], &[0], JoinSide::BuildRight).unwrap();
        assert_eq!(out.num_rows(), 4);
    }

    #[test]
    fn join_key_type_mismatch_rejected() {
        let l = Table::empty(Schema::of(&[("k", DataType::Int)]));
        let r = Table::empty(Schema::of(&[("k", DataType::Str)]));
        assert!(hash_join(&l, &r, &[0], &[0], JoinSide::BuildRight).is_err());
    }

    #[test]
    fn empty_probe_yields_empty() {
        let l = Table::empty(Schema::of(&[("k", DataType::Int)]));
        let r = Table::from_rows(Schema::of(&[("k", DataType::Int)]), vec![vec![Value::Int(1)]])
            .unwrap();
        let out = hash_join(&l, &r, &[0], &[0], JoinSide::BuildRight).unwrap();
        assert_eq!(out.num_rows(), 0);
    }
}
