//! CSV import/export for tables.
//!
//! The adoption path for real data: a `(query, url, clicks)` log exported
//! from any warehouse loads straight into the pipeline. RFC-4180-style
//! quoting (quoted fields, doubled quotes, embedded commas/newlines);
//! column types are declared by the caller or inferred (Int → Float →
//! Str, never Bool — ambiguous in the wild).

use crate::error::{RelError, RelResult};
use crate::schema::{Field, Schema, SchemaRef};
use crate::table::{Table, TableBuilder};
use crate::value::{DataType, Value};
use std::sync::Arc;

/// Serialize a table to CSV with a header row.
pub fn to_csv(table: &Table) -> String {
    let mut out = String::new();
    let header: Vec<String> = table
        .schema()
        .fields()
        .iter()
        .map(|f| escape(&f.name))
        .collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in table.iter_rows() {
        let cells: Vec<String> = row.iter().map(|v| escape(&v.to_string())).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

fn escape(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Parse CSV text (with header) into a table using an explicit schema.
/// Numeric fields are parsed strictly; row width must match the schema.
pub fn from_csv_with_schema(text: &str, schema: SchemaRef) -> RelResult<Table> {
    let mut rows = parse_rows(text)?;
    if rows.is_empty() {
        return Err(RelError::Parse("CSV has no header row".into()));
    }
    let header = rows.remove(0);
    if header.len() != schema.len() {
        return Err(RelError::Parse(format!(
            "CSV header has {} columns, schema expects {}",
            header.len(),
            schema.len()
        )));
    }
    let mut builder = TableBuilder::with_capacity(Arc::clone(&schema), rows.len());
    for (line, row) in rows.into_iter().enumerate() {
        if row.len() != schema.len() {
            return Err(RelError::Parse(format!(
                "CSV row {} has {} fields, expected {}",
                line + 2,
                row.len(),
                schema.len()
            )));
        }
        let values = row
            .into_iter()
            .zip(schema.fields())
            .map(|(cell, field)| parse_cell(&cell, field.dtype, line + 2))
            .collect::<RelResult<Vec<_>>>()?;
        builder.push_row(values)?;
    }
    Ok(builder.finish())
}

/// Parse CSV text (with header), inferring each column's type from its
/// values: all-Int → INT, all-numeric → FLOAT, otherwise STR.
pub fn from_csv(text: &str) -> RelResult<Table> {
    let rows = parse_rows(text)?;
    let Some(header) = rows.first() else {
        return Err(RelError::Parse("CSV has no header row".into()));
    };
    let cols = header.len();
    let mut kinds = vec![DataType::Int; cols];
    for row in &rows[1..] {
        if row.len() != cols {
            return Err(RelError::Parse(format!(
                "ragged CSV row: {} fields, expected {cols}",
                row.len()
            )));
        }
        for (i, cell) in row.iter().enumerate() {
            kinds[i] = match (kinds[i], classify(cell)) {
                (DataType::Str, _) | (_, DataType::Str) => DataType::Str,
                (DataType::Float, _) | (_, DataType::Float) => DataType::Float,
                _ => DataType::Int,
            };
        }
    }
    let fields: Vec<Field> = header
        .iter()
        .zip(&kinds)
        .map(|(name, &dtype)| Field::new(name.clone(), dtype))
        .collect();
    let schema = Arc::new(Schema::new(fields)?);
    from_csv_with_schema(text, schema)
}

fn classify(cell: &str) -> DataType {
    if cell.parse::<i64>().is_ok() {
        DataType::Int
    } else if cell.parse::<f64>().is_ok() {
        DataType::Float
    } else {
        DataType::Str
    }
}

fn parse_cell(cell: &str, dtype: DataType, line: usize) -> RelResult<Value> {
    let err = |what: &str| RelError::Parse(format!("CSV line {line}: {what} from {cell:?}"));
    Ok(match dtype {
        DataType::Int => Value::Int(cell.parse().map_err(|_| err("cannot parse INT"))?),
        DataType::Float => Value::Float(cell.parse().map_err(|_| err("cannot parse FLOAT"))?),
        DataType::Bool => match cell.to_ascii_lowercase().as_str() {
            "true" | "1" => Value::Bool(true),
            "false" | "0" => Value::Bool(false),
            _ => return Err(err("cannot parse BOOL")),
        },
        DataType::Str => Value::str(cell),
    })
}

/// Split CSV text into rows of unescaped cells (RFC-4180 quoting).
fn parse_rows(text: &str) -> RelResult<Vec<Vec<String>>> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut cell = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut any = false;
    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cell.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => cell.push(other),
            }
        } else {
            match c {
                '"' => {
                    if !cell.is_empty() {
                        return Err(RelError::Parse(
                            "quote inside unquoted CSV cell".into(),
                        ));
                    }
                    in_quotes = true;
                }
                ',' => {
                    row.push(std::mem::take(&mut cell));
                }
                '\n' => {
                    row.push(std::mem::take(&mut cell));
                    rows.push(std::mem::take(&mut row));
                }
                '\r' => {} // tolerate CRLF
                other => cell.push(other),
            }
        }
    }
    if in_quotes {
        return Err(RelError::Parse("unterminated quoted CSV cell".into()));
    }
    if any && (!cell.is_empty() || !row.is_empty()) {
        row.push(cell);
        rows.push(row);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let schema = Schema::of(&[
            ("query", DataType::Str),
            ("url", DataType::Str),
            ("clicks", DataType::Int),
        ]);
        Table::from_rows(
            schema,
            vec![
                vec![Value::str("49ers"), Value::str("49ers.com"), Value::Int(25)],
                vec![
                    Value::str("dow, futures"),
                    Value::str("markets\"live\".com"),
                    Value::Int(7),
                ],
            ],
        )
        .unwrap()
    }

    #[test]
    fn round_trip_with_quoting() {
        let t = sample();
        let csv = to_csv(&t);
        assert!(csv.contains("\"dow, futures\""));
        assert!(csv.contains("\"markets\"\"live\"\".com\""));
        let back = from_csv_with_schema(&csv, Arc::clone(t.schema())).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn inference_picks_narrowest_type() {
        let csv = "a,b,c\n1,1.5,x\n2,2,y\n";
        let t = from_csv(csv).unwrap();
        assert_eq!(t.schema().field(0).dtype, DataType::Int);
        assert_eq!(t.schema().field(1).dtype, DataType::Float);
        assert_eq!(t.schema().field(2).dtype, DataType::Str);
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.row(0)[1], Value::Float(1.5));
        // Ints in a float column widen.
        assert_eq!(t.row(1)[1], Value::Float(2.0));
    }

    #[test]
    fn errors_are_precise() {
        assert!(from_csv("").is_err());
        assert!(from_csv("a,b\n1\n").is_err()); // ragged
        let schema = Schema::of(&[("n", DataType::Int)]);
        let err = from_csv_with_schema("n\nxyz\n", schema).unwrap_err();
        assert!(err.to_string().contains("line 2"));
        assert!(from_csv("a\n\"unterminated").is_err());
    }

    #[test]
    fn embedded_newlines_survive() {
        let csv = "text\n\"line one\nline two\"\n";
        let t = from_csv(csv).unwrap();
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.row(0)[0], Value::str("line one\nline two"));
        // And back out.
        let again = from_csv(&to_csv(&t)).unwrap();
        assert_eq!(again, t);
    }

    #[test]
    fn crlf_is_tolerated() {
        let t = from_csv("a,b\r\n1,2\r\n").unwrap();
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.row(0), vec![Value::Int(1), Value::Int(2)]);
    }
}
