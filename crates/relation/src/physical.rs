//! Physical plans: the logical→physical optimizer and its out-of-core
//! executor.
//!
//! [`optimize`] rewrites a [`LogicalPlan`] and lowers it into a
//! [`PhysicalPlan`]:
//!
//! * **predicate pushdown** — WHERE conjuncts sink through projections
//!   (by substitution), joins (to the side whose schema covers them) and
//!   aggregations (group-key conjuncts only) until they fuse into the
//!   scan itself, where paged tables evaluate them per page;
//! * **projection pushdown** — only the columns an operator tree actually
//!   references are decoded at the scan;
//! * **limit pushdown** — a LIMIT above row-preserving operators stops
//!   the scan from fetching further pages;
//! * **cost-based join planning** — build side and replicated-vs-
//!   co-partitioned strategy (§4.2.3) are chosen from catalog statistics,
//!   corrected by measured [`StageStats`] from a previous run of the same
//!   plan shape ([`PlanHistory`]) — the paper's *configured* strategy
//!   choice turned into a *measured* one.
//!
//! [`ExecContext::execute_physical`] runs the tree, recording one
//! [`StageStats`] per node (tagged with the node id for EXPLAIN ANALYZE).
//! Blocking operators honor the context's memory grant: a sort larger
//! than the grant becomes an external merge sort over checksummed spill
//! runs, and hash join/aggregate inputs are hash-partitioned to disk and
//! processed partition-at-a-time.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::binfmt;
use crate::catalog::Source;
use crate::error::{RelError, RelResult};
use crate::exec::{hash_partition, JoinStrategy, StageStats};
use crate::expr::Expr;
use crate::ops::{self, AggFunc, JoinSide, ProjectionSpec, SortKey};
use crate::paged::ScanOptions;
use crate::plan::{equi_pair, flatten_and, lower_agg, AggCall, ExecContext, LogicalPlan};
use crate::schema::{Field, Schema, SchemaRef};
use crate::table::{Table, TableBuilder};
use crate::value::DataType;
use bytes::Bytes;
use esharp_storage::{SpillDir, SpillHandle, SpillReader, PAGE_SIZE};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Broadcast threshold when the context has no explicit memory grant.
const DEFAULT_BROADCAST_BYTES: usize = 64 << 20;
/// Rows per spill frame in external sort runs.
const SPILL_BATCH_ROWS: usize = 512;
/// Most partitions a spilling join/aggregate will fan out to.
const MAX_SPILL_PARTS: usize = 64;

/// Measured `(rows, bytes)` produced per physical node in a previous run
/// of the same plan shape, keyed by `label#node_id`. Node ids are assigned
/// in preorder during lowering, so re-planning the same query yields the
/// same keys — which is what lets the clustering loop feed iteration
/// *n*'s measurements into iteration *n+1*'s plan.
#[derive(Debug, Clone, Default)]
pub struct PlanHistory {
    map: HashMap<String, (u64, u64)>,
}

impl PlanHistory {
    /// Empty history (the optimizer falls back to static estimates).
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from recorded stats; later records for the same node win.
    pub fn from_stats(stats: &[StageStats]) -> Self {
        let mut map = HashMap::new();
        for s in stats {
            if let Some(node) = s.node {
                map.insert(
                    format!("{}#{node}", s.stage),
                    (s.rows_written, s.bytes_written),
                );
            }
        }
        PlanHistory { map }
    }

    /// Measured `(rows, bytes)` for a node, if any.
    pub fn lookup(&self, stage: &str, node: usize) -> Option<(u64, u64)> {
        self.map.get(&format!("{stage}#{node}")).copied()
    }

    /// True when no measurements are recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// The optimizer's cardinality guess for one node's output.
#[derive(Debug, Clone, Copy)]
pub struct Estimate {
    /// Estimated output rows.
    pub rows: f64,
    /// Estimated output bytes.
    pub bytes: f64,
    /// True when the numbers come from [`PlanHistory`] measurements
    /// rather than static heuristics.
    pub measured: bool,
}

impl Estimate {
    fn new(rows: f64, bytes: f64) -> Self {
        Estimate {
            rows,
            bytes,
            measured: false,
        }
    }
}

/// A physical operator tree with per-node ids (preorder) and estimates.
#[derive(Debug, Clone)]
pub enum PhysicalPlan {
    /// Table scan with pushed-down predicate / projection / limit. On
    /// paged sources all three apply while pages stream through the
    /// buffer pool.
    SeqScan {
        /// Node id.
        id: usize,
        /// Catalog table name.
        table: String,
        /// Columns to keep (indices into the base schema), `None` = all.
        projection: Option<Vec<usize>>,
        /// Pushed-down predicate over the base schema.
        predicate: Option<Expr>,
        /// Pushed-down row cap (applies after the predicate).
        limit: Option<usize>,
        /// Output estimate.
        est: Estimate,
    },
    /// Residual filter that could not be pushed further down.
    Filter {
        /// Node id.
        id: usize,
        /// Input.
        input: Box<PhysicalPlan>,
        /// Predicate over the input schema.
        predicate: Expr,
        /// Output estimate.
        est: Estimate,
    },
    /// Expression projection.
    Project {
        /// Node id.
        id: usize,
        /// Input.
        input: Box<PhysicalPlan>,
        /// `(expression, optional alias)` pairs.
        exprs: Vec<(Expr, Option<String>)>,
        /// Output estimate.
        est: Estimate,
    },
    /// Hash equi-join with planner-chosen build side and strategy.
    HashJoin {
        /// Node id.
        id: usize,
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
        /// Join condition (equi conjuncts become hash keys; the rest a
        /// residual filter).
        on: Expr,
        /// Build the hash table on the left input (cost-chosen).
        build_left: bool,
        /// Replicated vs co-partitioned execution (cost-chosen).
        strategy: JoinStrategy,
        /// Output estimate.
        est: Estimate,
    },
    /// Hash aggregation.
    Aggregate {
        /// Node id.
        id: usize,
        /// Input.
        input: Box<PhysicalPlan>,
        /// Grouping column names.
        group_by: Vec<String>,
        /// Aggregate calls.
        aggs: Vec<AggCall>,
        /// Output estimate.
        est: Estimate,
    },
    /// Sort (external merge sort when the input exceeds the grant).
    Sort {
        /// Node id.
        id: usize,
        /// Input.
        input: Box<PhysicalPlan>,
        /// `(column, ascending)` keys.
        keys: Vec<(String, bool)>,
        /// Output estimate.
        est: Estimate,
    },
    /// Row cap.
    Limit {
        /// Node id.
        id: usize,
        /// Input.
        input: Box<PhysicalPlan>,
        /// Cap.
        n: usize,
        /// Output estimate.
        est: Estimate,
    },
    /// Duplicate elimination.
    Distinct {
        /// Node id.
        id: usize,
        /// Input.
        input: Box<PhysicalPlan>,
        /// Output estimate.
        est: Estimate,
    },
    /// Bag union.
    UnionAll {
        /// Node id.
        id: usize,
        /// Inputs.
        inputs: Vec<PhysicalPlan>,
        /// Output estimate.
        est: Estimate,
    },
}

impl PhysicalPlan {
    /// The node id (preorder position in the plan tree).
    pub fn id(&self) -> usize {
        match self {
            PhysicalPlan::SeqScan { id, .. }
            | PhysicalPlan::Filter { id, .. }
            | PhysicalPlan::Project { id, .. }
            | PhysicalPlan::HashJoin { id, .. }
            | PhysicalPlan::Aggregate { id, .. }
            | PhysicalPlan::Sort { id, .. }
            | PhysicalPlan::Limit { id, .. }
            | PhysicalPlan::Distinct { id, .. }
            | PhysicalPlan::UnionAll { id, .. } => *id,
        }
    }

    /// Short stage label, matching the logical executor's labels so the
    /// pipeline's stats rollups keep working.
    pub fn label(&self) -> &'static str {
        match self {
            PhysicalPlan::SeqScan { .. } => "scan",
            PhysicalPlan::Filter { .. } => "filter",
            PhysicalPlan::Project { .. } => "project",
            PhysicalPlan::HashJoin { .. } => "join",
            PhysicalPlan::Aggregate { .. } => "aggregate",
            PhysicalPlan::Sort { .. } => "sort",
            PhysicalPlan::Limit { .. } => "limit",
            PhysicalPlan::Distinct { .. } => "distinct",
            PhysicalPlan::UnionAll { .. } => "union",
        }
    }

    /// The optimizer's output estimate for this node.
    pub fn estimate(&self) -> Estimate {
        match self {
            PhysicalPlan::SeqScan { est, .. }
            | PhysicalPlan::Filter { est, .. }
            | PhysicalPlan::Project { est, .. }
            | PhysicalPlan::HashJoin { est, .. }
            | PhysicalPlan::Aggregate { est, .. }
            | PhysicalPlan::Sort { est, .. }
            | PhysicalPlan::Limit { est, .. }
            | PhysicalPlan::Distinct { est, .. }
            | PhysicalPlan::UnionAll { est, .. } => *est,
        }
    }
}

// ---------------------------------------------------------------------------
// Expression helpers
// ---------------------------------------------------------------------------

/// Collect every column name referenced by an expression.
fn collect_cols(expr: &Expr, out: &mut Vec<String>) {
    match expr {
        Expr::Col(name) => out.push(name.clone()),
        Expr::Lit(_) => {}
        Expr::Binary { left, right, .. } => {
            collect_cols(left, out);
            collect_cols(right, out);
        }
        Expr::Not(inner) => collect_cols(inner, out),
        Expr::Call { args, .. } => {
            for a in args {
                collect_cols(a, out);
            }
        }
    }
}

/// Split an expression into its AND-conjuncts, owned.
fn conjuncts_of(expr: Expr) -> Vec<Expr> {
    let mut refs = Vec::new();
    flatten_and(&expr, &mut refs);
    refs.into_iter().cloned().collect()
}

/// AND-combine conjuncts back into one predicate.
fn and_all(mut conjs: Vec<Expr>) -> Option<Expr> {
    let first = if conjs.is_empty() {
        return None;
    } else {
        conjs.remove(0)
    };
    Some(conjs.into_iter().fold(first, |acc, c| acc.and(c)))
}

/// Replace every column reference using a projection's `output name →
/// defining expression` map; `None` when a name is not produced by the
/// projection (the conjunct cannot be pushed through it).
fn substitute(expr: &Expr, map: &[(String, Expr)]) -> Option<Expr> {
    Some(match expr {
        Expr::Col(name) => map
            .iter()
            .find(|(out, _)| out.eq_ignore_ascii_case(name))
            .map(|(_, def)| def.clone())?,
        Expr::Lit(v) => Expr::Lit(v.clone()),
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(substitute(left, map)?),
            right: Box::new(substitute(right, map)?),
        },
        Expr::Not(inner) => Expr::Not(Box::new(substitute(inner, map)?)),
        Expr::Call { name, args } => Expr::Call {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| substitute(a, map))
                .collect::<Option<Vec<_>>>()?,
        },
    })
}

fn resolvable(schema: &Schema, name: &str) -> bool {
    schema.index_of(name).is_ok()
}

/// Output schema of a logical plan, without executing it.
pub(crate) fn logical_schema(plan: &LogicalPlan, ctx: &ExecContext) -> RelResult<SchemaRef> {
    Ok(match plan {
        LogicalPlan::Scan { table } => ctx.catalog.schema_of(table)?,
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. }
        | LogicalPlan::Distinct { input } => logical_schema(input, ctx)?,
        LogicalPlan::Project { input, exprs } => {
            let in_schema = logical_schema(input, ctx)?;
            let fields = exprs
                .iter()
                .map(|(e, alias)| {
                    let name = alias.clone().unwrap_or_else(|| e.default_name());
                    Ok(Field::new(name, e.output_type(&in_schema, &ctx.udfs)?))
                })
                .collect::<RelResult<Vec<_>>>()?;
            Arc::new(Schema::new(fields)?)
        }
        LogicalPlan::Join { left, right, .. } => {
            let ls = logical_schema(left, ctx)?;
            let rs = logical_schema(right, ctx)?;
            Arc::new(ls.join(&rs, "_r")?)
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let in_schema = logical_schema(input, ctx)?;
            let mut fields = group_by
                .iter()
                .map(|g| {
                    let idx = in_schema.index_of(g)?;
                    Ok(in_schema.field(idx).clone())
                })
                .collect::<RelResult<Vec<_>>>()?;
            for call in aggs {
                let dtype = match call.func {
                    AggFunc::Count => DataType::Int,
                    AggFunc::Avg => DataType::Float,
                    AggFunc::Sum | AggFunc::Min | AggFunc::Max => {
                        let [col] = call.args.as_slice() else {
                            return Err(RelError::InvalidPlan(format!(
                                "{:?} expects exactly one column",
                                call.func
                            )));
                        };
                        in_schema.dtype_of(col)?
                    }
                    AggFunc::ArgMax => {
                        let [_, value] = call.args.as_slice() else {
                            return Err(RelError::InvalidPlan(
                                "argmax expects exactly (order, value)".into(),
                            ));
                        };
                        in_schema.dtype_of(value)?
                    }
                };
                fields.push(Field::new(call.alias.clone(), dtype));
            }
            Arc::new(Schema::new(fields)?)
        }
        LogicalPlan::UnionAll { inputs } => {
            let first = inputs.first().ok_or_else(|| {
                RelError::InvalidPlan("UNION ALL with no inputs".into())
            })?;
            logical_schema(first, ctx)?
        }
    })
}

// ---------------------------------------------------------------------------
// Predicate pushdown (logical rewrite)
// ---------------------------------------------------------------------------

fn apply_pending(plan: LogicalPlan, pending: Vec<Expr>) -> LogicalPlan {
    match and_all(pending) {
        Some(pred) => plan.filter(pred),
        None => plan,
    }
}

/// Sink `pending` conjuncts (collected from Filters above) as deep as
/// possible into `plan`.
fn push_predicates(
    plan: LogicalPlan,
    mut pending: Vec<Expr>,
    ctx: &ExecContext,
) -> RelResult<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Filter { input, predicate } => {
            pending.extend(conjuncts_of(predicate));
            push_predicates(*input, pending, ctx)?
        }
        LogicalPlan::Project { input, exprs } => {
            // A conjunct passes through when every column it references is
            // an output of this projection: substitute the defining
            // expressions (pure by construction) and keep sinking.
            let map: Vec<(String, Expr)> = exprs
                .iter()
                .map(|(e, alias)| {
                    (
                        alias.clone().unwrap_or_else(|| e.default_name()),
                        e.clone(),
                    )
                })
                .collect();
            let mut pushed = Vec::new();
            let mut kept = Vec::new();
            for c in pending {
                match substitute(&c, &map) {
                    Some(s) => pushed.push(s),
                    None => kept.push(c),
                }
            }
            let input = push_predicates(*input, pushed, ctx)?;
            apply_pending(
                LogicalPlan::Project {
                    input: Box::new(input),
                    exprs,
                },
                kept,
            )
        }
        LogicalPlan::Join { left, right, on } => {
            let ls = logical_schema(&left, ctx)?;
            let rs = logical_schema(&right, ctx)?;
            let mut to_left = Vec::new();
            let mut to_right = Vec::new();
            let mut kept = Vec::new();
            for c in pending {
                let mut cols = Vec::new();
                collect_cols(&c, &mut cols);
                // Join output names: left columns keep their names, right
                // columns keep theirs unless they collided (then they got
                // a "_r" suffix and stay above the join).
                let all_left = !cols.is_empty() && cols.iter().all(|n| resolvable(&ls, n));
                let all_right = !cols.is_empty()
                    && cols
                        .iter()
                        .all(|n| !resolvable(&ls, n) && resolvable(&rs, n));
                if all_left {
                    to_left.push(c);
                } else if all_right {
                    to_right.push(c);
                } else {
                    kept.push(c);
                }
            }
            let left = push_predicates(*left, to_left, ctx)?;
            let right = push_predicates(*right, to_right, ctx)?;
            apply_pending(
                LogicalPlan::Join {
                    left: Box::new(left),
                    right: Box::new(right),
                    on,
                },
                kept,
            )
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            // Conjuncts over group keys alone select whole groups, so they
            // commute with the aggregation; anything touching an aggregate
            // output stays above.
            let mut pushed = Vec::new();
            let mut kept = Vec::new();
            for c in pending {
                let mut cols = Vec::new();
                collect_cols(&c, &mut cols);
                let group_only = !cols.is_empty()
                    && cols
                        .iter()
                        .all(|n| group_by.iter().any(|g| g.eq_ignore_ascii_case(n)));
                if group_only {
                    pushed.push(c);
                } else {
                    kept.push(c);
                }
            }
            let input = push_predicates(*input, pushed, ctx)?;
            apply_pending(
                LogicalPlan::Aggregate {
                    input: Box::new(input),
                    group_by,
                    aggs,
                },
                kept,
            )
        }
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(push_predicates(*input, pending, ctx)?),
            keys,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(push_predicates(*input, pending, ctx)?),
        },
        LogicalPlan::Limit { input, n } => {
            // Filtering does not commute with LIMIT: leave the conjuncts
            // above and restart the sink below it.
            let inner = push_predicates(*input, Vec::new(), ctx)?;
            apply_pending(
                LogicalPlan::Limit {
                    input: Box::new(inner),
                    n,
                },
                pending,
            )
        }
        LogicalPlan::UnionAll { inputs } => {
            let rewritten = inputs
                .into_iter()
                .map(|p| push_predicates(p, pending.clone(), ctx))
                .collect::<RelResult<Vec<_>>>()?;
            LogicalPlan::UnionAll { inputs: rewritten }
        }
        scan @ LogicalPlan::Scan { .. } => apply_pending(scan, pending),
    })
}

// ---------------------------------------------------------------------------
// Lowering: projection/limit pushdown + cost-based physical choices
// ---------------------------------------------------------------------------

/// Set of required (lowercased) column names; `None` = all columns.
type Required = Option<std::collections::BTreeSet<String>>;

fn names_of(exprs: &[Expr]) -> std::collections::BTreeSet<String> {
    let mut cols = Vec::new();
    for e in exprs {
        collect_cols(e, &mut cols);
    }
    cols.into_iter().map(|c| c.to_lowercase()).collect()
}

struct Lowerer<'a> {
    ctx: &'a ExecContext,
    next_id: usize,
}

impl Lowerer<'_> {
    fn fresh_id(&mut self) -> usize {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// History-corrected estimate for a node.
    fn corrected(&self, label: &str, id: usize, est: Estimate) -> Estimate {
        match self.ctx.history.lookup(label, id) {
            Some((rows, bytes)) => Estimate {
                rows: rows as f64,
                bytes: bytes as f64,
                measured: true,
            },
            None => est,
        }
    }

    fn scan_estimate(&self, table: &str) -> Estimate {
        match self.ctx.catalog.stats_of(table) {
            Ok((rows, bytes)) => Estimate::new(rows as f64, bytes as f64),
            Err(_) => Estimate::new(1_000.0, 64_000.0),
        }
    }

    fn lower_scan(
        &mut self,
        table: &str,
        predicate: Option<Expr>,
        required: &Required,
        limit: Option<usize>,
    ) -> RelResult<PhysicalPlan> {
        let id = self.fresh_id();
        let schema = self.ctx.catalog.schema_of(table)?;
        let projection = required.as_ref().and_then(|req| {
            let mut idx: Vec<usize> = schema
                .fields()
                .iter()
                .enumerate()
                .filter(|(_, f)| req.contains(&f.name.to_lowercase()))
                .map(|(i, _)| i)
                .collect();
            if idx.is_empty() {
                // A scan must produce at least one column (e.g. a bare
                // count(*) requires only row existence).
                idx.push(0);
            }
            if idx.len() == schema.len() {
                None
            } else {
                Some(idx)
            }
        });
        let mut est = self.scan_estimate(table);
        if predicate.is_some() {
            est.rows *= 0.33;
            est.bytes *= 0.33;
        }
        if let Some(n) = limit {
            if (n as f64) < est.rows {
                let scale = n as f64 / est.rows.max(1.0);
                est.rows = n as f64;
                est.bytes *= scale;
            }
        }
        if let Some(cols) = &projection {
            est.bytes *= cols.len() as f64 / schema.len().max(1) as f64;
        }
        Ok(PhysicalPlan::SeqScan {
            id,
            table: table.to_string(),
            projection,
            predicate,
            limit,
            est: self.corrected("scan", id, est),
        })
    }

    /// Lower a (predicate-pushed) logical plan. `required` is the set of
    /// output columns the parent actually consumes; `limit` is a row cap
    /// that may legally reach the scan (only propagated through
    /// row-preserving operators).
    fn lower(
        &mut self,
        plan: &LogicalPlan,
        required: &Required,
        limit: Option<usize>,
    ) -> RelResult<PhysicalPlan> {
        match plan {
            LogicalPlan::Scan { table } => self.lower_scan(table, None, required, limit),
            LogicalPlan::Filter { input, predicate } => {
                if let LogicalPlan::Scan { table } = input.as_ref() {
                    // Fuse into the scan: the predicate runs against the
                    // full base schema before projection and limit.
                    return self.lower_scan(table, Some(predicate.clone()), required, limit);
                }
                let id = self.fresh_id();
                let child_required = required.as_ref().map(|req| {
                    let mut r = req.clone();
                    r.extend(names_of(std::slice::from_ref(predicate)));
                    r
                });
                let input = self.lower(input, &child_required, None)?;
                let mut est = input.estimate();
                est.rows *= 0.33;
                est.bytes *= 0.33;
                est.measured = false;
                Ok(PhysicalPlan::Filter {
                    id,
                    input: Box::new(input),
                    predicate: predicate.clone(),
                    est: self.corrected("filter", id, est),
                })
            }
            LogicalPlan::Project { input, exprs } => {
                let id = self.fresh_id();
                let pruned: Vec<(Expr, Option<String>)> = match required {
                    Some(req) => {
                        let kept: Vec<_> = exprs
                            .iter()
                            .filter(|(e, alias)| {
                                let name =
                                    alias.clone().unwrap_or_else(|| e.default_name());
                                req.contains(&name.to_lowercase())
                            })
                            .cloned()
                            .collect();
                        if kept.is_empty() {
                            exprs.iter().take(1).cloned().collect()
                        } else {
                            kept
                        }
                    }
                    None => exprs.clone(),
                };
                let child_required = Some(names_of(
                    &pruned.iter().map(|(e, _)| e.clone()).collect::<Vec<_>>(),
                ));
                let input = self.lower(input, &child_required, limit)?;
                let mut est = input.estimate();
                est.measured = false;
                Ok(PhysicalPlan::Project {
                    id,
                    input: Box::new(input),
                    exprs: pruned,
                    est: self.corrected("project", id, est),
                })
            }
            LogicalPlan::Join { left, right, on } => {
                let id = self.fresh_id();
                let ls = logical_schema(left, self.ctx)?;
                let rs = logical_schema(right, self.ctx)?;
                let (req_left, req_right) = match required {
                    None => (None, None),
                    Some(req) => {
                        let mut rl = std::collections::BTreeSet::new();
                        let mut rr = std::collections::BTreeSet::new();
                        for name in req {
                            if resolvable(&ls, name) {
                                rl.insert(name.clone());
                            } else if resolvable(&rs, name) {
                                rr.insert(name.clone());
                            } else if let Some(base) = name.strip_suffix("_r") {
                                // A collision-renamed right column: keep
                                // both the right original and the left
                                // collider so the rename stays stable.
                                if resolvable(&rs, base) {
                                    rr.insert(base.to_string());
                                    if resolvable(&ls, base) {
                                        rl.insert(base.to_string());
                                    }
                                }
                            }
                        }
                        for name in names_of(std::slice::from_ref(on)) {
                            if resolvable(&ls, &name) {
                                rl.insert(name.clone());
                            }
                            if resolvable(&rs, &name) {
                                rr.insert(name);
                            }
                        }
                        (Some(rl), Some(rr))
                    }
                };
                let left = self.lower(left, &req_left, None)?;
                let right = self.lower(right, &req_right, None)?;
                let (el, er) = (left.estimate(), right.estimate());
                let build_left = el.bytes < er.bytes;
                let build_bytes = el.bytes.min(er.bytes);
                let threshold = self.ctx.memory_grant.unwrap_or(DEFAULT_BROADCAST_BYTES);
                let strategy = if build_bytes <= threshold as f64 {
                    JoinStrategy::Broadcast
                } else {
                    JoinStrategy::CoPartitioned
                };
                let rows = el.rows.max(er.rows);
                let width = el.bytes / el.rows.max(1.0) + er.bytes / er.rows.max(1.0);
                let est = Estimate::new(rows, rows * width);
                Ok(PhysicalPlan::HashJoin {
                    id,
                    left: Box::new(left),
                    right: Box::new(right),
                    on: on.clone(),
                    build_left,
                    strategy,
                    est: self.corrected("join", id, est),
                })
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let id = self.fresh_id();
                let mut req = std::collections::BTreeSet::new();
                for g in group_by {
                    req.insert(g.to_lowercase());
                }
                for call in aggs {
                    for a in &call.args {
                        req.insert(a.to_lowercase());
                    }
                }
                let child_required = Some(req);
                let input = self.lower(input, &child_required, None)?;
                let in_est = input.estimate();
                let est = Estimate::new(
                    (in_est.rows / 2.0).max(1.0),
                    (in_est.bytes / 2.0).max(64.0),
                );
                Ok(PhysicalPlan::Aggregate {
                    id,
                    input: Box::new(input),
                    group_by: group_by.clone(),
                    aggs: aggs.clone(),
                    est: self.corrected("aggregate", id, est),
                })
            }
            LogicalPlan::Sort { input, keys } => {
                let id = self.fresh_id();
                let child_required = required.as_ref().map(|req| {
                    let mut r = req.clone();
                    for (name, _) in keys {
                        r.insert(name.to_lowercase());
                    }
                    r
                });
                let input = self.lower(input, &child_required, None)?;
                let est = input.estimate();
                Ok(PhysicalPlan::Sort {
                    id,
                    input: Box::new(input),
                    keys: keys.clone(),
                    est,
                })
            }
            LogicalPlan::Limit { input, n } => {
                let id = self.fresh_id();
                let eff = match limit {
                    Some(outer) => outer.min(*n),
                    None => *n,
                };
                let input = self.lower(input, required, Some(eff))?;
                let mut est = input.estimate();
                if (eff as f64) < est.rows {
                    est.bytes *= eff as f64 / est.rows.max(1.0);
                    est.rows = eff as f64;
                }
                Ok(PhysicalPlan::Limit {
                    id,
                    input: Box::new(input),
                    n: *n,
                    est,
                })
            }
            LogicalPlan::Distinct { input } => {
                let id = self.fresh_id();
                // Distinct compares whole rows: pruning columns below it
                // would change which rows are duplicates.
                let input = self.lower(input, &None, None)?;
                let mut est = input.estimate();
                est.rows = (est.rows / 2.0).max(1.0);
                est.bytes /= 2.0;
                Ok(PhysicalPlan::Distinct {
                    id,
                    input: Box::new(input),
                    est,
                })
            }
            LogicalPlan::UnionAll { inputs } => {
                let id = self.fresh_id();
                let lowered = inputs
                    .iter()
                    .map(|p| self.lower(p, required, limit))
                    .collect::<RelResult<Vec<_>>>()?;
                let rows = lowered.iter().map(|p| p.estimate().rows).sum();
                let bytes = lowered.iter().map(|p| p.estimate().bytes).sum();
                Ok(PhysicalPlan::UnionAll {
                    id,
                    inputs: lowered,
                    est: Estimate::new(rows, bytes),
                })
            }
        }
    }
}

/// Optimize a logical plan into a physical one: push predicates,
/// projections and limits toward the scans, then choose join build sides
/// and strategies from (history-corrected) cost estimates.
pub fn optimize(plan: &LogicalPlan, ctx: &ExecContext) -> RelResult<PhysicalPlan> {
    let pushed = push_predicates(plan.clone(), Vec::new(), ctx)?;
    let mut lowerer = Lowerer { ctx, next_id: 0 };
    lowerer.lower(&pushed, &None, None)
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// Spill accounting an operator reports into its [`StageStats`].
#[derive(Default, Clone, Copy)]
struct SpillIo {
    bytes: u64,
    parts: u64,
}

impl ExecContext {
    /// Execute a physical plan to a materialized table, recording one
    /// [`StageStats`] per node (tagged with its node id) into the
    /// context's stats registry.
    pub fn execute_physical(&self, plan: &PhysicalPlan) -> RelResult<Table> {
        let start = Instant::now();
        let mut spill = SpillIo::default();
        let (result, rows_in, bytes_in) = match plan {
            PhysicalPlan::SeqScan {
                table,
                projection,
                predicate,
                limit,
                ..
            } => self.run_scan(table, projection.as_deref(), predicate.as_ref(), *limit)?,
            PhysicalPlan::Filter {
                input, predicate, ..
            } => {
                let t = self.execute_physical(input)?;
                let compiled = predicate.compile(t.schema(), &self.udfs)?;
                let io = (t.num_rows() as u64, t.byte_size() as u64);
                (ops::filter(&t, &compiled)?, io.0, io.1)
            }
            PhysicalPlan::Project { input, exprs, .. } => {
                let t = self.execute_physical(input)?;
                let specs = exprs
                    .iter()
                    .map(|(e, alias)| {
                        ProjectionSpec::compile(e, alias.as_deref(), t.schema(), &self.udfs)
                    })
                    .collect::<RelResult<Vec<_>>>()?;
                let io = (t.num_rows() as u64, t.byte_size() as u64);
                (ops::project(&t, &specs)?, io.0, io.1)
            }
            PhysicalPlan::HashJoin {
                left,
                right,
                on,
                build_left,
                strategy,
                ..
            } => {
                let l = self.execute_physical(left)?;
                let r = self.execute_physical(right)?;
                let rows = (l.num_rows() + r.num_rows()) as u64;
                let bytes = (l.byte_size() + r.byte_size()) as u64;
                let joined = self.run_join(&l, &r, on, *build_left, *strategy, &mut spill)?;
                (joined, rows, bytes)
            }
            PhysicalPlan::Aggregate {
                input,
                group_by,
                aggs,
                ..
            } => {
                let t = self.execute_physical(input)?;
                let io = (t.num_rows() as u64, t.byte_size() as u64);
                (self.run_aggregate(&t, group_by, aggs, &mut spill)?, io.0, io.1)
            }
            PhysicalPlan::Sort { input, keys, .. } => {
                let t = self.execute_physical(input)?;
                let sort_keys = keys
                    .iter()
                    .map(|(name, asc)| {
                        Ok(SortKey {
                            col: t.schema().index_of(name)?,
                            ascending: *asc,
                        })
                    })
                    .collect::<RelResult<Vec<_>>>()?;
                let io = (t.num_rows() as u64, t.byte_size() as u64);
                (self.run_sort(&t, &sort_keys, &mut spill)?, io.0, io.1)
            }
            PhysicalPlan::Limit { input, n, .. } => {
                let t = self.execute_physical(input)?;
                let io = (t.num_rows() as u64, t.byte_size() as u64);
                (ops::limit(&t, *n)?, io.0, io.1)
            }
            PhysicalPlan::Distinct { input, .. } => {
                let t = self.execute_physical(input)?;
                let io = (t.num_rows() as u64, t.byte_size() as u64);
                (ops::distinct(&t)?, io.0, io.1)
            }
            PhysicalPlan::UnionAll { inputs, .. } => {
                let tables = inputs
                    .iter()
                    .map(|p| self.execute_physical(p))
                    .collect::<RelResult<Vec<_>>>()?;
                let rows = tables.iter().map(|t| t.num_rows() as u64).sum();
                let bytes = tables.iter().map(|t| t.byte_size() as u64).sum();
                (ops::union_all(&tables)?, rows, bytes)
            }
        };
        if let Some(stats) = &self.stats {
            let mut rec = StageStats::new(plan.label(), self.cluster.workers());
            rec.node = Some(plan.id());
            rec.wall = start.elapsed();
            rec.rows_read = rows_in;
            rec.bytes_read = bytes_in;
            rec.rows_written = result.num_rows() as u64;
            rec.bytes_written = result.byte_size() as u64;
            rec.spill_bytes = spill.bytes;
            rec.spill_parts = spill.parts;
            stats.record(rec);
        }
        Ok(result)
    }

    /// Scan with pushdown. Returns `(table, rows_scanned, bytes_scanned)`.
    fn run_scan(
        &self,
        table: &str,
        projection: Option<&[usize]>,
        predicate: Option<&Expr>,
        limit: Option<usize>,
    ) -> RelResult<(Table, u64, u64)> {
        match self.catalog.get_source(table)? {
            Source::Paged { table, pool } => {
                let compiled = predicate
                    .map(|p| p.compile(table.schema(), &self.udfs))
                    .transpose()?;
                let outcome = table.scan(
                    &pool,
                    &ScanOptions {
                        predicate: compiled.as_ref(),
                        projection,
                        limit,
                    },
                )?;
                Ok((
                    outcome.table,
                    outcome.rows_scanned,
                    outcome.pages_read * PAGE_SIZE as u64,
                ))
            }
            Source::Mem(t) => {
                let mut out = t.clone();
                let mut scanned = t.num_rows() as u64;
                match predicate {
                    Some(p) => {
                        let compiled = p.compile(t.schema(), &self.udfs)?;
                        out = ops::filter(&out, &compiled)?;
                        if let Some(n) = limit {
                            out = ops::limit(&out, n)?;
                        }
                    }
                    None => {
                        if let Some(n) = limit {
                            out = ops::limit(&out, n)?;
                            scanned = out.num_rows() as u64;
                        }
                    }
                }
                if let Some(cols) = projection {
                    let fields = cols
                        .iter()
                        .map(|&i| out.schema().field(i).clone())
                        .collect::<Vec<_>>();
                    let schema = Arc::new(Schema::new(fields)?);
                    let columns = cols.iter().map(|&i| out.column(i).clone()).collect();
                    out = Table::new(schema, columns)?;
                }
                let bytes = t.byte_size() as u64;
                Ok((out, scanned, bytes))
            }
        }
    }

    /// Hash join with planner-chosen build side/strategy, spilling when
    /// the build side exceeds the memory grant.
    fn run_join(
        &self,
        left: &Table,
        right: &Table,
        on: &Expr,
        build_left: bool,
        strategy: JoinStrategy,
        spill: &mut SpillIo,
    ) -> RelResult<Table> {
        let mut conjuncts = Vec::new();
        flatten_and(on, &mut conjuncts);
        let mut left_keys = Vec::new();
        let mut right_keys = Vec::new();
        let mut residual: Option<Expr> = None;
        for c in conjuncts {
            match equi_pair(c, left.schema(), right.schema()) {
                Some((l, r)) => {
                    left_keys.push(l);
                    right_keys.push(r);
                }
                None => {
                    residual = Some(match residual {
                        Some(acc) => acc.and(c.clone()),
                        None => c.clone(),
                    });
                }
            }
        }
        if left_keys.is_empty() {
            return Err(RelError::InvalidPlan(
                "join condition contains no equi-join predicate".into(),
            ));
        }

        let build_bytes = if build_left {
            left.byte_size()
        } else {
            right.byte_size()
        };
        let joined = match self.memory_grant {
            Some(grant) if build_bytes > grant => self.spill_join(
                left,
                right,
                &left_keys,
                &right_keys,
                build_left,
                grant,
                spill,
            )?,
            _ => self.in_memory_join(left, right, &left_keys, &right_keys, build_left, strategy)?,
        };
        match residual {
            Some(expr) => {
                let compiled = expr.compile(joined.schema(), &self.udfs)?;
                ops::filter(&joined, &compiled)
            }
            None => Ok(joined),
        }
    }

    fn in_memory_join(
        &self,
        left: &Table,
        right: &Table,
        lk: &[usize],
        rk: &[usize],
        build_left: bool,
        strategy: JoinStrategy,
    ) -> RelResult<Table> {
        let side = if build_left {
            JoinSide::BuildLeft
        } else {
            JoinSide::BuildRight
        };
        if self.cluster.workers() == 1 {
            return ops::hash_join(left, right, lk, rk, side);
        }
        let parts = match strategy {
            JoinStrategy::Broadcast => {
                if build_left {
                    // Replicate the left build side; chunk the right probe.
                    let chunks = crate::exec::chunk_partition(right, self.cluster.workers());
                    self.cluster.map_partitions(chunks, |_, chunk| {
                        ops::hash_join(left, &chunk, lk, rk, JoinSide::BuildLeft)
                    })?
                } else {
                    let chunks = crate::exec::chunk_partition(left, self.cluster.workers());
                    self.cluster.map_partitions(chunks, |_, chunk| {
                        ops::hash_join(&chunk, right, lk, rk, JoinSide::BuildRight)
                    })?
                }
            }
            JoinStrategy::CoPartitioned => {
                let lparts = hash_partition(left, lk, self.cluster.workers());
                let rparts = hash_partition(right, rk, self.cluster.workers());
                self.cluster.map_partitions(lparts, |i, lpart| {
                    ops::hash_join(&lpart, &rparts[i], lk, rk, side)
                })?
            }
        };
        Table::concat(&parts)
    }

    /// Grace-style partitioned hash join: both inputs are hash-partitioned
    /// on the keys to checksummed spill files, then each partition pair is
    /// joined on its own — bounding the build hash table to roughly
    /// `build_bytes / parts`.
    #[allow(clippy::too_many_arguments)]
    fn spill_join(
        &self,
        left: &Table,
        right: &Table,
        lk: &[usize],
        rk: &[usize],
        build_left: bool,
        grant: usize,
        spill: &mut SpillIo,
    ) -> RelResult<Table> {
        let build_bytes = if build_left {
            left.byte_size()
        } else {
            right.byte_size()
        };
        let parts = (build_bytes / grant.max(1) + 1).clamp(2, MAX_SPILL_PARTS);
        let dir = SpillDir::new(&self.spill_dir(), "join")?;
        let (lh, rh) = {
            let mut lw = dir.writer("left")?;
            for part in hash_partition(left, lk, parts) {
                lw.append(&binfmt::encode_table(&part))?;
            }
            let mut rw = dir.writer("right")?;
            for part in hash_partition(right, rk, parts) {
                rw.append(&binfmt::encode_table(&part))?;
            }
            (lw.finish()?, rw.finish()?)
        };
        spill.bytes += lh.bytes + rh.bytes;
        spill.parts += parts as u64;

        let side = if build_left {
            JoinSide::BuildLeft
        } else {
            JoinSide::BuildRight
        };
        let mut lr = lh.reader()?;
        let mut rr = rh.reader()?;
        let mut outputs = Vec::with_capacity(parts);
        while let (Some(lbuf), Some(rbuf)) = (lr.next_frame()?, rr.next_frame()?) {
            let lpart = binfmt::decode_table(Bytes::from(lbuf))?;
            let rpart = binfmt::decode_table(Bytes::from(rbuf))?;
            outputs.push(ops::hash_join(&lpart, &rpart, lk, rk, side)?);
        }
        Table::concat(&outputs)
    }

    /// Aggregate, hash-partitioning the input to disk first when it
    /// exceeds the grant. The spilled path re-sorts its output by the
    /// group keys so it is bit-identical to the in-memory operator (which
    /// emits groups in ascending key order).
    fn run_aggregate(
        &self,
        input: &Table,
        group_by: &[String],
        aggs: &[AggCall],
        spill: &mut SpillIo,
    ) -> RelResult<Table> {
        let keys = group_by
            .iter()
            .map(|name| input.schema().index_of(name))
            .collect::<RelResult<Vec<_>>>()?;
        let specs = aggs
            .iter()
            .map(|call| lower_agg(call, input.schema()))
            .collect::<RelResult<Vec<_>>>()?;
        match self.memory_grant {
            Some(grant) if input.byte_size() > grant && !keys.is_empty() => {
                let parts = (input.byte_size() / grant.max(1) + 1).clamp(2, MAX_SPILL_PARTS);
                let dir = SpillDir::new(&self.spill_dir(), "agg")?;
                let handle = {
                    let mut w = dir.writer("parts")?;
                    for part in hash_partition(input, &keys, parts) {
                        w.append(&binfmt::encode_table(&part))?;
                    }
                    w.finish()?
                };
                spill.bytes += handle.bytes;
                spill.parts += parts as u64;
                let mut reader = handle.reader()?;
                let mut outputs = Vec::with_capacity(parts);
                while let Some(buf) = reader.next_frame()? {
                    let part = binfmt::decode_table(Bytes::from(buf))?;
                    outputs.push(ops::aggregate(&part, &keys, &specs)?);
                }
                let merged = Table::concat(&outputs)?;
                // Restore the global ascending-key order of the in-memory
                // operator (group keys are columns 0..keys.len() of the
                // output).
                let sort_keys: Vec<SortKey> =
                    (0..keys.len()).map(SortKey::asc).collect();
                ops::sort(&merged, &sort_keys)
            }
            _ => self.cluster.aggregate(input, &keys, &specs),
        }
    }

    /// Sort, via external merge sort when the input exceeds the grant.
    fn run_sort(&self, input: &Table, keys: &[SortKey], spill: &mut SpillIo) -> RelResult<Table> {
        match self.memory_grant {
            Some(grant) if input.byte_size() > grant && input.num_rows() > 1 => {
                self.external_sort(input, keys, grant, spill)
            }
            _ => ops::sort(input, keys),
        }
    }

    /// Split the input into grant-sized runs, sort each in memory, spill
    /// the runs as checksummed frames, and k-way merge them. Ties across
    /// runs resolve to the earlier run, which (with stable in-run sorting
    /// over contiguous chunks) makes the result identical to a stable
    /// in-memory sort.
    fn external_sort(
        &self,
        input: &Table,
        keys: &[SortKey],
        grant: usize,
        spill: &mut SpillIo,
    ) -> RelResult<Table> {
        let rows = input.num_rows();
        let avg_row = (input.byte_size() / rows.max(1)).max(1);
        let per_run = (grant / avg_row).max(1);
        let dir = SpillDir::new(&self.spill_dir(), "sort")?;
        let mut handles: Vec<SpillHandle> = Vec::new();
        let mut start = 0usize;
        let mut run_no = 0usize;
        while start < rows {
            let end = (start + per_run).min(rows);
            let indices: Vec<usize> = (start..end).collect();
            let run = ops::sort(&input.gather(&indices), keys)?;
            let mut w = dir.writer(&format!("run-{run_no}"))?;
            let mut off = 0usize;
            while off < run.num_rows() {
                let batch_end = (off + SPILL_BATCH_ROWS).min(run.num_rows());
                let batch_idx: Vec<usize> = (off..batch_end).collect();
                w.append(&binfmt::encode_table(&run.gather(&batch_idx)))?;
                off = batch_end;
            }
            let h = w.finish()?;
            spill.bytes += h.bytes;
            handles.push(h);
            start = end;
            run_no += 1;
        }
        spill.parts += handles.len() as u64;

        struct RunCursor {
            reader: SpillReader,
            batch: Table,
            pos: usize,
        }
        impl RunCursor {
            fn open(handle: &SpillHandle) -> RelResult<Option<RunCursor>> {
                let mut reader = handle.reader()?;
                match reader.next_frame()? {
                    Some(buf) => Ok(Some(RunCursor {
                        reader,
                        batch: binfmt::decode_table(Bytes::from(buf))?,
                        pos: 0,
                    })),
                    None => Ok(None),
                }
            }
            fn done(&self) -> bool {
                self.pos >= self.batch.num_rows()
            }
            fn advance(&mut self) -> RelResult<()> {
                self.pos += 1;
                if self.pos >= self.batch.num_rows() {
                    if let Some(buf) = self.reader.next_frame()? {
                        self.batch = binfmt::decode_table(Bytes::from(buf))?;
                        self.pos = 0;
                    }
                }
                Ok(())
            }
        }

        fn cmp_rows(a: &Table, ar: usize, b: &Table, br: usize, keys: &[SortKey]) -> Ordering {
            for k in keys {
                let ord = a.column(k.col).value(ar).cmp(&b.column(k.col).value(br));
                let ord = if k.ascending { ord } else { ord.reverse() };
                if !ord.is_eq() {
                    return ord;
                }
            }
            Ordering::Equal
        }

        let mut cursors: Vec<RunCursor> = Vec::with_capacity(handles.len());
        for h in &handles {
            if let Some(c) = RunCursor::open(h)? {
                cursors.push(c);
            }
        }
        let mut out = TableBuilder::with_capacity(input.schema().clone(), rows);
        loop {
            let mut best: Option<usize> = None;
            for i in 0..cursors.len() {
                if cursors[i].done() {
                    continue;
                }
                best = match best {
                    None => Some(i),
                    Some(b) => {
                        // Strict less-than keeps the earlier run on ties.
                        if cmp_rows(
                            &cursors[i].batch,
                            cursors[i].pos,
                            &cursors[b].batch,
                            cursors[b].pos,
                            keys,
                        ) == Ordering::Less
                        {
                            Some(i)
                        } else {
                            Some(b)
                        }
                    }
                };
            }
            let Some(b) = best else { break };
            let row = cursors[b].batch.row(cursors[b].pos);
            out.push_row(row)?;
            cursors[b].advance()?;
        }
        Ok(out.finish())
    }

    fn spill_dir(&self) -> std::path::PathBuf {
        self.spill_root
            .clone()
            .unwrap_or_else(std::env::temp_dir)
    }
}
