//! In-memory tables: a schema plus one column vector per field.

use crate::column::Column;
use crate::error::{RelError, RelResult};
use crate::schema::SchemaRef;
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// An immutable-by-convention, in-memory relation.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    schema: SchemaRef,
    columns: Vec<Column>,
}

impl Table {
    /// Create a table from a schema and matching columns.
    pub fn new(schema: SchemaRef, columns: Vec<Column>) -> RelResult<Self> {
        if schema.len() != columns.len() {
            return Err(RelError::InvalidPlan(format!(
                "schema has {} fields but {} columns given",
                schema.len(),
                columns.len()
            )));
        }
        let mut rows = None;
        for (field, col) in schema.fields().iter().zip(&columns) {
            if field.dtype != col.dtype() {
                return Err(RelError::TypeMismatch {
                    expected: field.dtype.to_string(),
                    actual: col.dtype().to_string(),
                    context: format!("column {}", field.name),
                });
            }
            match rows {
                None => rows = Some(col.len()),
                Some(n) if n != col.len() => {
                    return Err(RelError::InvalidPlan(format!(
                        "ragged columns: {} vs {}",
                        n,
                        col.len()
                    )))
                }
                _ => {}
            }
        }
        Ok(Table { schema, columns })
    }

    /// Create an empty table with the given schema.
    pub fn empty(schema: SchemaRef) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::empty(f.dtype))
            .collect();
        Table { schema, columns }
    }

    /// Build a table from rows of values. Mostly used by tests and by the
    /// SQL VALUES-style constructors; bulk paths use [`TableBuilder`].
    pub fn from_rows(schema: SchemaRef, rows: Vec<Vec<Value>>) -> RelResult<Self> {
        let mut builder = TableBuilder::new(Arc::clone(&schema));
        for row in rows {
            builder.push_row(row)?;
        }
        Ok(builder.finish())
    }

    /// The table's schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// All columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// The column at `idx`.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// The column named `name`.
    pub fn column_by_name(&self, name: &str) -> RelResult<&Column> {
        Ok(&self.columns[self.schema.index_of(name)?])
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// True when the table has zero rows.
    pub fn is_empty(&self) -> bool {
        self.num_rows() == 0
    }

    /// Materialize row `idx` as a vector of values.
    pub fn row(&self, idx: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(idx)).collect()
    }

    /// Iterate rows as value vectors. Convenient for tests and small
    /// results; operators work column-wise instead.
    pub fn iter_rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        (0..self.num_rows()).map(|i| self.row(i))
    }

    /// Gather the given row indices into a new table.
    pub fn gather(&self, indices: &[usize]) -> Table {
        Table {
            schema: Arc::clone(&self.schema),
            columns: self.columns.iter().map(|c| c.gather(indices)).collect(),
        }
    }

    /// Keep rows where `mask` is true.
    pub fn filter_rows(&self, mask: &[bool]) -> Table {
        Table {
            schema: Arc::clone(&self.schema),
            columns: self.columns.iter().map(|c| c.filter(mask)).collect(),
        }
    }

    /// Concatenate tables with identical schemas.
    pub fn concat(parts: &[Table]) -> RelResult<Table> {
        let Some(first) = parts.first() else {
            return Err(RelError::InvalidPlan("concat of zero tables".into()));
        };
        let mut out = Table::empty(Arc::clone(&first.schema));
        for part in parts {
            if part.schema.as_ref() != first.schema.as_ref() {
                return Err(RelError::InvalidPlan(
                    "concat of tables with differing schemas".into(),
                ));
            }
            for (dst, src) in out.columns.iter_mut().zip(&part.columns) {
                dst.extend_from(src)?;
            }
        }
        Ok(out)
    }

    /// Approximate payload size in bytes; feeds the Table 9 style
    /// read/write accounting.
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(Column::byte_size).sum()
    }

    /// Rows sorted lexicographically — canonical form for order-insensitive
    /// comparisons in tests (SQL vs native equivalence).
    pub fn sorted_rows(&self) -> Vec<Vec<Value>> {
        let mut rows: Vec<Vec<Value>> = self.iter_rows().collect();
        rows.sort();
        rows
    }
}

impl fmt::Display for Table {
    /// Render a small ASCII preview (up to 20 rows).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self
            .schema
            .fields()
            .iter()
            .map(|fl| fl.name.as_str())
            .collect();
        writeln!(f, "{}", names.join(" | "))?;
        for (i, row) in self.iter_rows().enumerate() {
            if i >= 20 {
                writeln!(f, "... ({} rows total)", self.num_rows())?;
                break;
            }
            let cells: Vec<String> = row.iter().map(Value::to_string).collect();
            writeln!(f, "{}", cells.join(" | "))?;
        }
        Ok(())
    }
}

/// Row-at-a-time table builder with type checking.
pub struct TableBuilder {
    schema: SchemaRef,
    columns: Vec<Column>,
}

impl TableBuilder {
    /// Start building a table with the given schema.
    pub fn new(schema: SchemaRef) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::empty(f.dtype))
            .collect();
        TableBuilder { schema, columns }
    }

    /// Start building with row capacity reserved.
    pub fn with_capacity(schema: SchemaRef, rows: usize) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::with_capacity(f.dtype, rows))
            .collect();
        TableBuilder { schema, columns }
    }

    /// Append one row.
    pub fn push_row(&mut self, row: Vec<Value>) -> RelResult<()> {
        if row.len() != self.columns.len() {
            return Err(RelError::InvalidPlan(format!(
                "row has {} values, schema has {} fields",
                row.len(),
                self.columns.len()
            )));
        }
        for (col, value) in self.columns.iter_mut().zip(row) {
            col.push(value)?;
        }
        Ok(())
    }

    /// Number of rows appended so far.
    pub fn len(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// True if nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finish and return the table.
    pub fn finish(self) -> Table {
        Table {
            schema: self.schema,
            columns: self.columns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::DataType;

    fn sample() -> Table {
        let schema = Schema::of(&[("q", DataType::Str), ("clicks", DataType::Int)]);
        Table::from_rows(
            schema,
            vec![
                vec![Value::str("nfl"), Value::Int(20)],
                vec![Value::str("49ers"), Value::Int(25)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn from_rows_round_trips() {
        let t = sample();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.row(1), vec![Value::str("49ers"), Value::Int(25)]);
    }

    #[test]
    fn new_rejects_ragged_columns() {
        let schema = Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]);
        let err = Table::new(schema, vec![Column::Int(vec![1]), Column::Int(vec![])]);
        assert!(err.is_err());
    }

    #[test]
    fn new_rejects_type_mismatch() {
        let schema = Schema::of(&[("a", DataType::Int)]);
        let err = Table::new(schema, vec![Column::Float(vec![1.0])]);
        assert!(matches!(err, Err(RelError::TypeMismatch { .. })));
    }

    #[test]
    fn concat_appends_rows() {
        let t = sample();
        let joined = Table::concat(&[t.clone(), t.clone()]).unwrap();
        assert_eq!(joined.num_rows(), 4);
    }

    #[test]
    fn concat_rejects_schema_mismatch() {
        let t = sample();
        let other = Table::empty(Schema::of(&[("x", DataType::Int)]));
        assert!(Table::concat(&[t, other]).is_err());
    }

    #[test]
    fn sorted_rows_canonicalizes_order() {
        let t = sample();
        let rows = t.sorted_rows();
        assert_eq!(rows[0][0], Value::str("49ers"));
    }

    #[test]
    fn builder_checks_row_width() {
        let schema = Schema::of(&[("a", DataType::Int)]);
        let mut b = TableBuilder::new(schema);
        assert!(b.push_row(vec![Value::Int(1), Value::Int(2)]).is_err());
    }
}
