//! Schemas: ordered, named, typed columns.

use crate::error::{RelError, RelResult};
use crate::value::DataType;
use std::fmt;
use std::sync::Arc;

/// A named, typed column in a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name. Names are matched case-insensitively by the SQL binder
    /// but stored verbatim.
    pub name: String,
    /// Column type.
    pub dtype: DataType,
}

impl Field {
    /// Create a field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered collection of fields.
///
/// Duplicate names are rejected at construction: the pipeline queries always
/// alias ambiguous join outputs, and rejecting duplicates early converts a
/// class of subtle binder bugs into immediate errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
}

/// Shared schema handle; operators pass these around freely.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    /// Build a schema, rejecting duplicate column names (case-insensitive).
    pub fn new(fields: Vec<Field>) -> RelResult<Self> {
        for (i, f) in fields.iter().enumerate() {
            for other in &fields[i + 1..] {
                if f.name.eq_ignore_ascii_case(&other.name) {
                    return Err(RelError::Schema(format!(
                        "duplicate column name: {}",
                        f.name
                    )));
                }
            }
        }
        Ok(Schema { fields })
    }

    /// Build a schema from `(name, type)` pairs. Panics on duplicates; use
    /// in code paths where the names are static.
    pub fn of(pairs: &[(&str, DataType)]) -> SchemaRef {
        Arc::new(
            Schema::new(
                pairs
                    .iter()
                    .map(|(n, t)| Field::new(*n, *t))
                    .collect::<Vec<_>>(),
            )
            .expect("static schema must not contain duplicates"),
        )
    }

    /// The fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Position of a column by case-insensitive name.
    pub fn index_of(&self, name: &str) -> RelResult<usize> {
        self.fields
            .iter()
            .position(|f| f.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| RelError::UnknownColumn(name.to_string()))
    }

    /// The field at `idx`.
    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// The type of the column named `name`.
    pub fn dtype_of(&self, name: &str) -> RelResult<DataType> {
        Ok(self.fields[self.index_of(name)?].dtype)
    }

    /// Concatenate two schemas (used by joins). Name collisions are resolved
    /// by suffixing the right side's colliding names with `suffix`, then
    /// `suffix2`, `suffix3`, … until unique.
    pub fn join(&self, right: &Schema, right_suffix: &str) -> RelResult<Schema> {
        let mut fields = self.fields.clone();
        for f in &right.fields {
            let collides = |fields: &[Field], name: &str| {
                fields.iter().any(|g| g.name.eq_ignore_ascii_case(name))
            };
            let mut name = f.name.clone();
            let mut attempt = 1;
            while collides(&fields, &name) {
                name = if attempt == 1 {
                    format!("{}{right_suffix}", f.name)
                } else {
                    format!("{}{right_suffix}{attempt}", f.name)
                };
                attempt += 1;
            }
            fields.push(Field::new(name, f.dtype));
        }
        Schema::new(fields)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", field.name, field.dtype)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_duplicates_case_insensitively() {
        let err = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("A", DataType::Str),
        ]);
        assert!(matches!(err, Err(RelError::Schema(_))));
    }

    #[test]
    fn index_of_is_case_insensitive() {
        let s = Schema::of(&[("Query1", DataType::Str), ("distance", DataType::Float)]);
        assert_eq!(s.index_of("query1").unwrap(), 0);
        assert_eq!(s.index_of("DISTANCE").unwrap(), 1);
        assert!(s.index_of("missing").is_err());
    }

    #[test]
    fn join_suffixes_collisions() {
        let l = Schema::of(&[("q", DataType::Str), ("d", DataType::Float)]);
        let r = Schema::of(&[("q", DataType::Str), ("c", DataType::Int)]);
        let j = l.join(&r, "_r").unwrap();
        let names: Vec<_> = j.fields().iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["q", "d", "q_r", "c"]);
    }

    #[test]
    fn display_formats_schema() {
        let s = Schema::of(&[("a", DataType::Int)]);
        assert_eq!(s.to_string(), "(a: INT)");
    }
}
