//! Scalar expressions: a small logical expression language plus a compiled,
//! index-resolved form evaluated row-at-a-time over columns.

use crate::error::{RelError, RelResult};
use crate::schema::Schema;
use crate::table::Table;
use crate::udf::UdfRegistry;
use crate::value::{DataType, Value};
use std::fmt;
use std::sync::Arc;

/// Binary operators supported by the expression language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Equality (`=`).
    Eq,
    /// Inequality (`<>` / `!=`).
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Logical AND.
    And,
    /// Logical OR.
    Or,
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        };
        f.write_str(s)
    }
}

/// A logical scalar expression over named columns.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to a column by name.
    Col(String),
    /// A literal value.
    Lit(Value),
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Logical negation.
    Not(Box<Expr>),
    /// A scalar function call, resolved against the [`UdfRegistry`] at
    /// compile time. Built-ins (`lower`, `abs`, `ln`) are registered by
    /// default; pipelines add their own (e.g. `ModulGain` in Figure 4).
    Call {
        /// Function name (case-insensitive).
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// Column reference helper.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Col(name.into())
    }

    /// Literal helper.
    pub fn lit(value: impl Into<Value>) -> Expr {
        Expr::Lit(value.into())
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        self.binary(BinOp::Eq, other)
    }

    /// `self > other`.
    pub fn gt(self, other: Expr) -> Expr {
        self.binary(BinOp::Gt, other)
    }

    /// `self >= other`.
    pub fn ge(self, other: Expr) -> Expr {
        self.binary(BinOp::Ge, other)
    }

    /// `self < other`.
    pub fn lt(self, other: Expr) -> Expr {
        self.binary(BinOp::Lt, other)
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        self.binary(BinOp::And, other)
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        self.binary(BinOp::Or, other)
    }

    /// Generic binary combinator.
    pub fn binary(self, op: BinOp, other: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// Function call helper.
    pub fn call(name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Call {
            name: name.into(),
            args,
        }
    }

    /// Compile against a schema, resolving column names to indices and
    /// function names to UDF handles.
    pub fn compile(&self, schema: &Schema, udfs: &UdfRegistry) -> RelResult<CompiledExpr> {
        Ok(match self {
            Expr::Col(name) => CompiledExpr::Col(schema.index_of(name)?),
            Expr::Lit(v) => CompiledExpr::Lit(v.clone()),
            Expr::Binary { op, left, right } => CompiledExpr::Binary {
                op: *op,
                left: Box::new(left.compile(schema, udfs)?),
                right: Box::new(right.compile(schema, udfs)?),
            },
            Expr::Not(inner) => CompiledExpr::Not(Box::new(inner.compile(schema, udfs)?)),
            Expr::Call { name, args } => {
                let udf = udfs.get(name)?;
                let compiled = args
                    .iter()
                    .map(|a| a.compile(schema, udfs))
                    .collect::<RelResult<Vec<_>>>()?;
                CompiledExpr::Call {
                    udf,
                    args: compiled,
                }
            }
        })
    }

    /// Infer the output type against a schema (UDFs report their own).
    pub fn output_type(&self, schema: &Schema, udfs: &UdfRegistry) -> RelResult<DataType> {
        Ok(match self {
            Expr::Col(name) => schema.dtype_of(name)?,
            Expr::Lit(v) => v.data_type(),
            Expr::Binary { op, left, right } => match op {
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    DataType::Bool
                }
                BinOp::And | BinOp::Or => DataType::Bool,
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                    let lt = left.output_type(schema, udfs)?;
                    let rt = right.output_type(schema, udfs)?;
                    if lt == DataType::Float || rt == DataType::Float || *op == BinOp::Div {
                        DataType::Float
                    } else {
                        DataType::Int
                    }
                }
            },
            Expr::Not(_) => DataType::Bool,
            Expr::Call { name, .. } => udfs.get(name)?.output_type(),
        })
    }

    /// A display name used when a projection has no explicit alias.
    pub fn default_name(&self) -> String {
        match self {
            Expr::Col(name) => name.clone(),
            Expr::Lit(v) => v.to_string(),
            Expr::Binary { op, left, right } => {
                format!("{} {} {}", left.default_name(), op, right.default_name())
            }
            Expr::Not(inner) => format!("NOT {}", inner.default_name()),
            Expr::Call { name, args } => {
                let inner: Vec<String> = args.iter().map(Expr::default_name).collect();
                format!("{}({})", name, inner.join(", "))
            }
        }
    }
}

/// An expression with column indices and UDF handles resolved.
#[derive(Clone)]
pub enum CompiledExpr {
    /// Column by position.
    Col(usize),
    /// Constant.
    Lit(Value),
    /// Binary op.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        left: Box<CompiledExpr>,
        /// Right operand.
        right: Box<CompiledExpr>,
    },
    /// Logical negation.
    Not(Box<CompiledExpr>),
    /// Resolved scalar function call.
    Call {
        /// The function implementation.
        udf: Arc<dyn crate::udf::ScalarUdf>,
        /// Compiled arguments.
        args: Vec<CompiledExpr>,
    },
}

impl CompiledExpr {
    /// Evaluate over row `row` of `table`.
    pub fn eval(&self, table: &Table, row: usize) -> RelResult<Value> {
        match self {
            CompiledExpr::Col(idx) => Ok(table.column(*idx).value(row)),
            CompiledExpr::Lit(v) => Ok(v.clone()),
            CompiledExpr::Binary { op, left, right } => {
                // Short-circuit logical operators before evaluating the
                // right side.
                if *op == BinOp::And || *op == BinOp::Or {
                    let l = expect_bool(left.eval(table, row)?, "AND/OR")?;
                    return match (op, l) {
                        (BinOp::And, false) => Ok(Value::Bool(false)),
                        (BinOp::Or, true) => Ok(Value::Bool(true)),
                        _ => {
                            let r = expect_bool(right.eval(table, row)?, "AND/OR")?;
                            Ok(Value::Bool(r))
                        }
                    };
                }
                let l = left.eval(table, row)?;
                let r = right.eval(table, row)?;
                eval_binary(*op, l, r)
            }
            CompiledExpr::Not(inner) => {
                let v = expect_bool(inner.eval(table, row)?, "NOT")?;
                Ok(Value::Bool(!v))
            }
            CompiledExpr::Call { udf, args } => {
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(a.eval(table, row)?);
                }
                udf.invoke(&values)
            }
        }
    }

    /// Evaluate over every row, producing one value per row.
    pub fn eval_all(&self, table: &Table) -> RelResult<Vec<Value>> {
        (0..table.num_rows())
            .map(|row| self.eval(table, row))
            .collect()
    }
}

fn expect_bool(v: Value, context: &str) -> RelResult<bool> {
    v.as_bool().ok_or_else(|| RelError::TypeMismatch {
        expected: "BOOL".into(),
        actual: v.data_type().to_string(),
        context: context.into(),
    })
}

fn eval_binary(op: BinOp, l: Value, r: Value) -> RelResult<Value> {
    use BinOp::*;
    match op {
        Eq => Ok(Value::Bool(l == r)),
        Ne => Ok(Value::Bool(l != r)),
        Lt => Ok(Value::Bool(l < r)),
        Le => Ok(Value::Bool(l <= r)),
        Gt => Ok(Value::Bool(l > r)),
        Ge => Ok(Value::Bool(l >= r)),
        Add | Sub | Mul | Div => eval_arith(op, l, r),
        And | Or => unreachable!("handled with short-circuit"),
    }
}

fn eval_arith(op: BinOp, l: Value, r: Value) -> RelResult<Value> {
    // Integer arithmetic stays integral except for division, which always
    // produces a float (matching the modularity formulas' expectations).
    if let (Value::Int(a), Value::Int(b)) = (&l, &r) {
        return Ok(match op {
            BinOp::Add => Value::Int(a.wrapping_add(*b)),
            BinOp::Sub => Value::Int(a.wrapping_sub(*b)),
            BinOp::Mul => Value::Int(a.wrapping_mul(*b)),
            BinOp::Div => {
                if *b == 0 {
                    return Err(RelError::Eval("division by zero".into()));
                }
                Value::Float(*a as f64 / *b as f64)
            }
            _ => unreachable!(),
        });
    }
    let (a, b) = match (l.as_float(), r.as_float()) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err(RelError::TypeMismatch {
                expected: "numeric".into(),
                actual: format!("{} {} {}", l.data_type(), op, r.data_type()),
                context: "arithmetic".into(),
            })
        }
    };
    Ok(Value::Float(match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => {
            if b == 0.0 {
                return Err(RelError::Eval("division by zero".into()));
            }
            a / b
        }
        _ => unreachable!(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn table() -> Table {
        let schema = Schema::of(&[("name", DataType::Str), ("n", DataType::Int)]);
        Table::from_rows(
            schema,
            vec![
                vec![Value::str("NFL"), Value::Int(3)],
                vec![Value::str("49ers"), Value::Int(10)],
            ],
        )
        .unwrap()
    }

    fn compile(e: &Expr, t: &Table) -> CompiledExpr {
        e.compile(t.schema(), &UdfRegistry::with_builtins()).unwrap()
    }

    #[test]
    fn comparison_and_arithmetic() {
        let t = table();
        let e = Expr::col("n").gt(Expr::lit(5_i64));
        let c = compile(&e, &t);
        assert_eq!(c.eval(&t, 0).unwrap(), Value::Bool(false));
        assert_eq!(c.eval(&t, 1).unwrap(), Value::Bool(true));

        let sum = Expr::col("n").binary(BinOp::Add, Expr::lit(1_i64));
        assert_eq!(compile(&sum, &t).eval(&t, 0).unwrap(), Value::Int(4));
    }

    #[test]
    fn division_is_float_and_checked() {
        let t = table();
        let div = Expr::col("n").binary(BinOp::Div, Expr::lit(4_i64));
        assert_eq!(compile(&div, &t).eval(&t, 1).unwrap(), Value::Float(2.5));
        let by_zero = Expr::col("n").binary(BinOp::Div, Expr::lit(0_i64));
        assert!(compile(&by_zero, &t).eval(&t, 0).is_err());
    }

    #[test]
    fn short_circuit_avoids_rhs_errors() {
        let t = table();
        // RHS would be a type error (Int where BOOL expected); AND must not
        // reach it when LHS is false.
        let e = Expr::lit(false).and(Expr::col("n"));
        assert_eq!(compile(&e, &t).eval(&t, 0).unwrap(), Value::Bool(false));
        let e = Expr::lit(true).or(Expr::col("n"));
        assert_eq!(compile(&e, &t).eval(&t, 0).unwrap(), Value::Bool(true));
    }

    #[test]
    fn builtin_lower_applies() {
        let t = table();
        let e = Expr::call("lower", vec![Expr::col("name")]);
        assert_eq!(compile(&e, &t).eval(&t, 0).unwrap(), Value::str("nfl"));
    }

    #[test]
    fn unknown_column_fails_compile() {
        let t = table();
        let e = Expr::col("missing");
        assert!(e
            .compile(t.schema(), &UdfRegistry::with_builtins())
            .is_err());
    }

    #[test]
    fn output_type_inference() {
        let t = table();
        let udfs = UdfRegistry::with_builtins();
        assert_eq!(
            Expr::col("n")
                .gt(Expr::lit(1_i64))
                .output_type(t.schema(), &udfs)
                .unwrap(),
            DataType::Bool
        );
        assert_eq!(
            Expr::col("n")
                .binary(BinOp::Div, Expr::lit(2_i64))
                .output_type(t.schema(), &udfs)
                .unwrap(),
            DataType::Float
        );
    }
}
