//! Scalar values and data types.
//!
//! The engine supports exactly the four types the e# pipeline needs:
//! booleans, 64-bit integers, 64-bit floats and interned strings. There is
//! deliberately no NULL: every query in the pipeline (including the Figure 4
//! community-detection queries) is NULL-free, and omitting nullability keeps
//! every operator's hot loop branch-free.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The type of a column or scalar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 float.
    Float,
    /// UTF-8 string (reference-counted, cheap to clone).
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DataType::Bool => "BOOL",
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "STR",
        };
        f.write_str(name)
    }
}

/// A single scalar value.
///
/// Strings are `Arc<str>` so that values can be cloned freely during
/// partitioning and shuffling without copying the bytes.
#[derive(Debug, Clone)]
pub enum Value {
    /// Boolean value.
    Bool(bool),
    /// Integer value.
    Int(i64),
    /// Float value.
    Float(f64),
    /// String value.
    Str(Arc<str>),
}

impl Value {
    /// Construct a string value from anything string-like.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The runtime type of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Bool(_) => DataType::Bool,
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Str(_) => DataType::Str,
        }
    }

    /// Extract a boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Extract an integer, if this is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Extract a float. Integers are widened, which mirrors SQL's implicit
    /// numeric promotion and lets `distance > 0` work whether the column
    /// was loaded as INT or FLOAT.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Extract a string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Approximate in-memory footprint in bytes, used for the Table 9 style
    /// read/write accounting.
    pub fn byte_size(&self) -> usize {
        match self {
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 8,
            Value::Str(s) => s.len(),
        }
    }
}

/// Canonicalize a float for hashing/equality: all NaNs are identified and
/// negative zero maps to positive zero. The engine never produces NaN in
/// pipeline queries, but property tests exercise it.
fn canonical_f64_bits(x: f64) -> u64 {
    if x.is_nan() {
        f64::NAN.to_bits()
    } else if x == 0.0 {
        0.0_f64.to_bits()
    } else {
        x.to_bits()
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => canonical_f64_bits(*a) == canonical_f64_bits(*b),
            (Value::Str(a), Value::Str(b)) => a == b,
            // Cross-type numeric equality: keeps `Int` and `Float` join keys
            // coherent after arithmetic promoted one side.
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => {
                (*a as f64) == *b
            }
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Bool(b) => {
                state.write_u8(0);
                b.hash(state);
            }
            Value::Int(i) => {
                state.write_u8(1);
                // Hash ints through the float canonicalization when they are
                // representable, so Int(2) and Float(2.0) collide as equals
                // require.
                state.write_u64(canonical_f64_bits(*i as f64));
            }
            Value::Float(x) => {
                state.write_u8(1);
                state.write_u64(canonical_f64_bits(*x));
            }
            Value::Str(s) => {
                state.write_u8(3);
                s.hash(state);
            }
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: within a type, natural order (floats by IEEE total order
    /// after NaN canonicalization); across numeric types, by numeric value;
    /// otherwise by type tag. Used by the sort operator and by deterministic
    /// tie-breaking in aggregates.
    fn cmp(&self, other: &Self) -> Ordering {
        fn tag(v: &Value) -> u8 {
            match v {
                Value::Bool(_) => 0,
                Value::Int(_) | Value::Float(_) => 1,
                Value::Str(_) => 2,
            }
        }
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => total_f64_cmp(*a, *b),
            (Value::Int(a), Value::Float(b)) => total_f64_cmp(*a as f64, *b),
            (Value::Float(a), Value::Int(b)) => total_f64_cmp(*a, *b as f64),
            (a, b) => tag(a).cmp(&tag(b)),
        }
    }
}

fn total_f64_cmp(a: f64, b: f64) -> Ordering {
    f64::from_bits(canonical_f64_bits(a)).total_cmp(&f64::from_bits(canonical_f64_bits(b)))
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn display_round_trip() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::str("abc").to_string(), "abc");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }

    #[test]
    fn numeric_cross_type_equality_and_hash() {
        let a = Value::Int(7);
        let b = Value::Float(7.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn nan_is_self_equal_after_canonicalization() {
        let a = Value::Float(f64::NAN);
        let b = Value::Float(-f64::NAN);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
        assert_eq!(a.cmp(&b), Ordering::Equal);
    }

    #[test]
    fn negative_zero_equals_positive_zero() {
        assert_eq!(Value::Float(-0.0), Value::Float(0.0));
        assert_eq!(hash_of(&Value::Float(-0.0)), hash_of(&Value::Float(0.0)));
    }

    #[test]
    fn ordering_within_types() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::str("a") < Value::str("b"));
        assert!(Value::Float(1.5) < Value::Int(2));
        assert!(Value::Bool(false) < Value::Bool(true));
    }

    #[test]
    fn as_float_widens_ints() {
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
        assert_eq!(Value::str("x").as_float(), None);
    }

    #[test]
    fn byte_size_accounts_strings() {
        assert_eq!(Value::str("abcd").byte_size(), 4);
        assert_eq!(Value::Int(0).byte_size(), 8);
        assert_eq!(Value::Bool(true).byte_size(), 1);
    }
}
