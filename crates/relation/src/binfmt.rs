//! Compact binary serialization of tables.
//!
//! The offline pipeline ships its intermediate relations between runs (the
//! paper persists the graph and the domain collection between weekly
//! iterations); JSON is ~4× larger and slower for numeric columns. Format:
//!
//! ```text
//! magic "ESRT" | version u16 | crc32 u32 (v2+) | columns u32 | rows u64
//! per column: name (u16 len + utf8) | dtype u8 | payload
//!   Bool : rows bytes (0/1)
//!   Int  : rows × i64 LE
//!   Float: rows × f64 LE
//!   Str  : rows × (u32 len + utf8)
//! ```
//!
//! Version 2 (current) adds a CRC32 over everything after the checksum
//! field, so a torn write, truncation, or silent single-bit flip anywhere
//! in the frame is detected at decode time instead of yielding a
//! plausible-but-wrong table. Version 1 frames (no checksum) remain
//! readable for artifacts persisted by older runs.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::atomic::{atomic_write, atomic_write_with, crc32};
use crate::column::Column;
use esharp_fault::{FaultInjector, RetryPolicy};
use crate::error::{RelError, RelResult};
use crate::schema::{Field, Schema};
use crate::table::Table;
use crate::value::DataType;
use bytes::{BufMut, Bytes, BytesMut};
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"ESRT";
const VERSION: u16 = 2;

/// Serialize a table into the binary format (v2: checksummed).
pub fn encode_table(table: &Table) -> Bytes {
    // The checksum covers everything after the crc field, so the payload
    // is built first and the header prepended once the crc is known.
    let mut payload = BytesMut::with_capacity(table.byte_size() + 64);
    payload.put_u32_le(table.schema().len() as u32);
    payload.put_u64_le(table.num_rows() as u64);
    for (field, column) in table.schema().fields().iter().zip(table.columns()) {
        payload.put_u16_le(field.name.len() as u16);
        payload.put_slice(field.name.as_bytes());
        payload.put_u8(dtype_tag(field.dtype));
        match column {
            Column::Bool(v) => {
                for &b in v {
                    payload.put_u8(b as u8);
                }
            }
            Column::Int(v) => {
                for &i in v {
                    payload.put_i64_le(i);
                }
            }
            Column::Float(v) => {
                for &x in v {
                    payload.put_f64_le(x);
                }
            }
            Column::Str(v) => {
                for s in v {
                    payload.put_u32_le(s.len() as u32);
                    payload.put_slice(s.as_bytes());
                }
            }
        }
    }
    let payload = payload.freeze();
    let mut buf = BytesMut::with_capacity(payload.len() + 10);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u32_le(crc32(&payload));
    buf.put_slice(&payload);
    buf.freeze()
}

/// Deserialize a table from the binary format. Accepts the current
/// checksummed v2 frames and legacy v1 frames (no checksum).
///
/// Decoding runs over a plain byte slice with bulk per-column loops
/// (`chunks_exact` for the fixed-width types) instead of a per-value
/// cursor — column payloads are contiguous, so this is the difference
/// between a vectorizable copy and hundreds of thousands of bounds
/// checks on the corpus-sized frames of the online read path.
pub fn decode_table(data: Bytes) -> RelResult<Table> {
    let err = |msg: &str| RelError::Eval(format!("binary table decode: {msg}"));
    let buf: &[u8] = &data;
    if buf.len() < 4 + 2 + 4 + 8 {
        return Err(err("truncated header"));
    }
    if &buf[..4] != MAGIC {
        return Err(err("bad magic"));
    }
    let version = u16::from_le_bytes([buf[4], buf[5]]);
    let mut off = 6usize;
    match version {
        1 => {}
        2 => {
            if buf.len() - off < 4 + 4 + 8 {
                return Err(err("truncated header"));
            }
            let expected = u32::from_le_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]]);
            off += 4;
            if crc32(&buf[off..]) != expected {
                return Err(err("checksum mismatch"));
            }
        }
        other => return Err(err(&format!("unsupported version {other}"))),
    }
    if buf.len() - off < 4 + 8 {
        return Err(err("truncated header"));
    }
    let columns = u32::from_le_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]]) as usize;
    off += 4;
    let rows = u64::from_le_bytes([
        buf[off],
        buf[off + 1],
        buf[off + 2],
        buf[off + 3],
        buf[off + 4],
        buf[off + 5],
        buf[off + 6],
        buf[off + 7],
    ]);
    off += 8;
    let rows = usize::try_from(rows).map_err(|_| err("row count overflows usize"))?;

    let mut fields = Vec::with_capacity(columns.min(1024));
    let mut cols = Vec::with_capacity(columns.min(1024));
    for _ in 0..columns {
        if buf.len() - off < 2 {
            return Err(err("truncated column name length"));
        }
        let name_len = u16::from_le_bytes([buf[off], buf[off + 1]]) as usize;
        off += 2;
        if buf.len() - off < name_len + 1 {
            return Err(err("truncated column name"));
        }
        let name = std::str::from_utf8(&buf[off..off + name_len])
            .map_err(|_| err("column name not UTF-8"))?
            .to_string();
        off += name_len;
        let dtype = tag_dtype(buf[off]).ok_or_else(|| err("unknown dtype tag"))?;
        off += 1;
        let column = match dtype {
            DataType::Bool => {
                if buf.len() - off < rows {
                    return Err(err("truncated bool column"));
                }
                let v = buf[off..off + rows].iter().map(|&b| b != 0).collect();
                off += rows;
                Column::Bool(v)
            }
            DataType::Int => {
                let bytes = rows.checked_mul(8).ok_or_else(|| err("int column overflows"))?;
                if buf.len() - off < bytes {
                    return Err(err("truncated int column"));
                }
                let v = buf[off..off + bytes]
                    .chunks_exact(8)
                    .map(|c| i64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
                    .collect();
                off += bytes;
                Column::Int(v)
            }
            DataType::Float => {
                let bytes = rows
                    .checked_mul(8)
                    .ok_or_else(|| err("float column overflows"))?;
                if buf.len() - off < bytes {
                    return Err(err("truncated float column"));
                }
                let v = buf[off..off + bytes]
                    .chunks_exact(8)
                    .map(|c| f64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
                    .collect();
                off += bytes;
                Column::Float(v)
            }
            DataType::Str => {
                // Capacity is clamped by what the payload could possibly
                // hold (4 length bytes per row) so a corrupt row count
                // cannot force a huge allocation before the first row
                // fails to parse.
                let mut v: Vec<Arc<str>> = Vec::with_capacity(rows.min((buf.len() - off) / 4));
                for _ in 0..rows {
                    if buf.len() - off < 4 {
                        return Err(err("truncated string length"));
                    }
                    let len =
                        u32::from_le_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
                            as usize;
                    off += 4;
                    if buf.len() - off < len {
                        return Err(err("truncated string payload"));
                    }
                    let s = std::str::from_utf8(&buf[off..off + len])
                        .map_err(|_| err("string not UTF-8"))?;
                    off += len;
                    v.push(Arc::from(s));
                }
                Column::Str(v)
            }
        };
        fields.push(Field::new(name, dtype));
        cols.push(column);
    }
    if off != buf.len() {
        return Err(err("trailing bytes after the last column"));
    }
    Table::new(Arc::new(Schema::new(fields)?), cols)
}

/// Concatenate tables into one buffer of length-prefixed frames
/// (`u64 LE frame length | frame` per table) — the on-disk container the
/// graph file and the checkpoint artifacts use.
pub fn encode_frames(tables: &[Table]) -> Vec<u8> {
    let mut out = Vec::new();
    for table in tables {
        let bytes = encode_table(table);
        out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        out.extend_from_slice(&bytes);
    }
    out
}

/// Decode a buffer of length-prefixed frames produced by
/// [`encode_frames`]. Strict: a truncated prefix, an overlong length, or
/// trailing bytes after the final frame all error — extra bytes after a
/// valid prefix are how a torn append masquerades as a good artifact.
pub fn decode_frames(data: &[u8]) -> RelResult<Vec<Table>> {
    let err = |msg: &str| RelError::Eval(format!("binary container decode: {msg}"));
    let mut tables = Vec::new();
    let mut rest = data;
    while !rest.is_empty() {
        if rest.len() < 8 {
            return Err(err("trailing bytes where a frame length was expected"));
        }
        let (len_bytes, tail) = rest.split_at(8);
        let len = u64::from_le_bytes(
            len_bytes
                .try_into()
                .map_err(|_| err("unreadable frame length"))?,
        ) as usize;
        if len > tail.len() {
            return Err(err("frame length exceeds remaining bytes"));
        }
        let (frame, tail) = tail.split_at(len);
        tables.push(decode_table(Bytes::copy_from_slice(frame))?);
        rest = tail;
    }
    Ok(tables)
}

/// Decode exactly `expect` frames; anything else (including trailing
/// bytes, which [`decode_frames`] already rejects) errors.
pub fn decode_frames_exact(data: &[u8], expect: usize) -> RelResult<Vec<Table>> {
    let tables = decode_frames(data)?;
    if tables.len() != expect {
        return Err(RelError::Eval(format!(
            "binary container decode: expected {expect} frames, found {}",
            tables.len()
        )));
    }
    Ok(tables)
}

/// Export a table to `path` atomically (write-temp-then-rename) in the
/// checksummed binary format.
pub fn save_table(table: &Table, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
    atomic_write(path, &encode_table(table))
}

/// [`save_table`] with fault injection and bounded retry.
pub fn save_table_with(
    table: &Table,
    path: impl AsRef<std::path::Path>,
    injector: &dyn FaultInjector,
    site: &str,
    retry: &RetryPolicy,
) -> std::io::Result<()> {
    atomic_write_with(path, &encode_table(table), injector, site, retry)
}

/// Load a table exported by [`save_table`]. Corruption (truncation, bit
/// flips, trailing garbage) surfaces as an error, never a panic.
pub fn load_table(path: impl AsRef<std::path::Path>) -> std::io::Result<Table> {
    let data = std::fs::read(path)?;
    decode_table(Bytes::from(data))
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

fn dtype_tag(dtype: DataType) -> u8 {
    match dtype {
        DataType::Bool => 0,
        DataType::Int => 1,
        DataType::Float => 2,
        DataType::Str => 3,
    }
}

fn tag_dtype(tag: u8) -> Option<DataType> {
    Some(match tag {
        0 => DataType::Bool,
        1 => DataType::Int,
        2 => DataType::Float,
        3 => DataType::Str,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn sample() -> Table {
        let schema = Schema::of(&[
            ("query", DataType::Str),
            ("clicks", DataType::Int),
            ("score", DataType::Float),
            ("kept", DataType::Bool),
        ]);
        Table::from_rows(
            schema,
            vec![
                vec![
                    Value::str("49ers"),
                    Value::Int(25),
                    Value::Float(0.29),
                    Value::Bool(true),
                ],
                vec![
                    Value::str("nfl"),
                    Value::Int(-3),
                    Value::Float(-1.5),
                    Value::Bool(false),
                ],
            ],
        )
        .unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let t = sample();
        let encoded = encode_table(&t);
        let decoded = decode_table(encoded).unwrap();
        assert_eq!(decoded, t);
    }

    #[test]
    fn empty_table_round_trips() {
        let t = Table::empty(Schema::of(&[("x", DataType::Int)]));
        let decoded = decode_table(encode_table(&t)).unwrap();
        assert_eq!(decoded, t);
    }

    #[test]
    fn rejects_corruption() {
        let t = sample();
        let encoded = encode_table(&t);
        // Bad magic.
        let mut bad = encoded.to_vec();
        bad[0] = b'X';
        assert!(decode_table(Bytes::from(bad)).is_err());
        // Truncation at every prefix must error, never panic.
        for cut in [0, 4, 7, 10, 20, encoded.len() - 1] {
            let prefix = Bytes::copy_from_slice(&encoded[..cut]);
            assert!(decode_table(prefix).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn v1_frames_remain_readable() {
        let t = sample();
        let v2 = encode_table(&t);
        // A v1 frame is the same payload without the crc field.
        let mut v1 = Vec::new();
        v1.extend_from_slice(b"ESRT");
        v1.extend_from_slice(&1u16.to_le_bytes());
        v1.extend_from_slice(&v2[10..]);
        let decoded = decode_table(Bytes::from(v1)).unwrap();
        assert_eq!(decoded, t);
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let encoded = encode_table(&sample());
        for byte in 0..encoded.len() {
            for bit in 0..8 {
                let mut bad = encoded.to_vec();
                bad[byte] ^= 1 << bit;
                assert!(
                    decode_table(Bytes::from(bad)).is_err(),
                    "bit flip at byte {byte} bit {bit} accepted"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_table(&sample()).to_vec();
        bytes.push(0);
        assert!(decode_table(Bytes::from(bytes)).is_err());
    }

    #[test]
    fn frame_container_round_trips_and_rejects_corruption() {
        let a = sample();
        let b = Table::empty(Schema::of(&[("x", DataType::Int)]));
        let buf = encode_frames(&[a.clone(), b.clone()]);
        let back = decode_frames_exact(&buf, 2).unwrap();
        assert_eq!(back[0], a);
        assert_eq!(back[1], b);
        // Truncation at every byte boundary errors under the expected
        // frame count (a cut exactly at a frame boundary is a *valid
        // shorter* container, which only the count check can reject —
        // that is why every consumer states its frame count).
        for cut in 0..buf.len() {
            assert!(
                decode_frames_exact(&buf[..cut], 2).is_err(),
                "cut at {cut} accepted"
            );
        }
        // Trailing garbage errors.
        let mut extra = buf.clone();
        extra.extend_from_slice(&[1, 2, 3]);
        assert!(decode_frames(&extra).is_err());
        // Wrong frame count errors.
        assert!(decode_frames_exact(&buf, 1).is_err());
    }

    #[test]
    fn table_file_export_round_trips_and_detects_bit_flips() {
        let dir = std::env::temp_dir().join("esharp_binfmt_file_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("table.tbl");
        let t = sample();
        save_table(&t, &path).unwrap();
        assert_eq!(load_table(&path).unwrap(), t);
        let good = std::fs::read(&path).unwrap();
        for byte in 0..good.len() {
            let mut bad = good.clone();
            bad[byte] ^= 0x10;
            std::fs::write(&path, &bad).unwrap();
            assert!(load_table(&path).is_err(), "flip in byte {byte} accepted");
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn binary_is_compact_for_numeric_columns() {
        let schema = Schema::of(&[("x", DataType::Int)]);
        let t = Table::from_rows(
            schema,
            (0..100).map(|i| vec![Value::Int(i)]).collect(),
        )
        .unwrap();
        let encoded = encode_table(&t);
        // ~8 bytes/row plus small header.
        assert!(encoded.len() < 100 * 8 + 64);
    }
}
