//! Compact binary serialization of tables.
//!
//! The offline pipeline ships its intermediate relations between runs (the
//! paper persists the graph and the domain collection between weekly
//! iterations); JSON is ~4× larger and slower for numeric columns. Format:
//!
//! ```text
//! magic "ESRT" | version u16 | columns u32 | rows u64
//! per column: name (u16 len + utf8) | dtype u8 | payload
//!   Bool : rows bytes (0/1)
//!   Int  : rows × i64 LE
//!   Float: rows × f64 LE
//!   Str  : rows × (u32 len + utf8)
//! ```

use crate::column::Column;
use crate::error::{RelError, RelResult};
use crate::schema::{Field, Schema};
use crate::table::Table;
use crate::value::DataType;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"ESRT";
const VERSION: u16 = 1;

/// Serialize a table into the binary format.
pub fn encode_table(table: &Table) -> Bytes {
    let mut buf = BytesMut::with_capacity(table.byte_size() + 64);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u32_le(table.schema().len() as u32);
    buf.put_u64_le(table.num_rows() as u64);
    for (field, column) in table.schema().fields().iter().zip(table.columns()) {
        buf.put_u16_le(field.name.len() as u16);
        buf.put_slice(field.name.as_bytes());
        buf.put_u8(dtype_tag(field.dtype));
        match column {
            Column::Bool(v) => {
                for &b in v {
                    buf.put_u8(b as u8);
                }
            }
            Column::Int(v) => {
                for &i in v {
                    buf.put_i64_le(i);
                }
            }
            Column::Float(v) => {
                for &x in v {
                    buf.put_f64_le(x);
                }
            }
            Column::Str(v) => {
                for s in v {
                    buf.put_u32_le(s.len() as u32);
                    buf.put_slice(s.as_bytes());
                }
            }
        }
    }
    buf.freeze()
}

/// Deserialize a table from the binary format.
pub fn decode_table(mut data: Bytes) -> RelResult<Table> {
    let err = |msg: &str| RelError::Eval(format!("binary table decode: {msg}"));
    if data.remaining() < 4 + 2 + 4 + 8 {
        return Err(err("truncated header"));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(err("bad magic"));
    }
    let version = data.get_u16_le();
    if version != VERSION {
        return Err(err(&format!("unsupported version {version}")));
    }
    let columns = data.get_u32_le() as usize;
    let rows = data.get_u64_le() as usize;

    let mut fields = Vec::with_capacity(columns);
    let mut cols = Vec::with_capacity(columns);
    for _ in 0..columns {
        if data.remaining() < 2 {
            return Err(err("truncated column name length"));
        }
        let name_len = data.get_u16_le() as usize;
        if data.remaining() < name_len + 1 {
            return Err(err("truncated column name"));
        }
        let name_bytes = data.copy_to_bytes(name_len);
        let name = std::str::from_utf8(&name_bytes)
            .map_err(|_| err("column name not UTF-8"))?
            .to_string();
        let dtype = tag_dtype(data.get_u8()).ok_or_else(|| err("unknown dtype tag"))?;
        let column = match dtype {
            DataType::Bool => {
                if data.remaining() < rows {
                    return Err(err("truncated bool column"));
                }
                let mut v = Vec::with_capacity(rows);
                for _ in 0..rows {
                    v.push(data.get_u8() != 0);
                }
                Column::Bool(v)
            }
            DataType::Int => {
                if data.remaining() < rows * 8 {
                    return Err(err("truncated int column"));
                }
                let mut v = Vec::with_capacity(rows);
                for _ in 0..rows {
                    v.push(data.get_i64_le());
                }
                Column::Int(v)
            }
            DataType::Float => {
                if data.remaining() < rows * 8 {
                    return Err(err("truncated float column"));
                }
                let mut v = Vec::with_capacity(rows);
                for _ in 0..rows {
                    v.push(data.get_f64_le());
                }
                Column::Float(v)
            }
            DataType::Str => {
                let mut v: Vec<Arc<str>> = Vec::with_capacity(rows);
                for _ in 0..rows {
                    if data.remaining() < 4 {
                        return Err(err("truncated string length"));
                    }
                    let len = data.get_u32_le() as usize;
                    if data.remaining() < len {
                        return Err(err("truncated string payload"));
                    }
                    let bytes = data.copy_to_bytes(len);
                    let s = std::str::from_utf8(&bytes)
                        .map_err(|_| err("string not UTF-8"))?;
                    v.push(Arc::from(s));
                }
                Column::Str(v)
            }
        };
        fields.push(Field::new(name, dtype));
        cols.push(column);
    }
    Table::new(Arc::new(Schema::new(fields)?), cols)
}

fn dtype_tag(dtype: DataType) -> u8 {
    match dtype {
        DataType::Bool => 0,
        DataType::Int => 1,
        DataType::Float => 2,
        DataType::Str => 3,
    }
}

fn tag_dtype(tag: u8) -> Option<DataType> {
    Some(match tag {
        0 => DataType::Bool,
        1 => DataType::Int,
        2 => DataType::Float,
        3 => DataType::Str,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn sample() -> Table {
        let schema = Schema::of(&[
            ("query", DataType::Str),
            ("clicks", DataType::Int),
            ("score", DataType::Float),
            ("kept", DataType::Bool),
        ]);
        Table::from_rows(
            schema,
            vec![
                vec![
                    Value::str("49ers"),
                    Value::Int(25),
                    Value::Float(0.29),
                    Value::Bool(true),
                ],
                vec![
                    Value::str("nfl"),
                    Value::Int(-3),
                    Value::Float(-1.5),
                    Value::Bool(false),
                ],
            ],
        )
        .unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let t = sample();
        let encoded = encode_table(&t);
        let decoded = decode_table(encoded).unwrap();
        assert_eq!(decoded, t);
    }

    #[test]
    fn empty_table_round_trips() {
        let t = Table::empty(Schema::of(&[("x", DataType::Int)]));
        let decoded = decode_table(encode_table(&t)).unwrap();
        assert_eq!(decoded, t);
    }

    #[test]
    fn rejects_corruption() {
        let t = sample();
        let encoded = encode_table(&t);
        // Bad magic.
        let mut bad = encoded.to_vec();
        bad[0] = b'X';
        assert!(decode_table(Bytes::from(bad)).is_err());
        // Truncation at every prefix must error, never panic.
        for cut in [0, 4, 7, 10, 20, encoded.len() - 1] {
            let prefix = Bytes::copy_from_slice(&encoded[..cut]);
            assert!(decode_table(prefix).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn binary_is_compact_for_numeric_columns() {
        let schema = Schema::of(&[("x", DataType::Int)]);
        let t = Table::from_rows(
            schema,
            (0..100).map(|i| vec![Value::Int(i)]).collect(),
        )
        .unwrap();
        let encoded = encode_table(&t);
        // ~8 bytes/row plus small header.
        assert!(encoded.len() < 100 * 8 + 64);
    }
}
