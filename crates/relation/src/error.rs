//! Error type shared by every layer of the relational engine.

use std::fmt;

/// Errors produced by the relational engine.
///
/// The engine is deliberately strict: schema mismatches, unknown columns and
/// type errors are reported eagerly instead of being papered over, because
/// the community-detection pipeline built on top of it (see
/// `esharp-community`) iterates the same plan many times and a silent
/// mis-bind would corrupt every iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelError {
    /// A referenced column does not exist in the input schema.
    UnknownColumn(String),
    /// A referenced table does not exist in the catalog.
    UnknownTable(String),
    /// A referenced scalar function or aggregate does not exist.
    UnknownFunction(String),
    /// Two values or columns had incompatible types for the operation.
    TypeMismatch {
        /// What the operation expected.
        expected: String,
        /// What it actually received.
        actual: String,
        /// Short description of the operation that failed.
        context: String,
    },
    /// The SQL text could not be tokenized or parsed.
    Parse(String),
    /// A plan was structurally invalid (e.g. join key arity mismatch).
    InvalidPlan(String),
    /// Row-level evaluation failure (e.g. division by zero).
    Eval(String),
    /// Schema construction failure (e.g. duplicate column names).
    Schema(String),
    /// Paged storage / spill I-O failure (wraps the `std::io` error text).
    Storage(String),
}

impl From<std::io::Error> for RelError {
    fn from(err: std::io::Error) -> Self {
        RelError::Storage(err.to_string())
    }
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::UnknownColumn(name) => write!(f, "unknown column: {name}"),
            RelError::UnknownTable(name) => write!(f, "unknown table: {name}"),
            RelError::UnknownFunction(name) => write!(f, "unknown function: {name}"),
            RelError::TypeMismatch {
                expected,
                actual,
                context,
            } => write!(
                f,
                "type mismatch in {context}: expected {expected}, got {actual}"
            ),
            RelError::Parse(msg) => write!(f, "SQL parse error: {msg}"),
            RelError::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
            RelError::Eval(msg) => write!(f, "evaluation error: {msg}"),
            RelError::Schema(msg) => write!(f, "schema error: {msg}"),
            RelError::Storage(msg) => write!(f, "storage error: {msg}"),
        }
    }
}

impl std::error::Error for RelError {}

/// Convenience result alias used across the crate.
pub type RelResult<T> = Result<T, RelError>;
