//! Named-table catalog.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::error::{RelError, RelResult};
use crate::paged::PagedTable;
use crate::table::Table;
use esharp_storage::BufferPool;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Where a registered table's rows live.
#[derive(Debug, Clone)]
pub enum Source {
    /// Fully materialized in memory.
    Mem(Table),
    /// On disk in a paged heap file; scans stream pages through the pool.
    Paged {
        /// The paged table.
        table: Arc<PagedTable>,
        /// The buffer pool its scans go through.
        pool: Arc<BufferPool>,
    },
}

impl Source {
    /// Row count without materializing.
    pub fn num_rows(&self) -> u64 {
        match self {
            Source::Mem(t) => t.num_rows() as u64,
            Source::Paged { table, .. } => table.num_rows(),
        }
    }

    /// Approximate byte footprint without materializing.
    pub fn byte_size(&self) -> u64 {
        match self {
            Source::Mem(t) => t.byte_size() as u64,
            Source::Paged { table, .. } => table.byte_size(),
        }
    }
}

/// A mutable, thread-safe registry of named tables.
///
/// The community-detection driver re-registers the `communities` table on
/// every iteration, so registration replaces silently.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: Arc<RwLock<HashMap<String, Source>>>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a table under a case-insensitive name.
    pub fn register(&self, name: impl AsRef<str>, table: Table) {
        self.tables
            .write()
            .insert(name.as_ref().to_lowercase(), Source::Mem(table));
    }

    /// Register (or replace) an on-disk paged table. Scans of this name
    /// stream pages through `pool` instead of materializing up front.
    pub fn register_paged(
        &self,
        name: impl AsRef<str>,
        table: Arc<PagedTable>,
        pool: Arc<BufferPool>,
    ) {
        self.tables
            .write()
            .insert(name.as_ref().to_lowercase(), Source::Paged { table, pool });
    }

    /// Fetch a table by case-insensitive name, materializing a paged
    /// source fully. In-memory handles are cloned (column payloads are
    /// shared `Arc`s for strings and copied vectors for numerics).
    pub fn get(&self, name: &str) -> RelResult<Table> {
        match self.get_source(name)? {
            Source::Mem(t) => Ok(t),
            Source::Paged { table, pool } => table.read_all(&pool),
        }
    }

    /// Fetch the source for a name without materializing paged tables —
    /// the physical scan operator uses this to push predicates into the
    /// page stream.
    pub fn get_source(&self, name: &str) -> RelResult<Source> {
        self.tables
            .read()
            .get(&name.to_lowercase())
            .cloned()
            .ok_or_else(|| RelError::UnknownTable(name.to_string()))
    }

    /// The schema of a registered table, without materializing it.
    pub fn schema_of(&self, name: &str) -> RelResult<crate::schema::SchemaRef> {
        Ok(match self.get_source(name)? {
            Source::Mem(t) => t.schema().clone(),
            Source::Paged { table, .. } => table.schema().clone(),
        })
    }

    /// `(rows, bytes)` of a registered table, without materializing it.
    /// These feed the planner's cost model.
    pub fn stats_of(&self, name: &str) -> RelResult<(u64, u64)> {
        let source = self.get_source(name)?;
        Ok((source.num_rows(), source.byte_size()))
    }

    /// Remove a table; returns its materialized form if present.
    pub fn remove(&self, name: &str) -> Option<Table> {
        match self.tables.write().remove(&name.to_lowercase()) {
            Some(Source::Mem(t)) => Some(t),
            Some(Source::Paged { table, pool }) => table.read_all(&pool).ok(),
            None => None,
        }
    }

    /// Names of all registered tables, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::DataType;

    #[test]
    fn register_get_replace() {
        let cat = Catalog::new();
        let t = Table::empty(Schema::of(&[("x", DataType::Int)]));
        cat.register("Graph", t.clone());
        assert!(cat.get("graph").is_ok());
        assert!(cat.get("GRAPH").is_ok());
        assert!(cat.get("missing").is_err());
        let t2 = Table::empty(Schema::of(&[("y", DataType::Str)]));
        cat.register("graph", t2.clone());
        assert_eq!(cat.get("graph").unwrap(), t2);
        assert_eq!(cat.names(), vec!["graph".to_string()]);
        assert!(cat.remove("graph").is_some());
        assert!(cat.get("graph").is_err());
    }
}
