//! Named-table catalog.

use crate::error::{RelError, RelResult};
use crate::table::Table;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// A mutable, thread-safe registry of named tables.
///
/// The community-detection driver re-registers the `communities` table on
/// every iteration, so registration replaces silently.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: Arc<RwLock<HashMap<String, Table>>>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a table under a case-insensitive name.
    pub fn register(&self, name: impl AsRef<str>, table: Table) {
        self.tables
            .write()
            .insert(name.as_ref().to_lowercase(), table);
    }

    /// Fetch a table by case-insensitive name (clones the handle; column
    /// payloads are shared `Arc`s for strings and copied vectors for
    /// numerics).
    pub fn get(&self, name: &str) -> RelResult<Table> {
        self.tables
            .read()
            .get(&name.to_lowercase())
            .cloned()
            .ok_or_else(|| RelError::UnknownTable(name.to_string()))
    }

    /// Remove a table; returns it if present.
    pub fn remove(&self, name: &str) -> Option<Table> {
        self.tables.write().remove(&name.to_lowercase())
    }

    /// Names of all registered tables, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::DataType;

    #[test]
    fn register_get_replace() {
        let cat = Catalog::new();
        let t = Table::empty(Schema::of(&[("x", DataType::Int)]));
        cat.register("Graph", t.clone());
        assert!(cat.get("graph").is_ok());
        assert!(cat.get("GRAPH").is_ok());
        assert!(cat.get("missing").is_err());
        let t2 = Table::empty(Schema::of(&[("y", DataType::Str)]));
        cat.register("graph", t2.clone());
        assert_eq!(cat.get("graph").unwrap(), t2);
        assert_eq!(cat.names(), vec!["graph".to_string()]);
        assert!(cat.remove("graph").is_some());
        assert!(cat.get("graph").is_err());
    }
}
