//! Columnar storage: one typed vector per column.

use crate::error::{RelError, RelResult};
use crate::value::{DataType, Value};
use std::sync::Arc;

/// A column of values, stored as a typed vector.
///
/// Keeping values unboxed per type (rather than `Vec<Value>`) roughly halves
/// the memory footprint of the similarity-graph tables and keeps scans over
/// numeric columns allocation-free.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Boolean column.
    Bool(Vec<bool>),
    /// Integer column.
    Int(Vec<i64>),
    /// Float column.
    Float(Vec<f64>),
    /// String column.
    Str(Vec<Arc<str>>),
}

impl Column {
    /// Create an empty column of the given type.
    pub fn empty(dtype: DataType) -> Self {
        match dtype {
            DataType::Bool => Column::Bool(Vec::new()),
            DataType::Int => Column::Int(Vec::new()),
            DataType::Float => Column::Float(Vec::new()),
            DataType::Str => Column::Str(Vec::new()),
        }
    }

    /// Create an empty column with pre-reserved capacity.
    pub fn with_capacity(dtype: DataType, cap: usize) -> Self {
        match dtype {
            DataType::Bool => Column::Bool(Vec::with_capacity(cap)),
            DataType::Int => Column::Int(Vec::with_capacity(cap)),
            DataType::Float => Column::Float(Vec::with_capacity(cap)),
            DataType::Str => Column::Str(Vec::with_capacity(cap)),
        }
    }

    /// The column's data type.
    pub fn dtype(&self) -> DataType {
        match self {
            Column::Bool(_) => DataType::Bool,
            Column::Int(_) => DataType::Int,
            Column::Float(_) => DataType::Float,
            Column::Str(_) => DataType::Str,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Bool(v) => v.len(),
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Str(v) => v.len(),
        }
    }

    /// True if the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at `idx` (clones; strings are cheap `Arc` bumps).
    pub fn value(&self, idx: usize) -> Value {
        match self {
            Column::Bool(v) => Value::Bool(v[idx]),
            Column::Int(v) => Value::Int(v[idx]),
            Column::Float(v) => Value::Float(v[idx]),
            Column::Str(v) => Value::Str(Arc::clone(&v[idx])),
        }
    }

    /// Append a value, checking the type.
    pub fn push(&mut self, value: Value) -> RelResult<()> {
        match (self, value) {
            (Column::Bool(v), Value::Bool(b)) => v.push(b),
            (Column::Int(v), Value::Int(i)) => v.push(i),
            (Column::Float(v), Value::Float(x)) => v.push(x),
            // Implicit int→float widening mirrors `Value::as_float`.
            (Column::Float(v), Value::Int(i)) => v.push(i as f64),
            (Column::Str(v), Value::Str(s)) => v.push(s),
            (col, value) => {
                return Err(RelError::TypeMismatch {
                    expected: col.dtype().to_string(),
                    actual: value.data_type().to_string(),
                    context: "Column::push".to_string(),
                })
            }
        }
        Ok(())
    }

    /// Append the value at `idx` of `other` (same-typed columns only).
    /// Avoids the `Value` round-trip on the hot shuffle path.
    pub fn push_from(&mut self, other: &Column, idx: usize) {
        match (self, other) {
            (Column::Bool(dst), Column::Bool(src)) => dst.push(src[idx]),
            (Column::Int(dst), Column::Int(src)) => dst.push(src[idx]),
            (Column::Float(dst), Column::Float(src)) => dst.push(src[idx]),
            (Column::Str(dst), Column::Str(src)) => dst.push(Arc::clone(&src[idx])),
            _ => panic!("push_from across column types"),
        }
    }

    /// Gather rows at the given indices into a new column.
    pub fn gather(&self, indices: &[usize]) -> Column {
        match self {
            Column::Bool(v) => Column::Bool(indices.iter().map(|&i| v[i]).collect()),
            Column::Int(v) => Column::Int(indices.iter().map(|&i| v[i]).collect()),
            Column::Float(v) => Column::Float(indices.iter().map(|&i| v[i]).collect()),
            Column::Str(v) => Column::Str(indices.iter().map(|&i| Arc::clone(&v[i])).collect()),
        }
    }

    /// Keep only the rows where `mask` is true. `mask.len()` must equal
    /// `self.len()`.
    pub fn filter(&self, mask: &[bool]) -> Column {
        debug_assert_eq!(mask.len(), self.len());
        match self {
            Column::Bool(v) => Column::Bool(filter_vec(v, mask)),
            Column::Int(v) => Column::Int(filter_vec(v, mask)),
            Column::Float(v) => Column::Float(filter_vec(v, mask)),
            Column::Str(v) => Column::Str(
                v.iter()
                    .zip(mask)
                    .filter(|(_, &keep)| keep)
                    .map(|(s, _)| Arc::clone(s))
                    .collect(),
            ),
        }
    }

    /// Append all rows of `other` (same type required).
    pub fn extend_from(&mut self, other: &Column) -> RelResult<()> {
        match (self, other) {
            (Column::Bool(dst), Column::Bool(src)) => dst.extend_from_slice(src),
            (Column::Int(dst), Column::Int(src)) => dst.extend_from_slice(src),
            (Column::Float(dst), Column::Float(src)) => dst.extend_from_slice(src),
            (Column::Str(dst), Column::Str(src)) => dst.extend(src.iter().map(Arc::clone)),
            (dst, src) => {
                return Err(RelError::TypeMismatch {
                    expected: dst.dtype().to_string(),
                    actual: src.dtype().to_string(),
                    context: "Column::extend_from".to_string(),
                })
            }
        }
        Ok(())
    }

    /// Approximate byte footprint of the column payload.
    pub fn byte_size(&self) -> usize {
        match self {
            Column::Bool(v) => v.len(),
            Column::Int(v) => v.len() * 8,
            Column::Float(v) => v.len() * 8,
            Column::Str(v) => v.iter().map(|s| s.len()).sum(),
        }
    }

    /// Borrow as an integer slice, if this is an int column.
    pub fn as_int(&self) -> Option<&[i64]> {
        match self {
            Column::Int(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as a float slice, if this is a float column.
    pub fn as_float(&self) -> Option<&[f64]> {
        match self {
            Column::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as a string slice column, if this is a string column.
    pub fn as_str(&self) -> Option<&[Arc<str>]> {
        match self {
            Column::Str(v) => Some(v),
            _ => None,
        }
    }
}

fn filter_vec<T: Copy>(v: &[T], mask: &[bool]) -> Vec<T> {
    v.iter()
        .zip(mask)
        .filter(|(_, &keep)| keep)
        .map(|(x, _)| *x)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_enforces_types() {
        let mut c = Column::empty(DataType::Int);
        c.push(Value::Int(1)).unwrap();
        assert!(c.push(Value::str("x")).is_err());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn push_widens_int_to_float() {
        let mut c = Column::empty(DataType::Float);
        c.push(Value::Int(2)).unwrap();
        assert_eq!(c.value(0), Value::Float(2.0));
    }

    #[test]
    fn gather_and_filter() {
        let c = Column::Int(vec![10, 20, 30, 40]);
        assert_eq!(c.gather(&[3, 0]), Column::Int(vec![40, 10]));
        assert_eq!(
            c.filter(&[true, false, true, false]),
            Column::Int(vec![10, 30])
        );
    }

    #[test]
    fn extend_concatenates() {
        let mut a = Column::Str(vec![Arc::from("x")]);
        let b = Column::Str(vec![Arc::from("y")]);
        a.extend_from(&b).unwrap();
        assert_eq!(a.len(), 2);
        assert_eq!(a.value(1), Value::str("y"));
    }

    #[test]
    fn byte_size_strings() {
        let c = Column::Str(vec![Arc::from("ab"), Arc::from("cde")]);
        assert_eq!(c.byte_size(), 5);
    }
}
