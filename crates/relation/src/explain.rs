//! EXPLAIN-style rendering of logical plans.

use crate::expr::Expr;
use crate::plan::{AggCall, LogicalPlan};
use std::fmt::Write as _;

/// Render a logical plan as an indented operator tree, top-down:
///
/// ```text
/// Project: query1, distance
///   Filter: distance > 0.25
///     Scan: graph
/// ```
pub fn explain(plan: &LogicalPlan) -> String {
    let mut out = String::new();
    render(plan, 0, &mut out);
    out
}

fn render(plan: &LogicalPlan, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    match plan {
        LogicalPlan::Scan { table } => {
            let _ = writeln!(out, "{pad}Scan: {table}");
        }
        LogicalPlan::Filter { input, predicate } => {
            let _ = writeln!(out, "{pad}Filter: {}", expr_text(predicate));
            render(input, depth + 1, out);
        }
        LogicalPlan::Project { input, exprs } => {
            let cols: Vec<String> = exprs
                .iter()
                .map(|(e, alias)| match alias {
                    Some(a) if *a != e.default_name() => {
                        format!("{} AS {a}", expr_text(e))
                    }
                    _ => expr_text(e),
                })
                .collect();
            let _ = writeln!(out, "{pad}Project: {}", cols.join(", "));
            render(input, depth + 1, out);
        }
        LogicalPlan::Join { left, right, on } => {
            let _ = writeln!(out, "{pad}Join: {}", expr_text(on));
            render(left, depth + 1, out);
            render(right, depth + 1, out);
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let aggs_text: Vec<String> = aggs.iter().map(agg_text).collect();
            let _ = writeln!(
                out,
                "{pad}Aggregate: group by [{}], compute [{}]",
                group_by.join(", "),
                aggs_text.join(", ")
            );
            render(input, depth + 1, out);
        }
        LogicalPlan::Sort { input, keys } => {
            let keys_text: Vec<String> = keys
                .iter()
                .map(|(name, asc)| format!("{name} {}", if *asc { "ASC" } else { "DESC" }))
                .collect();
            let _ = writeln!(out, "{pad}Sort: {}", keys_text.join(", "));
            render(input, depth + 1, out);
        }
        LogicalPlan::Limit { input, n } => {
            let _ = writeln!(out, "{pad}Limit: {n}");
            render(input, depth + 1, out);
        }
        LogicalPlan::Distinct { input } => {
            let _ = writeln!(out, "{pad}Distinct");
            render(input, depth + 1, out);
        }
        LogicalPlan::UnionAll { inputs } => {
            let _ = writeln!(out, "{pad}UnionAll ({} inputs)", inputs.len());
            for input in inputs {
                render(input, depth + 1, out);
            }
        }
    }
}

fn expr_text(expr: &Expr) -> String {
    expr.default_name()
}

fn agg_text(call: &AggCall) -> String {
    format!(
        "{:?}({}) AS {}",
        call.func,
        call.args.join(", "),
        call.alias
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::ops::AggFunc;

    #[test]
    fn renders_nested_plans() {
        let plan = LogicalPlan::scan("graph")
            .filter(Expr::col("distance").gt(Expr::lit(0.25)))
            .project(vec![(Expr::col("query1"), Some("q".into()))])
            .limit(5);
        let text = explain(&plan);
        assert!(text.contains("Limit: 5"));
        assert!(text.contains("Project: query1 AS q"));
        assert!(text.contains("Filter: distance > 0.25"));
        assert!(text.contains("    Scan: graph"));
        // Indentation deepens monotonically.
        let depths: Vec<usize> = text
            .lines()
            .map(|l| l.len() - l.trim_start().len())
            .collect();
        assert_eq!(depths, vec![0, 2, 4, 6]);
    }

    #[test]
    fn renders_aggregates_and_joins() {
        let plan = LogicalPlan::scan("graph")
            .join(
                LogicalPlan::scan("communities"),
                Expr::col("query2").eq(Expr::col("query")),
            )
            .aggregate(
                vec!["comm_name".into()],
                vec![AggCall {
                    func: AggFunc::ArgMax,
                    args: vec!["distance".into(), "query1".into()],
                    alias: "owner".into(),
                }],
            );
        let text = explain(&plan);
        assert!(text.contains("Aggregate: group by [comm_name]"));
        assert!(text.contains("ArgMax(distance, query1) AS owner"));
        assert!(text.contains("Join: query2 = query"));
    }
}
