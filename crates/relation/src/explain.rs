//! EXPLAIN-style rendering of logical and physical plans.

use crate::exec::StageStats;
use crate::expr::Expr;
use crate::physical::PhysicalPlan;
use crate::plan::{AggCall, LogicalPlan};
use std::fmt::Write as _;

/// Render a logical plan as an indented operator tree, top-down:
///
/// ```text
/// Project: query1, distance
///   Filter: distance > 0.25
///     Scan: graph
/// ```
pub fn explain(plan: &LogicalPlan) -> String {
    let mut out = String::new();
    render(plan, 0, &mut out);
    out
}

fn render(plan: &LogicalPlan, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    match plan {
        LogicalPlan::Scan { table } => {
            let _ = writeln!(out, "{pad}Scan: {table}");
        }
        LogicalPlan::Filter { input, predicate } => {
            let _ = writeln!(out, "{pad}Filter: {}", expr_text(predicate));
            render(input, depth + 1, out);
        }
        LogicalPlan::Project { input, exprs } => {
            let cols: Vec<String> = exprs
                .iter()
                .map(|(e, alias)| match alias {
                    Some(a) if *a != e.default_name() => {
                        format!("{} AS {a}", expr_text(e))
                    }
                    _ => expr_text(e),
                })
                .collect();
            let _ = writeln!(out, "{pad}Project: {}", cols.join(", "));
            render(input, depth + 1, out);
        }
        LogicalPlan::Join { left, right, on } => {
            let _ = writeln!(out, "{pad}Join: {}", expr_text(on));
            render(left, depth + 1, out);
            render(right, depth + 1, out);
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let aggs_text: Vec<String> = aggs.iter().map(agg_text).collect();
            let _ = writeln!(
                out,
                "{pad}Aggregate: group by [{}], compute [{}]",
                group_by.join(", "),
                aggs_text.join(", ")
            );
            render(input, depth + 1, out);
        }
        LogicalPlan::Sort { input, keys } => {
            let keys_text: Vec<String> = keys
                .iter()
                .map(|(name, asc)| format!("{name} {}", if *asc { "ASC" } else { "DESC" }))
                .collect();
            let _ = writeln!(out, "{pad}Sort: {}", keys_text.join(", "));
            render(input, depth + 1, out);
        }
        LogicalPlan::Limit { input, n } => {
            let _ = writeln!(out, "{pad}Limit: {n}");
            render(input, depth + 1, out);
        }
        LogicalPlan::Distinct { input } => {
            let _ = writeln!(out, "{pad}Distinct");
            render(input, depth + 1, out);
        }
        LogicalPlan::UnionAll { inputs } => {
            let _ = writeln!(out, "{pad}UnionAll ({} inputs)", inputs.len());
            for input in inputs {
                render(input, depth + 1, out);
            }
        }
    }
}

/// Render an optimized physical plan with its pushdown, build-side and
/// strategy annotations:
///
/// ```text
/// Sort: distance DESC  (est 330 rows)
///   HashJoin: query2 = query  [build=right, Broadcast]  (est 1000 rows)
///     SeqScan: graph  [pred: distance > 0.25] [cols: 2/4]  (est 330 rows)
///     SeqScan: communities  (est 40 rows)
/// ```
pub fn explain_physical(plan: &PhysicalPlan) -> String {
    let mut out = String::new();
    render_physical(plan, 0, None, &mut out);
    out
}

/// Render a physical plan annotated with *measured* per-node statistics
/// (EXPLAIN ANALYZE): actual rows, bytes and spill activity from a
/// [`StageStats`] snapshot recorded by `execute_physical`, matched to
/// nodes by id.
pub fn explain_analyze(plan: &PhysicalPlan, stats: &[StageStats]) -> String {
    let mut out = String::new();
    render_physical(plan, 0, Some(stats), &mut out);
    out
}

fn node_stats(stats: &[StageStats], id: usize) -> Option<&StageStats> {
    // Later records win: the snapshot may hold several runs of the plan.
    stats.iter().rev().find(|s| s.node == Some(id))
}

fn render_physical(
    plan: &PhysicalPlan,
    depth: usize,
    stats: Option<&[StageStats]>,
    out: &mut String,
) {
    let pad = "  ".repeat(depth);
    let head = match plan {
        PhysicalPlan::SeqScan {
            table,
            projection,
            predicate,
            limit,
            ..
        } => {
            let mut s = format!("{pad}SeqScan: {table}");
            if let Some(p) = predicate {
                let _ = write!(s, "  [pred: {}]", expr_text(p));
            }
            if let Some(cols) = projection {
                let _ = write!(s, "  [cols: {}]", cols.len());
            }
            if let Some(n) = limit {
                let _ = write!(s, "  [limit: {n}]");
            }
            s
        }
        PhysicalPlan::Filter { predicate, .. } => {
            format!("{pad}Filter: {}", expr_text(predicate))
        }
        PhysicalPlan::Project { exprs, .. } => {
            let cols: Vec<String> = exprs
                .iter()
                .map(|(e, alias)| match alias {
                    Some(a) if *a != e.default_name() => {
                        format!("{} AS {a}", expr_text(e))
                    }
                    _ => expr_text(e),
                })
                .collect();
            format!("{pad}Project: {}", cols.join(", "))
        }
        PhysicalPlan::HashJoin {
            on,
            build_left,
            strategy,
            ..
        } => format!(
            "{pad}HashJoin: {}  [build={}, {strategy:?}]",
            expr_text(on),
            if *build_left { "left" } else { "right" },
        ),
        PhysicalPlan::Aggregate {
            group_by, aggs, ..
        } => {
            let aggs_text: Vec<String> = aggs.iter().map(agg_text).collect();
            format!(
                "{pad}Aggregate: group by [{}], compute [{}]",
                group_by.join(", "),
                aggs_text.join(", ")
            )
        }
        PhysicalPlan::Sort { keys, .. } => {
            let keys_text: Vec<String> = keys
                .iter()
                .map(|(name, asc)| format!("{name} {}", if *asc { "ASC" } else { "DESC" }))
                .collect();
            format!("{pad}Sort: {}", keys_text.join(", "))
        }
        PhysicalPlan::Limit { n, .. } => format!("{pad}Limit: {n}"),
        PhysicalPlan::Distinct { .. } => format!("{pad}Distinct"),
        PhysicalPlan::UnionAll { inputs, .. } => {
            format!("{pad}UnionAll ({} inputs)", inputs.len())
        }
    };
    out.push_str(&head);
    match stats {
        Some(snapshot) => match node_stats(snapshot, plan.id()) {
            Some(s) => {
                let _ = write!(
                    out,
                    "  (actual: {} rows in, {} rows out, {} B out, {:?}",
                    s.rows_read, s.rows_written, s.bytes_written, s.wall
                );
                if s.spill_bytes > 0 {
                    let _ = write!(
                        out,
                        ", spilled {} B / {} parts",
                        s.spill_bytes, s.spill_parts
                    );
                }
                out.push(')');
            }
            None => out.push_str("  (actual: not executed)"),
        },
        None => {
            let est = plan.estimate();
            let _ = write!(
                out,
                "  (est {} rows{})",
                est.rows.round() as u64,
                if est.measured { ", measured" } else { "" }
            );
        }
    }
    out.push('\n');
    match plan {
        PhysicalPlan::SeqScan { .. } => {}
        PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::Project { input, .. }
        | PhysicalPlan::Aggregate { input, .. }
        | PhysicalPlan::Sort { input, .. }
        | PhysicalPlan::Limit { input, .. }
        | PhysicalPlan::Distinct { input, .. } => {
            render_physical(input, depth + 1, stats, out);
        }
        PhysicalPlan::HashJoin { left, right, .. } => {
            render_physical(left, depth + 1, stats, out);
            render_physical(right, depth + 1, stats, out);
        }
        PhysicalPlan::UnionAll { inputs, .. } => {
            for input in inputs {
                render_physical(input, depth + 1, stats, out);
            }
        }
    }
}

fn expr_text(expr: &Expr) -> String {
    expr.default_name()
}

fn agg_text(call: &AggCall) -> String {
    format!(
        "{:?}({}) AS {}",
        call.func,
        call.args.join(", "),
        call.alias
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::ops::AggFunc;

    #[test]
    fn renders_nested_plans() {
        let plan = LogicalPlan::scan("graph")
            .filter(Expr::col("distance").gt(Expr::lit(0.25)))
            .project(vec![(Expr::col("query1"), Some("q".into()))])
            .limit(5);
        let text = explain(&plan);
        assert!(text.contains("Limit: 5"));
        assert!(text.contains("Project: query1 AS q"));
        assert!(text.contains("Filter: distance > 0.25"));
        assert!(text.contains("    Scan: graph"));
        // Indentation deepens monotonically.
        let depths: Vec<usize> = text
            .lines()
            .map(|l| l.len() - l.trim_start().len())
            .collect();
        assert_eq!(depths, vec![0, 2, 4, 6]);
    }

    #[test]
    fn renders_aggregates_and_joins() {
        let plan = LogicalPlan::scan("graph")
            .join(
                LogicalPlan::scan("communities"),
                Expr::col("query2").eq(Expr::col("query")),
            )
            .aggregate(
                vec!["comm_name".into()],
                vec![AggCall {
                    func: AggFunc::ArgMax,
                    args: vec!["distance".into(), "query1".into()],
                    alias: "owner".into(),
                }],
            );
        let text = explain(&plan);
        assert!(text.contains("Aggregate: group by [comm_name]"));
        assert!(text.contains("ArgMax(distance, query1) AS owner"));
        assert!(text.contains("Join: query2 = query"));
    }
}
