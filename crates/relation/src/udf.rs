//! Scalar user-defined functions.
//!
//! The Figure 4 community-detection queries rely on a pipeline-supplied
//! `ModulGain(query1, query2)` predicate; this registry is how such
//! functions are injected into SQL and logical plans. A few string/math
//! built-ins are always present.

use crate::error::{RelError, RelResult};
use crate::value::{DataType, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// A scalar function callable from expressions.
///
/// Implementations must be pure and thread-safe: the parallel executor
/// evaluates the same compiled expression concurrently from several workers.
pub trait ScalarUdf: Send + Sync {
    /// Function name (used case-insensitively).
    fn name(&self) -> &str;
    /// Static result type.
    fn output_type(&self) -> DataType;
    /// Evaluate on one row's argument values.
    fn invoke(&self, args: &[Value]) -> RelResult<Value>;
}

/// A UDF backed by a closure.
pub struct FnUdf<F> {
    name: String,
    output: DataType,
    f: F,
}

impl<F> FnUdf<F>
where
    F: Fn(&[Value]) -> RelResult<Value> + Send + Sync,
{
    /// Wrap a closure as a UDF.
    pub fn new(name: impl Into<String>, output: DataType, f: F) -> Self {
        FnUdf {
            name: name.into(),
            output,
            f,
        }
    }
}

impl<F> ScalarUdf for FnUdf<F>
where
    F: Fn(&[Value]) -> RelResult<Value> + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn output_type(&self) -> DataType {
        self.output
    }

    fn invoke(&self, args: &[Value]) -> RelResult<Value> {
        (self.f)(args)
    }
}

/// Registry of scalar functions, keyed by lower-cased name.
#[derive(Clone, Default)]
pub struct UdfRegistry {
    udfs: HashMap<String, Arc<dyn ScalarUdf>>,
}

impl UdfRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registry pre-loaded with the built-ins: `lower(str)`, `upper(str)`,
    /// `abs(num)`, `ln(num)`, `sqrt(num)`.
    pub fn with_builtins() -> Self {
        let mut reg = Self::new();
        reg.register(Arc::new(FnUdf::new("lower", DataType::Str, |args| {
            let s = one_str(args, "lower")?;
            Ok(Value::str(s.to_lowercase()))
        })));
        reg.register(Arc::new(FnUdf::new("upper", DataType::Str, |args| {
            let s = one_str(args, "upper")?;
            Ok(Value::str(s.to_uppercase()))
        })));
        reg.register(Arc::new(FnUdf::new("abs", DataType::Float, |args| {
            Ok(Value::Float(one_num(args, "abs")?.abs()))
        })));
        reg.register(Arc::new(FnUdf::new("ln", DataType::Float, |args| {
            let x = one_num(args, "ln")?;
            if x <= 0.0 {
                return Err(RelError::Eval(format!("ln of non-positive value {x}")));
            }
            Ok(Value::Float(x.ln()))
        })));
        reg.register(Arc::new(FnUdf::new("sqrt", DataType::Float, |args| {
            let x = one_num(args, "sqrt")?;
            if x < 0.0 {
                return Err(RelError::Eval(format!("sqrt of negative value {x}")));
            }
            Ok(Value::Float(x.sqrt()))
        })));
        reg
    }

    /// Register (or replace) a function.
    pub fn register(&mut self, udf: Arc<dyn ScalarUdf>) {
        self.udfs.insert(udf.name().to_lowercase(), udf);
    }

    /// Look up a function by case-insensitive name.
    pub fn get(&self, name: &str) -> RelResult<Arc<dyn ScalarUdf>> {
        self.udfs
            .get(&name.to_lowercase())
            .cloned()
            .ok_or_else(|| RelError::UnknownFunction(name.to_string()))
    }

    /// Whether a function with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.udfs.contains_key(&name.to_lowercase())
    }
}

fn one_str<'a>(args: &'a [Value], context: &str) -> RelResult<&'a str> {
    match args {
        [v] => v.as_str().ok_or_else(|| RelError::TypeMismatch {
            expected: "STR".into(),
            actual: v.data_type().to_string(),
            context: context.into(),
        }),
        _ => Err(RelError::Eval(format!(
            "{context} expects exactly 1 argument, got {}",
            args.len()
        ))),
    }
}

fn one_num(args: &[Value], context: &str) -> RelResult<f64> {
    match args {
        [v] => v.as_float().ok_or_else(|| RelError::TypeMismatch {
            expected: "numeric".into(),
            actual: v.data_type().to_string(),
            context: context.into(),
        }),
        _ => Err(RelError::Eval(format!(
            "{context} expects exactly 1 argument, got {}",
            args.len()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_work() {
        let reg = UdfRegistry::with_builtins();
        assert_eq!(
            reg.get("LOWER")
                .unwrap()
                .invoke(&[Value::str("NFL Draft")])
                .unwrap(),
            Value::str("nfl draft")
        );
        assert_eq!(
            reg.get("abs").unwrap().invoke(&[Value::Int(-3)]).unwrap(),
            Value::Float(3.0)
        );
    }

    #[test]
    fn ln_rejects_non_positive() {
        let reg = UdfRegistry::with_builtins();
        assert!(reg.get("ln").unwrap().invoke(&[Value::Int(0)]).is_err());
    }

    #[test]
    fn custom_udf_round_trip() {
        let mut reg = UdfRegistry::new();
        reg.register(Arc::new(FnUdf::new("plus1", DataType::Int, |args| {
            Ok(Value::Int(args[0].as_int().unwrap() + 1))
        })));
        assert_eq!(
            reg.get("plus1").unwrap().invoke(&[Value::Int(41)]).unwrap(),
            Value::Int(42)
        );
        assert!(reg.get("missing").is_err());
    }

    #[test]
    fn arity_checked() {
        let reg = UdfRegistry::with_builtins();
        assert!(reg.get("lower").unwrap().invoke(&[]).is_err());
    }
}
