//! Binder: resolves a parsed [`Query`] against a catalog into a
//! [`LogicalPlan`].
//!
//! Every base-table column is renamed to `alias.column` immediately above
//! its scan, which makes multi-self-join queries (like Figure 4's double
//! join against `communities`) unambiguous without fragile suffix rules.
//! Like the paper's pseudo-SQL, predicates may refer to SELECT-list aliases
//! (`where ModulGain(query1, query2) > 0` with `query1` defined in the
//! SELECT list); the binder falls back to alias substitution when scope
//! resolution fails.

use crate::catalog::Catalog;
use crate::error::{RelError, RelResult};
use crate::expr::Expr;
use crate::ops::AggFunc;
use crate::plan::{AggCall, LogicalPlan};
use crate::sql::ast::*;
use crate::udf::UdfRegistry;

/// Bind a full statement (a query or a `UNION ALL` chain).
pub fn bind_statement(
    statement: &Statement,
    catalog: &Catalog,
    udfs: &UdfRegistry,
) -> RelResult<LogicalPlan> {
    let mut plans = statement
        .queries
        .iter()
        .map(|q| bind(q, catalog, udfs))
        .collect::<RelResult<Vec<_>>>()?;
    Ok(match plans.len() {
        1 => plans.remove(0),
        _ => LogicalPlan::UnionAll { inputs: plans },
    })
}

/// One visible column during binding.
#[derive(Debug, Clone)]
struct ScopeCol {
    /// Table alias this column came from.
    alias: String,
    /// Bare column name.
    name: String,
    /// Physical name in the bound plan (`alias.name`).
    physical: String,
}

/// Bind a parsed query to a logical plan.
pub fn bind(query: &Query, catalog: &Catalog, udfs: &UdfRegistry) -> RelResult<LogicalPlan> {
    let binder = Binder { catalog, udfs };
    binder.bind_query(query)
}

struct Binder<'a> {
    catalog: &'a Catalog,
    udfs: &'a UdfRegistry,
}

impl Binder<'_> {
    fn bind_query(&self, query: &Query) -> RelResult<LogicalPlan> {
        let mut scope: Vec<ScopeCol> = Vec::new();
        let mut plan = self.aliased_scan(&query.from, &mut scope)?;

        for join in &query.joins {
            let right = self.aliased_scan(&join.table, &mut scope)?;
            let on = self.bind_expr(&join.on, &scope, &[])?;
            plan = plan.join(right, on);
        }

        // Select-list aliases usable from WHERE/GROUP BY (paper style).
        let aliases: Vec<(String, &AstExpr)> = query
            .items
            .iter()
            .filter_map(|item| match item {
                SelectItem::Expr {
                    expr,
                    alias: Some(a),
                } => Some((a.clone(), expr)),
                _ => None,
            })
            .collect();

        if let Some(where_clause) = &query.where_clause {
            let predicate = self.bind_expr(where_clause, &scope, &aliases)?;
            plan = plan.filter(predicate);
        }

        let has_aggs = query.items.iter().any(|item| {
            matches!(item, SelectItem::Expr { expr, .. } if contains_aggregate(expr))
        });

        if !query.group_by.is_empty() || has_aggs {
            plan = self.bind_aggregate(query, plan, &scope, &aliases)?;
            if let Some(having) = &query.having {
                // HAVING references the grouped *output* columns by name
                // (`having n >= 5` after `count(*) as n`): bind with an
                // empty scope-rewrite — columns pass through verbatim and
                // are resolved against the aggregate's output schema at
                // execution time.
                let predicate = bind_output_expr(having, self.udfs)?;
                plan = plan.filter(predicate);
            }
        } else {
            if query.having.is_some() {
                return Err(RelError::InvalidPlan(
                    "HAVING requires GROUP BY".into(),
                ));
            }
            plan = self.bind_projection(query, plan, &scope)?;
        }

        if query.distinct {
            plan = plan.distinct();
        }
        if !query.order_by.is_empty() {
            let keys = query
                .order_by
                .iter()
                .map(|key| match &key.expr {
                    AstExpr::Col { name, .. } => Ok((name.clone(), key.ascending)),
                    other => Err(RelError::Parse(format!(
                        "ORDER BY supports output column names only, got {other:?}"
                    ))),
                })
                .collect::<RelResult<Vec<_>>>()?;
            plan = plan.sort(keys);
        }
        if let Some(n) = query.limit {
            plan = plan.limit(n);
        }
        Ok(plan)
    }

    /// Scan + rename every column to `alias.column`, extending the scope.
    fn aliased_scan(&self, table: &TableRef, scope: &mut Vec<ScopeCol>) -> RelResult<LogicalPlan> {
        let alias = table
            .alias
            .clone()
            .unwrap_or_else(|| table.name.clone())
            .to_lowercase();
        if scope.iter().any(|c| c.alias == alias) {
            return Err(RelError::InvalidPlan(format!(
                "duplicate table alias: {alias}"
            )));
        }
        let schema = self.catalog.get(&table.name)?.schema().clone();
        let mut renames = Vec::with_capacity(schema.len());
        for field in schema.fields() {
            let physical = format!("{alias}.{}", field.name.to_lowercase());
            renames.push((Expr::col(field.name.clone()), Some(physical.clone())));
            scope.push(ScopeCol {
                alias: alias.clone(),
                name: field.name.to_lowercase(),
                physical,
            });
        }
        Ok(LogicalPlan::scan(table.name.clone()).project(renames))
    }

    /// Resolve a (possibly qualified) column name against the scope.
    fn resolve(&self, qualifier: Option<&str>, name: &str, scope: &[ScopeCol]) -> RelResult<String> {
        let name_lc = name.to_lowercase();
        let matches: Vec<&ScopeCol> = match qualifier {
            Some(q) => {
                let q = q.to_lowercase();
                scope
                    .iter()
                    .filter(|c| c.alias == q && c.name == name_lc)
                    .collect()
            }
            None => scope.iter().filter(|c| c.name == name_lc).collect(),
        };
        match matches.len() {
            0 => Err(RelError::UnknownColumn(match qualifier {
                Some(q) => format!("{q}.{name}"),
                None => name.to_string(),
            })),
            1 => Ok(matches[0].physical.clone()),
            _ => Err(RelError::InvalidPlan(format!(
                "ambiguous column reference: {name} (matches {})",
                matches
                    .iter()
                    .map(|c| c.physical.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ))),
        }
    }

    /// Bind a scalar AST expression. `aliases` supplies SELECT-list alias
    /// substitution for unresolvable bare names.
    fn bind_expr(
        &self,
        ast: &AstExpr,
        scope: &[ScopeCol],
        aliases: &[(String, &AstExpr)],
    ) -> RelResult<Expr> {
        Ok(match ast {
            AstExpr::Lit(v) => Expr::Lit(v.clone()),
            AstExpr::Col { qualifier, name } => {
                match self.resolve(qualifier.as_deref(), name, scope) {
                    Ok(physical) => Expr::Col(physical),
                    Err(err) => {
                        if qualifier.is_none() {
                            if let Some((_, sub)) = aliases
                                .iter()
                                .find(|(a, _)| a.eq_ignore_ascii_case(name))
                            {
                                // Substitute the aliased select expression,
                                // with aliases disabled to prevent cycles.
                                return self.bind_expr(sub, scope, &[]);
                            }
                        }
                        return Err(err);
                    }
                }
            }
            AstExpr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Box::new(self.bind_expr(left, scope, aliases)?),
                right: Box::new(self.bind_expr(right, scope, aliases)?),
            },
            AstExpr::Not(inner) => Expr::Not(Box::new(self.bind_expr(inner, scope, aliases)?)),
            AstExpr::Call { name, args, is_star } => {
                if *is_star || aggregate_func(name).is_some() {
                    return Err(RelError::InvalidPlan(format!(
                        "aggregate {name} is not allowed in a scalar context"
                    )));
                }
                if !self.udfs.contains(name) {
                    return Err(RelError::UnknownFunction(name.clone()));
                }
                Expr::Call {
                    name: name.clone(),
                    args: args
                        .iter()
                        .map(|a| self.bind_expr(a, scope, aliases))
                        .collect::<RelResult<Vec<_>>>()?,
                }
            }
        })
    }

    /// Bind a plain (non-grouped) SELECT list.
    fn bind_projection(
        &self,
        query: &Query,
        plan: LogicalPlan,
        scope: &[ScopeCol],
    ) -> RelResult<LogicalPlan> {
        let mut exprs = Vec::new();
        for item in &query.items {
            match item {
                SelectItem::Star => {
                    for col in scope {
                        let output = self.star_output_name(col, scope);
                        exprs.push((Expr::Col(col.physical.clone()), Some(output)));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let bound = self.bind_expr(expr, scope, &[])?;
                    let name = output_name(expr, alias.as_deref());
                    exprs.push((bound, Some(name)));
                }
            }
        }
        Ok(plan.project(exprs))
    }

    /// For `SELECT *`: use the bare name when unique in scope, otherwise
    /// the qualified physical name.
    fn star_output_name(&self, col: &ScopeCol, scope: &[ScopeCol]) -> String {
        let dup = scope.iter().filter(|c| c.name == col.name).count() > 1;
        if dup {
            col.physical.clone()
        } else {
            col.name.clone()
        }
    }

    /// Bind a grouped SELECT: aggregate node plus an output projection.
    fn bind_aggregate(
        &self,
        query: &Query,
        plan: LogicalPlan,
        scope: &[ScopeCol],
        aliases: &[(String, &AstExpr)],
    ) -> RelResult<LogicalPlan> {
        // Resolve the GROUP BY columns.
        let mut group_cols: Vec<String> = Vec::new();
        for g in &query.group_by {
            match g {
                AstExpr::Col { qualifier, name } => {
                    // Allow grouping on select-list aliases of plain columns.
                    let physical = match self.resolve(qualifier.as_deref(), name, scope) {
                        Ok(p) => p,
                        Err(err) => match aliases
                            .iter()
                            .find(|(a, _)| a.eq_ignore_ascii_case(name))
                            .map(|(_, e)| *e)
                        {
                            Some(AstExpr::Col { qualifier, name }) => {
                                self.resolve(qualifier.as_deref(), name, scope)?
                            }
                            _ => return Err(err),
                        },
                    };
                    group_cols.push(physical);
                }
                other => {
                    return Err(RelError::InvalidPlan(format!(
                        "GROUP BY supports column references only, got {other:?}"
                    )))
                }
            }
        }

        // Walk the select list: each item is a grouping column or an
        // aggregate call.
        let mut agg_calls: Vec<AggCall> = Vec::new();
        // (output name, source column in the aggregate's output)
        let mut outputs: Vec<(String, String)> = Vec::new();
        for item in &query.items {
            let SelectItem::Expr { expr, alias } = item else {
                return Err(RelError::InvalidPlan(
                    "SELECT * cannot be combined with GROUP BY".into(),
                ));
            };
            if let AstExpr::Call { name, args, is_star } = expr {
                if let Some(func) = aggregate_func(name) {
                    let call_args = if *is_star {
                        vec![]
                    } else {
                        args.iter()
                            .map(|a| match a {
                                AstExpr::Col { qualifier, name } => {
                                    self.resolve(qualifier.as_deref(), name, scope)
                                }
                                other => Err(RelError::InvalidPlan(format!(
                                    "aggregate arguments must be plain columns, got {other:?}"
                                ))),
                            })
                            .collect::<RelResult<Vec<_>>>()?
                    };
                    let out = output_name(expr, alias.as_deref());
                    agg_calls.push(AggCall {
                        func,
                        args: call_args,
                        alias: out.clone(),
                    });
                    outputs.push((out.clone(), out));
                    continue;
                }
            }
            // Must be a grouping column.
            match expr {
                AstExpr::Col { qualifier, name } => {
                    let physical = self.resolve(qualifier.as_deref(), name, scope)?;
                    if !group_cols.contains(&physical) {
                        return Err(RelError::InvalidPlan(format!(
                            "column {physical} must appear in GROUP BY"
                        )));
                    }
                    outputs.push((output_name(expr, alias.as_deref()), physical));
                }
                other => {
                    return Err(RelError::InvalidPlan(format!(
                        "grouped SELECT items must be columns or aggregates, got {other:?}"
                    )))
                }
            }
        }

        let plan = plan.aggregate(group_cols, agg_calls);
        let exprs = outputs
            .into_iter()
            .map(|(out, source)| (Expr::Col(source), Some(out)))
            .collect();
        Ok(plan.project(exprs))
    }
}

/// Bind an expression against a plan's *output* columns: column names are
/// taken verbatim (the executor resolves them against the output schema),
/// scalar UDFs are checked against the registry, aggregates are rejected.
fn bind_output_expr(ast: &AstExpr, udfs: &UdfRegistry) -> RelResult<Expr> {
    Ok(match ast {
        AstExpr::Lit(v) => Expr::Lit(v.clone()),
        AstExpr::Col { qualifier, name } => {
            if qualifier.is_some() {
                return Err(RelError::InvalidPlan(format!(
                    "HAVING references output columns by bare name, got {qualifier:?}.{name}"
                )));
            }
            Expr::Col(name.to_lowercase())
        }
        AstExpr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(bind_output_expr(left, udfs)?),
            right: Box::new(bind_output_expr(right, udfs)?),
        },
        AstExpr::Not(inner) => Expr::Not(Box::new(bind_output_expr(inner, udfs)?)),
        AstExpr::Call { name, args, is_star } => {
            if *is_star || aggregate_func(name).is_some() {
                return Err(RelError::InvalidPlan(format!(
                    "HAVING must reference aggregate aliases, not call {name} directly"
                )));
            }
            if !udfs.contains(name) {
                return Err(RelError::UnknownFunction(name.clone()));
            }
            Expr::Call {
                name: name.clone(),
                args: args
                    .iter()
                    .map(|a| bind_output_expr(a, udfs))
                    .collect::<RelResult<Vec<_>>>()?,
            }
        }
    })
}

/// Map a function name to an aggregate, if it is one.
fn aggregate_func(name: &str) -> Option<AggFunc> {
    let lower = name.to_lowercase();
    Some(match lower.as_str() {
        "count" => AggFunc::Count,
        "sum" => AggFunc::Sum,
        "min" => AggFunc::Min,
        "max" => AggFunc::Max,
        "avg" => AggFunc::Avg,
        "argmax" => AggFunc::ArgMax,
        _ => return None,
    })
}

/// True if the expression contains an aggregate call anywhere.
fn contains_aggregate(expr: &AstExpr) -> bool {
    match expr {
        AstExpr::Lit(_) | AstExpr::Col { .. } => false,
        AstExpr::Binary { left, right, .. } => {
            contains_aggregate(left) || contains_aggregate(right)
        }
        AstExpr::Not(inner) => contains_aggregate(inner),
        AstExpr::Call { name, args, .. } => {
            aggregate_func(name).is_some() || args.iter().any(contains_aggregate)
        }
    }
}

/// The output column name for a select item.
fn output_name(expr: &AstExpr, alias: Option<&str>) -> String {
    if let Some(a) = alias {
        return a.to_string();
    }
    match expr {
        AstExpr::Col { name, .. } => name.to_lowercase(),
        AstExpr::Call { name, .. } => name.to_lowercase(),
        AstExpr::Lit(v) => v.to_string(),
        other => format!("{other:?}"),
    }
}
