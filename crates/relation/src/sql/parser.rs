//! Recursive-descent SQL parser.
//!
//! Grammar (enough for the Figure 4 pipeline queries and the test suite):
//!
//! ```text
//! query    := SELECT [DISTINCT] items FROM tableref join* [WHERE expr]
//!             [GROUP BY cols [HAVING expr]] [ORDER BY keys] [LIMIT n] [;]
//! statement:= query (UNION ALL query)*
//! items    := item (',' item)*      item := '*' | expr [[AS] ident]
//! tableref := ident [ident]
//! join     := [INNER] JOIN tableref ON expr
//! expr     := or ; or := and (OR and)* ; and := not (AND not)*
//! not      := NOT not | cmp
//! cmp      := add ((= | <> | != | < | <= | > | >=) add)?
//! add      := mul ((+|-) mul)*  ; mul := unary ((*|/) unary)*
//! unary    := '-' unary | primary
//! primary  := literal | ident ['.' ident] | ident '(' [args|'*'] ')'
//!           | '(' expr ')' | TRUE | FALSE
//! ```

use crate::error::{RelError, RelResult};
use crate::expr::BinOp;
use crate::sql::ast::*;
use crate::sql::lexer::{tokenize, Token};
use crate::value::Value;

/// Parse one statement: a SELECT, or a `UNION ALL` chain of SELECTs.
pub fn parse(sql: &str) -> RelResult<Statement> {
    let tokens = tokenize(sql)?;
    let mut parser = Parser { tokens, pos: 0 };
    let mut queries = vec![parser.query()?];
    while parser.eat_keyword("union") {
        parser.expect_keyword("all")?;
        queries.push(parser.query()?);
    }
    parser.eat_if(&Token::Semicolon);
    if !parser.at_end() {
        return Err(RelError::Parse(format!(
            "trailing tokens after statement, starting at {}",
            parser.peek_desc()
        )));
    }
    Ok(Statement { queries })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_desc(&self) -> String {
        self.peek()
            .map(|t| t.to_string())
            .unwrap_or_else(|| "end of input".into())
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_if(&mut self, token: &Token) -> bool {
        if self.peek() == Some(token) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Consume a keyword (case-insensitive identifier match).
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> RelResult<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(RelError::Parse(format!(
                "expected {kw}, found {}",
                self.peek_desc()
            )))
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    /// True when the next identifier is any SQL keyword (so it cannot be an
    /// implicit alias).
    fn peek_any_keyword(&self) -> bool {
        const KEYWORDS: &[&str] = &[
            "select", "distinct", "from", "where", "group", "by", "having", "order", "limit",
            "join", "inner", "on", "as", "and", "or", "not", "asc", "desc", "true", "false",
            "union",
        ];
        matches!(self.peek(), Some(Token::Ident(s))
            if KEYWORDS.iter().any(|k| s.eq_ignore_ascii_case(k)))
    }

    fn ident(&mut self) -> RelResult<String> {
        match self.advance() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(RelError::Parse(format!(
                "expected identifier, found {}",
                other.map(|t| t.to_string()).unwrap_or_else(|| "EOF".into())
            ))),
        }
    }

    fn query(&mut self) -> RelResult<Query> {
        self.expect_keyword("select")?;
        let distinct = self.eat_keyword("distinct");
        let mut items = vec![self.select_item()?];
        while self.eat_if(&Token::Comma) {
            items.push(self.select_item()?);
        }
        self.expect_keyword("from")?;
        let from = self.table_ref()?;
        let mut joins = Vec::new();
        loop {
            let inner = self.peek_keyword("inner");
            if inner {
                self.pos += 1;
                self.expect_keyword("join")?;
            } else if !self.eat_keyword("join") {
                break;
            }
            let table = self.table_ref()?;
            self.expect_keyword("on")?;
            let on = self.expr()?;
            joins.push(JoinClause { table, on });
        }
        let where_clause = if self.eat_keyword("where") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        let mut having = None;
        if self.eat_keyword("group") {
            self.expect_keyword("by")?;
            group_by.push(self.expr()?);
            while self.eat_if(&Token::Comma) {
                group_by.push(self.expr()?);
            }
            if self.eat_keyword("having") {
                having = Some(self.expr()?);
            }
        }
        let mut order_by = Vec::new();
        if self.eat_keyword("order") {
            self.expect_keyword("by")?;
            loop {
                let expr = self.expr()?;
                let ascending = if self.eat_keyword("desc") {
                    false
                } else {
                    self.eat_keyword("asc");
                    true
                };
                order_by.push(OrderKey { expr, ascending });
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword("limit") {
            match self.advance() {
                Some(Token::Int(n)) if n >= 0 => Some(n as usize),
                other => {
                    return Err(RelError::Parse(format!(
                        "LIMIT expects a non-negative integer, found {}",
                        other.map(|t| t.to_string()).unwrap_or_else(|| "EOF".into())
                    )))
                }
            }
        } else {
            None
        };
        Ok(Query {
            items,
            distinct,
            from,
            joins,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn select_item(&mut self) -> RelResult<SelectItem> {
        if self.eat_if(&Token::Star) {
            return Ok(SelectItem::Star);
        }
        let expr = self.expr()?;
        let alias = if self.eat_keyword("as") {
            Some(self.ident()?)
        } else if !self.peek_any_keyword() {
            // Implicit alias: `select distance d from …`.
            match self.peek() {
                Some(Token::Ident(_)) => Some(self.ident()?),
                _ => None,
            }
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> RelResult<TableRef> {
        let name = self.ident()?;
        let alias = if !self.peek_any_keyword() {
            match self.peek() {
                Some(Token::Ident(_)) => Some(self.ident()?),
                _ => None,
            }
        } else {
            None
        };
        Ok(TableRef { name, alias })
    }

    fn expr(&mut self) -> RelResult<AstExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> RelResult<AstExpr> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("or") {
            let right = self.and_expr()?;
            left = AstExpr::Binary {
                op: BinOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> RelResult<AstExpr> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("and") {
            let right = self.not_expr()?;
            left = AstExpr::Binary {
                op: BinOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> RelResult<AstExpr> {
        if self.eat_keyword("not") {
            Ok(AstExpr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> RelResult<AstExpr> {
        let left = self.add_expr()?;
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinOp::Eq),
            Some(Token::Ne) => Some(BinOp::Ne),
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::Le) => Some(BinOp::Le),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.add_expr()?;
            Ok(AstExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            })
        } else {
            Ok(left)
        }
    }

    fn add_expr(&mut self) -> RelResult<AstExpr> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.mul_expr()?;
            left = AstExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> RelResult<AstExpr> {
        let mut left = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary_expr()?;
            left = AstExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> RelResult<AstExpr> {
        if self.eat_if(&Token::Minus) {
            let inner = self.unary_expr()?;
            // Constant-fold negated literals; otherwise 0 - x.
            return Ok(match inner {
                AstExpr::Lit(Value::Int(i)) => AstExpr::Lit(Value::Int(-i)),
                AstExpr::Lit(Value::Float(x)) => AstExpr::Lit(Value::Float(-x)),
                other => AstExpr::Binary {
                    op: BinOp::Sub,
                    left: Box::new(AstExpr::Lit(Value::Int(0))),
                    right: Box::new(other),
                },
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> RelResult<AstExpr> {
        match self.advance() {
            Some(Token::Int(n)) => Ok(AstExpr::Lit(Value::Int(n))),
            Some(Token::Float(x)) => Ok(AstExpr::Lit(Value::Float(x))),
            Some(Token::Str(s)) => Ok(AstExpr::Lit(Value::str(s))),
            Some(Token::LParen) => {
                let inner = self.expr()?;
                if !self.eat_if(&Token::RParen) {
                    return Err(RelError::Parse("expected ')'".into()));
                }
                Ok(inner)
            }
            Some(Token::Ident(name)) => {
                if name.eq_ignore_ascii_case("true") {
                    return Ok(AstExpr::Lit(Value::Bool(true)));
                }
                if name.eq_ignore_ascii_case("false") {
                    return Ok(AstExpr::Lit(Value::Bool(false)));
                }
                if self.eat_if(&Token::LParen) {
                    // Function call.
                    if self.eat_if(&Token::Star) {
                        if !self.eat_if(&Token::RParen) {
                            return Err(RelError::Parse("expected ')' after '*'".into()));
                        }
                        return Ok(AstExpr::Call {
                            name,
                            args: vec![],
                            is_star: true,
                        });
                    }
                    let mut args = Vec::new();
                    if !self.eat_if(&Token::RParen) {
                        args.push(self.expr()?);
                        while self.eat_if(&Token::Comma) {
                            args.push(self.expr()?);
                        }
                        if !self.eat_if(&Token::RParen) {
                            return Err(RelError::Parse("expected ')'".into()));
                        }
                    }
                    return Ok(AstExpr::Call {
                        name,
                        args,
                        is_star: false,
                    });
                }
                if self.eat_if(&Token::Dot) {
                    let col = self.ident()?;
                    return Ok(AstExpr::Col {
                        qualifier: Some(name),
                        name: col,
                    });
                }
                Ok(AstExpr::Col {
                    qualifier: None,
                    name,
                })
            }
            other => Err(RelError::Parse(format!(
                "unexpected token {}",
                other.map(|t| t.to_string()).unwrap_or_else(|| "EOF".into())
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Parse a single-query statement.
    fn parse_one(sql: &str) -> RelResult<Query> {
        parse(sql).map(|mut s| s.queries.remove(0))
    }

    #[test]
    fn parses_figure4_neighbors_query() {
        let q = parse_one(
            "select c1.query as query1, c2.query as query2, distance \
             from graph \
             inner join communities c1 on c1.query = graph.query2 \
             inner join communities c2 on c2.query = graph.query1 \
             where ModulGain(c1.query, c2.query) > 0;",
        )
        .unwrap();
        assert_eq!(q.items.len(), 3);
        assert_eq!(q.joins.len(), 2);
        assert_eq!(q.from.name, "graph");
        assert_eq!(q.joins[0].table.alias.as_deref(), Some("c1"));
        assert!(q.where_clause.is_some());
    }

    #[test]
    fn parses_figure4_partitions_query() {
        let q = parse_one(
            "select query2, argmax(distance, query1) as comm \
             from neighbors group by query2",
        )
        .unwrap();
        assert_eq!(q.group_by.len(), 1);
        match &q.items[1] {
            SelectItem::Expr { expr, alias } => {
                assert_eq!(alias.as_deref(), Some("comm"));
                assert!(matches!(expr, AstExpr::Call { name, args, .. }
                    if name == "argmax" && args.len() == 2));
            }
            _ => panic!("expected expression item"),
        }
    }

    #[test]
    fn parses_count_star_order_limit() {
        let q = parse_one(
            "select comm_name, count(*) as n from communities \
             group by comm_name order by n desc, comm_name limit 10",
        )
        .unwrap();
        assert_eq!(q.order_by.len(), 2);
        assert!(!q.order_by[0].ascending);
        assert!(q.order_by[1].ascending);
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn operator_precedence() {
        let q = parse_one("select a + b * 2 from t where x > 1 and y < 2 or z = 3").unwrap();
        // a + (b*2)
        match &q.items[0] {
            SelectItem::Expr { expr, .. } => match expr {
                AstExpr::Binary { op: BinOp::Add, right, .. } => {
                    assert!(matches!(right.as_ref(), AstExpr::Binary { op: BinOp::Mul, .. }))
                }
                other => panic!("unexpected {other:?}"),
            },
            _ => panic!(),
        }
        // (x>1 AND y<2) OR z=3
        match q.where_clause.as_ref().unwrap() {
            AstExpr::Binary { op: BinOp::Or, left, .. } => {
                assert!(matches!(left.as_ref(), AstExpr::Binary { op: BinOp::And, .. }))
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negative_literals_fold() {
        let q = parse_one("select -3, -2.5 from t").unwrap();
        assert_eq!(
            q.items[0],
            SelectItem::Expr {
                expr: AstExpr::Lit(Value::Int(-3)),
                alias: None
            }
        );
    }

    #[test]
    fn rejects_trailing_tokens_and_bad_limit() {
        assert!(parse_one("select a from t extra garbage ,").is_err());
        assert!(parse_one("select a from t limit x").is_err());
        assert!(parse_one("select from t").is_err());
    }

    #[test]
    fn select_star_and_distinct() {
        let q = parse_one("select distinct * from graph").unwrap();
        assert!(q.distinct);
        assert_eq!(q.items, vec![SelectItem::Star]);
    }
}

#[cfg(test)]
mod union_tests {
    use super::*;

    #[test]
    fn union_all_chains_queries() {
        let s = parse("select a from t union all select a from u union all select a from v")
            .unwrap();
        assert_eq!(s.queries.len(), 3);
        assert_eq!(s.queries[1].from.name, "u");
    }

    #[test]
    fn bare_union_is_rejected() {
        assert!(parse("select a from t union select a from u").is_err());
    }
}
