//! SQL abstract syntax tree.

use crate::expr::BinOp;
use crate::value::Value;

/// A SQL scalar expression (pre-binding: columns may be qualified).
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// Literal value.
    Lit(Value),
    /// Column reference, optionally qualified by a table alias.
    Col {
        /// Table alias qualifier (`c1` in `c1.query`).
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<AstExpr>,
        /// Right operand.
        right: Box<AstExpr>,
    },
    /// Logical negation.
    Not(Box<AstExpr>),
    /// Function call. At binding time this is resolved to either an
    /// aggregate (`count`, `sum`, `min`, `max`, `avg`, `argmax`) or a
    /// scalar UDF.
    Call {
        /// Function name.
        name: String,
        /// Arguments. Empty plus `is_star` for `count(*)`.
        args: Vec<AstExpr>,
        /// True for `f(*)`.
        is_star: bool,
    },
}

/// One item of a SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*` — all columns in scope.
    Star,
    /// An expression with an optional alias.
    Expr {
        /// The expression.
        expr: AstExpr,
        /// Optional `AS alias`.
        alias: Option<String>,
    },
}

/// A table reference with an optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Catalog table name.
    pub name: String,
    /// Alias (defaults to the table name at binding time).
    pub alias: Option<String>,
}

/// An `INNER JOIN … ON …` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    /// The joined table.
    pub table: TableRef,
    /// The join condition.
    pub on: AstExpr,
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// The ordering expression (a column reference).
    pub expr: AstExpr,
    /// True for ascending.
    pub ascending: bool,
}

/// A parsed SELECT query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// SELECT list.
    pub items: Vec<SelectItem>,
    /// True if `SELECT DISTINCT`.
    pub distinct: bool,
    /// FROM table.
    pub from: TableRef,
    /// Zero or more joins, applied left to right.
    pub joins: Vec<JoinClause>,
    /// Optional WHERE predicate.
    pub where_clause: Option<AstExpr>,
    /// GROUP BY column references.
    pub group_by: Vec<AstExpr>,
    /// Optional HAVING predicate over the grouped output (references
    /// output column names, e.g. `having n >= 5`).
    pub having: Option<AstExpr>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderKey>,
    /// Optional LIMIT.
    pub limit: Option<usize>,
}

/// A full statement: one query, or several combined with `UNION ALL`.
#[derive(Debug, Clone, PartialEq)]
pub struct Statement {
    /// The SELECT branches, in order.
    pub queries: Vec<Query>,
}
