//! SQL lexer.

use crate::error::{RelError, RelResult};
use std::fmt;

/// A SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (keywords are recognized by the parser,
    /// case-insensitively).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (with `''` escaping).
    Str(String),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `;`
    Semicolon,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Comma => f.write_str(","),
            Token::LParen => f.write_str("("),
            Token::RParen => f.write_str(")"),
            Token::Dot => f.write_str("."),
            Token::Star => f.write_str("*"),
            Token::Eq => f.write_str("="),
            Token::Ne => f.write_str("<>"),
            Token::Lt => f.write_str("<"),
            Token::Le => f.write_str("<="),
            Token::Gt => f.write_str(">"),
            Token::Ge => f.write_str(">="),
            Token::Plus => f.write_str("+"),
            Token::Minus => f.write_str("-"),
            Token::Slash => f.write_str("/"),
            Token::Semicolon => f.write_str(";"),
        }
    }
}

/// Tokenize SQL text. `--` line comments are skipped.
pub fn tokenize(sql: &str) -> RelResult<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(RelError::Parse("unexpected '!'".into()));
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::Le);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(RelError::Parse("unterminated string literal".into()));
                    }
                    if bytes[i] == b'\'' {
                        // '' is an escaped quote.
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(bytes[i] as char);
                        i += 1;
                    }
                }
                tokens.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_digit()
                        || (bytes[i] == b'.'
                            && i + 1 < bytes.len()
                            && (bytes[i + 1] as char).is_ascii_digit()))
                {
                    if bytes[i] == b'.' {
                        is_float = true;
                    }
                    i += 1;
                }
                let text = &sql[start..i];
                if is_float {
                    let x: f64 = text
                        .parse()
                        .map_err(|_| RelError::Parse(format!("bad float literal: {text}")))?;
                    tokens.push(Token::Float(x));
                } else {
                    let n: i64 = text
                        .parse()
                        .map_err(|_| RelError::Parse(format!("bad int literal: {text}")))?;
                    tokens.push(Token::Int(n));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(sql[start..i].to_string()));
            }
            other => {
                return Err(RelError::Parse(format!("unexpected character '{other}'")));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_figure4_style_sql() {
        let toks = tokenize(
            "select c1.query as query1, distance from graph \
             inner join communities c1 on c1.query = graph.query2 \
             where ModulGain(query1, query2) > 0;",
        )
        .unwrap();
        assert!(toks.contains(&Token::Ident("ModulGain".into())));
        assert!(toks.contains(&Token::Gt));
        assert_eq!(*toks.last().unwrap(), Token::Semicolon);
    }

    #[test]
    fn string_escapes_and_comments() {
        let toks = tokenize("select 'it''s' -- trailing comment\n, 2.5, 42").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("select".into()),
                Token::Str("it's".into()),
                Token::Comma,
                Token::Float(2.5),
                Token::Comma,
                Token::Int(42),
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        let toks = tokenize("a <> b != c <= d >= e").unwrap();
        assert_eq!(
            toks.iter().filter(|t| **t == Token::Ne).count(),
            2,
            "both <> and != lex to Ne"
        );
        assert!(toks.contains(&Token::Le));
        assert!(toks.contains(&Token::Ge));
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("select @").is_err());
        assert!(tokenize("'unterminated").is_err());
    }
}
