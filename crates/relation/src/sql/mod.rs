//! SQL front-end: lexer → parser → binder.
//!
//! The dialect is the small SELECT subset needed to express the paper's
//! Figure 4 community-detection queries, plus DISTINCT / ORDER BY / LIMIT
//! for inspection queries: qualified columns, inner joins, WHERE with
//! scalar UDFs (`ModulGain`), GROUP BY with the `argmax` aggregate, and
//! SELECT-list aliases visible from WHERE (as in the paper's pseudo-SQL).

mod ast;
mod binder;
mod lexer;
mod parser;

pub use ast::{AstExpr, JoinClause, OrderKey, Query, SelectItem, Statement, TableRef};
pub use binder::{bind, bind_statement};
pub use lexer::{tokenize, Token};
pub use parser::parse;

use crate::error::RelResult;
use crate::plan::{ExecContext, LogicalPlan};
use crate::table::Table;

/// Parse and bind SQL text into a logical plan using the context's catalog
/// and UDF registry.
pub fn plan_sql(sql: &str, ctx: &ExecContext) -> RelResult<LogicalPlan> {
    let statement = parse(sql)?;
    bind_statement(&statement, &ctx.catalog, &ctx.udfs)
}

/// Parse, bind, optimize and execute SQL text through the physical
/// planner: predicates/projections/limits are pushed into the scans,
/// join build sides and strategies are cost-chosen, and blocking
/// operators spill under the context's memory grant.
pub fn run_sql(sql: &str, ctx: &ExecContext) -> RelResult<Table> {
    let plan = plan_sql(sql, ctx)?;
    let physical = crate::physical::optimize(&plan, ctx)?;
    ctx.execute_physical(&physical)
}

/// Parse, bind and execute SQL text on the naive logical executor, with
/// no pushdowns or cost-based choices. The benchmark harness uses this as
/// the baseline the optimizer is measured against, and the planner
/// equivalence tests use it as the reference semantics.
pub fn run_sql_unoptimized(sql: &str, ctx: &ExecContext) -> RelResult<Table> {
    let plan = plan_sql(sql, ctx)?;
    ctx.execute(&plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::schema::Schema;
    use crate::udf::{FnUdf, UdfRegistry};
    use crate::value::{DataType, Value};
    use std::sync::Arc;

    fn context() -> ExecContext {
        let catalog = Catalog::new();
        let graph_schema = Schema::of(&[
            ("query1", DataType::Str),
            ("query2", DataType::Str),
            ("distance", DataType::Float),
        ]);
        catalog.register(
            "graph",
            Table::from_rows(
                graph_schema,
                vec![
                    vec![Value::str("49ers"), Value::str("nfl"), Value::Float(0.29)],
                    vec![Value::str("nfl"), Value::str("football"), Value::Float(0.41)],
                    vec![Value::str("sf"), Value::str("49ers"), Value::Float(0.12)],
                    vec![Value::str("football"), Value::str("nfl"), Value::Float(0.50)],
                ],
            )
            .unwrap(),
        );
        let comm_schema = Schema::of(&[("comm_name", DataType::Str), ("query", DataType::Str)]);
        catalog.register(
            "communities",
            Table::from_rows(
                comm_schema,
                vec![
                    vec![Value::str("49ers"), Value::str("49ers")],
                    vec![Value::str("nfl"), Value::str("nfl")],
                    vec![Value::str("football"), Value::str("football")],
                    vec![Value::str("sf"), Value::str("sf")],
                ],
            )
            .unwrap(),
        );
        ExecContext::new(catalog)
    }

    #[test]
    fn select_where_projects_and_filters() {
        let ctx = context();
        let out = run_sql(
            "select query1, distance from graph where distance > 0.25 order by distance desc",
            &ctx,
        )
        .unwrap();
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.row(0)[0], Value::str("football"));
        let names: Vec<_> = out
            .schema()
            .fields()
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        assert_eq!(names, vec!["query1", "distance"]);
    }

    #[test]
    fn double_self_join_with_udf_in_where() {
        let ctx = context();
        let mut udfs = UdfRegistry::with_builtins();
        // A toy ModulGain: positive iff the two community names differ.
        udfs.register(Arc::new(FnUdf::new("ModulGain", DataType::Float, |args| {
            let a = args[0].as_str().unwrap_or_default();
            let b = args[1].as_str().unwrap_or_default();
            Ok(Value::Float(if a == b { -1.0 } else { 1.0 }))
        })));
        let ctx = ExecContext { udfs, ..ctx };
        let out = run_sql(
            "select c1.comm_name as comm1, c2.comm_name as comm2, distance \
             from graph \
             inner join communities c1 on c1.query = graph.query1 \
             inner join communities c2 on c2.query = graph.query2 \
             where ModulGain(comm1, comm2) > 0",
            &ctx,
        )
        .unwrap();
        assert_eq!(out.num_rows(), 4);
        assert_eq!(out.schema().fields()[0].name, "comm1");
    }

    #[test]
    fn group_by_argmax_matches_paper_partitions_query() {
        let ctx = context();
        let out = run_sql(
            "select query2, argmax(distance, query1) as best from graph group by query2 order by query2",
            &ctx,
        )
        .unwrap();
        // query2 values: 49ers, football, nfl(x2 -> argmax by distance).
        assert_eq!(out.num_rows(), 3);
        let nfl_row: Vec<Value> = out
            .iter_rows()
            .find(|r| r[0] == Value::str("nfl"))
            .unwrap();
        assert_eq!(nfl_row[1], Value::str("football")); // distance 0.50 beats 0.29
    }

    #[test]
    fn count_star_group_by() {
        let ctx = context();
        let out = run_sql(
            "select comm_name, count(*) as n from communities group by comm_name",
            &ctx,
        )
        .unwrap();
        assert_eq!(out.num_rows(), 4);
        assert!(out.iter_rows().all(|r| r[1] == Value::Int(1)));
    }

    #[test]
    fn select_star_join_disambiguates() {
        let ctx = context();
        let out = run_sql(
            "select * from graph inner join communities c1 on c1.query = graph.query1 limit 2",
            &ctx,
        )
        .unwrap();
        assert_eq!(out.num_rows(), 2);
        let names: Vec<_> = out
            .schema()
            .fields()
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        // `query` is unique across scope; the rest keep bare names.
        assert_eq!(
            names,
            vec!["query1", "query2", "distance", "comm_name", "query"]
        );
    }

    #[test]
    fn unknown_references_error_cleanly() {
        let ctx = context();
        assert!(run_sql("select nope from graph", &ctx).is_err());
        assert!(run_sql("select query1 from nope", &ctx).is_err());
        assert!(run_sql("select fn(query1) from graph", &ctx).is_err());
    }

    #[test]
    fn scalar_functions_and_arithmetic_in_projections() {
        let ctx = context();
        let out = run_sql(
            "select upper(query1) as q, distance * 2 as d2, distance + 1 as d1              from graph where query1 = '49ers'",
            &ctx,
        )
        .unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.row(0)[0], Value::str("49ERS"));
        assert_eq!(out.row(0)[1], Value::Float(0.58));
        assert_eq!(out.row(0)[2], Value::Float(1.29));
    }

    #[test]
    fn order_by_multiple_keys_with_strings() {
        let ctx = context();
        let out = run_sql(
            "select query1, query2 from graph order by query1 desc, query2 asc",
            &ctx,
        )
        .unwrap();
        let firsts: Vec<Value> = out.iter_rows().map(|r| r[0].clone()).collect();
        let mut sorted = firsts.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(firsts, sorted);
    }

    #[test]
    fn where_with_string_literals_and_not() {
        let ctx = context();
        let out = run_sql(
            "select query1 from graph where not (query1 = 'nfl' or query1 = 'sf')",
            &ctx,
        )
        .unwrap();
        assert_eq!(out.num_rows(), 2);
        for row in out.iter_rows() {
            assert_ne!(row[0], Value::str("nfl"));
            assert_ne!(row[0], Value::str("sf"));
        }
    }

    #[test]
    fn implicit_aliases_without_as() {
        let ctx = context();
        let out = run_sql("select query1 q, distance d from graph limit 1", &ctx).unwrap();
        let names: Vec<&str> = out
            .schema()
            .fields()
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        assert_eq!(names, vec!["q", "d"]);
    }

    #[test]
    fn ambiguous_bare_columns_are_rejected() {
        let ctx = context();
        // `comm_name`/`query` exist once; joining communities to itself
        // makes `query` ambiguous.
        let err = run_sql(
            "select query from communities c1 inner join communities c2 on c1.query = c2.query",
            &ctx,
        );
        assert!(err.is_err());
        // Qualified references resolve fine.
        let ok = run_sql(
            "select c1.query from communities c1 inner join communities c2 on c1.query = c2.query",
            &ctx,
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn union_all_concatenates_branches() {
        let ctx = context();
        let out = run_sql(
            "select query1 as q from graph where distance > 0.4              union all              select query2 as q from graph where distance > 0.4",
            &ctx,
        )
        .unwrap();
        // Two rows with distance > 0.4 → 2 + 2 rows.
        assert_eq!(out.num_rows(), 4);
        assert_eq!(out.schema().fields()[0].name, "q");
    }

    #[test]
    fn union_all_requires_matching_schemas() {
        let ctx = context();
        assert!(run_sql(
            "select query1 from graph union all select distance from graph",
            &ctx
        )
        .is_err());
    }

    #[test]
    fn having_filters_groups() {
        let ctx = context();
        // Per query2: count appearances; keep only repeated ones.
        let out = run_sql(
            "select query2, count(*) as n from graph group by query2 having n >= 2",
            &ctx,
        )
        .unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.row(0), vec![Value::str("nfl"), Value::Int(2)]);
    }

    #[test]
    fn having_without_group_by_is_rejected() {
        let ctx = context();
        assert!(run_sql("select query1 from graph having query1 = 'x'", &ctx).is_err());
    }

    #[test]
    fn having_rejects_direct_aggregate_calls() {
        let ctx = context();
        assert!(run_sql(
            "select query2, count(*) as n from graph group by query2 having count(*) >= 2",
            &ctx
        )
        .is_err());
    }

    #[test]
    fn distinct_deduplicates() {
        let ctx = context();
        let out = run_sql("select distinct comm_name from communities", &ctx).unwrap();
        assert_eq!(out.num_rows(), 4);
    }
}
