//! # esharp-relation
//!
//! A small, from-scratch parallel relational engine — the substrate on
//! which e#'s "SQL-based modularity maximization" (EDBT 2016, §4.2) runs.
//!
//! The paper's claim is that its community-detection loop "can directly be
//! implemented in (parallel) declarative languages such as Hive, Pig,
//! Microsoft's SCOPE or even SQL" and parallelized "with standard
//! map-reduce relational operators". This crate provides exactly that
//! execution model:
//!
//! * typed columnar [`Table`]s with [`Schema`]s and [`Value`]s,
//! * physical operators (filter, project, hash join, hash aggregate with
//!   the paper's `argmax`, sort, distinct, union, limit),
//! * a thread-parallel executor with deterministic hash partitioning and
//!   the two join strategies discussed in §4.2.3 (replicated/broadcast vs
//!   co-partitioned),
//! * per-stage I/O statistics in the shape of the paper's Table 9,
//! * a SQL front-end able to parse and run the Figure 4 queries, including
//!   the pipeline-supplied `ModulGain` UDF and the `argmax` aggregate.
//!
//! ```
//! use esharp_relation::{Catalog, ExecContext, Schema, Table, DataType, Value, run_sql};
//!
//! let catalog = Catalog::new();
//! let schema = Schema::of(&[("query", DataType::Str), ("clicks", DataType::Int)]);
//! let log = Table::from_rows(schema, vec![
//!     vec![Value::str("49ers"), Value::Int(25)],
//!     vec![Value::str("nfl"), Value::Int(20)],
//! ]).unwrap();
//! catalog.register("log", log);
//! let ctx = ExecContext::new(catalog);
//! let out = run_sql("select query from log where clicks > 21", &ctx).unwrap();
//! assert_eq!(out.num_rows(), 1);
//! ```

#![warn(missing_docs)]

pub mod atomic;
pub mod binfmt;
mod catalog;
pub mod csv;
mod column;
mod error;
pub mod exec;
mod explain;
mod expr;
pub mod ops;
pub mod paged;
pub mod physical;
mod plan;
mod schema;
pub mod sql;
mod table;
mod udf;
mod value;

pub use catalog::{Catalog, Source};
pub use column::Column;
pub use error::{RelError, RelResult};
pub use exec::{Cluster, ExecStats, JoinStrategy, StageStats, StatsRegistry};
pub use explain::{explain, explain_analyze, explain_physical};
pub use expr::{BinOp, CompiledExpr, Expr};
pub use esharp_storage::{BufferPool, PoolStats, PAGE_SIZE};
pub use paged::{PagedTable, ScanOptions, ScanOutcome};
pub use physical::{optimize, Estimate, PhysicalPlan, PlanHistory};
pub use plan::{AggCall, ExecContext, LogicalPlan};
pub use schema::{Field, Schema, SchemaRef};
pub use sql::{plan_sql, run_sql, run_sql_unoptimized};
pub use table::{Table, TableBuilder};
pub use udf::{FnUdf, ScalarUdf, UdfRegistry};
pub use value::{DataType, Value};
