//! Logical plans and their executor.
//!
//! Plans are built either by the SQL binder ([`crate::sql`]) or directly
//! through the builder methods, and executed by [`ExecContext`], which owns
//! the catalog, the UDF registry, the worker pool and the join strategy.

use crate::catalog::Catalog;
use crate::error::{RelError, RelResult};
use crate::exec::{Cluster, JoinStrategy, StageStats, StatsRegistry};
use crate::expr::{BinOp, Expr};
use crate::ops::{self, AggFunc, AggSpec, ProjectionSpec, SortKey};
use crate::schema::Schema;
use crate::table::Table;
use crate::udf::UdfRegistry;
use std::time::Instant;

/// An aggregate call in a logical [`LogicalPlan::Aggregate`] node.
///
/// Aggregate arguments are restricted to plain column names — every query
/// in the pipeline (and in Figure 4) aggregates bare columns, and the
/// restriction keeps the parallel aggregation path trivially correct.
#[derive(Debug, Clone)]
pub struct AggCall {
    /// The aggregate function.
    pub func: AggFunc,
    /// Argument column names. `Count` takes zero; `ArgMax` takes
    /// `(order, value)`; the rest take one.
    pub args: Vec<String>,
    /// Output column name.
    pub alias: String,
}

/// A logical relational operator tree.
#[derive(Debug, Clone)]
pub enum LogicalPlan {
    /// Scan a catalog table by name.
    Scan {
        /// Table name.
        table: String,
    },
    /// Filter rows by a boolean expression.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Predicate.
        predicate: Expr,
    },
    /// Compute output columns.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// `(expression, optional alias)` pairs.
        exprs: Vec<(Expr, Option<String>)>,
    },
    /// Inner equi-join; `on` is a conjunction of equalities (non-equi
    /// conjuncts become a residual post-join filter).
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Join condition.
        on: Expr,
    },
    /// Grouped aggregation.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Grouping column names.
        group_by: Vec<String>,
        /// Aggregate calls.
        aggs: Vec<AggCall>,
    },
    /// Sort by named columns.
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// `(column, ascending)` keys.
        keys: Vec<(String, bool)>,
    },
    /// Keep the first `n` rows.
    Limit {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Row cap.
        n: usize,
    },
    /// Remove duplicate rows.
    Distinct {
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// Bag union of same-schema inputs.
    UnionAll {
        /// Input plans.
        inputs: Vec<LogicalPlan>,
    },
}

impl LogicalPlan {
    /// Scan builder.
    pub fn scan(table: impl Into<String>) -> LogicalPlan {
        LogicalPlan::Scan {
            table: table.into(),
        }
    }

    /// Filter builder.
    pub fn filter(self, predicate: Expr) -> LogicalPlan {
        LogicalPlan::Filter {
            input: Box::new(self),
            predicate,
        }
    }

    /// Project builder.
    pub fn project(self, exprs: Vec<(Expr, Option<String>)>) -> LogicalPlan {
        LogicalPlan::Project {
            input: Box::new(self),
            exprs,
        }
    }

    /// Join builder.
    pub fn join(self, right: LogicalPlan, on: Expr) -> LogicalPlan {
        LogicalPlan::Join {
            left: Box::new(self),
            right: Box::new(right),
            on,
        }
    }

    /// Aggregate builder.
    pub fn aggregate(self, group_by: Vec<String>, aggs: Vec<AggCall>) -> LogicalPlan {
        LogicalPlan::Aggregate {
            input: Box::new(self),
            group_by,
            aggs,
        }
    }

    /// Sort builder.
    pub fn sort(self, keys: Vec<(String, bool)>) -> LogicalPlan {
        LogicalPlan::Sort {
            input: Box::new(self),
            keys,
        }
    }

    /// Limit builder.
    pub fn limit(self, n: usize) -> LogicalPlan {
        LogicalPlan::Limit {
            input: Box::new(self),
            n,
        }
    }

    /// Distinct builder.
    pub fn distinct(self) -> LogicalPlan {
        LogicalPlan::Distinct {
            input: Box::new(self),
        }
    }

    /// Short node label for stats and EXPLAIN-style output.
    pub fn label(&self) -> &'static str {
        match self {
            LogicalPlan::Scan { .. } => "scan",
            LogicalPlan::Filter { .. } => "filter",
            LogicalPlan::Project { .. } => "project",
            LogicalPlan::Join { .. } => "join",
            LogicalPlan::Aggregate { .. } => "aggregate",
            LogicalPlan::Sort { .. } => "sort",
            LogicalPlan::Limit { .. } => "limit",
            LogicalPlan::Distinct { .. } => "distinct",
            LogicalPlan::UnionAll { .. } => "union",
        }
    }
}

/// Everything needed to execute a logical plan.
#[derive(Clone)]
pub struct ExecContext {
    /// Table registry.
    pub catalog: Catalog,
    /// Scalar function registry.
    pub udfs: UdfRegistry,
    /// Worker pool.
    pub cluster: Cluster,
    /// Physical join strategy (§4.2.3) used by the *logical* executor and
    /// as the planner's fallback when it has no estimates.
    pub join_strategy: JoinStrategy,
    /// Optional per-operator statistics sink.
    pub stats: Option<StatsRegistry>,
    /// Memory grant in bytes for blocking operators (sort, hash join,
    /// hash aggregate) in the physical executor. When an operator's
    /// working set exceeds the grant, it spills to disk instead of
    /// growing. `None` = unlimited (never spill).
    pub memory_grant: Option<usize>,
    /// Directory for spill files; the system temp dir when `None`.
    pub spill_root: Option<std::path::PathBuf>,
    /// Measured per-node statistics from a previous execution of the same
    /// query shape; the optimizer prefers these over its static guesses
    /// (§4.2.3's configured strategy choice, made a measured one).
    pub history: crate::physical::PlanHistory,
}

impl ExecContext {
    /// A serial context with built-in UDFs and no stats.
    pub fn new(catalog: Catalog) -> Self {
        ExecContext {
            catalog,
            udfs: UdfRegistry::with_builtins(),
            cluster: Cluster::serial(),
            join_strategy: JoinStrategy::Broadcast,
            stats: None,
            memory_grant: None,
            spill_root: None,
            history: crate::physical::PlanHistory::default(),
        }
    }

    /// Set the worker pool.
    pub fn with_cluster(mut self, cluster: Cluster) -> Self {
        self.cluster = cluster;
        self
    }

    /// Set the join strategy.
    pub fn with_join_strategy(mut self, strategy: JoinStrategy) -> Self {
        self.join_strategy = strategy;
        self
    }

    /// Attach a statistics registry.
    pub fn with_stats(mut self, stats: StatsRegistry) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Cap the memory grant of blocking operators (bytes); they spill to
    /// disk beyond it.
    pub fn with_memory_grant(mut self, bytes: usize) -> Self {
        self.memory_grant = Some(bytes);
        self
    }

    /// Set the spill directory root.
    pub fn with_spill_root(mut self, root: impl Into<std::path::PathBuf>) -> Self {
        self.spill_root = Some(root.into());
        self
    }

    /// Feed measured node statistics back into the optimizer.
    pub fn with_history(mut self, history: crate::physical::PlanHistory) -> Self {
        self.history = history;
        self
    }

    /// Execute a plan to a materialized table.
    pub fn execute(&self, plan: &LogicalPlan) -> RelResult<Table> {
        let start = Instant::now();
        let (result, rows_in, bytes_in) = match plan {
            LogicalPlan::Scan { table } => {
                let t = self.catalog.get(table)?;
                let (r, b) = (t.num_rows() as u64, t.byte_size() as u64);
                (t, r, b)
            }
            LogicalPlan::Filter { input, predicate } => {
                let t = self.execute(input)?;
                let compiled = predicate.compile(t.schema(), &self.udfs)?;
                let io = (t.num_rows() as u64, t.byte_size() as u64);
                (ops::filter(&t, &compiled)?, io.0, io.1)
            }
            LogicalPlan::Project { input, exprs } => {
                let t = self.execute(input)?;
                let specs = exprs
                    .iter()
                    .map(|(e, alias)| {
                        ProjectionSpec::compile(e, alias.as_deref(), t.schema(), &self.udfs)
                    })
                    .collect::<RelResult<Vec<_>>>()?;
                let io = (t.num_rows() as u64, t.byte_size() as u64);
                (ops::project(&t, &specs)?, io.0, io.1)
            }
            LogicalPlan::Join { left, right, on } => {
                let l = self.execute(left)?;
                let r = self.execute(right)?;
                let rows = (l.num_rows() + r.num_rows()) as u64;
                let bytes = (l.byte_size() + r.byte_size()) as u64;
                (self.execute_join(&l, &r, on)?, rows, bytes)
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let t = self.execute(input)?;
                let keys = group_by
                    .iter()
                    .map(|name| t.schema().index_of(name))
                    .collect::<RelResult<Vec<_>>>()?;
                let specs = aggs
                    .iter()
                    .map(|call| lower_agg(call, t.schema()))
                    .collect::<RelResult<Vec<_>>>()?;
                let io = (t.num_rows() as u64, t.byte_size() as u64);
                (self.cluster.aggregate(&t, &keys, &specs)?, io.0, io.1)
            }
            LogicalPlan::Sort { input, keys } => {
                let t = self.execute(input)?;
                let sort_keys = keys
                    .iter()
                    .map(|(name, asc)| {
                        Ok(SortKey {
                            col: t.schema().index_of(name)?,
                            ascending: *asc,
                        })
                    })
                    .collect::<RelResult<Vec<_>>>()?;
                let io = (t.num_rows() as u64, t.byte_size() as u64);
                (ops::sort(&t, &sort_keys)?, io.0, io.1)
            }
            LogicalPlan::Limit { input, n } => {
                let t = self.execute(input)?;
                let io = (t.num_rows() as u64, t.byte_size() as u64);
                (ops::limit(&t, *n)?, io.0, io.1)
            }
            LogicalPlan::Distinct { input } => {
                let t = self.execute(input)?;
                let io = (t.num_rows() as u64, t.byte_size() as u64);
                (ops::distinct(&t)?, io.0, io.1)
            }
            LogicalPlan::UnionAll { inputs } => {
                let tables = inputs
                    .iter()
                    .map(|p| self.execute(p))
                    .collect::<RelResult<Vec<_>>>()?;
                let rows = tables.iter().map(|t| t.num_rows() as u64).sum();
                let bytes = tables.iter().map(|t| t.byte_size() as u64).sum();
                (ops::union_all(&tables)?, rows, bytes)
            }
        };
        if let Some(stats) = &self.stats {
            let mut rec = StageStats::new(plan.label(), self.cluster.workers());
            rec.wall = start.elapsed();
            rec.rows_read = rows_in;
            rec.bytes_read = bytes_in;
            rec.rows_written = result.num_rows() as u64;
            rec.bytes_written = result.byte_size() as u64;
            stats.record(rec);
        }
        Ok(result)
    }

    /// Split a join condition into hash keys and a residual predicate, then
    /// run the configured parallel join.
    fn execute_join(&self, left: &Table, right: &Table, on: &Expr) -> RelResult<Table> {
        let mut conjuncts = Vec::new();
        flatten_and(on, &mut conjuncts);
        let mut left_keys = Vec::new();
        let mut right_keys = Vec::new();
        let mut residual: Option<Expr> = None;
        for c in conjuncts {
            match equi_pair(c, left.schema(), right.schema()) {
                Some((l, r)) => {
                    left_keys.push(l);
                    right_keys.push(r);
                }
                None => {
                    residual = Some(match residual {
                        Some(acc) => acc.and(c.clone()),
                        None => c.clone(),
                    });
                }
            }
        }
        if left_keys.is_empty() {
            return Err(RelError::InvalidPlan(
                "join condition contains no equi-join predicate".into(),
            ));
        }
        let joined = self
            .cluster
            .join(left, right, &left_keys, &right_keys, self.join_strategy)?;
        match residual {
            Some(expr) => {
                let compiled = expr.compile(joined.schema(), &self.udfs)?;
                ops::filter(&joined, &compiled)
            }
            None => Ok(joined),
        }
    }
}

/// Collect the AND-conjuncts of an expression tree.
pub(crate) fn flatten_and<'a>(expr: &'a Expr, out: &mut Vec<&'a Expr>) {
    match expr {
        Expr::Binary {
            op: BinOp::And,
            left,
            right,
        } => {
            flatten_and(left, out);
            flatten_and(right, out);
        }
        other => out.push(other),
    }
}

/// If `expr` is `lcol = rcol` with the columns on opposite join sides,
/// return their indices as `(left_idx, right_idx)`.
pub(crate) fn equi_pair(expr: &Expr, left: &Schema, right: &Schema) -> Option<(usize, usize)> {
    let Expr::Binary {
        op: BinOp::Eq,
        left: a,
        right: b,
    } = expr
    else {
        return None;
    };
    let (Expr::Col(x), Expr::Col(y)) = (a.as_ref(), b.as_ref()) else {
        return None;
    };
    match (left.index_of(x), right.index_of(y)) {
        (Ok(l), Ok(r)) => Some((l, r)),
        _ => match (left.index_of(y), right.index_of(x)) {
            (Ok(l), Ok(r)) => Some((l, r)),
            _ => None,
        },
    }
}

/// Lower a logical aggregate call to a physical [`AggSpec`].
pub(crate) fn lower_agg(call: &AggCall, schema: &Schema) -> RelResult<AggSpec> {
    let idx = |name: &String| schema.index_of(name);
    match call.func {
        AggFunc::Count => {
            if !call.args.is_empty() {
                return Err(RelError::InvalidPlan(
                    "count(*) takes no column arguments".into(),
                ));
            }
            Ok(AggSpec::count(call.alias.clone()))
        }
        AggFunc::ArgMax => {
            let [order, value] = call.args.as_slice() else {
                return Err(RelError::InvalidPlan(
                    "argmax expects exactly (order, value)".into(),
                ));
            };
            Ok(AggSpec::argmax(idx(order)?, idx(value)?, call.alias.clone()))
        }
        func => {
            let [col] = call.args.as_slice() else {
                return Err(RelError::InvalidPlan(format!(
                    "{:?} expects exactly one column",
                    func
                )));
            };
            Ok(AggSpec::on(func, idx(col)?, call.alias.clone()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{DataType, Value};

    fn context() -> ExecContext {
        let catalog = Catalog::new();
        let schema = Schema::of(&[
            ("query1", DataType::Str),
            ("query2", DataType::Str),
            ("distance", DataType::Float),
        ]);
        let graph = Table::from_rows(
            schema,
            vec![
                vec![Value::str("49ers"), Value::str("nfl"), Value::Float(0.3)],
                vec![Value::str("nfl"), Value::str("football"), Value::Float(0.5)],
                vec![Value::str("sf"), Value::str("49ers"), Value::Float(0.2)],
            ],
        )
        .unwrap();
        catalog.register("graph", graph);
        let comm_schema = Schema::of(&[("comm_name", DataType::Str), ("query", DataType::Str)]);
        let communities = Table::from_rows(
            comm_schema,
            vec![
                vec![Value::str("a"), Value::str("49ers")],
                vec![Value::str("a"), Value::str("nfl")],
                vec![Value::str("b"), Value::str("football")],
                vec![Value::str("c"), Value::str("sf")],
            ],
        )
        .unwrap();
        catalog.register("communities", communities);
        ExecContext::new(catalog)
    }

    #[test]
    fn scan_filter_project() {
        let ctx = context();
        let plan = LogicalPlan::scan("graph")
            .filter(Expr::col("distance").gt(Expr::lit(0.25)))
            .project(vec![(Expr::col("query1"), Some("q".into()))]);
        let out = ctx.execute(&plan).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.schema().fields()[0].name, "q");
    }

    #[test]
    fn join_with_residual_filter() {
        let ctx = context();
        let on = Expr::col("query2")
            .eq(Expr::col("query"))
            .and(Expr::col("distance").gt(Expr::lit(0.25)));
        let plan = LogicalPlan::scan("graph").join(LogicalPlan::scan("communities"), on);
        let out = ctx.execute(&plan).unwrap();
        // Only rows with distance > 0.25 whose query2 appears in communities.
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn join_without_equi_predicate_is_rejected() {
        let ctx = context();
        let on = Expr::col("distance").gt(Expr::lit(0.0));
        let plan = LogicalPlan::scan("graph").join(LogicalPlan::scan("communities"), on);
        assert!(ctx.execute(&plan).is_err());
    }

    #[test]
    fn aggregate_plan_runs() {
        let ctx = context();
        let plan = LogicalPlan::scan("communities").aggregate(
            vec!["comm_name".into()],
            vec![AggCall {
                func: AggFunc::Count,
                args: vec![],
                alias: "n".into(),
            }],
        );
        let out = ctx.execute(&plan).unwrap();
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.row(0), vec![Value::str("a"), Value::Int(2)]);
    }

    #[test]
    fn sort_and_limit() {
        let ctx = context();
        let plan = LogicalPlan::scan("graph")
            .sort(vec![("distance".into(), false)])
            .limit(1);
        let out = ctx.execute(&plan).unwrap();
        assert_eq!(out.row(0)[2], Value::Float(0.5));
    }

    #[test]
    fn stats_are_recorded_per_operator() {
        let stats = StatsRegistry::new();
        let ctx = context().with_stats(stats.clone());
        let plan = LogicalPlan::scan("graph").filter(Expr::col("distance").gt(Expr::lit(0.0)));
        ctx.execute(&plan).unwrap();
        let snap = stats.snapshot();
        assert_eq!(snap.len(), 2); // scan + filter
        assert_eq!(snap[0].stage, "scan");
        assert_eq!(snap[1].stage, "filter");
        assert_eq!(snap[1].rows_read, 3);
    }
}
