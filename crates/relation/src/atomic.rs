//! Crash-safe persistence primitives — re-exported from
//! [`esharp_storage::atomic`], where they moved when the paged storage
//! layer landed below this crate. Every existing
//! `esharp_relation::atomic::...` path keeps working; new code should
//! prefer depending on `esharp-storage` directly.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub use esharp_storage::atomic::*;
