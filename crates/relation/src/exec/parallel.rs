//! Thread-parallel execution of relational operators.
//!
//! Reproduces the execution strategies of §4.2.3: the expensive
//! neighborhood join can run either as a *replicated* (broadcast) join —
//! the small `communities` table is copied to every worker and the large
//! `graph` table is chunked — or as a *co-partitioned* join, where both
//! inputs are hash-partitioned on the join key and joined partition-wise.
//! Grouping/renaming run as "one map-reduce pass": partition on the group
//! key, aggregate each partition independently.

use crate::error::RelResult;
use crate::exec::partition::{chunk_partition, hash_partition};
use crate::ops::{aggregate, hash_join, AggSpec, JoinSide};
use crate::table::Table;
use esharp_par::{shared_pool, ThreadPool};
use std::sync::Arc;

/// Which physical join strategy to use (§4.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinStrategy {
    /// Replicate the build side to every worker; chunk the probe side.
    /// Best when the build side fits in memory on every node — the paper's
    /// preferred plan for the communities⋈graph join.
    Broadcast,
    /// Hash-partition both inputs on the join key and join partition-wise
    /// ("chain two map-side joins" in the paper's terms). Needed when
    /// neither side fits on one node.
    CoPartitioned,
}

/// A pool of logical workers backed by the process-wide persistent
/// [`esharp_par`] pool: threads are built once per worker count and reused
/// across every join and aggregation — mirroring the paper's elastic VM
/// allocation where "a relational operator can use between one and
/// hundreds of virtual machines", minus the per-operator start-up cost.
/// Cloning a `Cluster` shares the pool; it never spawns.
#[derive(Debug, Clone)]
pub struct Cluster {
    pool: Arc<ThreadPool>,
}

impl Cluster {
    /// A cluster with the given worker count (minimum 1), attached to the
    /// shared pool for that count.
    pub fn new(workers: usize) -> Self {
        Cluster {
            pool: shared_pool(workers),
        }
    }

    /// A serial "cluster" of one worker.
    pub fn serial() -> Self {
        Cluster::new(1)
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Apply `f` to every partition concurrently, preserving partition
    /// order in the result.
    pub fn map_partitions<F>(&self, parts: Vec<Table>, f: F) -> RelResult<Vec<Table>>
    where
        F: Fn(usize, Table) -> RelResult<Table> + Sync,
    {
        if self.workers() == 1 || parts.len() <= 1 {
            return parts
                .into_iter()
                .enumerate()
                .map(|(i, p)| f(i, p))
                .collect();
        }
        let f = &f;
        let tasks: Vec<_> = parts
            .into_iter()
            .enumerate()
            .map(|(i, part)| move || f(i, part))
            .collect();
        self.pool.run(tasks).into_iter().collect()
    }

    /// Parallel inner hash equi-join.
    pub fn join(
        &self,
        left: &Table,
        right: &Table,
        left_keys: &[usize],
        right_keys: &[usize],
        strategy: JoinStrategy,
    ) -> RelResult<Table> {
        if self.workers() == 1 {
            return hash_join(left, right, left_keys, right_keys, JoinSide::BuildRight);
        }
        let parts = match strategy {
            JoinStrategy::Broadcast => {
                // Replicate `right` (build side); chunk `left` (probe side).
                let chunks = chunk_partition(left, self.workers());
                self.map_partitions(chunks, |_, chunk| {
                    hash_join(&chunk, right, left_keys, right_keys, JoinSide::BuildRight)
                })?
            }
            JoinStrategy::CoPartitioned => {
                let left_parts = hash_partition(left, left_keys, self.workers());
                let right_parts = hash_partition(right, right_keys, self.workers());
                // Pair up partitions; the closure indexes the co-partition.
                self.map_partitions(left_parts, |i, lpart| {
                    hash_join(
                        &lpart,
                        &right_parts[i],
                        left_keys,
                        right_keys,
                        JoinSide::BuildRight,
                    )
                })?
            }
        };
        Table::concat(&parts)
    }

    /// Parallel grouped aggregation: partition on the group keys (the "map"
    /// emitting on the key), aggregate each partition (the "reduce"), and
    /// concatenate — legal because hash partitioning co-locates groups.
    pub fn aggregate(
        &self,
        input: &Table,
        group_keys: &[usize],
        aggs: &[AggSpec],
    ) -> RelResult<Table> {
        if self.workers() == 1 || group_keys.is_empty() {
            return aggregate(input, group_keys, aggs);
        }
        let parts = hash_partition(input, group_keys, self.workers());
        let results = self.map_partitions(parts, |_, part| aggregate(&part, group_keys, aggs))?;
        Table::concat(&results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::AggFunc;
    use crate::schema::Schema;
    use crate::value::{DataType, Value};

    fn graph(n: i64) -> Table {
        let schema = Schema::of(&[("src", DataType::Int), ("dst", DataType::Int)]);
        Table::from_rows(
            schema,
            (0..n)
                .map(|i| vec![Value::Int(i % 17), Value::Int((i * 7) % 13)])
                .collect(),
        )
        .unwrap()
    }

    fn nodes() -> Table {
        let schema = Schema::of(&[("id", DataType::Int), ("comm", DataType::Int)]);
        Table::from_rows(
            schema,
            (0..17).map(|i| vec![Value::Int(i), Value::Int(i / 3)]).collect(),
        )
        .unwrap()
    }

    #[test]
    fn broadcast_matches_serial_join() {
        let g = graph(200);
        let n = nodes();
        let serial = Cluster::serial()
            .join(&g, &n, &[0], &[0], JoinStrategy::Broadcast)
            .unwrap();
        let par = Cluster::new(4)
            .join(&g, &n, &[0], &[0], JoinStrategy::Broadcast)
            .unwrap();
        assert_eq!(serial.sorted_rows(), par.sorted_rows());
    }

    #[test]
    fn copartitioned_matches_broadcast() {
        let g = graph(200);
        let n = nodes();
        let a = Cluster::new(4)
            .join(&g, &n, &[0], &[0], JoinStrategy::Broadcast)
            .unwrap();
        let b = Cluster::new(4)
            .join(&g, &n, &[0], &[0], JoinStrategy::CoPartitioned)
            .unwrap();
        assert_eq!(a.sorted_rows(), b.sorted_rows());
    }

    #[test]
    fn parallel_aggregate_matches_serial() {
        let g = graph(500);
        let aggs = [
            AggSpec::count("n"),
            AggSpec::on(AggFunc::Sum, 1, "s"),
            AggSpec::on(AggFunc::Max, 1, "m"),
        ];
        let serial = Cluster::serial().aggregate(&g, &[0], &aggs).unwrap();
        let par = Cluster::new(8).aggregate(&g, &[0], &aggs).unwrap();
        assert_eq!(serial.sorted_rows(), par.sorted_rows());
    }

    #[test]
    fn argmax_survives_partitioning() {
        let g = graph(500);
        let aggs = [AggSpec::argmax(1, 1, "best")];
        let serial = Cluster::serial().aggregate(&g, &[0], &aggs).unwrap();
        let par = Cluster::new(4).aggregate(&g, &[0], &aggs).unwrap();
        assert_eq!(serial.sorted_rows(), par.sorted_rows());
    }
}
