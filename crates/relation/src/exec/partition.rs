//! Deterministic hash partitioning — the "exchange" of the engine.
//!
//! Partitioning must be stable across runs and processes (tests compare
//! parallel and serial plans row-for-row), so the hash is a fixed-seed
//! FxHash-style multiply hash rather than std's randomly keyed SipHash.

use crate::table::Table;
use crate::value::Value;
use std::hash::Hasher;

/// A deterministic, fast, non-cryptographic hasher (FxHash construction).
#[derive(Default)]
pub struct FixedHasher(u64);

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FixedHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    fn write_u8(&mut self, b: u8) {
        self.0 = (self.0.rotate_left(5) ^ (b as u64)).wrapping_mul(SEED);
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0.rotate_left(5) ^ n).wrapping_mul(SEED);
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

/// Deterministic 64-bit hash of a composite key.
pub fn hash_key(values: &[Value]) -> u64 {
    use std::hash::Hash;
    let mut hasher = FixedHasher::default();
    for v in values {
        v.hash(&mut hasher);
    }
    hasher.finish()
}

/// Split `input` into `n` partitions by hashing the given key columns.
/// Every row with the same key lands in the same partition.
pub fn hash_partition(input: &Table, keys: &[usize], n: usize) -> Vec<Table> {
    assert!(n > 0, "partition count must be positive");
    if n == 1 {
        return vec![input.clone()];
    }
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut key = Vec::with_capacity(keys.len());
    for row in 0..input.num_rows() {
        key.clear();
        key.extend(keys.iter().map(|&k| input.column(k).value(row)));
        let bucket = (hash_key(&key) % n as u64) as usize;
        buckets[bucket].push(row);
    }
    buckets.into_iter().map(|idx| input.gather(&idx)).collect()
}

/// Split `input` into `n` contiguous chunks of near-equal size (for
/// broadcast joins, where the probe side needs no co-location).
pub fn chunk_partition(input: &Table, n: usize) -> Vec<Table> {
    assert!(n > 0, "partition count must be positive");
    let rows = input.num_rows();
    let per = rows.div_ceil(n.max(1)).max(1);
    let mut out = Vec::with_capacity(n);
    let mut start = 0;
    for _ in 0..n {
        let end = (start + per).min(rows);
        let indices: Vec<usize> = (start..end).collect();
        out.push(input.gather(&indices));
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::DataType;

    fn table(n: i64) -> Table {
        let schema = Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]);
        Table::from_rows(
            schema,
            (0..n).map(|i| vec![Value::Int(i % 10), Value::Int(i)]).collect(),
        )
        .unwrap()
    }

    #[test]
    fn hash_partition_preserves_all_rows() {
        let t = table(100);
        let parts = hash_partition(&t, &[0], 4);
        assert_eq!(parts.iter().map(Table::num_rows).sum::<usize>(), 100);
    }

    #[test]
    fn hash_partition_colocates_keys() {
        let t = table(100);
        let parts = hash_partition(&t, &[0], 4);
        // Each key value appears in exactly one partition.
        for key in 0..10_i64 {
            let holders = parts
                .iter()
                .filter(|p| p.iter_rows().any(|r| r[0] == Value::Int(key)))
                .count();
            assert_eq!(holders, 1, "key {key} split across partitions");
        }
    }

    #[test]
    fn hash_is_deterministic() {
        let k = vec![Value::str("49ers"), Value::Int(7)];
        assert_eq!(hash_key(&k), hash_key(&k.clone()));
    }

    #[test]
    fn chunk_partition_covers_input_in_order() {
        let t = table(10);
        let parts = chunk_partition(&t, 3);
        let rebuilt = Table::concat(&parts).unwrap();
        assert_eq!(rebuilt, t);
    }

    #[test]
    fn single_partition_is_identity() {
        let t = table(5);
        let parts = hash_partition(&t, &[0], 1);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0], t);
    }
}
