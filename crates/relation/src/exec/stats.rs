//! Per-stage resource accounting, in the shape of the paper's Table 9
//! (step, workers, runtime, bytes read, bytes written).

use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Resource consumption of one named pipeline stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageStats {
    /// Stage name (e.g. "extraction", "clustering iteration 3").
    pub stage: String,
    /// Degree of parallelism used (the paper's "VMs" column).
    pub workers: usize,
    /// Wall-clock time.
    pub wall: Duration,
    /// Rows consumed.
    pub rows_read: u64,
    /// Rows produced.
    pub rows_written: u64,
    /// Payload bytes consumed.
    pub bytes_read: u64,
    /// Payload bytes produced.
    pub bytes_written: u64,
    /// Bytes written to spill files when the operator exceeded its memory
    /// grant (0 when the operator ran fully in memory).
    pub spill_bytes: u64,
    /// Number of spill partitions / sorted runs written.
    pub spill_parts: u64,
    /// Physical plan node id this record belongs to, when the record was
    /// produced by [`crate::physical`] execution. Lets EXPLAIN ANALYZE
    /// correlate measurements with plan nodes; `None` for pipeline-level
    /// records.
    pub node: Option<usize>,
}

/// Per-operator execution statistics — the physical planner's name for
/// [`StageStats`]: every operator in a physical plan records one.
pub type ExecStats = StageStats;

impl StageStats {
    /// A zeroed stats record for a stage.
    pub fn new(stage: impl Into<String>, workers: usize) -> Self {
        StageStats {
            stage: stage.into(),
            workers,
            wall: Duration::ZERO,
            rows_read: 0,
            rows_written: 0,
            bytes_read: 0,
            bytes_written: 0,
            spill_bytes: 0,
            spill_parts: 0,
            node: None,
        }
    }
}

impl fmt::Display for StageStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<28} workers={:<3} wall={:>10.3?} read={} rows/{} B written={} rows/{} B",
            self.stage,
            self.workers,
            self.wall,
            self.rows_read,
            self.bytes_read,
            self.rows_written,
            self.bytes_written
        )?;
        if self.spill_bytes > 0 {
            write!(
                f,
                " spilled={} B/{} parts",
                self.spill_bytes, self.spill_parts
            )?;
        }
        Ok(())
    }
}

/// Thread-safe collector of stage statistics.
///
/// Cloning shares the underlying registry, so operators deep in the
/// executor can record into the same log the pipeline driver reads.
#[derive(Debug, Clone, Default)]
pub struct StatsRegistry {
    inner: Arc<Mutex<Vec<StageStats>>>,
}

impl StatsRegistry {
    /// Fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a finished stage record.
    pub fn record(&self, stats: StageStats) {
        self.inner.lock().push(stats);
    }

    /// Snapshot all records so far.
    pub fn snapshot(&self) -> Vec<StageStats> {
        self.inner.lock().clone()
    }

    /// Drop all records.
    pub fn clear(&self) {
        self.inner.lock().clear();
    }

    /// Sum of records whose stage name starts with `prefix`, under the
    /// given merged name. Returns `None` if nothing matched.
    pub fn rollup(&self, prefix: &str, merged_name: &str) -> Option<StageStats> {
        let records = self.inner.lock();
        let mut merged: Option<StageStats> = None;
        for r in records.iter().filter(|r| r.stage.starts_with(prefix)) {
            let m = merged.get_or_insert_with(|| StageStats::new(merged_name, r.workers));
            m.workers = m.workers.max(r.workers);
            m.wall += r.wall;
            m.rows_read += r.rows_read;
            m.rows_written += r.rows_written;
            m.bytes_read += r.bytes_read;
            m.bytes_written += r.bytes_written;
            m.spill_bytes += r.spill_bytes;
            m.spill_parts += r.spill_parts;
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let reg = StatsRegistry::new();
        reg.record(StageStats::new("extraction", 4));
        let shared = reg.clone();
        shared.record(StageStats::new("clustering", 4));
        assert_eq!(reg.snapshot().len(), 2);
    }

    #[test]
    fn rollup_merges_by_prefix() {
        let reg = StatsRegistry::new();
        let mut a = StageStats::new("clustering iteration 1", 2);
        a.rows_read = 10;
        a.wall = Duration::from_millis(5);
        let mut b = StageStats::new("clustering iteration 2", 4);
        b.rows_read = 7;
        b.wall = Duration::from_millis(3);
        reg.record(a);
        reg.record(b);
        reg.record(StageStats::new("extraction", 1));
        let merged = reg.rollup("clustering", "clustering").unwrap();
        assert_eq!(merged.rows_read, 17);
        assert_eq!(merged.workers, 4);
        assert_eq!(merged.wall, Duration::from_millis(8));
        assert!(reg.rollup("nothing", "x").is_none());
    }
}
