//! Parallel execution: partitioning, worker pools, per-stage statistics.

mod parallel;
mod partition;
mod stats;

pub use parallel::{Cluster, JoinStrategy};
pub use partition::{chunk_partition, hash_key, hash_partition, FixedHasher};
pub use stats::{ExecStats, StageStats, StatsRegistry};
