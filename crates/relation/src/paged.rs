//! On-disk paged tables: the out-of-core backing for [`Table`].
//!
//! A [`PagedTable`] serializes a table row-at-a-time into the slotted heap
//! pages of [`esharp_storage::HeapFile`] (schema stored in the heap's user
//! metadata as a binfmt-encoded empty table), and scans stream pages back
//! through a [`BufferPool`] — so a table much larger than the pool can be
//! filtered, projected and joined without ever being fully resident.
//!
//! Scans accept pushed-down predicates, projections and limits
//! ([`ScanOptions`]): the predicate is evaluated per page as it comes out
//! of the pool, the projection drops columns before they are concatenated,
//! and the limit stops page fetches early. [`ScanOutcome::rows_scanned`]
//! reports how many rows were actually decoded, which is what the planner
//! benchmarks to show pushdown working.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::binfmt;
use crate::error::{RelError, RelResult};
use crate::expr::CompiledExpr;
use crate::ops;
use crate::schema::{Schema, SchemaRef};
use crate::table::{Table, TableBuilder};
use crate::value::{DataType, Value};
use bytes::Bytes;
use esharp_storage::{BufferPool, HeapFile, Page, PAGE_SIZE};
use std::path::Path;
use std::sync::Arc;

/// Encode one row with the per-value codec: Bool = 1 byte, Int/Float =
/// 8 bytes LE, Str = u32 LE length + UTF-8 bytes.
fn encode_row(table: &Table, row: usize, buf: &mut Vec<u8>) {
    buf.clear();
    for col in table.columns() {
        match col.value(row) {
            Value::Bool(b) => buf.push(b as u8),
            Value::Int(i) => buf.extend_from_slice(&i.to_le_bytes()),
            Value::Float(x) => buf.extend_from_slice(&x.to_le_bytes()),
            Value::Str(s) => {
                buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
                buf.extend_from_slice(s.as_bytes());
            }
        }
    }
}

/// Decode one record produced by [`encode_row`] back into row values.
fn decode_row(schema: &Schema, rec: &[u8]) -> RelResult<Vec<Value>> {
    let corrupt = |what: &str| RelError::Storage(format!("paged record: {what}"));
    let mut off = 0usize;
    let mut take = |n: usize| -> RelResult<&[u8]> {
        let slice = rec
            .get(off..off + n)
            .ok_or_else(|| corrupt("truncated value"))?;
        off += n;
        Ok(slice)
    };
    let mut row = Vec::with_capacity(schema.len());
    for field in schema.fields() {
        let v = match field.dtype {
            DataType::Bool => Value::Bool(take(1)?[0] != 0),
            DataType::Int => {
                let b: [u8; 8] = take(8)?.try_into().map_err(|_| corrupt("int"))?;
                Value::Int(i64::from_le_bytes(b))
            }
            DataType::Float => {
                let b: [u8; 8] = take(8)?.try_into().map_err(|_| corrupt("float"))?;
                Value::Float(f64::from_le_bytes(b))
            }
            DataType::Str => {
                let b: [u8; 4] = take(4)?.try_into().map_err(|_| corrupt("strlen"))?;
                let len = u32::from_le_bytes(b) as usize;
                let s = std::str::from_utf8(take(len)?)
                    .map_err(|_| corrupt("invalid utf-8"))?;
                Value::str(s)
            }
        };
        row.push(v);
    }
    if off != rec.len() {
        return Err(corrupt("trailing bytes"));
    }
    Ok(row)
}

/// Pushed-down scan parameters. All default to "no pushdown".
#[derive(Default)]
pub struct ScanOptions<'a> {
    /// Row predicate, compiled against the table's full schema; applied
    /// per page before projection.
    pub predicate: Option<&'a CompiledExpr>,
    /// Columns to keep (indices into the full schema, output order).
    pub projection: Option<&'a [usize]>,
    /// Stop after this many *output* rows; halts page fetches early.
    pub limit: Option<usize>,
}

/// The result of a pushdown scan, with the accounting the planner reports.
#[derive(Debug)]
pub struct ScanOutcome {
    /// The materialized (filtered/projected/limited) rows.
    pub table: Table,
    /// Rows decoded from pages — the quantity pushdown reduces.
    pub rows_scanned: u64,
    /// Pages fetched through the buffer pool.
    pub pages_read: u64,
}

/// A read-only table stored in a checksummed heap file.
#[derive(Debug, Clone)]
pub struct PagedTable {
    heap: Arc<HeapFile>,
    schema: SchemaRef,
}

impl PagedTable {
    /// Write `table` out as a paged heap file at `<base>.heap` /
    /// `<base>.meta` and return the handle. The schema travels in the
    /// heap's user metadata as a binfmt-encoded empty table, so
    /// [`PagedTable::open`] needs no side channel.
    pub fn create(base: &Path, table: &Table) -> RelResult<PagedTable> {
        let user_meta = binfmt::encode_table(&Table::empty(table.schema().clone()));
        let heap = HeapFile::create(base, &user_meta)?;
        let mut page = Page::empty();
        let mut buf = Vec::new();
        for row in 0..table.num_rows() {
            encode_row(table, row, &mut buf);
            if page.insert(&buf).is_none() {
                if page.is_empty() {
                    return Err(RelError::Storage(format!(
                        "row of {} bytes exceeds the page capacity",
                        buf.len()
                    )));
                }
                flush_page(&heap, &mut page)?;
                page = Page::empty();
                if page.insert(&buf).is_none() {
                    return Err(RelError::Storage(format!(
                        "row of {} bytes exceeds the page capacity",
                        buf.len()
                    )));
                }
            }
        }
        if !page.is_empty() {
            flush_page(&heap, &mut page)?;
        }
        heap.add_records(table.num_rows() as u64);
        heap.sync()?;
        Ok(PagedTable {
            heap: Arc::new(heap),
            schema: table.schema().clone(),
        })
    }

    /// Open an existing paged table, verifying the heap metadata and
    /// decoding the schema from it.
    pub fn open(base: &Path) -> RelResult<PagedTable> {
        let heap = HeapFile::open(base)?;
        let empty = binfmt::decode_table(Bytes::copy_from_slice(heap.user_meta()))?;
        Ok(PagedTable {
            schema: empty.schema().clone(),
            heap: Arc::new(heap),
        })
    }

    /// The table schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Committed row count.
    pub fn num_rows(&self) -> u64 {
        self.heap.record_count()
    }

    /// Committed page count.
    pub fn page_count(&self) -> u64 {
        self.heap.page_count()
    }

    /// On-disk footprint of the data file in bytes.
    pub fn byte_size(&self) -> u64 {
        self.heap.page_count() * PAGE_SIZE as u64
    }

    /// The underlying heap file.
    pub fn heap(&self) -> &Arc<HeapFile> {
        &self.heap
    }

    /// Stream every page through `pool`, applying the pushed-down
    /// predicate, projection and limit as pages arrive.
    pub fn scan(&self, pool: &BufferPool, opts: &ScanOptions) -> RelResult<ScanOutcome> {
        let out_schema: SchemaRef = match opts.projection {
            Some(cols) => {
                let fields = cols
                    .iter()
                    .map(|&i| {
                        if i >= self.schema.len() {
                            return Err(RelError::Storage(format!(
                                "projection index {i} out of range"
                            )));
                        }
                        Ok(self.schema.field(i).clone())
                    })
                    .collect::<RelResult<Vec<_>>>()?;
                Arc::new(Schema::new(fields)?)
            }
            None => self.schema.clone(),
        };

        let mut parts: Vec<Table> = Vec::new();
        let mut rows_scanned = 0u64;
        let mut pages_read = 0u64;
        let mut taken = 0usize;
        // Scan-resistant admission: this sequential pass confines its
        // churn to a small per-scan ring instead of flooding the pool,
        // so pages other consumers (or a repeat of this scan) rely on
        // stay resident.
        let hint = pool.scan_hint();
        'pages: for no in 0..self.heap.page_count() {
            let guard = pool.fetch_hinted(&self.heap, no, Some(&hint))?;
            let mut builder = TableBuilder::new(self.schema.clone());
            {
                let page = guard.page();
                for rec in page.records() {
                    builder.push_row(decode_row(&self.schema, rec)?)?;
                }
            }
            let mut t = builder.finish();
            pages_read += 1;
            rows_scanned += t.num_rows() as u64;
            if let Some(pred) = opts.predicate {
                t = ops::filter(&t, pred)?;
            }
            if let Some(cols) = opts.projection {
                let columns = cols.iter().map(|&i| t.column(i).clone()).collect();
                t = Table::new(out_schema.clone(), columns)?;
            }
            if let Some(limit) = opts.limit {
                let remaining = limit - taken;
                if t.num_rows() >= remaining {
                    t = ops::limit(&t, remaining)?;
                    parts.push(t);
                    break 'pages;
                }
            }
            taken += t.num_rows();
            parts.push(t);
        }

        let table = if parts.is_empty() {
            Table::empty(out_schema)
        } else {
            Table::concat(&parts)?
        };
        Ok(ScanOutcome {
            table,
            rows_scanned,
            pages_read,
        })
    }

    /// Materialize the whole table (no pushdown).
    pub fn read_all(&self, pool: &BufferPool) -> RelResult<Table> {
        Ok(self.scan(pool, &ScanOptions::default())?.table)
    }
}

fn flush_page(heap: &HeapFile, page: &mut Page) -> RelResult<()> {
    let no = heap.allocate_page()?;
    heap.write_page(no, page)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::udf::UdfRegistry;

    fn sample(rows: i64) -> Table {
        let schema = Schema::of(&[
            ("id", DataType::Int),
            ("name", DataType::Str),
            ("score", DataType::Float),
            ("flag", DataType::Bool),
        ]);
        Table::from_rows(
            schema,
            (0..rows)
                .map(|i| {
                    vec![
                        Value::Int(i),
                        Value::str(format!("row-{i}")),
                        Value::Float(i as f64 / 7.0),
                        Value::Bool(i % 3 == 0),
                    ]
                })
                .collect(),
        )
        .unwrap()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("esharp_paged_{name}_{}", std::process::id()))
    }

    #[test]
    fn create_open_read_all_round_trips() {
        let t = sample(5000); // several pages worth
        let base = tmp("roundtrip");
        let paged = PagedTable::create(&base, &t).unwrap();
        assert_eq!(paged.num_rows(), 5000);
        assert!(paged.page_count() > 1);

        let reopened = PagedTable::open(&base).unwrap();
        assert_eq!(reopened.schema(), t.schema());
        let pool = BufferPool::new(4);
        let back = reopened.read_all(&pool).unwrap();
        assert_eq!(back, t);
        // The pool was far smaller than the table: frames must have been
        // turned over (scan-hinted recycles, not clock evictions) and
        // yet every row came back intact.
        let stats = pool.stats();
        assert!(stats.recycles > 0, "{stats:?}");
        assert_eq!(stats.evictions, 0, "scans should recycle their own ring: {stats:?}");
        let _ = std::fs::remove_file(base.with_extension("heap"));
        let _ = std::fs::remove_file(base.with_extension("meta"));
    }

    #[test]
    fn predicate_and_projection_pushdown_match_in_memory() {
        let t = sample(2000);
        let base = tmp("pushdown");
        let paged = PagedTable::create(&base, &t).unwrap();
        let pool = BufferPool::new(2);

        let udfs = UdfRegistry::with_builtins();
        let pred = Expr::col("score")
            .gt(Expr::lit(100.0))
            .compile(t.schema(), &udfs)
            .unwrap();
        let out = paged
            .scan(
                &pool,
                &ScanOptions {
                    predicate: Some(&pred),
                    projection: Some(&[1, 0]),
                    limit: None,
                },
            )
            .unwrap();
        let expected = ops::filter(&t, &pred).unwrap();
        assert_eq!(out.rows_scanned, 2000);
        assert_eq!(out.table.num_rows(), expected.num_rows());
        assert_eq!(out.table.schema().fields()[0].name, "name");
        assert_eq!(out.table.schema().fields()[1].name, "id");
        assert_eq!(out.table.column(1).value(0), expected.column(0).value(0));
        let _ = std::fs::remove_file(base.with_extension("heap"));
        let _ = std::fs::remove_file(base.with_extension("meta"));
    }

    #[test]
    fn limit_pushdown_stops_fetching_pages() {
        let t = sample(5000);
        let base = tmp("limit");
        let paged = PagedTable::create(&base, &t).unwrap();
        let pool = BufferPool::new(4);
        let out = paged
            .scan(
                &pool,
                &ScanOptions {
                    predicate: None,
                    projection: None,
                    limit: Some(10),
                },
            )
            .unwrap();
        assert_eq!(out.table.num_rows(), 10);
        assert_eq!(out.pages_read, 1);
        assert!(out.rows_scanned < 5000);
        let _ = std::fs::remove_file(base.with_extension("heap"));
        let _ = std::fs::remove_file(base.with_extension("meta"));
    }
}
