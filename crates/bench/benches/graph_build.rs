//! Ablation bench: similarity-graph construction through the URL inverted
//! index (the production path, after Baeza-Yates & Tiberi) vs naive
//! all-pairs cosine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esharp_graph::{build_graph, build_graph_naive, GraphConfig};
use esharp_querylog::{AggregatedLog, LogConfig, LogGenerator, World, WorldConfig};
use std::hint::black_box;

fn bench_graph_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_build");
    group.sample_size(10);
    for &(domains, events) in &[(4usize, 20_000usize), (12, 60_000)] {
        let world = World::generate(&WorldConfig {
            domains_per_category: domains,
            ..WorldConfig::tiny(7)
        });
        let log = AggregatedLog::from_events(
            LogGenerator::new(
                &world,
                &LogConfig {
                    events,
                    ..LogConfig::tiny(7)
                },
            ),
            world.terms.len(),
        );
        let (filtered, _) = log.filter_min_support(10);
        let config = GraphConfig::default();
        let terms = filtered.num_terms();
        group.bench_with_input(
            BenchmarkId::new("inverted_index", terms),
            &filtered,
            |b, log| b.iter(|| black_box(build_graph(log, &world, &config))),
        );
        group.bench_with_input(
            BenchmarkId::new("naive_all_pairs", terms),
            &filtered,
            |b, log| b.iter(|| black_box(build_graph_naive(log, &world, &config))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_graph_build);
criterion_main!(benches);
