//! Ablation bench: clustering algorithms on planted-community graphs.
//!
//! Compares the paper's 3-step parallel algorithm (serial and threaded),
//! the same loop through the Figure 4 SQL path, Newman/CNM, Louvain and
//! label propagation — runtime per algorithm and per graph size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esharp_bench::planted_multigraph;
use esharp_community::{
    cluster_label_propagation, cluster_louvain, cluster_newman, cluster_parallel, cluster_sql,
    LabelPropConfig, LouvainConfig, NewmanConfig, ParallelConfig, SqlClusterConfig,
};
use std::hint::black_box;

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("community_algorithms");
    group.sample_size(10);
    for &(groups, size) in &[(10usize, 10usize), (30, 12)] {
        let graph = planted_multigraph(groups, size, 42);
        let nodes = groups * size;
        group.bench_with_input(
            BenchmarkId::new("parallel_3step_1w", nodes),
            &graph,
            |b, g| {
                b.iter(|| {
                    black_box(cluster_parallel(
                        g,
                        &ParallelConfig {
                            workers: 1,
                            ..Default::default()
                        },
                    ))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("parallel_3step_4w", nodes),
            &graph,
            |b, g| {
                b.iter(|| {
                    black_box(cluster_parallel(
                        g,
                        &ParallelConfig {
                            workers: 4,
                            ..Default::default()
                        },
                    ))
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("sql_figure4", nodes), &graph, |b, g| {
            b.iter(|| black_box(cluster_sql(g, &SqlClusterConfig::default()).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("newman_cnm", nodes), &graph, |b, g| {
            b.iter(|| black_box(cluster_newman(g, &NewmanConfig::default())))
        });
        group.bench_with_input(BenchmarkId::new("louvain", nodes), &graph, |b, g| {
            b.iter(|| black_box(cluster_louvain(g, &LouvainConfig::default())))
        });
        group.bench_with_input(BenchmarkId::new("label_propagation", nodes), &graph, |b, g| {
            b.iter(|| black_box(cluster_label_propagation(g, &LabelPropConfig::default())))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
