//! Table 9's online rows: expansion latency (< 100 ms in the paper) and
//! detection latency (< 1 s), measured on a built testbed.

use criterion::{criterion_group, criterion_main, Criterion};
use esharp_eval::{EvalScale, Testbed};
use std::hint::black_box;

fn bench_online(c: &mut Criterion) {
    let tb = Testbed::build(EvalScale::Small, 2016);
    let mut group = c.benchmark_group("online_latency");

    group.bench_function("expansion_lookup", |b| {
        b.iter(|| black_box(tb.esharp.domains().expand("49ers", 25)))
    });
    group.bench_function("baseline_detection", |b| {
        b.iter(|| black_box(tb.esharp.search_baseline(&tb.corpus, "49ers")))
    });
    group.bench_function("esharp_search", |b| {
        b.iter(|| black_box(tb.esharp.search(&tb.corpus, "49ers")))
    });
    group.bench_function("esharp_search_unknown_query", |b| {
        b.iter(|| black_box(tb.esharp.search(&tb.corpus, "no such topic")))
    });

    // The two hot-path halves in isolation: k-way union over interned
    // postings, and the flat-scratch ranking of its match set.
    let expansion = tb.esharp.domains().expand("49ers", 25);
    group.bench_function("match_kway_union", |b| {
        b.iter(|| black_box(tb.corpus.match_terms(&expansion)))
    });
    let matched = tb.corpus.match_terms(&expansion);
    let detector = esharp_expert::Detector::new(
        &tb.corpus,
        tb.esharp.config().detector.clone(),
    );
    group.bench_function("rank_flat_scratch", |b| {
        b.iter(|| black_box(detector.rank_candidates(&matched)))
    });
    group.bench_function("rank_hashmap_reference", |b| {
        b.iter(|| black_box(detector.rank_candidates_reference(&matched)))
    });
    group.finish();
}

criterion_group!(benches, bench_online);
criterion_main!(benches);
