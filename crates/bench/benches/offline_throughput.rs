//! Offline kernel throughput at 1/2/4/8 workers: graph build (flat-buffer
//! pair accumulation), clustering statistics (dense accumulators), and the
//! communities⋈graph join on the persistent pool. The committed
//! `BENCH_offline.json` is the same measurement via `esharp bench --json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esharp_bench::offline::OfflineWorkload;
use std::hint::black_box;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn bench_offline_throughput(c: &mut Criterion) {
    let workload = OfflineWorkload::generate(100_000, 2016);
    let mut group = c.benchmark_group("offline_throughput");
    group.sample_size(10);

    group.bench_function("graph_build_hashmap_reference", |b| {
        b.iter(|| black_box(workload.reference_build()))
    });
    for workers in WORKER_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("graph_build_flat", workers),
            &workers,
            |b, &workers| b.iter(|| black_box(workload.build(workers))),
        );
    }
    for workers in WORKER_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("cluster_dense_stats", workers),
            &workers,
            |b, &workers| b.iter(|| black_box(workload.cluster(workers))),
        );
    }
    for workers in WORKER_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("relation_join_aggregate", workers),
            &workers,
            |b, &workers| b.iter(|| black_box(workload.join_aggregate(workers))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_offline_throughput);
criterion_main!(benches);
