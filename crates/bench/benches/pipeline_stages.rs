//! Table 9's offline rows: wall time of the extraction stage (log →
//! graph) and the clustering stage, at a laptop scale.

use criterion::{criterion_group, criterion_main, Criterion};
use esharp_core::{run_clustering, EsharpConfig};
use esharp_graph::{build_graph, GraphConfig, MultiGraph};
use esharp_querylog::{AggregatedLog, LogConfig, LogGenerator, World, WorldConfig};
use std::hint::black_box;

fn bench_stages(c: &mut Criterion) {
    let world = World::generate(&WorldConfig::tiny(2016));
    let log = AggregatedLog::from_events(
        LogGenerator::new(
            &world,
            &LogConfig {
                events: 100_000,
                ..LogConfig::tiny(2016)
            },
        ),
        world.terms.len(),
    );
    let (filtered, _) = log.filter_min_support(10);
    let mut group = c.benchmark_group("pipeline_stages");
    group.sample_size(10);

    group.bench_function("extraction_support_filter", |b| {
        b.iter(|| black_box(log.filter_min_support(10)))
    });
    group.bench_function("extraction_graph_build", |b| {
        b.iter(|| black_box(build_graph(&filtered, &world, &GraphConfig::default())))
    });

    let (graph, _) = build_graph(&filtered, &world, &GraphConfig::default());
    let multigraph = MultiGraph::from_similarity(&graph, 20.0);
    let config = EsharpConfig::tiny();
    group.bench_function("clustering_parallel", |b| {
        b.iter(|| black_box(run_clustering(&multigraph, &config).unwrap()))
    });
    let sql_config = EsharpConfig {
        backend: esharp_core::ClusterBackend::Sql,
        ..EsharpConfig::tiny()
    };
    group.bench_function("clustering_sql", |b| {
        b.iter(|| black_box(run_clustering(&multigraph, &sql_config).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_stages);
criterion_main!(benches);
