//! §4.2.3 ablation: replicated (broadcast) vs co-partitioned execution of
//! the neighborhood-listing join (`graph ⋈ communities`), serial vs
//! parallel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esharp_relation::{Cluster, DataType, JoinStrategy, Schema, Table, TableBuilder, Value};
use std::hint::black_box;

fn make_graph_table(edges: usize) -> Table {
    let schema = Schema::of(&[
        ("node1", DataType::Int),
        ("node2", DataType::Int),
        ("multiplicity", DataType::Int),
    ]);
    let mut b = TableBuilder::with_capacity(schema, edges);
    for i in 0..edges as i64 {
        b.push_row(vec![
            Value::Int(i % 997),
            Value::Int((i * 31) % 997),
            Value::Int(1 + i % 5),
        ])
        .unwrap();
    }
    b.finish()
}

fn make_communities_table(nodes: i64) -> Table {
    let schema = Schema::of(&[("comm_name", DataType::Int), ("query", DataType::Int)]);
    let mut b = TableBuilder::with_capacity(schema, nodes as usize);
    for i in 0..nodes {
        b.push_row(vec![Value::Int(i / 7), Value::Int(i)]).unwrap();
    }
    b.finish()
}

fn bench_joins(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_strategies");
    group.sample_size(20);
    for &edges in &[20_000usize, 100_000] {
        let graph = make_graph_table(edges);
        let communities = make_communities_table(997);
        for (label, workers, strategy) in [
            ("serial", 1usize, JoinStrategy::Broadcast),
            ("broadcast_4w", 4, JoinStrategy::Broadcast),
            ("copartitioned_4w", 4, JoinStrategy::CoPartitioned),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, edges),
                &(&graph, &communities),
                |b, (g, comm)| {
                    let cluster = Cluster::new(workers);
                    b.iter(|| {
                        black_box(
                            cluster.join(g, comm, &[0], &[1], strategy).unwrap(),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_joins);
criterion_main!(benches);
