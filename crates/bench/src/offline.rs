//! Offline-pipeline throughput measurement — the data behind
//! `esharp bench` and the committed `BENCH_offline.json` datapoints.
//!
//! Three kernels are timed at each requested worker count, mirroring the
//! three offline hot paths (§4, Figure 1 left half):
//!
//! 1. **Graph build** — inverted-index pair accumulation with flat
//!    per-worker buffers (nodes/sec, edges/sec).
//! 2. **Clustering** — the 3-step parallel algorithm with dense
//!    community accumulators (iterations/sec).
//! 3. **Relational exec** — the communities⋈graph broadcast join plus a
//!    grouped aggregation on the persistent `Cluster` pool (rows/sec).
//!
//! All three are deterministic in their outputs at any worker count, so
//! the samples differ only in wall clock. The report additionally times a
//! `HashMap`-entry reference implementation of the pair accumulation —
//! the single-thread speedup of the flat path is meaningful even on a
//! one-core host, where thread scaling is not (the JSON records
//! `host_cpus` so readers can judge the scaling rows accordingly).

use esharp_community::{cluster_parallel, ParallelConfig};
use esharp_graph::relation_io::multigraph_to_table;
use esharp_graph::{build_graph, GraphConfig, MultiGraph, SimilarityGraph};
use esharp_querylog::{AggregatedLog, LogConfig, LogGenerator, World, WorldConfig};
use esharp_relation::{Cluster, DataType, JoinStrategy, Schema, Table, TableBuilder, Value};
use std::collections::HashMap;
use std::time::Instant;

/// Measurements for one worker count.
#[derive(Debug, Clone)]
pub struct WorkerSample {
    /// Worker threads used for all three kernels.
    pub workers: usize,
    /// Graph-build wall time in seconds.
    pub graph_build_secs: f64,
    /// Graph nodes produced per second.
    pub nodes_per_sec: f64,
    /// Graph edges produced per second.
    pub edges_per_sec: f64,
    /// Clustering wall time in seconds.
    pub cluster_secs: f64,
    /// Clustering iterations per second.
    pub iters_per_sec: f64,
    /// Join + aggregation wall time in seconds.
    pub relation_secs: f64,
    /// Joined rows processed per second.
    pub relation_rows_per_sec: f64,
}

/// A full offline-throughput report, serializable to JSON without any
/// external dependency (see [`OfflineBenchReport::to_json`]).
#[derive(Debug, Clone)]
pub struct OfflineBenchReport {
    /// Logical CPUs of the measuring host — scaling rows are only
    /// meaningful when this exceeds the worker count.
    pub host_cpus: usize,
    /// Raw log events the workload was generated from.
    pub events: u64,
    /// Generator seed.
    pub seed: u64,
    /// Nodes of the similarity graph under measurement.
    pub graph_nodes: usize,
    /// Edges of the similarity graph under measurement.
    pub graph_edges: usize,
    /// Wall seconds of the `HashMap`-entry reference accumulator
    /// (single-threaded).
    pub hashmap_reference_secs: f64,
    /// Wall seconds of the flat-buffer accumulator at workers = 1.
    pub flat_accumulator_secs: f64,
    /// `hashmap_reference_secs / flat_accumulator_secs` — the
    /// implementation speedup independent of thread scaling.
    pub flat_vs_hashmap_speedup: f64,
    /// One row per measured worker count.
    pub samples: Vec<WorkerSample>,
    /// Out-of-core relational section: the clustering-style SQL with the
    /// buffer pool capped at 1/4 of the input size.
    pub out_of_core: OutOfCoreSample,
}

/// Measurements of the paged/spilling relational path: the clustering
/// join+aggregate SQL over the graph table stored in a paged heap file,
/// with the buffer pool capped at 1/4 of the input and a memory grant
/// small enough to force operator spills.
#[derive(Debug, Clone)]
pub struct OutOfCoreSample {
    /// Bytes of the paged graph table on disk.
    pub input_bytes: u64,
    /// Buffer-pool capacity in bytes (≤ 1/4 of `input_bytes`).
    pub pool_bytes: u64,
    /// Buffer-pool page hits across the whole section.
    pub pool_hits: u64,
    /// Buffer-pool page misses (disk reads).
    pub pool_misses: u64,
    /// `hits / (hits + misses)`.
    pub pool_hit_rate: f64,
    /// Pages evicted to make room via the clock.
    pub pool_evictions: u64,
    /// Scan-hint self-recycles (scan-resistant admission reusing the
    /// scan's own ring frames instead of evicting strangers).
    pub pool_recycles: u64,
    /// Bytes spilled by blocking operators under the memory grant.
    pub spill_bytes: u64,
    /// Spill partitions / sorted runs written.
    pub spill_parts: u64,
    /// Rows decoded by the limit-probe scan WITHOUT pushdown (the naive
    /// executor always materializes the full table).
    pub rows_scanned_naive: u64,
    /// Rows decoded by the same scan WITH predicate+limit pushdown — the
    /// scan stops fetching pages once the limit is satisfied.
    pub rows_scanned_pushdown: u64,
    /// Optimized out-of-core result equals the naive in-memory result,
    /// bit for bit.
    pub bit_identical: bool,
    /// Wall seconds of the optimized out-of-core clustering query.
    pub optimized_secs: f64,
    /// Wall seconds of the naive in-memory clustering query.
    pub naive_secs: f64,
}

impl OfflineBenchReport {
    /// Render the report as a stable, human-diffable JSON document.
    /// Hand-rolled so the bench binary works without a JSON crate.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str("  \"bench\": \"offline_throughput\",\n");
        out.push_str(&format!("  \"host_cpus\": {},\n", self.host_cpus));
        // Single-core hosts run every worker count on the same core: the
        // scaling samples below are not scaling evidence there.
        out.push_str(&format!(
            "  \"degenerate_host\": {},\n",
            self.host_cpus == 1
        ));
        out.push_str(&format!("  \"events\": {},\n", self.events));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"graph_nodes\": {},\n", self.graph_nodes));
        out.push_str(&format!("  \"graph_edges\": {},\n", self.graph_edges));
        out.push_str(&format!(
            "  \"hashmap_reference_secs\": {:.6},\n",
            self.hashmap_reference_secs
        ));
        out.push_str(&format!(
            "  \"flat_accumulator_secs\": {:.6},\n",
            self.flat_accumulator_secs
        ));
        out.push_str(&format!(
            "  \"flat_vs_hashmap_speedup\": {:.3},\n",
            self.flat_vs_hashmap_speedup
        ));
        out.push_str("  \"samples\": [\n");
        for (i, s) in self.samples.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"workers\": {}, \"graph_build_secs\": {:.6}, \"nodes_per_sec\": {:.1}, \
                 \"edges_per_sec\": {:.1}, \"cluster_secs\": {:.6}, \"iters_per_sec\": {:.3}, \
                 \"relation_secs\": {:.6}, \"relation_rows_per_sec\": {:.1}}}{}\n",
                s.workers,
                s.graph_build_secs,
                s.nodes_per_sec,
                s.edges_per_sec,
                s.cluster_secs,
                s.iters_per_sec,
                s.relation_secs,
                s.relation_rows_per_sec,
                if i + 1 < self.samples.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        let o = &self.out_of_core;
        out.push_str("  \"out_of_core\": {\n");
        out.push_str(&format!("    \"input_bytes\": {},\n", o.input_bytes));
        out.push_str(&format!("    \"pool_bytes\": {},\n", o.pool_bytes));
        out.push_str(&format!("    \"pool_hits\": {},\n", o.pool_hits));
        out.push_str(&format!("    \"pool_misses\": {},\n", o.pool_misses));
        out.push_str(&format!("    \"pool_hit_rate\": {:.4},\n", o.pool_hit_rate));
        out.push_str(&format!("    \"pool_evictions\": {},\n", o.pool_evictions));
        out.push_str(&format!("    \"pool_recycles\": {},\n", o.pool_recycles));
        out.push_str(&format!("    \"spill_bytes\": {},\n", o.spill_bytes));
        out.push_str(&format!("    \"spill_parts\": {},\n", o.spill_parts));
        out.push_str(&format!(
            "    \"rows_scanned_naive\": {},\n",
            o.rows_scanned_naive
        ));
        out.push_str(&format!(
            "    \"rows_scanned_pushdown\": {},\n",
            o.rows_scanned_pushdown
        ));
        out.push_str(&format!("    \"bit_identical\": {},\n", o.bit_identical));
        out.push_str(&format!("    \"optimized_secs\": {:.6},\n", o.optimized_secs));
        out.push_str(&format!("    \"naive_secs\": {:.6}\n", o.naive_secs));
        out.push_str("  }\n}\n");
        out
    }

    /// One row per sample, formatted for terminal output.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "offline throughput — {} events, {} nodes / {} edges, host_cpus={}\n",
            self.events, self.graph_nodes, self.graph_edges, self.host_cpus
        ));
        out.push_str(&format!(
            "flat vs HashMap accumulator (1 thread): {:.2}x ({:.1} ms → {:.1} ms)\n",
            self.flat_vs_hashmap_speedup,
            self.hashmap_reference_secs * 1e3,
            self.flat_accumulator_secs * 1e3
        ));
        out.push_str(
            "workers  nodes/s      edges/s      iters/s   join rows/s\n",
        );
        for s in &self.samples {
            out.push_str(&format!(
                "{:>7}  {:>11.0}  {:>11.0}  {:>8.2}  {:>12.0}\n",
                s.workers, s.nodes_per_sec, s.edges_per_sec, s.iters_per_sec, s.relation_rows_per_sec
            ));
        }
        let o = &self.out_of_core;
        out.push_str(&format!(
            "out-of-core: {} B input through a {} B pool — hit rate {:.1}%, {} evictions / {} recycles, \
             spilled {} B / {} parts, scan rows {} → {} with pushdown, bit_identical={}\n",
            o.input_bytes,
            o.pool_bytes,
            o.pool_hit_rate * 100.0,
            o.pool_evictions,
            o.pool_recycles,
            o.spill_bytes,
            o.spill_parts,
            o.rows_scanned_naive,
            o.rows_scanned_pushdown,
            o.bit_identical
        ));
        out
    }
}

/// The fixed workload every sample runs against: one generated log plus
/// the derived multigraph and relational tables, built once so the timed
/// sections measure only the kernels.
pub struct OfflineWorkload {
    world: World,
    filtered: AggregatedLog,
    events: u64,
    seed: u64,
    multigraph: MultiGraph,
    communities: Table,
    graph_table: Table,
}

impl OfflineWorkload {
    /// Generate the workload: a development-scale world (the `Small`
    /// preset's vocabulary — large enough that the candidate-pair space
    /// spills the cache, which is the regime the flat accumulator
    /// targets) with `events` raw log events, support-filtered exactly
    /// like the pipeline's extraction stage.
    pub fn generate(events: u64, seed: u64) -> OfflineWorkload {
        let world = World::generate(&WorldConfig {
            domains_per_category: 15,
            seed,
            ..WorldConfig::default()
        });
        let log = AggregatedLog::from_events(
            LogGenerator::new(
                &world,
                &LogConfig {
                    events: events as usize,
                    seed,
                    ..LogConfig::default()
                },
            ),
            world.terms.len(),
        );
        let (filtered, _) = log.filter_min_support(10);
        let config = GraphConfig::default();
        let (graph, _) = build_graph(&filtered, &world, &config);
        let multigraph = MultiGraph::from_similarity(&graph, 20.0);
        let (communities, graph_table) = relation_inputs(&multigraph);
        OfflineWorkload {
            world,
            filtered,
            events,
            seed,
            multigraph,
            communities,
            graph_table,
        }
    }

    /// Build the similarity graph at the given worker count.
    pub fn build(&self, workers: usize) -> SimilarityGraph {
        let config = GraphConfig {
            workers,
            ..GraphConfig::default()
        };
        build_graph(&self.filtered, &self.world, &config).0
    }

    /// Build the graph through the `HashMap`-entry reference accumulator.
    pub fn reference_build(&self) -> SimilarityGraph {
        hashmap_reference_graph(&self.filtered, &self.world)
    }

    /// Cluster the multigraph at the given worker count.
    pub fn cluster(&self, workers: usize) -> esharp_community::ClusteringOutcome {
        cluster_parallel(
            &self.multigraph,
            &ParallelConfig {
                workers,
                ..ParallelConfig::default()
            },
        )
    }

    /// The communities⋈graph broadcast join plus a grouped aggregation on
    /// the persistent pool; returns (joined rows, grouped rows).
    pub fn join_aggregate(&self, workers: usize) -> (usize, usize) {
        let cluster = Cluster::new(workers);
        let joined = cluster
            .join(
                &self.graph_table,
                &self.communities,
                &[0],
                &[0],
                JoinStrategy::Broadcast,
            )
            .expect("bench join");
        // Joined columns: node1, node2, multiplicity, node, comm — group
        // by the community, summing edge multiplicities into it.
        let grouped = cluster
            .aggregate(
                &joined,
                &[4],
                &[esharp_relation::ops::AggSpec::on(
                    esharp_relation::ops::AggFunc::Sum,
                    2,
                    "mass",
                )],
            )
            .expect("bench aggregate");
        (joined.num_rows(), grouped.num_rows())
    }

    /// Run the clustering-style SQL out of core: graph table in a paged
    /// heap file, buffer pool capped at 1/4 of the input, memory grant at
    /// 1/8 (forcing join/aggregate spills), and a limit-probe scan
    /// showing pushdown stopping page fetches early. The optimized result
    /// is checked bit-identical against the naive in-memory executor.
    pub fn out_of_core(&self) -> OutOfCoreSample {
        use esharp_relation::{
            run_sql, run_sql_unoptimized, BufferPool, Catalog, ExecContext, PagedTable,
            StatsRegistry, PAGE_SIZE,
        };
        use std::sync::Arc;

        let dir = std::env::temp_dir().join(format!("esharp-bench-ooc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("out-of-core workdir");
        let paged = Arc::new(
            PagedTable::create(&dir.join("graph"), &self.graph_table).expect("paged graph"),
        );
        let input_bytes = paged.byte_size();
        let pool_bytes = ((input_bytes / 4).max(2 * PAGE_SIZE as u64)) as usize;
        let pool = Arc::new(BufferPool::with_capacity_bytes(pool_bytes));

        let catalog = Catalog::new();
        catalog.register_paged("graph", paged, pool.clone());
        catalog.register("communities", self.communities.clone());
        let registry = StatsRegistry::new();
        let ctx = ExecContext::new(catalog)
            .with_stats(registry.clone())
            .with_memory_grant(((input_bytes / 8).max(4096)) as usize)
            .with_spill_root(dir.clone());

        // The §4.2.2-shaped workload: join communities onto the edge
        // table, aggregate edge mass per community.
        const CLUSTERING_SQL: &str = "select comm, sum(multiplicity) as mass \
             from graph inner join communities on node = node1 \
             group by comm order by comm";
        let started = Instant::now();
        let optimized = run_sql(CLUSTERING_SQL, &ctx).expect("out-of-core clustering SQL");
        let optimized_secs = started.elapsed().as_secs_f64();
        let started = Instant::now();
        let naive = run_sql_unoptimized(CLUSTERING_SQL, &ctx).expect("naive clustering SQL");
        let naive_secs = started.elapsed().as_secs_f64();
        let bit_identical = optimized == naive;
        let snapshot = registry.snapshot();
        let spill_bytes = snapshot.iter().map(|s| s.spill_bytes).sum();
        let spill_parts = snapshot.iter().map(|s| s.spill_parts).sum();

        // Limit probe: with predicate+limit pushdown the paged scan stops
        // fetching pages once the limit is satisfied; the naive executor
        // always decodes the full table.
        const LIMIT_SQL: &str = "select node1 from graph where multiplicity >= 1 limit 256";
        let mark = registry.snapshot().len();
        let _ = run_sql(LIMIT_SQL, &ctx).expect("limit probe");
        let rows_scanned_pushdown = registry.snapshot()[mark..]
            .iter()
            .filter(|s| s.stage == "scan")
            .map(|s| s.rows_read)
            .sum();
        let rows_scanned_naive = self.graph_table.num_rows() as u64;

        let stats = pool.stats();
        let _ = std::fs::remove_dir_all(&dir);
        OutOfCoreSample {
            input_bytes,
            pool_bytes: pool_bytes as u64,
            pool_hits: stats.hits,
            pool_misses: stats.misses,
            pool_hit_rate: stats.hit_rate(),
            pool_evictions: stats.evictions,
            pool_recycles: stats.recycles,
            spill_bytes,
            spill_parts,
            rows_scanned_naive,
            rows_scanned_pushdown,
            bit_identical,
            optimized_secs,
            naive_secs,
        }
    }

    /// Run every kernel at each worker count and assemble the report.
    pub fn measure(&self, worker_counts: &[usize]) -> OfflineBenchReport {
        let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

        // Implementation comparison, single-threaded on both sides.
        let started = Instant::now();
        let reference = self.reference_build();
        let hashmap_reference_secs = started.elapsed().as_secs_f64();
        let started = Instant::now();
        let graph = self.build(1);
        let flat_accumulator_secs = started.elapsed().as_secs_f64();
        assert_eq!(
            graph.num_edges(),
            reference.num_edges(),
            "flat and HashMap accumulators must agree"
        );

        let samples = worker_counts
            .iter()
            .map(|&workers| {
                let started = Instant::now();
                let g = self.build(workers);
                let graph_build_secs = started.elapsed().as_secs_f64();

                let started = Instant::now();
                let outcome = self.cluster(workers);
                let cluster_secs = started.elapsed().as_secs_f64();

                let started = Instant::now();
                let (joined_rows, grouped_rows) = self.join_aggregate(workers);
                let relation_secs = started.elapsed().as_secs_f64();
                assert!(grouped_rows > 0);

                WorkerSample {
                    workers,
                    graph_build_secs,
                    nodes_per_sec: g.num_nodes() as f64 / graph_build_secs,
                    edges_per_sec: g.num_edges() as f64 / graph_build_secs,
                    cluster_secs,
                    iters_per_sec: outcome.iterations().max(1) as f64 / cluster_secs,
                    relation_secs,
                    relation_rows_per_sec: joined_rows as f64 / relation_secs,
                }
            })
            .collect();

        OfflineBenchReport {
            host_cpus,
            events: self.events,
            seed: self.seed,
            graph_nodes: graph.num_nodes(),
            graph_edges: graph.num_edges(),
            hashmap_reference_secs,
            flat_accumulator_secs,
            flat_vs_hashmap_speedup: hashmap_reference_secs / flat_accumulator_secs,
            samples,
            out_of_core: self.out_of_core(),
        }
    }
}

/// The multigraph edge table plus a `(node, comm)` assignment table — the
/// two inputs of the clustering join, shaped like `sqlimpl`'s relations.
fn relation_inputs(multigraph: &MultiGraph) -> (Table, Table) {
    let assignment = cluster_parallel(multigraph, &ParallelConfig::default()).assignment;
    let schema = Schema::of(&[("node", DataType::Int), ("comm", DataType::Int)]);
    let mut builder = TableBuilder::with_capacity(schema, multigraph.num_nodes());
    for node in 0..multigraph.num_nodes() as u32 {
        builder
            .push_row(vec![
                Value::Int(node as i64),
                Value::Int(assignment.community_of(node) as i64),
            ])
            .expect("communities table");
    }
    let communities = builder.finish();
    let graph_table = multigraph_to_table(multigraph).expect("graph table");
    (communities, graph_table)
}

/// The pre-refactor pair accumulator: one shared
/// `HashMap<(node, node), f64>` entry per candidate pair, updated in
/// URL-id order. Kept here (bench-only) as the baseline the flat-buffer
/// kernel is measured against; edge sets are identical and weights agree
/// up to f64 associativity.
pub fn hashmap_reference_graph(log: &AggregatedLog, world: &World) -> SimilarityGraph {
    use esharp_graph::ClickVector;
    use std::sync::Arc;

    let config = GraphConfig::default();
    let mut node_of_term: HashMap<u32, u32> = HashMap::new();
    let mut labels: Vec<Arc<str>> = Vec::new();
    for record in &log.records {
        node_of_term.entry(record.term).or_insert_with(|| {
            let id = labels.len() as u32;
            labels.push(Arc::from(world.term_text(record.term)));
            id
        });
    }
    let mut pairs_per_node: Vec<Vec<(u32, f64)>> = vec![Vec::new(); labels.len()];
    for record in &log.records {
        let node = node_of_term[&record.term];
        pairs_per_node[node as usize].push((record.url, record.clicks as f64));
    }
    let vectors: Vec<ClickVector> = pairs_per_node
        .into_iter()
        .map(|pairs| {
            let mut v = ClickVector::from_pairs(pairs);
            v.normalize();
            v
        })
        .collect();
    let mut inverted: HashMap<u32, Vec<(u32, f64)>> = HashMap::new();
    for (node, vector) in vectors.iter().enumerate() {
        for &(url, weight) in vector.components() {
            inverted
                .entry(url)
                .or_default()
                .push((node as u32, weight));
        }
    }
    let mut sims: HashMap<(u32, u32), f64> = HashMap::new();
    let mut posting_lists: Vec<(&u32, &Vec<(u32, f64)>)> = inverted.iter().collect();
    posting_lists.sort_by_key(|&(url, _)| *url);
    for (_, postings) in posting_lists {
        if postings.len() > config.max_url_fanout {
            continue;
        }
        for i in 0..postings.len() {
            let (ni, wi) = postings[i];
            for &(nj, wj) in &postings[i + 1..] {
                let key = (ni.min(nj), ni.max(nj));
                *sims.entry(key).or_insert(0.0) += wi * wj;
            }
        }
    }
    let edges: Vec<esharp_graph::Edge> = sims
        .into_iter()
        .filter(|&(_, w)| w >= config.min_similarity)
        .map(|((a, b), weight)| esharp_graph::Edge {
            a,
            b,
            weight: weight.min(1.0),
        })
        .collect();
    SimilarityGraph::new(labels, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_measures_and_serializes() {
        let workload = OfflineWorkload::generate(20_000, 7);
        let report = workload.measure(&[1, 2]);
        assert_eq!(report.samples.len(), 2);
        assert!(report.graph_nodes > 0 && report.graph_edges > 0);
        assert!(report.flat_vs_hashmap_speedup > 0.0);
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"offline_throughput\""));
        assert!(json.contains("\"workers\": 2"));
        assert!(json.ends_with("}\n"));
        // Balanced braces/brackets — the emitter is hand-rolled.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count()
        );
        assert_eq!(
            json.matches('[').count(),
            json.matches(']').count()
        );
    }

    #[test]
    fn out_of_core_is_bit_identical_and_pushdown_reduces_rows_scanned() {
        let workload = OfflineWorkload::generate(20_000, 7);
        let o = workload.out_of_core();
        assert!(o.bit_identical, "paged/spilling result must equal in-memory");
        assert!(o.pool_hits + o.pool_misses > 0, "scans must go through the pool");
        assert!(
            o.rows_scanned_pushdown < o.rows_scanned_naive,
            "limit pushdown must stop the scan early ({} vs {})",
            o.rows_scanned_pushdown,
            o.rows_scanned_naive
        );
        let json = workload.measure(&[1]).to_json();
        assert!(json.contains("\"out_of_core\""));
        assert!(json.contains("\"degenerate_host\""));
        assert!(json.contains("\"pool_hit_rate\""));
    }

    #[test]
    fn reference_accumulator_matches_flat_kernel() {
        let workload = OfflineWorkload::generate(20_000, 7);
        let flat = workload.build(4);
        let reference = hashmap_reference_graph(&workload.filtered, &workload.world);
        assert_eq!(flat.num_nodes(), reference.num_nodes());
        assert_eq!(flat.num_edges(), reference.num_edges());
        // Same edge set; weights agree up to f64 associativity (the flat
        // kernel pre-folds per chunk, so its addition tree differs from
        // the reference's strict left-to-right order). Bit-exactness
        // across *worker counts* is asserted in esharp-graph.
        for (a, b) in flat.edges().iter().zip(reference.edges()) {
            assert_eq!((a.a, a.b), (b.a, b.b));
            assert!((a.weight - b.weight).abs() < 1e-9);
        }
    }
}
