//! Streaming-ingestion benchmark (`esharp bench --ingest`).
//!
//! Measures the three costs the `esharp-ingest` subsystem trades between,
//! writing `BENCH_ingest.json`:
//!
//! 1. **Expert recall vs ingest lag** — a fraction of the corpus is
//!    withheld from the base index and streamed back through
//!    [`LiveCorpus::apply_batch`]; after each checkpoint the domain
//!    queries are re-run and their top-k experts compared against the
//!    full-corpus ground truth. The curve quantifies what the old weekly
//!    full rebuild actually cost: everything the stream carried since the
//!    last rebuild was invisible to ranking until the next one.
//! 2. **Read-path overhead, base+delta vs base-only** — the same logical
//!    content is queried twice, once with the whole holdout resident in
//!    the delta segment and once after compaction folded it into the CSR
//!    base, isolating what serving pays for freshness.
//! 3. **Compaction pause** — repeated append→compact cycles through the
//!    full persistent path (WAL, checkpointed atomic rewrite, one-pointer
//!    publish); the *pause* is only the write-lock hold of the publish,
//!    reported p50/p99/max against the total off-lock cycle time.
//!
//! The report also records the host's detected parallelism and the
//! resulting clamped serve-pool default, so a committed JSON says which
//! clamp produced its numbers.

use esharp_eval::{EvalScale, Testbed};
use esharp_ingest::{IngestOp, LiveCorpus};
use esharp_microblog::Corpus;
use std::time::Instant;

/// One recall checkpoint on the ingest-lag curve.
#[derive(Debug, Clone, Copy)]
pub struct RecallPoint {
    /// Ops absorbed so far.
    pub ingested_ops: usize,
    /// Ops still waiting in the stream (the ingest lag).
    pub lag_ops: usize,
    /// Mean top-k expert recall against the full-corpus ground truth.
    pub recall: f64,
}

/// Nearest-rank latency summary in microseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencySummary {
    /// Median.
    pub p50_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Worst sample.
    pub max_us: u64,
}

impl LatencySummary {
    fn from_nanos(mut samples_ns: Vec<u64>) -> LatencySummary {
        samples_ns.sort_unstable();
        let q = |q: f64| -> u64 {
            if samples_ns.is_empty() {
                return 0;
            }
            let rank = ((q * samples_ns.len() as f64).ceil() as usize).clamp(1, samples_ns.len());
            (samples_ns[rank - 1] + 500) / 1_000
        };
        LatencySummary {
            p50_us: q(0.50),
            p99_us: q(0.99),
            max_us: q(1.0),
        }
    }

    fn render(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"p50_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
            self.p50_us, self.p99_us, self.max_us
        ));
    }
}

/// The full `esharp bench --ingest` report.
#[derive(Debug, Clone)]
pub struct IngestBenchReport {
    /// Logical CPUs of the measuring host.
    pub host_cpus: usize,
    /// `esharp_par::detected_workers()` on this host.
    pub workers_detected: usize,
    /// The clamped serve-pool default that detection produced.
    pub serve_workers_default: usize,
    /// Testbed seed.
    pub seed: u64,
    /// Scale preset name.
    pub scale: String,
    /// Users in the corpus.
    pub corpus_users: usize,
    /// Tweets in the full corpus (base + holdout).
    pub corpus_tweets: usize,
    /// Tweets in the base index before streaming.
    pub base_tweets: usize,
    /// Ops streamed back (the withheld suffix).
    pub holdout_ops: usize,
    /// Queries in the recall ground truth.
    pub queries: usize,
    /// Expert depth of the recall comparison.
    pub recall_depth: usize,
    /// The expert-recall-vs-lag curve, lag decreasing.
    pub recall_curve: Vec<RecallPoint>,
    /// Recall at zero lag (every op absorbed, pre-compaction).
    pub final_recall: f64,
    /// Per-`apply_batch` latency (WAL append + in-memory apply).
    pub ingest_latency: LatencySummary,
    /// Sustained ingest throughput, ops/second of apply time.
    pub ingest_ops_per_sec: f64,
    /// Query latency with the whole holdout resident as delta.
    pub read_delta: LatencySummary,
    /// Query latency after compaction folded the delta into the base.
    pub read_compacted: LatencySummary,
    /// `read_delta.p50 / read_compacted.p50` — the freshness tax.
    pub read_overhead_p50: f64,
    /// Append→compact cycles measured through the persistent path.
    pub compaction_cycles: usize,
    /// Write-lock hold of the publish swap (what serving observes).
    pub compaction_pause: LatencySummary,
    /// Whole compaction cycle, snapshot to publish (off-lock).
    pub compaction_total: LatencySummary,
}

impl IngestBenchReport {
    /// Render `BENCH_ingest.json` (hand-rolled, stable key order, same
    /// contract as the other bench reports).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\n");
        out.push_str("  \"bench\": \"ingest\",\n");
        out.push_str(&format!("  \"host_cpus\": {},\n", self.host_cpus));
        out.push_str(&format!(
            "  \"workers_detected\": {},\n",
            self.workers_detected
        ));
        out.push_str(&format!(
            "  \"serve_workers_default\": {},\n",
            self.serve_workers_default
        ));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"scale\": \"{}\",\n", self.scale));
        out.push_str(&format!(
            "  \"corpus\": {{\"users\": {}, \"tweets\": {}, \"base_tweets\": {}, \"holdout_ops\": {}}},\n",
            self.corpus_users, self.corpus_tweets, self.base_tweets, self.holdout_ops
        ));
        out.push_str(&format!(
            "  \"queries\": {}, \"recall_depth\": {},\n",
            self.queries, self.recall_depth
        ));
        out.push_str("  \"recall_curve\": [\n");
        for (i, p) in self.recall_curve.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"ingested_ops\": {}, \"lag_ops\": {}, \"recall\": {:.4}}}{}\n",
                p.ingested_ops,
                p.lag_ops,
                p.recall,
                if i + 1 < self.recall_curve.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"final_recall\": {:.4},\n", self.final_recall));
        out.push_str("  \"ingest_latency\": ");
        self.ingest_latency.render(&mut out);
        out.push_str(&format!(
            ",\n  \"ingest_ops_per_sec\": {:.1},\n",
            self.ingest_ops_per_sec
        ));
        out.push_str("  \"read_delta\": ");
        self.read_delta.render(&mut out);
        out.push_str(",\n  \"read_compacted\": ");
        self.read_compacted.render(&mut out);
        out.push_str(&format!(
            ",\n  \"read_overhead_p50\": {:.2},\n",
            self.read_overhead_p50
        ));
        out.push_str(&format!(
            "  \"compaction_cycles\": {},\n",
            self.compaction_cycles
        ));
        out.push_str("  \"compaction_pause_us\": ");
        self.compaction_pause.render(&mut out);
        out.push_str(",\n  \"compaction_total_us\": ");
        self.compaction_total.render(&mut out);
        out.push_str("\n}\n");
        out
    }

    /// Terminal summary.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "ingest bench — scale {}, seed {}, host_cpus={} (detected {}, serve default {})\n",
            self.scale, self.seed, self.host_cpus, self.workers_detected, self.serve_workers_default
        ));
        out.push_str(&format!(
            "corpus: {} users, {} tweets ({} base + {} streamed); {} queries at depth {}\n",
            self.corpus_users,
            self.corpus_tweets,
            self.base_tweets,
            self.holdout_ops,
            self.queries,
            self.recall_depth
        ));
        out.push_str("lag (ops)   recall\n");
        for p in &self.recall_curve {
            out.push_str(&format!("{:>9}   {:.3}\n", p.lag_ops, p.recall));
        }
        out.push_str(&format!(
            "ingest: p50 {}µs, p99 {}µs, {:.0} ops/s\n",
            self.ingest_latency.p50_us, self.ingest_latency.p99_us, self.ingest_ops_per_sec
        ));
        out.push_str(&format!(
            "read path: delta p50 {}µs / p99 {}µs, compacted p50 {}µs / p99 {}µs ({:.2}× overhead)\n",
            self.read_delta.p50_us,
            self.read_delta.p99_us,
            self.read_compacted.p50_us,
            self.read_compacted.p99_us,
            self.read_overhead_p50
        ));
        out.push_str(&format!(
            "compaction ({} cycles): pause p50 {}µs / p99 {}µs / max {}µs, total p50 {}µs / p99 {}µs\n",
            self.compaction_cycles,
            self.compaction_pause.p50_us,
            self.compaction_pause.p99_us,
            self.compaction_pause.max_us,
            self.compaction_total.p50_us,
            self.compaction_total.p99_us
        ));
        out
    }
}

fn nanos(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Top-`depth` expert ids for every query against `corpus`.
fn expert_table(
    esharp: &esharp_core::Esharp,
    corpus: &Corpus,
    queries: &[String],
    depth: usize,
) -> Vec<Vec<u32>> {
    queries
        .iter()
        .map(|q| {
            esharp
                .search(corpus, q)
                .experts
                .iter()
                .take(depth)
                .map(|e| e.user)
                .collect()
        })
        .collect()
}

/// Mean recall of `found` against `expected` (queries with no ground
/// truth are skipped).
fn mean_recall(expected: &[Vec<u32>], found: &[Vec<u32>]) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for (want, got) in expected.iter().zip(found) {
        if want.is_empty() {
            continue;
        }
        let hit = want.iter().filter(|u| got.contains(u)).count();
        sum += hit as f64 / want.len() as f64;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Build the testbed, withhold a quarter of the corpus, stream it back
/// through the persistent ingest path, and measure the three trade-offs.
pub fn run(seed: u64, scale: EvalScale) -> std::io::Result<IngestBenchReport> {
    const CHECKPOINTS: usize = 8;
    const APPLY_BATCH: usize = 64;
    const RECALL_DEPTH: usize = 10;
    const READ_REPEATS: usize = 25;
    const EXTRA_CYCLES: usize = 15;
    const CYCLE_OPS: usize = 32;

    let testbed = Testbed::build(scale, seed);
    let corpus = &testbed.corpus;
    let esharp = &testbed.esharp;
    let queries: Vec<String> = testbed
        .world
        .domains
        .iter()
        .take(16)
        .map(|d| d.label.clone())
        .collect();
    if queries.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "testbed produced no domains to query",
        ));
    }
    let expected = expert_table(esharp, corpus, &queries, RECALL_DEPTH);

    // Withhold the most recent quarter of the stream from the base index.
    let holdout = (corpus.tweets().len() / 4).max(1);
    let base_tweets = corpus.tweets().len() - holdout;
    let base = Corpus::new(
        corpus.users().to_vec(),
        corpus.tweets()[..base_tweets].to_vec(),
    );
    let ops: Vec<IngestOp> = corpus.tweets()[base_tweets..]
        .iter()
        .map(|t| IngestOp::Append {
            author: corpus.user(t.author).handle.clone(),
            text: t.text.clone(),
        })
        .collect();

    // The full persistent path: WAL on every batch, checkpointed atomic
    // rewrite + one-pointer publish on every compaction.
    let dir = std::env::temp_dir().join(format!("esharp_ingest_bench_{seed}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir)?;
    let live = LiveCorpus::create(base, dir.join("corpus.bin"), dir.join("oplog"))?;

    // Phase 1: stream the holdout, sampling recall at each checkpoint.
    let mut recall_curve = Vec::with_capacity(CHECKPOINTS + 1);
    recall_curve.push(RecallPoint {
        ingested_ops: 0,
        lag_ops: ops.len(),
        recall: mean_recall(
            &expected,
            &expert_table(esharp, live.read().corpus(), &queries, RECALL_DEPTH),
        ),
    });
    let mut apply_ns = Vec::new();
    let per_checkpoint = ops.len().div_ceil(CHECKPOINTS);
    let mut ingested = 0usize;
    for checkpoint in ops.chunks(per_checkpoint) {
        for batch in checkpoint.chunks(APPLY_BATCH) {
            let started = Instant::now();
            live.apply_batch(batch)?;
            apply_ns.push(nanos(started));
            ingested += batch.len();
        }
        recall_curve.push(RecallPoint {
            ingested_ops: ingested,
            lag_ops: ops.len() - ingested,
            recall: mean_recall(
                &expected,
                &expert_table(esharp, live.read().corpus(), &queries, RECALL_DEPTH),
            ),
        });
    }
    let final_recall = recall_curve.last().map_or(0.0, |p| p.recall);
    let apply_total_secs = apply_ns.iter().sum::<u64>() as f64 / 1e9;
    let ingest_ops_per_sec = ops.len() as f64 / apply_total_secs.max(1e-9);

    // Phase 2a: read path with the whole holdout resident as delta.
    let mut delta_ns = Vec::with_capacity(queries.len() * READ_REPEATS);
    for _ in 0..READ_REPEATS {
        for q in &queries {
            let guard = live.read();
            let started = Instant::now();
            let outcome = esharp.search(guard.corpus(), q);
            delta_ns.push(nanos(started));
            std::hint::black_box(outcome.experts.len());
        }
    }

    // Phase 3, first cycle: fold the big delta (also the content switch
    // for phase 2b — same logical corpus, now base-only).
    let mut pause_ns = Vec::with_capacity(EXTRA_CYCLES + 1);
    let mut total_ns = Vec::with_capacity(EXTRA_CYCLES + 1);
    if let Some(report) = live.compact()? {
        pause_ns.push(u64::try_from(report.pause.as_nanos()).unwrap_or(u64::MAX));
        total_ns.push(u64::try_from(report.total.as_nanos()).unwrap_or(u64::MAX));
    }

    // Phase 2b: identical queries against the compacted base.
    let mut compacted_ns = Vec::with_capacity(queries.len() * READ_REPEATS);
    for _ in 0..READ_REPEATS {
        for q in &queries {
            let guard = live.read();
            let started = Instant::now();
            let outcome = esharp.search(guard.corpus(), q);
            compacted_ns.push(nanos(started));
            std::hint::black_box(outcome.experts.len());
        }
    }

    // Phase 3, steady state: small append→compact cycles.
    let author = corpus.users()[0].handle.clone();
    for cycle in 0..EXTRA_CYCLES {
        let batch: Vec<IngestOp> = (0..CYCLE_OPS)
            .map(|i| IngestOp::Append {
                author: author.clone(),
                text: format!("{} steady cycle {cycle} op {i}", queries[i % queries.len()]),
            })
            .collect();
        live.apply_batch(&batch)?;
        if let Some(report) = live.compact()? {
            pause_ns.push(u64::try_from(report.pause.as_nanos()).unwrap_or(u64::MAX));
            total_ns.push(u64::try_from(report.total.as_nanos()).unwrap_or(u64::MAX));
        }
    }
    let compaction_cycles = pause_ns.len();
    let _ = std::fs::remove_dir_all(&dir);

    let read_delta = LatencySummary::from_nanos(delta_ns);
    let read_compacted = LatencySummary::from_nanos(compacted_ns);
    Ok(IngestBenchReport {
        host_cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
        workers_detected: esharp_par::detected_workers(),
        serve_workers_default: esharp_serve::ServeConfig::default().workers,
        seed,
        scale: format!("{scale:?}").to_lowercase(),
        corpus_users: corpus.users().len(),
        corpus_tweets: corpus.tweets().len(),
        base_tweets,
        holdout_ops: ops.len(),
        queries: queries.len(),
        recall_depth: RECALL_DEPTH,
        recall_curve,
        final_recall,
        ingest_latency: LatencySummary::from_nanos(apply_ns),
        ingest_ops_per_sec,
        read_delta,
        read_compacted,
        read_overhead_p50: read_delta.p50_us as f64 / (read_compacted.p50_us as f64).max(1e-9),
        compaction_cycles,
        compaction_pause: LatencySummary::from_nanos(pause_ns),
        compaction_total: LatencySummary::from_nanos(total_ns),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_small_run_reports_a_converging_curve_and_shaped_json() {
        let report = run(13, EvalScale::Tiny).expect("bench run");
        assert!(report.recall_curve.len() >= 2);
        let first = report.recall_curve[0].recall;
        assert_eq!(report.recall_curve[0].lag_ops, report.holdout_ops);
        assert_eq!(report.recall_curve.last().unwrap().lag_ops, 0);
        // Absorbing the whole stream restores the full-corpus ranking
        // exactly: the delta read path is bit-identical to a rebuild.
        assert_eq!(report.final_recall, 1.0, "curve: {:?}", report.recall_curve);
        assert!(first <= report.final_recall);
        assert!(report.compaction_cycles > 0);
        assert!(report.ingest_ops_per_sec > 0.0);
        assert!(report.workers_detected >= 1);
        assert!(report.serve_workers_default >= 1);
        let json = report.to_json();
        for needle in [
            "\"bench\": \"ingest\"",
            "\"workers_detected\":",
            "\"serve_workers_default\":",
            "\"recall_curve\": [",
            "\"final_recall\": 1.0000",
            "\"read_overhead_p50\":",
            "\"compaction_pause_us\": {\"p50_us\":",
            "\"ingest_ops_per_sec\":",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(!report.render_table().is_empty());
    }
}
