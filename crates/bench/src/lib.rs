//! # esharp-bench
//!
//! Criterion benchmarks and the `repro` binary that regenerates every
//! table and figure of the paper's evaluation (see EXPERIMENTS.md).
//!
//! Benchmarks:
//! * `community_algorithms` — the 3-step parallel algorithm vs Newman vs
//!   Louvain vs label propagation vs the SQL path (ablation, DESIGN.md §4).
//! * `graph_build` — inverted-index pair generation vs naive all-pairs.
//! * `join_strategies` — broadcast vs co-partitioned parallel joins
//!   (§4.2.3).
//! * `online_latency` — expansion and detection latency (Table 9's online
//!   rows).
//! * `pipeline_stages` — extraction and clustering wall time (Table 9's
//!   offline rows).
//! * `offline_throughput` — the three parallel offline kernels at
//!   1/2/4/8 workers; `esharp bench --json` writes the same measurement
//!   to `BENCH_offline.json` (see the [`offline`] module).
//! * `esharp bench --serve` — closed-loop load generation against the
//!   serving layer (steady + overload phases), writing `BENCH_serve.json`
//!   (see the [`serve`] module).
//! * `esharp bench --online` — the interned read path vs the string-keyed
//!   baseline at identical results, plus corpus load strategies, writing
//!   `BENCH_online.json` (see the [`online`] module).
//! * `esharp bench --ingest` — streaming ingestion: expert recall vs
//!   ingest lag, base+delta vs base-only read overhead, and compaction
//!   pause, writing `BENCH_ingest.json` (see the [`ingest`] module).

#![warn(missing_docs)]

pub mod ingest;
pub mod offline;
pub mod online;
pub mod serve;

use esharp_graph::MultiGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A reproducible random multigraph with planted communities: `groups`
/// cliques of `size` nodes, intra-group edges dense, inter-group edges
/// sparse. Used by the clustering benches.
pub fn planted_multigraph(groups: usize, size: usize, seed: u64) -> MultiGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = groups * size;
    let mut edges = Vec::new();
    for g in 0..groups {
        let base = (g * size) as u32;
        for i in 0..size as u32 {
            for j in i + 1..size as u32 {
                if rng.gen_bool(0.6) {
                    edges.push((base + i, base + j, rng.gen_range(1..4)));
                }
            }
        }
    }
    // Sparse inter-group noise.
    for _ in 0..n {
        let a = rng.gen_range(0..n as u32);
        let b = rng.gen_range(0..n as u32);
        edges.push((a, b, 1));
    }
    MultiGraph::from_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planted_graph_is_reproducible_and_clusterable() {
        let a = planted_multigraph(4, 8, 9);
        let b = planted_multigraph(4, 8, 9);
        assert_eq!(a.edges(), b.edges());
        let out = esharp_community::cluster_parallel(
            &a,
            &esharp_community::ParallelConfig::default(),
        );
        assert!(out.assignment.num_communities() <= 4 * 8);
        assert!(out.assignment.num_communities() >= 2);
    }
}
