//! Online read-path benchmark (`esharp bench --online`).
//!
//! Replays a Zipf-distributed query mix through two implementations of
//! the same hot path, closed-loop (each query completes before the next
//! is issued):
//!
//! * **interned** — the live path: token-id CSR postings, galloping
//!   intersection, k-way union, flat candidate scratch.
//! * **string-keyed** — the pre-interning path reconstructed verbatim
//!   from git history as a measurement baseline: `HashMap<String,
//!   Vec<TweetId>>` postings, clone-then-intersect matching, the
//!   extend + sort + dedup union, and the `HashMap`-accumulating rank
//!   path ([`Detector::rank_candidates_reference`]).
//!
//! Both paths must return identical expert rankings for every query
//! (`results_identical` in the report) — the speedup is only meaningful
//! at equal output.
//!
//! The report also times corpus acquisition three ways: full testbed
//! build, re-index from in-memory users + tweets (the unavoidable floor
//! of any JSON load), JSON file load when available, and the `corpus.bin`
//! binary load, which rebuilds nothing. `to_json` renders
//! `BENCH_online.json` by hand like the other bench reports.

use esharp_eval::{EvalScale, Testbed};
use esharp_expert::Detector;
use esharp_microblog::{tokenize::tokenize, Corpus, TweetId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::time::Instant;

/// The pre-interning read path, kept as a benchmark baseline. This is a
/// faithful reconstruction of the string-keyed `Corpus` index this repo
/// shipped before token interning: per-token `String`-keyed posting
/// lists, shortest-list clone + pairwise merge intersection, and the
/// union that re-sorts every posting on every query.
pub struct StringKeyedBaseline {
    postings: HashMap<String, Vec<TweetId>>,
}

impl StringKeyedBaseline {
    /// Build the string-keyed index from a corpus (re-tokenizes every
    /// tweet, exactly like the old `Corpus::new`).
    pub fn build(corpus: &Corpus) -> StringKeyedBaseline {
        let mut postings: HashMap<String, Vec<TweetId>> = HashMap::new();
        for t in corpus.tweets() {
            for token in tokenize(&t.text) {
                match postings.get_mut(&token) {
                    Some(list) => {
                        if list.last() != Some(&t.id) {
                            list.push(t.id);
                        }
                    }
                    None => {
                        postings.insert(token, vec![t.id]);
                    }
                }
            }
        }
        StringKeyedBaseline { postings }
    }

    /// The old `Corpus::match_query`: AND across query tokens, cloning
    /// the shortest posting list and narrowing it pairwise.
    pub fn match_query(&self, query: &str) -> Vec<TweetId> {
        let tokens = tokenize(query);
        if tokens.is_empty() {
            return Vec::new();
        }
        let mut lists: Vec<&Vec<TweetId>> = Vec::with_capacity(tokens.len());
        for token in &tokens {
            match self.postings.get(token) {
                Some(list) => lists.push(list),
                None => return Vec::new(),
            }
        }
        lists.sort_by_key(|list| list.len());
        let mut result: Vec<TweetId> = lists[0].clone();
        for list in &lists[1..] {
            result = intersect_sorted(&result, list);
            if result.is_empty() {
                break;
            }
        }
        result
    }

    /// The old `Esharp::search_with` union: extend with every term's
    /// matches, then sort and dedup the whole buffer.
    pub fn match_terms(&self, terms: &[String]) -> Vec<TweetId> {
        let mut matched: Vec<TweetId> = Vec::new();
        for term in terms {
            matched.extend(self.match_query(term));
        }
        matched.sort_unstable();
        matched.dedup();
        matched
    }
}

/// The old pairwise merge intersection (no galloping).
fn intersect_sorted(a: &[TweetId], b: &[TweetId]) -> Vec<TweetId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Nearest-rank quantiles of one measured phase across all queries.
#[derive(Debug, Clone, Copy)]
pub struct PhaseStats {
    /// Sum over all queries, seconds.
    pub total_secs: f64,
    /// Median per-query time, microseconds.
    pub p50_us: u64,
    /// 99th-percentile per-query time, microseconds.
    pub p99_us: u64,
    /// Worst per-query time, microseconds.
    pub max_us: u64,
}

impl PhaseStats {
    /// Samples arrive in nanoseconds (µs truncation would bias a ~10µs
    /// phase by up to 10%); quantiles are reported rounded to µs.
    fn from_samples(mut samples_ns: Vec<u64>) -> PhaseStats {
        samples_ns.sort_unstable();
        let to_us = |ns: u64| (ns + 500) / 1_000;
        PhaseStats {
            total_secs: samples_ns.iter().sum::<u64>() as f64 / 1e9,
            p50_us: to_us(quantile(&samples_ns, 0.50)),
            p99_us: to_us(quantile(&samples_ns, 0.99)),
            max_us: to_us(samples_ns.last().copied().unwrap_or(0)),
        }
    }

    fn render(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"total_secs\": {:.6}, \"p50_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
            self.total_secs, self.p50_us, self.p99_us, self.max_us
        ));
    }
}

/// Exact quantile over sorted samples (nearest-rank).
fn quantile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1]
}

/// One read path's measurements.
#[derive(Debug, Clone)]
pub struct PathReport {
    /// `interned` / `string_keyed`.
    pub name: &'static str,
    /// Expansion phase (identical work on both paths; sanity column).
    pub expand: PhaseStats,
    /// Posting intersection + union phase.
    pub match_phase: PhaseStats,
    /// Candidate collection + feature scoring + ranking phase.
    pub rank_phase: PhaseStats,
    /// Seconds spent on the match + rank hot path across all queries.
    pub hot_secs: f64,
    /// Hot-path throughput: queries per second of match + rank time.
    pub hot_qps: f64,
}

/// One shard count in the sweep: persistence + load times for both load
/// modes, the shard balance, and scatter-gather match parity/latency on
/// the zero-copy-loaded corpus.
#[derive(Debug, Clone)]
pub struct ShardPoint {
    /// Shard count K.
    pub shards: usize,
    /// `save_sharded` wall time, seconds.
    pub save_secs: f64,
    /// Manifest + all segments on disk, bytes.
    pub persisted_bytes: u64,
    /// Decode-copy load (`LoadMode::Copy`), seconds.
    pub copy_load_secs: f64,
    /// Zero-copy load (`LoadMode::ZeroCopy`), seconds.
    pub zero_copy_load_secs: f64,
    /// Per-shard postings bytes (arena + offsets), shard order.
    pub postings_bytes: Vec<u64>,
    /// Max-over-mean postings balance (1.0 = perfect).
    pub skew_max_over_mean: f64,
    /// Scatter-gather match over the whole query sequence, seconds.
    pub match_total_secs: f64,
    /// Every matched set bit-identical to the K=1 serial union.
    pub match_identical: bool,
}

/// One worker count in the sweep: the scatter-gather match phase over
/// the full query sequence at a fixed shard count.
#[derive(Debug, Clone)]
pub struct WorkersPoint {
    /// Worker threads handed to `match_terms_with`.
    pub workers: usize,
    /// Match phase total over the sequence, seconds.
    pub match_total_secs: f64,
    /// Median per-query match time, microseconds.
    pub match_p50_us: u64,
    /// p99 per-query match time, microseconds.
    pub match_p99_us: u64,
    /// Matched sets bit-identical to the serial union.
    pub identical: bool,
}

/// The `--large-load` section: a ≥1M-user / ≥10M-tweet synthetic corpus
/// built streamingly, persisted sharded, and loaded both ways.
#[derive(Debug, Clone)]
pub struct LargeLoadReport {
    /// Accounts generated.
    pub users: usize,
    /// Tweets generated.
    pub tweets: usize,
    /// Distinct interned tokens.
    pub tokens: usize,
    /// Streaming generation + index build, seconds.
    pub generate_secs: f64,
    /// Shard count used for persistence.
    pub shards: usize,
    /// `save_sharded` wall time, seconds.
    pub save_secs: f64,
    /// Manifest + all segments on disk, bytes.
    pub persisted_bytes: u64,
    /// Decode-copy load, seconds.
    pub copy_load_secs: f64,
    /// Zero-copy load, seconds.
    pub zero_copy_load_secs: f64,
    /// `copy_load_secs / zero_copy_load_secs` — both loads parse the
    /// same global frames and run the same validation, so this isolates
    /// what zero-copy actually removes: materializing the arenas.
    pub zero_copy_speedup: f64,
    /// Sample queries returned identical matches on both loads.
    pub query_identical: bool,
}

impl LargeLoadReport {
    fn to_json_value(&self) -> String {
        format!(
            "{{\"users\": {}, \"tweets\": {}, \"tokens\": {}, \"generate_secs\": {:.3}, \
             \"shards\": {}, \"save_secs\": {:.3}, \"persisted_bytes\": {}, \
             \"copy_load_secs\": {:.4}, \"zero_copy_load_secs\": {:.4}, \
             \"zero_copy_speedup\": {:.2}, \"query_identical\": {}}}",
            self.users,
            self.tweets,
            self.tokens,
            self.generate_secs,
            self.shards,
            self.save_secs,
            self.persisted_bytes,
            self.copy_load_secs,
            self.zero_copy_load_secs,
            self.zero_copy_speedup,
            self.query_identical,
        )
    }
}

/// The full `esharp bench --online` report.
#[derive(Debug, Clone)]
pub struct OnlineBenchReport {
    /// Logical CPUs of the measuring host.
    pub host_cpus: usize,
    /// Testbed seed.
    pub seed: u64,
    /// Scale preset name (`tiny` / `small` / `paper`).
    pub scale: String,
    /// Queries replayed per path.
    pub queries: u64,
    /// Distinct queries in the Zipf mix.
    pub distinct_queries: usize,
    /// Corpus size: users.
    pub corpus_users: usize,
    /// Corpus size: tweets.
    pub corpus_tweets: usize,
    /// Corpus size: distinct interned tokens.
    pub corpus_tokens: usize,
    /// Full offline testbed build, seconds.
    pub build_secs: f64,
    /// Re-index from in-memory users + tweets (tokenize + intern +
    /// postings), seconds — the floor under any JSON load.
    pub rebuild_secs: f64,
    /// JSON file load (parse + re-index), seconds. `None` when the JSON
    /// round-trip is unavailable (stub serde in the offline dev image).
    pub json_load_secs: Option<f64>,
    /// `corpus.bin` binary load, seconds (no re-tokenization, no index
    /// rebuild).
    pub binary_load_secs: f64,
    /// Size of `corpus.bin` in bytes.
    pub binary_bytes: u64,
    /// Load speedup of the binary path over the JSON path, reported only
    /// when the JSON load actually ran — a binary-vs-JSON ratio computed
    /// against anything else would be dishonest, so when the JSON
    /// round-trip is unavailable this is `None`/`null` and readers should
    /// compare `rebuild_secs` (the re-index floor) against
    /// `binary_load_secs` themselves. See PERF.md for why small corpora
    /// can put this near (or below) 1×: decode cost floors.
    pub load_speedup: Option<f64>,
    /// Load + scatter-gather curves per shard count (K = 1 first).
    pub shard_sweep: Vec<ShardPoint>,
    /// Match-phase latency per worker count at a fixed shard count.
    pub workers_sweep: Vec<WorkersPoint>,
    /// The `--large-load` section, when requested.
    pub large_load: Option<LargeLoadReport>,
    /// Interned path first, string-keyed baseline second.
    pub paths: Vec<PathReport>,
    /// Hot-path speedup: baseline hot seconds / interned hot seconds.
    pub hot_path_speedup: f64,
    /// Whether both paths returned identical expert rankings for every
    /// query (they must).
    pub results_identical: bool,
}

impl OnlineBenchReport {
    /// Render `BENCH_online.json` (hand-rolled, stable key order, same
    /// contract as the offline and serve reports).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\n");
        out.push_str("  \"bench\": \"online\",\n");
        out.push_str(&format!("  \"host_cpus\": {},\n", self.host_cpus));
        // Single-core hosts run every sweep point on the same core: the
        // worker/shard curves are not scaling evidence there.
        out.push_str(&format!(
            "  \"degenerate_host\": {},\n",
            self.host_cpus == 1
        ));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"scale\": \"{}\",\n", self.scale));
        out.push_str(&format!("  \"queries\": {},\n", self.queries));
        out.push_str(&format!(
            "  \"distinct_queries\": {},\n",
            self.distinct_queries
        ));
        out.push_str(&format!(
            "  \"corpus\": {{\"users\": {}, \"tweets\": {}, \"tokens\": {}}},\n",
            self.corpus_users, self.corpus_tweets, self.corpus_tokens
        ));
        out.push_str(&format!("  \"build_secs\": {:.6},\n", self.build_secs));
        out.push_str(&format!("  \"rebuild_secs\": {:.6},\n", self.rebuild_secs));
        match self.json_load_secs {
            Some(s) => out.push_str(&format!("  \"json_load_secs\": {s:.6},\n")),
            None => out.push_str("  \"json_load_secs\": null,\n"),
        }
        out.push_str(&format!(
            "  \"binary_load_secs\": {:.6},\n",
            self.binary_load_secs
        ));
        out.push_str(&format!("  \"binary_bytes\": {},\n", self.binary_bytes));
        match self.load_speedup {
            Some(s) => out.push_str(&format!("  \"load_speedup\": {s:.2},\n")),
            None => out.push_str("  \"load_speedup\": null,\n"),
        }
        out.push_str("  \"shard_sweep\": [\n");
        for (i, s) in self.shard_sweep.iter().enumerate() {
            let bytes: Vec<String> = s.postings_bytes.iter().map(u64::to_string).collect();
            out.push_str(&format!(
                "    {{\"shards\": {}, \"save_secs\": {:.4}, \"persisted_bytes\": {}, \
                 \"copy_load_secs\": {:.4}, \"zero_copy_load_secs\": {:.4}, \
                 \"postings_bytes\": [{}], \"skew_max_over_mean\": {:.4}, \
                 \"match_total_secs\": {:.6}, \"match_identical\": {}}}{}\n",
                s.shards,
                s.save_secs,
                s.persisted_bytes,
                s.copy_load_secs,
                s.zero_copy_load_secs,
                bytes.join(", "),
                s.skew_max_over_mean,
                s.match_total_secs,
                s.match_identical,
                if i + 1 < self.shard_sweep.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"workers_sweep\": [\n");
        for (i, w) in self.workers_sweep.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"workers\": {}, \"match_total_secs\": {:.6}, \"match_p50_us\": {}, \
                 \"match_p99_us\": {}, \"identical\": {}}}{}\n",
                w.workers,
                w.match_total_secs,
                w.match_p50_us,
                w.match_p99_us,
                w.identical,
                if i + 1 < self.workers_sweep.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
        match &self.large_load {
            Some(l) => out.push_str(&format!("  \"large_load\": {},\n", l.to_json_value())),
            None => out.push_str("  \"large_load\": null,\n"),
        }
        out.push_str("  \"paths\": [\n");
        for (i, p) in self.paths.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"hot_secs\": {:.6}, \"hot_qps\": {:.1}, \"expand\": ",
                p.name, p.hot_secs, p.hot_qps
            ));
            p.expand.render(&mut out);
            out.push_str(", \"match\": ");
            p.match_phase.render(&mut out);
            out.push_str(", \"rank\": ");
            p.rank_phase.render(&mut out);
            out.push_str(if i + 1 < self.paths.len() { "},\n" } else { "}\n" });
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"hot_path_speedup\": {:.2},\n",
            self.hot_path_speedup
        ));
        out.push_str(&format!(
            "  \"results_identical\": {}\n",
            self.results_identical
        ));
        out.push_str("}\n");
        out
    }

    /// Terminal summary, one row per path.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "online bench — {} queries ({} distinct, Zipf), scale {}, seed {}, host_cpus={}\n",
            self.queries, self.distinct_queries, self.scale, self.seed, self.host_cpus
        ));
        let vs_json = match self.load_speedup {
            Some(s) => format!("{s:.1}× vs json load"),
            None => "json load unavailable".to_string(),
        };
        out.push_str(&format!(
            "corpus: {} users, {} tweets, {} tokens; build {:.2}s, re-index {:.3}s, binary load {:.3}s ({} bytes, {})\n",
            self.corpus_users,
            self.corpus_tweets,
            self.corpus_tokens,
            self.build_secs,
            self.rebuild_secs,
            self.binary_load_secs,
            self.binary_bytes,
            vs_json,
        ));
        out.push_str("path          hot qps    match p50/p99      rank p50/p99       expand p50\n");
        for p in &self.paths {
            out.push_str(&format!(
                "{:<12} {:>8.0}  {:>7}µs/{:>7}µs  {:>7}µs/{:>7}µs  {:>7}µs\n",
                p.name,
                p.hot_qps,
                p.match_phase.p50_us,
                p.match_phase.p99_us,
                p.rank_phase.p50_us,
                p.rank_phase.p99_us,
                p.expand.p50_us
            ));
        }
        out.push_str(&format!(
            "hot-path speedup {:.2}×, results identical: {}\n",
            self.hot_path_speedup, self.results_identical
        ));
        if !self.shard_sweep.is_empty() {
            out.push_str("shards  save      copy load  zc load    skew    match secs  identical\n");
            for s in &self.shard_sweep {
                out.push_str(&format!(
                    "{:>6}  {:>7.4}s  {:>8.4}s  {:>8.4}s  {:>5.2}×  {:>9.4}s  {}\n",
                    s.shards,
                    s.save_secs,
                    s.copy_load_secs,
                    s.zero_copy_load_secs,
                    s.skew_max_over_mean,
                    s.match_total_secs,
                    s.match_identical,
                ));
            }
        }
        for w in &self.workers_sweep {
            out.push_str(&format!(
                "workers={}: match {:.4}s (p50 {}µs, p99 {}µs), identical: {}\n",
                w.workers, w.match_total_secs, w.match_p50_us, w.match_p99_us, w.identical
            ));
        }
        if let Some(l) = &self.large_load {
            out.push_str(&format!(
                "large load: {} users, {} tweets; generate {:.1}s, save {:.1}s, \
                 copy load {:.3}s vs zero-copy {:.3}s ({:.2}×), identical: {}\n",
                l.users,
                l.tweets,
                l.generate_secs,
                l.save_secs,
                l.copy_load_secs,
                l.zero_copy_load_secs,
                l.zero_copy_speedup,
                l.query_identical,
            ));
        }
        out
    }
}

/// A Zipf(s≈1.1) sampler over the testbed's domain labels (the queries
/// that actually expand), integer fixed-point cumulative weights.
struct ZipfLabels {
    labels: Vec<String>,
    cumulative: Vec<u64>,
    total: u64,
}

impl ZipfLabels {
    fn new(testbed: &Testbed) -> std::io::Result<ZipfLabels> {
        let labels: Vec<String> = testbed
            .world
            .domains
            .iter()
            .take(32)
            .map(|d| d.label.clone())
            .collect();
        if labels.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "testbed produced no domains to query",
            ));
        }
        let mut cumulative = Vec::with_capacity(labels.len());
        let mut total = 0u64;
        for rank in 0..labels.len() {
            let weight = (1e6 / ((rank + 1) as f64).powf(1.1)) as u64;
            total += weight.max(1);
            cumulative.push(total);
        }
        Ok(ZipfLabels {
            labels,
            cumulative,
            total,
        })
    }

    fn sample(&self, rng: &mut StdRng) -> &str {
        let ticket = rng.gen_range(0..self.total);
        let index = self
            .cumulative
            .partition_point(|&c| c <= ticket)
            .min(self.labels.len() - 1);
        &self.labels[index]
    }
}

fn nanos(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Build the testbed, measure corpus load strategies, then replay the
/// query mix through both read paths and compare.
pub fn run(seed: u64, queries: u64, scale: EvalScale) -> std::io::Result<OnlineBenchReport> {
    run_with(seed, queries, scale, false)
}

/// [`run`] with the `--large-load` section toggled: additionally
/// generates the [`esharp_microblog::CorpusConfig::large`] corpus
/// (≥1M users, ≥10M tweets) streamingly and measures sharded save +
/// both load modes on it. Slow and memory-hungry by design; off unless
/// asked for.
pub fn run_with(
    seed: u64,
    queries: u64,
    scale: EvalScale,
    large: bool,
) -> std::io::Result<OnlineBenchReport> {
    let build_started = Instant::now();
    let testbed = Testbed::build(scale, seed);
    let build_secs = build_started.elapsed().as_secs_f64();
    let corpus = &testbed.corpus;
    let esharp = &testbed.esharp;

    // Corpus acquisition: re-index floor, JSON load (when the serializer
    // can round-trip), and the binary load that rebuilds nothing.
    let users = corpus.users().to_vec();
    let tweets = corpus.tweets().to_vec();
    let rebuild_started = Instant::now();
    let rebuilt = Corpus::new(users, tweets);
    let rebuild_secs = rebuild_started.elapsed().as_secs_f64();
    assert_eq!(rebuilt.num_tokens(), corpus.num_tokens());
    drop(rebuilt);

    let dir = std::env::temp_dir().join(format!("esharp_online_bench_{seed}"));
    std::fs::create_dir_all(&dir)?;
    let bin_path = dir.join("corpus.bin");
    corpus.save_binary(&bin_path)?;
    let binary_bytes = std::fs::metadata(&bin_path)?.len();
    let bin_load_started = Instant::now();
    let from_bin = Corpus::load(&bin_path)?;
    let binary_load_secs = bin_load_started.elapsed().as_secs_f64();
    assert_eq!(from_bin.tweets().len(), corpus.tweets().len());
    drop(from_bin);

    let json_path = dir.join("corpus.json");
    let json_load_secs = corpus.save(&json_path).ok().and_then(|()| {
        let started = Instant::now();
        Corpus::load(&json_path)
            .ok()
            .map(|loaded| {
                assert_eq!(loaded.tweets().len(), corpus.tweets().len());
                started.elapsed().as_secs_f64()
            })
    });
    let _ = std::fs::remove_dir_all(&dir);
    // Only a real binary-vs-JSON ratio: when the JSON path didn't run
    // there is nothing honest to divide by (the old report divided by the
    // re-index floor here and labeled it a load speedup).
    let load_speedup = json_load_secs.map(|j| j / binary_load_secs.max(1e-9));

    // Replay the same deterministic query sequence through both paths.
    let zipf = ZipfLabels::new(&testbed)?;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
    let sequence: Vec<&str> = (0..queries).map(|_| zipf.sample(&mut rng)).collect();

    let baseline = StringKeyedBaseline::build(corpus);
    let detector = Detector::new(corpus, esharp.config().detector.clone());
    let max_terms = esharp.config().max_expansion_terms;

    // Expected experts per distinct query, computed before any timing.
    // Both timed loops compare every reply against this fixed table, so
    // the comparison work is identical on both sides and neither loop
    // accumulates memory as it runs.
    let expected: HashMap<&str, Vec<esharp_expert::ExpertResult>> = zipf
        .labels
        .iter()
        .map(|q| (q.as_str(), esharp.search(corpus, q).experts))
        .collect();
    let mut results_identical = true;

    // Each path is measured alone, immediately after its own warmup pass
    // over every distinct query: in production exactly one index is
    // resident, so interleaving the two paths would charge both with
    // cache evictions caused by the other.
    let mut interned_expand = Vec::with_capacity(sequence.len());
    let mut interned_match = Vec::with_capacity(sequence.len());
    let mut interned_rank = Vec::with_capacity(sequence.len());
    for q in &zipf.labels {
        results_identical &= esharp.search(corpus, q).experts == expected[q.as_str()];
    }
    for q in &sequence {
        let outcome = esharp.search(corpus, q);
        interned_expand.push(u64::try_from(outcome.expansion_time.as_nanos()).unwrap_or(u64::MAX));
        interned_match.push(u64::try_from(outcome.match_time.as_nanos()).unwrap_or(u64::MAX));
        interned_rank.push(u64::try_from(outcome.rank_time.as_nanos()).unwrap_or(u64::MAX));
        results_identical &= outcome.experts == expected[*q];
    }

    let mut base_expand = Vec::with_capacity(sequence.len());
    let mut base_match = Vec::with_capacity(sequence.len());
    let mut base_rank = Vec::with_capacity(sequence.len());
    for q in &zipf.labels {
        let expansion = esharp.domains().expand(q, max_terms);
        let matched = baseline.match_terms(&expansion);
        results_identical &=
            detector.rank_candidates_reference(&matched) == expected[q.as_str()];
    }
    for q in &sequence {
        let started = Instant::now();
        let expansion = esharp.domains().expand(q, max_terms);
        base_expand.push(nanos(started));
        let started = Instant::now();
        let matched = baseline.match_terms(&expansion);
        base_match.push(nanos(started));
        let started = Instant::now();
        let experts = detector.rank_candidates_reference(&matched);
        base_rank.push(nanos(started));
        results_identical &= experts == expected[*q];
    }

    let path_report = |name, expand: Vec<u64>, matching: Vec<u64>, rank: Vec<u64>| {
        let match_phase = PhaseStats::from_samples(matching);
        let rank_phase = PhaseStats::from_samples(rank);
        let hot_secs = (match_phase.total_secs + rank_phase.total_secs).max(1e-9);
        PathReport {
            name,
            expand: PhaseStats::from_samples(expand),
            match_phase,
            rank_phase,
            hot_secs,
            hot_qps: queries as f64 / hot_secs,
        }
    };
    let interned = path_report("interned", interned_expand, interned_match, interned_rank);
    let string_keyed = path_report("string_keyed", base_expand, base_match, base_rank);
    let hot_path_speedup = string_keyed.hot_secs / interned.hot_secs;
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    // --- Shard sweep: persistence + load modes + scatter-gather vs K ---
    //
    // Expansions are precomputed per distinct label so the timed loops
    // measure only the match phase, and the serial K=1 union is the
    // single source of truth every configuration must reproduce
    // bit-identically.
    let expansions: HashMap<&str, Vec<String>> = zipf
        .labels
        .iter()
        .map(|q| (q.as_str(), esharp.domains().expand(q, max_terms)))
        .collect();
    let serial_matches: HashMap<&str, Vec<TweetId>> = zipf
        .labels
        .iter()
        .map(|q| (q.as_str(), corpus.match_terms(&expansions[q.as_str()])))
        .collect();

    let shard_dir = std::env::temp_dir().join(format!("esharp_online_shards_{seed}"));
    let mut shard_sweep = Vec::new();
    for k in [1usize, 2, 4, 8] {
        let kdir = shard_dir.join(format!("k{k}"));
        std::fs::create_dir_all(&kdir)?;
        let manifest = kdir.join("corpus.manifest");
        let started = Instant::now();
        corpus.save_sharded(&manifest, k)?;
        let save_secs = started.elapsed().as_secs_f64();
        let persisted_bytes: u64 = std::fs::read_dir(&kdir)?
            .flatten()
            .filter_map(|entry| entry.metadata().ok())
            .map(|meta| meta.len())
            .sum();

        let started = Instant::now();
        let copied = esharp_microblog::segio::load_sharded(
            &manifest,
            esharp_microblog::LoadMode::Copy,
        )?;
        let copy_load_secs = started.elapsed().as_secs_f64();
        let mut match_identical = true;
        for q in &zipf.labels {
            let expansion = &expansions[q.as_str()];
            match_identical &=
                copied.match_terms_with(expansion, host_cpus) == serial_matches[q.as_str()];
        }
        drop(copied);

        let started = Instant::now();
        let zc = esharp_microblog::segio::load_sharded(
            &manifest,
            esharp_microblog::LoadMode::ZeroCopy,
        )?;
        let zero_copy_load_secs = started.elapsed().as_secs_f64();
        for q in &zipf.labels {
            let expansion = &expansions[q.as_str()];
            match_identical &=
                zc.match_terms_with(expansion, host_cpus) == serial_matches[q.as_str()];
        }
        let started = Instant::now();
        for q in &sequence {
            let _ = zc.match_terms_with(&expansions[*q], host_cpus);
        }
        let match_total_secs = started.elapsed().as_secs_f64();
        let postings_bytes = zc.shard_postings_bytes();
        let total: u64 = postings_bytes.iter().sum();
        let skew_max_over_mean = if total == 0 {
            1.0
        } else {
            let max = postings_bytes.iter().copied().max().unwrap_or(0);
            max as f64 * postings_bytes.len() as f64 / total as f64
        };
        results_identical &= match_identical;
        shard_sweep.push(ShardPoint {
            shards: zc.shard_count(),
            save_secs,
            persisted_bytes,
            copy_load_secs,
            zero_copy_load_secs,
            postings_bytes,
            skew_max_over_mean,
            match_total_secs,
            match_identical,
        });
    }
    let _ = std::fs::remove_dir_all(&shard_dir);

    // --- Workers sweep at a fixed shard count (in-memory reshard) ---
    let mut resharded = corpus.clone();
    resharded.reshard(4.min(host_cpus.max(1)).max(2));
    let mut workers_sweep = Vec::new();
    for w in 1..=host_cpus {
        let mut identical = true;
        for q in &zipf.labels {
            identical &= resharded.match_terms_with(&expansions[q.as_str()], w)
                == serial_matches[q.as_str()];
        }
        let mut samples = Vec::with_capacity(sequence.len());
        for q in &sequence {
            let started = Instant::now();
            let _ = resharded.match_terms_with(&expansions[*q], w);
            samples.push(nanos(started));
        }
        let stats = PhaseStats::from_samples(samples);
        results_identical &= identical;
        workers_sweep.push(WorkersPoint {
            workers: w,
            match_total_secs: stats.total_secs,
            match_p50_us: stats.p50_us,
            match_p99_us: stats.p99_us,
            identical,
        });
    }
    drop(resharded);

    // --- Optional large-scale section (≥1M users, ≥10M tweets) ---
    let large_load = if large {
        Some(run_large_load(&testbed, seed, &zipf, &expansions, host_cpus)?)
    } else {
        None
    };

    Ok(OnlineBenchReport {
        host_cpus,
        seed,
        scale: format!("{scale:?}").to_lowercase(),
        queries,
        distinct_queries: zipf.labels.len(),
        corpus_users: corpus.users().len(),
        corpus_tweets: corpus.tweets().len(),
        corpus_tokens: corpus.num_tokens(),
        build_secs,
        rebuild_secs,
        json_load_secs,
        binary_load_secs,
        binary_bytes,
        load_speedup,
        shard_sweep,
        workers_sweep,
        large_load,
        paths: vec![interned, string_keyed],
        hot_path_speedup,
        results_identical,
    })
}

/// The `--large-load` measurement: generate the large synthetic corpus
/// streamingly, persist it sharded, and time both load modes. The two
/// loads parse the same global frames and run the same validation, so
/// the ratio isolates arena materialization — what zero-copy removes.
fn run_large_load(
    testbed: &Testbed,
    seed: u64,
    zipf: &ZipfLabels,
    expansions: &HashMap<&str, Vec<String>>,
    host_cpus: usize,
) -> std::io::Result<LargeLoadReport> {
    const LARGE_SHARDS: usize = 4;
    let config = esharp_microblog::CorpusConfig::large(seed);
    let started = Instant::now();
    let large = esharp_microblog::generate_corpus_streaming(&testbed.world, &config);
    let generate_secs = started.elapsed().as_secs_f64();

    let dir = std::env::temp_dir().join(format!("esharp_online_large_{seed}"));
    std::fs::create_dir_all(&dir)?;
    let manifest = dir.join("corpus.manifest");
    let started = Instant::now();
    large.save_sharded(&manifest, LARGE_SHARDS)?;
    let save_secs = started.elapsed().as_secs_f64();
    let persisted_bytes: u64 = std::fs::read_dir(&dir)?
        .flatten()
        .filter_map(|entry| entry.metadata().ok())
        .map(|meta| meta.len())
        .sum();

    // Parity probes: the large corpus shares the domain world, so the
    // bench's own query labels are meaningful here too.
    let probes: Vec<&str> = zipf.labels.iter().take(4).map(|q| q.as_str()).collect();
    let expected: Vec<Vec<TweetId>> = probes
        .iter()
        .map(|q| large.match_terms(&expansions[*q]))
        .collect();

    let started = Instant::now();
    let copied = esharp_microblog::segio::load_sharded(
        &manifest,
        esharp_microblog::LoadMode::Copy,
    )?;
    let copy_load_secs = started.elapsed().as_secs_f64();
    let mut query_identical = true;
    for (q, want) in probes.iter().zip(&expected) {
        query_identical &= &copied.match_terms_with(&expansions[*q], host_cpus) == want;
    }
    drop(copied);

    let started = Instant::now();
    let zc = esharp_microblog::segio::load_sharded(
        &manifest,
        esharp_microblog::LoadMode::ZeroCopy,
    )?;
    let zero_copy_load_secs = started.elapsed().as_secs_f64();
    for (q, want) in probes.iter().zip(&expected) {
        query_identical &= &zc.match_terms_with(&expansions[*q], host_cpus) == want;
    }

    let report = LargeLoadReport {
        users: large.users().len(),
        tweets: large.tweets().len(),
        tokens: large.num_tokens(),
        generate_secs,
        shards: zc.shard_count(),
        save_secs,
        persisted_bytes,
        copy_load_secs,
        zero_copy_load_secs,
        zero_copy_speedup: copy_load_secs / zero_copy_load_secs.max(1e-9),
        query_identical,
    };
    let _ = std::fs::remove_dir_all(&dir);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_baseline_matches_interned_corpus() {
        let testbed = Testbed::build(EvalScale::Tiny, 17);
        let corpus = &testbed.corpus;
        let baseline = StringKeyedBaseline::build(corpus);
        for q in ["49ers", "diabetes", "nonexistent zz", ""] {
            assert_eq!(baseline.match_query(q), corpus.match_query(q), "query {q:?}");
        }
        let terms = vec!["49ers".to_string(), "diabetes".to_string()];
        assert_eq!(baseline.match_terms(&terms), corpus.match_terms(&terms));
    }

    #[test]
    fn a_small_run_reports_identical_results_and_shaped_json() {
        let report = run(11, 150, EvalScale::Tiny).expect("bench run");
        assert_eq!(report.queries, 150);
        assert!(report.results_identical, "paths diverged");
        assert_eq!(report.paths.len(), 2);
        assert!(report.paths.iter().all(|p| p.hot_qps > 0.0));
        assert!(report.hot_path_speedup > 0.0);
        assert!(report.binary_load_secs > 0.0 && report.binary_bytes > 0);
        assert_eq!(
            report.load_speedup.is_some(),
            report.json_load_secs.is_some(),
            "load_speedup must be reported on the binary-vs-JSON basis or not at all"
        );
        assert_eq!(report.shard_sweep.len(), 4);
        assert!(report.shard_sweep.iter().all(|p| p.match_identical));
        assert!(report
            .shard_sweep
            .iter()
            .zip([1usize, 2, 4, 8])
            .all(|(p, k)| p.shards == k && p.postings_bytes.len() == k));
        assert_eq!(report.workers_sweep.len(), report.host_cpus);
        assert!(report.workers_sweep.iter().all(|p| p.identical));
        assert!(report.large_load.is_none(), "tiny run must skip large-load");
        let json = report.to_json();
        for needle in [
            "\"bench\": \"online\"",
            "\"name\": \"interned\"",
            "\"name\": \"string_keyed\"",
            "\"hot_path_speedup\":",
            "\"binary_load_secs\":",
            "\"results_identical\": true",
            "\"shard_sweep\": [",
            "\"workers_sweep\": [",
            "\"skew_max_over_mean\":",
            "\"zero_copy_load_secs\":",
            "\"large_load\": null",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(!report.render_table().is_empty());
    }

    #[test]
    fn quantiles_are_nearest_rank_exact() {
        assert_eq!(quantile(&[], 0.5), 0);
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(quantile(&sorted, 0.50), 50);
        assert_eq!(quantile(&sorted, 0.99), 99);
    }
}
