//! Online read-path benchmark (`esharp bench --online`).
//!
//! Replays a Zipf-distributed query mix through two implementations of
//! the same hot path, closed-loop (each query completes before the next
//! is issued):
//!
//! * **interned** — the live path: token-id CSR postings, galloping
//!   intersection, k-way union, flat candidate scratch.
//! * **string-keyed** — the pre-interning path reconstructed verbatim
//!   from git history as a measurement baseline: `HashMap<String,
//!   Vec<TweetId>>` postings, clone-then-intersect matching, the
//!   extend + sort + dedup union, and the `HashMap`-accumulating rank
//!   path ([`Detector::rank_candidates_reference`]).
//!
//! Both paths must return identical expert rankings for every query
//! (`results_identical` in the report) — the speedup is only meaningful
//! at equal output.
//!
//! The report also times corpus acquisition three ways: full testbed
//! build, re-index from in-memory users + tweets (the unavoidable floor
//! of any JSON load), JSON file load when available, and the `corpus.bin`
//! binary load, which rebuilds nothing. `to_json` renders
//! `BENCH_online.json` by hand like the other bench reports.

use esharp_eval::{EvalScale, Testbed};
use esharp_expert::Detector;
use esharp_microblog::{tokenize::tokenize, Corpus, TweetId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::time::Instant;

/// The pre-interning read path, kept as a benchmark baseline. This is a
/// faithful reconstruction of the string-keyed `Corpus` index this repo
/// shipped before token interning: per-token `String`-keyed posting
/// lists, shortest-list clone + pairwise merge intersection, and the
/// union that re-sorts every posting on every query.
pub struct StringKeyedBaseline {
    postings: HashMap<String, Vec<TweetId>>,
}

impl StringKeyedBaseline {
    /// Build the string-keyed index from a corpus (re-tokenizes every
    /// tweet, exactly like the old `Corpus::new`).
    pub fn build(corpus: &Corpus) -> StringKeyedBaseline {
        let mut postings: HashMap<String, Vec<TweetId>> = HashMap::new();
        for t in corpus.tweets() {
            for token in tokenize(&t.text) {
                match postings.get_mut(&token) {
                    Some(list) => {
                        if list.last() != Some(&t.id) {
                            list.push(t.id);
                        }
                    }
                    None => {
                        postings.insert(token, vec![t.id]);
                    }
                }
            }
        }
        StringKeyedBaseline { postings }
    }

    /// The old `Corpus::match_query`: AND across query tokens, cloning
    /// the shortest posting list and narrowing it pairwise.
    pub fn match_query(&self, query: &str) -> Vec<TweetId> {
        let tokens = tokenize(query);
        if tokens.is_empty() {
            return Vec::new();
        }
        let mut lists: Vec<&Vec<TweetId>> = Vec::with_capacity(tokens.len());
        for token in &tokens {
            match self.postings.get(token) {
                Some(list) => lists.push(list),
                None => return Vec::new(),
            }
        }
        lists.sort_by_key(|list| list.len());
        let mut result: Vec<TweetId> = lists[0].clone();
        for list in &lists[1..] {
            result = intersect_sorted(&result, list);
            if result.is_empty() {
                break;
            }
        }
        result
    }

    /// The old `Esharp::search_with` union: extend with every term's
    /// matches, then sort and dedup the whole buffer.
    pub fn match_terms(&self, terms: &[String]) -> Vec<TweetId> {
        let mut matched: Vec<TweetId> = Vec::new();
        for term in terms {
            matched.extend(self.match_query(term));
        }
        matched.sort_unstable();
        matched.dedup();
        matched
    }
}

/// The old pairwise merge intersection (no galloping).
fn intersect_sorted(a: &[TweetId], b: &[TweetId]) -> Vec<TweetId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Nearest-rank quantiles of one measured phase across all queries.
#[derive(Debug, Clone, Copy)]
pub struct PhaseStats {
    /// Sum over all queries, seconds.
    pub total_secs: f64,
    /// Median per-query time, microseconds.
    pub p50_us: u64,
    /// 99th-percentile per-query time, microseconds.
    pub p99_us: u64,
    /// Worst per-query time, microseconds.
    pub max_us: u64,
}

impl PhaseStats {
    /// Samples arrive in nanoseconds (µs truncation would bias a ~10µs
    /// phase by up to 10%); quantiles are reported rounded to µs.
    fn from_samples(mut samples_ns: Vec<u64>) -> PhaseStats {
        samples_ns.sort_unstable();
        let to_us = |ns: u64| (ns + 500) / 1_000;
        PhaseStats {
            total_secs: samples_ns.iter().sum::<u64>() as f64 / 1e9,
            p50_us: to_us(quantile(&samples_ns, 0.50)),
            p99_us: to_us(quantile(&samples_ns, 0.99)),
            max_us: to_us(samples_ns.last().copied().unwrap_or(0)),
        }
    }

    fn render(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"total_secs\": {:.6}, \"p50_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
            self.total_secs, self.p50_us, self.p99_us, self.max_us
        ));
    }
}

/// Exact quantile over sorted samples (nearest-rank).
fn quantile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1]
}

/// One read path's measurements.
#[derive(Debug, Clone)]
pub struct PathReport {
    /// `interned` / `string_keyed`.
    pub name: &'static str,
    /// Expansion phase (identical work on both paths; sanity column).
    pub expand: PhaseStats,
    /// Posting intersection + union phase.
    pub match_phase: PhaseStats,
    /// Candidate collection + feature scoring + ranking phase.
    pub rank_phase: PhaseStats,
    /// Seconds spent on the match + rank hot path across all queries.
    pub hot_secs: f64,
    /// Hot-path throughput: queries per second of match + rank time.
    pub hot_qps: f64,
}

/// The full `esharp bench --online` report.
#[derive(Debug, Clone)]
pub struct OnlineBenchReport {
    /// Logical CPUs of the measuring host.
    pub host_cpus: usize,
    /// Testbed seed.
    pub seed: u64,
    /// Scale preset name (`tiny` / `small` / `paper`).
    pub scale: String,
    /// Queries replayed per path.
    pub queries: u64,
    /// Distinct queries in the Zipf mix.
    pub distinct_queries: usize,
    /// Corpus size: users.
    pub corpus_users: usize,
    /// Corpus size: tweets.
    pub corpus_tweets: usize,
    /// Corpus size: distinct interned tokens.
    pub corpus_tokens: usize,
    /// Full offline testbed build, seconds.
    pub build_secs: f64,
    /// Re-index from in-memory users + tweets (tokenize + intern +
    /// postings), seconds — the floor under any JSON load.
    pub rebuild_secs: f64,
    /// JSON file load (parse + re-index), seconds. `None` when the JSON
    /// round-trip is unavailable (stub serde in the offline dev image).
    pub json_load_secs: Option<f64>,
    /// `corpus.bin` binary load, seconds (no re-tokenization, no index
    /// rebuild).
    pub binary_load_secs: f64,
    /// Size of `corpus.bin` in bytes.
    pub binary_bytes: u64,
    /// Load speedup of the binary path over the JSON path, reported only
    /// when the JSON load actually ran — a binary-vs-JSON ratio computed
    /// against anything else would be dishonest, so when the JSON
    /// round-trip is unavailable this is `None`/`null` and readers should
    /// compare `rebuild_secs` (the re-index floor) against
    /// `binary_load_secs` themselves. See PERF.md for why small corpora
    /// can put this near (or below) 1×: decode cost floors.
    pub load_speedup: Option<f64>,
    /// Interned path first, string-keyed baseline second.
    pub paths: Vec<PathReport>,
    /// Hot-path speedup: baseline hot seconds / interned hot seconds.
    pub hot_path_speedup: f64,
    /// Whether both paths returned identical expert rankings for every
    /// query (they must).
    pub results_identical: bool,
}

impl OnlineBenchReport {
    /// Render `BENCH_online.json` (hand-rolled, stable key order, same
    /// contract as the offline and serve reports).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\n");
        out.push_str("  \"bench\": \"online\",\n");
        out.push_str(&format!("  \"host_cpus\": {},\n", self.host_cpus));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"scale\": \"{}\",\n", self.scale));
        out.push_str(&format!("  \"queries\": {},\n", self.queries));
        out.push_str(&format!(
            "  \"distinct_queries\": {},\n",
            self.distinct_queries
        ));
        out.push_str(&format!(
            "  \"corpus\": {{\"users\": {}, \"tweets\": {}, \"tokens\": {}}},\n",
            self.corpus_users, self.corpus_tweets, self.corpus_tokens
        ));
        out.push_str(&format!("  \"build_secs\": {:.6},\n", self.build_secs));
        out.push_str(&format!("  \"rebuild_secs\": {:.6},\n", self.rebuild_secs));
        match self.json_load_secs {
            Some(s) => out.push_str(&format!("  \"json_load_secs\": {s:.6},\n")),
            None => out.push_str("  \"json_load_secs\": null,\n"),
        }
        out.push_str(&format!(
            "  \"binary_load_secs\": {:.6},\n",
            self.binary_load_secs
        ));
        out.push_str(&format!("  \"binary_bytes\": {},\n", self.binary_bytes));
        match self.load_speedup {
            Some(s) => out.push_str(&format!("  \"load_speedup\": {s:.2},\n")),
            None => out.push_str("  \"load_speedup\": null,\n"),
        }
        out.push_str("  \"paths\": [\n");
        for (i, p) in self.paths.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"hot_secs\": {:.6}, \"hot_qps\": {:.1}, \"expand\": ",
                p.name, p.hot_secs, p.hot_qps
            ));
            p.expand.render(&mut out);
            out.push_str(", \"match\": ");
            p.match_phase.render(&mut out);
            out.push_str(", \"rank\": ");
            p.rank_phase.render(&mut out);
            out.push_str(if i + 1 < self.paths.len() { "},\n" } else { "}\n" });
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"hot_path_speedup\": {:.2},\n",
            self.hot_path_speedup
        ));
        out.push_str(&format!(
            "  \"results_identical\": {}\n",
            self.results_identical
        ));
        out.push_str("}\n");
        out
    }

    /// Terminal summary, one row per path.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "online bench — {} queries ({} distinct, Zipf), scale {}, seed {}, host_cpus={}\n",
            self.queries, self.distinct_queries, self.scale, self.seed, self.host_cpus
        ));
        let vs_json = match self.load_speedup {
            Some(s) => format!("{s:.1}× vs json load"),
            None => "json load unavailable".to_string(),
        };
        out.push_str(&format!(
            "corpus: {} users, {} tweets, {} tokens; build {:.2}s, re-index {:.3}s, binary load {:.3}s ({} bytes, {})\n",
            self.corpus_users,
            self.corpus_tweets,
            self.corpus_tokens,
            self.build_secs,
            self.rebuild_secs,
            self.binary_load_secs,
            self.binary_bytes,
            vs_json,
        ));
        out.push_str("path          hot qps    match p50/p99      rank p50/p99       expand p50\n");
        for p in &self.paths {
            out.push_str(&format!(
                "{:<12} {:>8.0}  {:>7}µs/{:>7}µs  {:>7}µs/{:>7}µs  {:>7}µs\n",
                p.name,
                p.hot_qps,
                p.match_phase.p50_us,
                p.match_phase.p99_us,
                p.rank_phase.p50_us,
                p.rank_phase.p99_us,
                p.expand.p50_us
            ));
        }
        out.push_str(&format!(
            "hot-path speedup {:.2}×, results identical: {}\n",
            self.hot_path_speedup, self.results_identical
        ));
        out
    }
}

/// A Zipf(s≈1.1) sampler over the testbed's domain labels (the queries
/// that actually expand), integer fixed-point cumulative weights.
struct ZipfLabels {
    labels: Vec<String>,
    cumulative: Vec<u64>,
    total: u64,
}

impl ZipfLabels {
    fn new(testbed: &Testbed) -> std::io::Result<ZipfLabels> {
        let labels: Vec<String> = testbed
            .world
            .domains
            .iter()
            .take(32)
            .map(|d| d.label.clone())
            .collect();
        if labels.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "testbed produced no domains to query",
            ));
        }
        let mut cumulative = Vec::with_capacity(labels.len());
        let mut total = 0u64;
        for rank in 0..labels.len() {
            let weight = (1e6 / ((rank + 1) as f64).powf(1.1)) as u64;
            total += weight.max(1);
            cumulative.push(total);
        }
        Ok(ZipfLabels {
            labels,
            cumulative,
            total,
        })
    }

    fn sample(&self, rng: &mut StdRng) -> &str {
        let ticket = rng.gen_range(0..self.total);
        let index = self
            .cumulative
            .partition_point(|&c| c <= ticket)
            .min(self.labels.len() - 1);
        &self.labels[index]
    }
}

fn nanos(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Build the testbed, measure corpus load strategies, then replay the
/// query mix through both read paths and compare.
pub fn run(seed: u64, queries: u64, scale: EvalScale) -> std::io::Result<OnlineBenchReport> {
    let build_started = Instant::now();
    let testbed = Testbed::build(scale, seed);
    let build_secs = build_started.elapsed().as_secs_f64();
    let corpus = &testbed.corpus;
    let esharp = &testbed.esharp;

    // Corpus acquisition: re-index floor, JSON load (when the serializer
    // can round-trip), and the binary load that rebuilds nothing.
    let users = corpus.users().to_vec();
    let tweets = corpus.tweets().to_vec();
    let rebuild_started = Instant::now();
    let rebuilt = Corpus::new(users, tweets);
    let rebuild_secs = rebuild_started.elapsed().as_secs_f64();
    assert_eq!(rebuilt.num_tokens(), corpus.num_tokens());
    drop(rebuilt);

    let dir = std::env::temp_dir().join(format!("esharp_online_bench_{seed}"));
    std::fs::create_dir_all(&dir)?;
    let bin_path = dir.join("corpus.bin");
    corpus.save_binary(&bin_path)?;
    let binary_bytes = std::fs::metadata(&bin_path)?.len();
    let bin_load_started = Instant::now();
    let from_bin = Corpus::load(&bin_path)?;
    let binary_load_secs = bin_load_started.elapsed().as_secs_f64();
    assert_eq!(from_bin.tweets().len(), corpus.tweets().len());
    drop(from_bin);

    let json_path = dir.join("corpus.json");
    let json_load_secs = corpus.save(&json_path).ok().and_then(|()| {
        let started = Instant::now();
        Corpus::load(&json_path)
            .ok()
            .map(|loaded| {
                assert_eq!(loaded.tweets().len(), corpus.tweets().len());
                started.elapsed().as_secs_f64()
            })
    });
    let _ = std::fs::remove_dir_all(&dir);
    // Only a real binary-vs-JSON ratio: when the JSON path didn't run
    // there is nothing honest to divide by (the old report divided by the
    // re-index floor here and labeled it a load speedup).
    let load_speedup = json_load_secs.map(|j| j / binary_load_secs.max(1e-9));

    // Replay the same deterministic query sequence through both paths.
    let zipf = ZipfLabels::new(&testbed)?;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
    let sequence: Vec<&str> = (0..queries).map(|_| zipf.sample(&mut rng)).collect();

    let baseline = StringKeyedBaseline::build(corpus);
    let detector = Detector::new(corpus, esharp.config().detector.clone());
    let max_terms = esharp.config().max_expansion_terms;

    // Expected experts per distinct query, computed before any timing.
    // Both timed loops compare every reply against this fixed table, so
    // the comparison work is identical on both sides and neither loop
    // accumulates memory as it runs.
    let expected: HashMap<&str, Vec<esharp_expert::ExpertResult>> = zipf
        .labels
        .iter()
        .map(|q| (q.as_str(), esharp.search(corpus, q).experts))
        .collect();
    let mut results_identical = true;

    // Each path is measured alone, immediately after its own warmup pass
    // over every distinct query: in production exactly one index is
    // resident, so interleaving the two paths would charge both with
    // cache evictions caused by the other.
    let mut interned_expand = Vec::with_capacity(sequence.len());
    let mut interned_match = Vec::with_capacity(sequence.len());
    let mut interned_rank = Vec::with_capacity(sequence.len());
    for q in &zipf.labels {
        results_identical &= esharp.search(corpus, q).experts == expected[q.as_str()];
    }
    for q in &sequence {
        let outcome = esharp.search(corpus, q);
        interned_expand.push(u64::try_from(outcome.expansion_time.as_nanos()).unwrap_or(u64::MAX));
        interned_match.push(u64::try_from(outcome.match_time.as_nanos()).unwrap_or(u64::MAX));
        interned_rank.push(u64::try_from(outcome.rank_time.as_nanos()).unwrap_or(u64::MAX));
        results_identical &= outcome.experts == expected[*q];
    }

    let mut base_expand = Vec::with_capacity(sequence.len());
    let mut base_match = Vec::with_capacity(sequence.len());
    let mut base_rank = Vec::with_capacity(sequence.len());
    for q in &zipf.labels {
        let expansion = esharp.domains().expand(q, max_terms);
        let matched = baseline.match_terms(&expansion);
        results_identical &=
            detector.rank_candidates_reference(&matched) == expected[q.as_str()];
    }
    for q in &sequence {
        let started = Instant::now();
        let expansion = esharp.domains().expand(q, max_terms);
        base_expand.push(nanos(started));
        let started = Instant::now();
        let matched = baseline.match_terms(&expansion);
        base_match.push(nanos(started));
        let started = Instant::now();
        let experts = detector.rank_candidates_reference(&matched);
        base_rank.push(nanos(started));
        results_identical &= experts == expected[*q];
    }

    let path_report = |name, expand: Vec<u64>, matching: Vec<u64>, rank: Vec<u64>| {
        let match_phase = PhaseStats::from_samples(matching);
        let rank_phase = PhaseStats::from_samples(rank);
        let hot_secs = (match_phase.total_secs + rank_phase.total_secs).max(1e-9);
        PathReport {
            name,
            expand: PhaseStats::from_samples(expand),
            match_phase,
            rank_phase,
            hot_secs,
            hot_qps: queries as f64 / hot_secs,
        }
    };
    let interned = path_report("interned", interned_expand, interned_match, interned_rank);
    let string_keyed = path_report("string_keyed", base_expand, base_match, base_rank);
    let hot_path_speedup = string_keyed.hot_secs / interned.hot_secs;

    Ok(OnlineBenchReport {
        host_cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
        seed,
        scale: format!("{scale:?}").to_lowercase(),
        queries,
        distinct_queries: zipf.labels.len(),
        corpus_users: corpus.users().len(),
        corpus_tweets: corpus.tweets().len(),
        corpus_tokens: corpus.num_tokens(),
        build_secs,
        rebuild_secs,
        json_load_secs,
        binary_load_secs,
        binary_bytes,
        load_speedup,
        paths: vec![interned, string_keyed],
        hot_path_speedup,
        results_identical,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_baseline_matches_interned_corpus() {
        let testbed = Testbed::build(EvalScale::Tiny, 17);
        let corpus = &testbed.corpus;
        let baseline = StringKeyedBaseline::build(corpus);
        for q in ["49ers", "diabetes", "nonexistent zz", ""] {
            assert_eq!(baseline.match_query(q), corpus.match_query(q), "query {q:?}");
        }
        let terms = vec!["49ers".to_string(), "diabetes".to_string()];
        assert_eq!(baseline.match_terms(&terms), corpus.match_terms(&terms));
    }

    #[test]
    fn a_small_run_reports_identical_results_and_shaped_json() {
        let report = run(11, 150, EvalScale::Tiny).expect("bench run");
        assert_eq!(report.queries, 150);
        assert!(report.results_identical, "paths diverged");
        assert_eq!(report.paths.len(), 2);
        assert!(report.paths.iter().all(|p| p.hot_qps > 0.0));
        assert!(report.hot_path_speedup > 0.0);
        assert!(report.binary_load_secs > 0.0 && report.binary_bytes > 0);
        assert_eq!(
            report.load_speedup.is_some(),
            report.json_load_secs.is_some(),
            "load_speedup must be reported on the binary-vs-JSON basis or not at all"
        );
        let json = report.to_json();
        for needle in [
            "\"bench\": \"online\"",
            "\"name\": \"interned\"",
            "\"name\": \"string_keyed\"",
            "\"hot_path_speedup\":",
            "\"binary_load_secs\":",
            "\"results_identical\": true",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(!report.render_table().is_empty());
    }

    #[test]
    fn quantiles_are_nearest_rank_exact() {
        assert_eq!(quantile(&[], 0.5), 0);
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(quantile(&sorted, 0.50), 50);
        assert_eq!(quantile(&sorted, 0.99), 99);
    }
}
