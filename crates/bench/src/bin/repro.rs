//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```sh
//! cargo run --release -p esharp-bench --bin repro -- all --scale small
//! cargo run --release -p esharp-bench --bin repro -- fig5 fig6 --scale paper --out results/
//! ```

use esharp_eval::experiments::{
    ablation, figures, freshness, recall_precision, runs, scaling, tables,
};
use esharp_eval::{CrowdConfig, EvalScale, Testbed};

const USAGE: &str = "usage: repro [all|fig5|fig6|fig7|table1|examples|table8|fig8|fig9|fig10|table9|ablation|scaling|freshness]... \
[--scale tiny|small|paper] [--seed N] [--out DIR]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiments: Vec<String> = Vec::new();
    let mut scale = EvalScale::Small;
    let mut seed = 2016u64;
    let mut out_dir: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                scale = match iter.next().map(String::as_str) {
                    Some("tiny") => EvalScale::Tiny,
                    Some("small") => EvalScale::Small,
                    Some("paper") => EvalScale::Paper,
                    other => {
                        eprintln!("unknown scale {other:?}\n{USAGE}");
                        std::process::exit(2);
                    }
                }
            }
            "--seed" => {
                seed = iter
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--seed needs an integer\n{USAGE}");
                        std::process::exit(2);
                    })
            }
            "--out" => {
                out_dir = Some(iter.next().cloned().unwrap_or_else(|| {
                    eprintln!("--out needs a directory\n{USAGE}");
                    std::process::exit(2);
                }))
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            name => experiments.push(name.to_string()),
        }
    }
    if experiments.is_empty() || experiments.iter().any(|e| e == "all") {
        experiments = [
            "fig5", "fig6", "fig7", "table1", "examples", "table8", "fig8", "fig9", "fig10",
            "table9", "ablation", "scaling", "freshness",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    eprintln!("building testbed (scale {scale:?}, seed {seed})…");
    let started = std::time::Instant::now();
    let tb = Testbed::build(scale, seed);
    eprintln!(
        "testbed ready in {:.1?}: {} domains, {} graph nodes, {} tweets",
        started.elapsed(),
        tb.world.num_domains(),
        tb.artifacts.graph.num_nodes(),
        tb.corpus.tweets().len()
    );

    // Table 8 / Figure 8 share one expensive sweep.
    let needs_runs = experiments.iter().any(|e| e == "table8" || e == "fig8");
    let set_runs = needs_runs.then(|| {
        eprintln!("running both algorithms over all query sets…");
        runs::run_all_sets(&tb)
    });

    let save = |name: &str, value: &dyn erased::Save| {
        if let Some(dir) = &out_dir {
            let path = format!("{dir}/{name}.json");
            if let Err(e) = value.save(&path) {
                eprintln!("warning: could not write {path}: {e}");
            }
        }
    };

    for experiment in &experiments {
        match experiment.as_str() {
            "fig5" => {
                let fig = figures::fig5(&tb);
                println!("{}", fig.render());
                save("fig5", &fig);
            }
            "fig6" => {
                let fig = figures::fig6(&tb);
                println!("{}", fig.render());
                save("fig6", &fig);
            }
            "fig7" => match figures::fig7(&tb, "49ers", 3) {
                Some(fig) => {
                    println!("{}", fig.render());
                    save("fig7", &fig);
                }
                None => println!("fig7: '49ers' missing from the graph at this scale"),
            },
            "table1" => {
                let t = tables::table1(&tb);
                println!("{}", t.render());
                save("table1", &t);
            }
            "examples" => {
                let t = tables::example_tables(&tb, 3);
                println!("{}", t.render());
                save("examples", &t);
            }
            "table8" => {
                let t = tables::table8(set_runs.as_ref().expect("runs"));
                println!("{}", t.render());
                save("table8", &t);
            }
            "fig8" => {
                let fig = recall_precision::fig8(set_runs.as_ref().expect("runs"));
                println!("{}", fig.render());
                save("fig8", &fig);
            }
            "fig9" => {
                let fig = recall_precision::fig9(&tb);
                println!("{}", fig.render());
                save("fig9", &fig);
            }
            "fig10" => {
                let fig = recall_precision::fig10(&tb, &CrowdConfig::default());
                println!("{}", fig.render());
                save("fig10", &fig);
            }
            "table9" => {
                let queries: Vec<String> = tables::SHOWCASE_QUERIES
                    .iter()
                    .map(|s| s.to_string())
                    .collect();
                let t = tables::table9(&tb, &queries);
                println!("{}", t.render());
                save("table9", &t);
            }
            "ablation" => {
                let scores = ablation::backend_comparison(&tb);
                println!("{}", ablation::render_backend_comparison(&scores));
                save("ablation_backends", &scores);
                let queries: Vec<String> = tables::SHOWCASE_QUERIES
                    .iter()
                    .map(|s| s.to_string())
                    .collect();
                let filter = ablation::filter_ablation(&tb, &queries);
                println!("{}", ablation::render_filter_ablation(&filter));
                save("ablation_filter", &filter);
                let support = ablation::support_ablation(&tb, &[1, 10, 25, 50, 100, 200]);
                println!("{}", ablation::render_support_ablation(&support));
                save("ablation_support", &support);
                let ext = ablation::extended_features_ablation(&tb, &queries);
                println!("{}", ablation::render_extended_features_ablation(&ext));
                save("ablation_extended_features", &ext);
            }
            "freshness" => {
                let rows = freshness::freshness(seed);
                println!("{}", freshness::render_freshness(&rows));
                save("freshness", &rows);
            }
            "scaling" => {
                let rows = scaling::log_scaling(seed, &[50_000, 200_000, 800_000], 25);
                println!("{}", scaling::render_log_scaling(&rows));
                save("scaling_log", &rows);
                let workers = scaling::worker_scaling(
                    &tb.artifacts.multigraph,
                    &[1, 2, 4, 8],
                );
                println!("{}", scaling::render_worker_scaling(&workers));
                save("scaling_workers", &workers);
            }
            other => eprintln!("unknown experiment {other:?}\n{USAGE}"),
        }
    }
}

/// Minimal object-safe serialization shim so heterogeneous experiment
/// payloads share one save path.
mod erased {
    pub trait Save {
        fn save(&self, path: &str) -> std::io::Result<()>;
    }
    impl<T: serde::Serialize> Save for T {
        fn save(&self, path: &str) -> std::io::Result<()> {
            esharp_eval::report::save_json(path, self)
        }
    }
}
