//! `esharp` — command-line front door to the e# reproduction.
//!
//! ```text
//! esharp build  [--scale tiny|small|paper] [--seed N] [--out DIR]
//!               [--shards K] [--checkpoint-dir DIR] [--resume]
//!     Run the offline pipeline, print stage stats, persist the domain
//!     collection (domains.bin) and similarity graph (graph.bin) — both
//!     checksummed and written atomically. With --shards K the corpus is
//!     additionally persisted sharded (corpus.manifest + K checksummed
//!     postings segments, zero-copy loadable). With --checkpoint-dir
//!     every stage is checkpointed; --resume additionally reuses
//!     checkpoints left by a previous (possibly crashed) run instead of
//!     starting fresh.
//!
//! esharp search <query>… [--scale …] [--seed N] [--baseline] [--top K]
//!     Build the testbed and search each query, printing ranked experts
//!     with and without expansion.
//!
//! esharp inspect <term> [--scale …] [--seed N] [-k N]
//!     Print the term's community and its k closest communities (Fig 7).
//!
//! esharp sql "<select …>" [--scale …] [--seed N]
//!     Run SQL against the pipeline tables (log, graph, communities) on
//!     the bundled engine; prints EXPLAIN and the result.
//!
//! esharp cluster [--explain] [--buffer-pool-mb N] [--workers N]
//!                [--scale …] [--seed N]
//!     Run the paper's SQL-based clustering (Figure 4) through the
//!     cost-based physical planner. With --buffer-pool-mb N the graph
//!     table lives in a paged heap file and every scan streams pages
//!     through an N-MiB buffer pool, with blocking operators spilling
//!     under the same cap (out-of-core execution); pool hit rate and
//!     spill counters are printed at the end. --explain prints the
//!     chosen physical plans with per-operator EXPLAIN ANALYZE stats
//!     (rows, bytes, wall, spills) plus the history-informed re-plan of
//!     iteration 2, so the planner's cost decisions are auditable.
//!
//! esharp bench [--json] [--seed N] [--events N] [--out DIR]
//!     Measure offline kernel throughput (graph build, clustering,
//!     relational exec) at 1/2/4/8 workers; --json additionally writes
//!     BENCH_offline.json.
//!
//! esharp bench --serve [--json] [--seed N] [--requests N] [--out DIR]
//!     Closed-loop load generation against an in-process server: a steady
//!     phase (4 workers) and an overload phase (1 worker, 2-deep queue)
//!     replaying a Zipf query mix; --json writes BENCH_serve.json.
//!
//! esharp bench --online [--json] [--seed N] [--queries N] [--scale …]
//!              [--large-load] [--out DIR]
//!     Replay a Zipf query mix through the interned read path and the
//!     string-keyed baseline (identical results enforced), time corpus
//!     build vs binary load, and sweep shard counts (K=1/2/4/8) and
//!     worker counts over the scatter-gather match path. --large-load
//!     additionally generates a ≥1M-user/≥10M-tweet corpus streamingly
//!     and times sharded save + both load modes on it (slow); --json
//!     writes BENCH_online.json.
//!
//! esharp bench --ingest [--json] [--seed N] [--scale …] [--out DIR]
//!     Stream a withheld quarter of the corpus back through the live
//!     ingest path: expert recall vs ingest lag, base+delta vs base-only
//!     read overhead, and compaction pause p50/p99; --json writes
//!     BENCH_ingest.json.
//!
//! esharp ingest --replay FILE [--corpus FILE] [--oplog FILE] [--compact]
//!               [--scale …] [--seed N]
//!     Replay a file of ingest op lines (`user\t…`, `tweet\t…`,
//!     `delete\tID`; `#` comments) into a live corpus. With --corpus and
//!     --oplog the corpus is opened from (or bootstrapped to) disk and
//!     every batch is WAL-logged; --compact folds the delta into the base
//!     afterwards. Without them, a synthetic testbed absorbs the replay
//!     in memory (a dry run).
//!
//! esharp serve [--addr HOST:PORT] [--workers N] [--cache-capacity N]
//!              [--queue-depth N] [--domains FILE] [--corpus FILE]
//!              [--compact-threshold N] [--compact-interval-ms N]
//!              [--deadline-ms N] [--hedge] [--hedge-delay-ms N]
//!              [--max-body-bytes N] [--scale …] [--seed N]
//!     Serve over HTTP: GET /search?q=…, GET /healthz, GET /metrics,
//!     POST /reload (hot domain reload from --domains), POST /ingest
//!     (streaming op batches), POST /compact (manual compaction). With
//!     --corpus (and a --domains file that exists) the server starts from
//!     persisted artifacts — no testbed build, no re-tokenization, no
//!     index rebuild. --compact-threshold N > 0 starts the background
//!     compactor. --deadline-ms bounds every search (shard work past the
//!     deadline is abandoned and the answer marked partial; clients can
//!     tighten per request with X-Esharp-Deadline-Ms). --hedge re-issues
//!     straggling shards after --hedge-delay-ms. --max-body-bytes caps
//!     POST bodies (413 above it). Runs until killed.
//! ```

use esharp_eval::{EvalScale, Testbed};
use esharp_graph::relation_io::{graph_to_table, log_to_table};
use esharp_relation::{explain, plan_sql, Catalog, DataType, ExecContext, Schema, TableBuilder, Value};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("usage: esharp <build|search|inspect|sql> …  (see --help)");
        std::process::exit(2);
    };
    let opts = Options::parse(&args[1..]);
    match command.as_str() {
        "build" => build(&opts),
        "search" => search(&opts),
        "inspect" => inspect(&opts),
        "sql" => sql(&opts),
        "cluster" => cluster(&opts),
        "bench" => bench(&opts),
        "serve" => serve(&opts),
        "ingest" => ingest(&opts),
        "--help" | "-h" | "help" => {
            println!("subcommands: build, search, inspect, sql, cluster, bench, serve, ingest");
            println!("flags: --scale tiny|small|paper, --seed N, --out DIR, --checkpoint-dir DIR, --resume, --baseline, --top K, -k N, --json, --events N, --serve, --online, --ingest, --queries N, --shards K, --large-load, --requests N, --addr HOST:PORT, --workers N, --cache-capacity N, --queue-depth N, --domains FILE, --corpus FILE, --replay FILE, --oplog FILE, --compact, --compact-threshold N, --compact-interval-ms N, --deadline-ms N, --hedge, --hedge-delay-ms N, --max-body-bytes N, --keep-alive-timeout-ms N, --max-pipeline-depth N, --batch-max-queries N, --explain, --buffer-pool-mb N");
        }
        other => fail(
            "parse arguments",
            format!("unknown subcommand {other:?} (run esharp --help)"),
        ),
    }
}

struct Options {
    scale: EvalScale,
    seed: u64,
    out: Option<String>,
    checkpoint_dir: Option<String>,
    resume: bool,
    baseline: bool,
    json: bool,
    events: u64,
    top: usize,
    k: usize,
    serve_bench: bool,
    online_bench: bool,
    ingest_bench: bool,
    shards: usize,
    large_load: bool,
    queries: u64,
    requests: u64,
    corpus: Option<String>,
    addr: String,
    workers: usize,
    cache_capacity: usize,
    queue_depth: usize,
    domains: Option<String>,
    replay: Option<String>,
    oplog: Option<String>,
    compact: bool,
    compact_threshold: usize,
    compact_interval_ms: u64,
    deadline_ms: u64,
    hedge: bool,
    hedge_delay_ms: u64,
    max_body_bytes: usize,
    keep_alive_timeout_ms: u64,
    max_pipeline_depth: usize,
    batch_max_queries: usize,
    explain: bool,
    buffer_pool_mb: u64,
    positional: Vec<String>,
}

impl Options {
    fn parse(args: &[String]) -> Options {
        let mut opts = Options {
            scale: EvalScale::Small,
            seed: 2016,
            out: None,
            checkpoint_dir: None,
            resume: false,
            baseline: false,
            json: false,
            events: 100_000,
            top: 5,
            k: 3,
            serve_bench: false,
            online_bench: false,
            ingest_bench: false,
            shards: 0,
            large_load: false,
            queries: 2_000,
            requests: 20_000,
            corpus: None,
            addr: "127.0.0.1:8080".to_string(),
            workers: 4,
            cache_capacity: 1024,
            queue_depth: 64,
            domains: None,
            replay: None,
            oplog: None,
            compact: false,
            compact_threshold: 0,
            compact_interval_ms: 250,
            deadline_ms: 1000,
            hedge: false,
            hedge_delay_ms: 20,
            max_body_bytes: 64 * 1024,
            keep_alive_timeout_ms: 5_000,
            max_pipeline_depth: 32,
            batch_max_queries: 256,
            explain: false,
            buffer_pool_mb: 0,
            positional: Vec::new(),
        };
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--scale" => {
                    opts.scale = match iter.next().map(String::as_str) {
                        Some("tiny") => EvalScale::Tiny,
                        Some("small") => EvalScale::Small,
                        Some("paper") => EvalScale::Paper,
                        other => {
                            eprintln!("unknown scale {other:?}");
                            std::process::exit(2);
                        }
                    }
                }
                "--seed" => opts.seed = next_num(&mut iter, "--seed"),
                "--out" => opts.out = iter.next().cloned(),
                "--checkpoint-dir" => opts.checkpoint_dir = iter.next().cloned(),
                "--resume" => opts.resume = true,
                "--baseline" => opts.baseline = true,
                "--json" => opts.json = true,
                "--events" => opts.events = next_num(&mut iter, "--events"),
                "--top" => opts.top = next_num(&mut iter, "--top") as usize,
                "-k" => opts.k = next_num(&mut iter, "-k") as usize,
                "--serve" => opts.serve_bench = true,
                "--online" => opts.online_bench = true,
                "--ingest" => opts.ingest_bench = true,
                "--shards" => opts.shards = next_num(&mut iter, "--shards") as usize,
                "--large-load" => opts.large_load = true,
                "--queries" => opts.queries = next_num(&mut iter, "--queries"),
                "--requests" => opts.requests = next_num(&mut iter, "--requests"),
                "--corpus" => opts.corpus = iter.next().cloned(),
                "--addr" => {
                    opts.addr = iter
                        .next()
                        .cloned()
                        .unwrap_or_else(|| fail("parse arguments", "--addr expects HOST:PORT"))
                }
                "--workers" => opts.workers = next_num(&mut iter, "--workers") as usize,
                "--cache-capacity" => {
                    opts.cache_capacity = next_num(&mut iter, "--cache-capacity") as usize
                }
                "--queue-depth" => opts.queue_depth = next_num(&mut iter, "--queue-depth") as usize,
                "--domains" => opts.domains = iter.next().cloned(),
                "--replay" => opts.replay = iter.next().cloned(),
                "--oplog" => opts.oplog = iter.next().cloned(),
                "--compact" => opts.compact = true,
                "--compact-threshold" => {
                    opts.compact_threshold = next_num(&mut iter, "--compact-threshold") as usize
                }
                "--compact-interval-ms" => {
                    opts.compact_interval_ms = next_num(&mut iter, "--compact-interval-ms")
                }
                "--deadline-ms" => opts.deadline_ms = next_num(&mut iter, "--deadline-ms"),
                "--hedge" => opts.hedge = true,
                "--hedge-delay-ms" => {
                    opts.hedge_delay_ms = next_num(&mut iter, "--hedge-delay-ms")
                }
                "--max-body-bytes" => {
                    opts.max_body_bytes = next_num(&mut iter, "--max-body-bytes") as usize
                }
                "--keep-alive-timeout-ms" => {
                    opts.keep_alive_timeout_ms = next_num(&mut iter, "--keep-alive-timeout-ms")
                }
                "--max-pipeline-depth" => {
                    opts.max_pipeline_depth =
                        next_num(&mut iter, "--max-pipeline-depth") as usize
                }
                "--batch-max-queries" => {
                    opts.batch_max_queries =
                        next_num(&mut iter, "--batch-max-queries") as usize
                }
                "--explain" => opts.explain = true,
                "--buffer-pool-mb" => {
                    opts.buffer_pool_mb = next_num(&mut iter, "--buffer-pool-mb")
                }
                // Unknown flags are hard errors (a typo silently becoming
                // a positional argument is how `--bsaeline` runs the wrong
                // experiment); only non-dash tokens are positionals.
                other if other.starts_with('-') => fail(
                    "parse arguments",
                    format!("unknown flag {other:?} (run esharp --help)"),
                ),
                other => opts.positional.push(other.to_string()),
            }
        }
        opts
    }
}

fn next_num(iter: &mut std::slice::Iter<'_, String>, flag: &str) -> u64 {
    iter.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} expects a number");
        std::process::exit(2);
    })
}

/// Exit with a clean message instead of a panic backtrace: the CLI's
/// contract is "errors to stderr, nonzero exit", never `unwrap`/`expect`.
fn fail(context: &str, error: impl std::fmt::Display) -> ! {
    eprintln!("esharp: {context}: {error}");
    std::process::exit(1);
}

fn testbed(opts: &Options) -> Testbed {
    eprintln!("building testbed (scale {:?}, seed {})…", opts.scale, opts.seed);
    let started = std::time::Instant::now();
    let tb = match &opts.checkpoint_dir {
        Some(dir) => {
            let ckpt = esharp_core::CheckpointDir::new(dir)
                .unwrap_or_else(|e| fail("open checkpoint dir", e));
            if opts.resume {
                eprintln!("resuming from checkpoints in {dir}…");
            } else {
                // A fresh run must not silently reuse last week's stages.
                ckpt.clear().unwrap_or_else(|e| fail("clear checkpoint dir", e));
            }
            Testbed::build_resumable(opts.scale, opts.seed, &ckpt)
                .unwrap_or_else(|e| fail("offline pipeline", e))
        }
        None => {
            if opts.resume {
                eprintln!("esharp: --resume requires --checkpoint-dir");
                std::process::exit(2);
            }
            Testbed::build(opts.scale, opts.seed)
        }
    };
    eprintln!(
        "ready in {:.1?}: {} domains · {} graph nodes · {} tweets",
        started.elapsed(),
        tb.world.num_domains(),
        tb.artifacts.graph.num_nodes(),
        tb.corpus.tweets().len()
    );
    tb
}

fn build(opts: &Options) {
    let tb = testbed(opts);
    println!("pipeline stages:");
    for stage in &tb.artifacts.stages {
        println!("  {stage}");
    }
    println!(
        "clustering: {} communities after {} iterations",
        tb.artifacts.outcome.num_communities(),
        tb.artifacts.outcome.iterations()
    );
    if let Some(dir) = &opts.out {
        let domains_path = format!("{dir}/domains.bin");
        let graph_path = format!("{dir}/graph.bin");
        let corpus_path = format!("{dir}/corpus.bin");
        tb.esharp
            .domains()
            .save(&domains_path)
            .unwrap_or_else(|e| fail("write domains", e));
        esharp_graph::io::save_graph(&tb.artifacts.graph, &graph_path)
            .unwrap_or_else(|e| fail("write graph", e));
        tb.corpus
            .save_binary(&corpus_path)
            .unwrap_or_else(|e| fail("write corpus", e));
        println!("persisted {domains_path}, {graph_path} and {corpus_path}");
        if opts.shards > 0 {
            let manifest_path = format!("{dir}/corpus.manifest");
            tb.corpus
                .save_sharded(&manifest_path, opts.shards)
                .unwrap_or_else(|e| fail("write sharded corpus", e));
            println!(
                "persisted {manifest_path} + {} shard segment(s) (K={})",
                opts.shards, opts.shards
            );
        }
    } else if opts.shards > 0 {
        fail("parse arguments", "--shards requires --out DIR");
    }
}

fn search(opts: &Options) {
    if opts.positional.is_empty() {
        eprintln!("usage: esharp search <query>…");
        std::process::exit(2);
    }
    let tb = testbed(opts);
    for query in &opts.positional {
        let outcome = if opts.baseline {
            tb.esharp.search_baseline(&tb.corpus, query)
        } else {
            tb.esharp.search(&tb.corpus, query)
        };
        println!(
            "\n{query:?} → {} tweets matched, expansion {:?}",
            outcome.matched_tweets, outcome.expansion
        );
        for (rank, expert) in outcome.experts.iter().take(opts.top).enumerate() {
            let user = tb.corpus.user(expert.user);
            println!(
                "  {:>2}. @{:<26} {:+.2}  {} followers{}  — {}",
                rank + 1,
                user.handle,
                expert.score,
                user.followers,
                if user.verified { " ✓" } else { "" },
                user.description
            );
        }
        if outcome.experts.is_empty() {
            println!("  (no experts found)");
        }
    }
}

fn inspect(opts: &Options) {
    let Some(term) = opts.positional.first() else {
        eprintln!("usage: esharp inspect <term>");
        std::process::exit(2);
    };
    let tb = testbed(opts);
    match esharp_eval::experiments::figures::fig7(&tb, term, opts.k) {
        Some(fig) => println!("{}", fig.render()),
        None => println!("{term:?} is not a node of the similarity graph at this scale"),
    }
}

fn bench(opts: &Options) {
    if opts.online_bench {
        eprintln!(
            "measuring the online read path ({} queries, scale {:?}, seed {})…",
            opts.queries, opts.scale, opts.seed
        );
        let report =
            esharp_bench::online::run_with(opts.seed, opts.queries, opts.scale, opts.large_load)
                .unwrap_or_else(|e| fail("online bench", e));
        print!("{}", report.render_table());
        if opts.json {
            let dir = opts.out.as_deref().unwrap_or(".");
            let path = format!("{dir}/BENCH_online.json");
            std::fs::write(&path, report.to_json())
                .unwrap_or_else(|e| fail("write BENCH_online.json", e));
            println!("wrote {path}");
        }
        if !report.results_identical {
            fail(
                "online bench",
                "interned and string-keyed paths returned different experts",
            );
        }
        return;
    }
    if opts.ingest_bench {
        eprintln!(
            "measuring streaming ingestion (scale {:?}, seed {})…",
            opts.scale, opts.seed
        );
        let report = esharp_bench::ingest::run(opts.seed, opts.scale)
            .unwrap_or_else(|e| fail("ingest bench", e));
        print!("{}", report.render_table());
        if opts.json {
            let dir = opts.out.as_deref().unwrap_or(".");
            let path = format!("{dir}/BENCH_ingest.json");
            std::fs::write(&path, report.to_json())
                .unwrap_or_else(|e| fail("write BENCH_ingest.json", e));
            println!("wrote {path}");
        }
        return;
    }
    if opts.serve_bench {
        eprintln!(
            "load-testing the serving layer ({} steady requests, seed {})…",
            opts.requests, opts.seed
        );
        let report = esharp_bench::serve::run(opts.seed, opts.requests)
            .unwrap_or_else(|e| fail("serve bench", e));
        print!("{}", report.render_table());
        if opts.json {
            let dir = opts.out.as_deref().unwrap_or(".");
            let path = format!("{dir}/BENCH_serve.json");
            std::fs::write(&path, report.to_json())
                .unwrap_or_else(|e| fail("write BENCH_serve.json", e));
            println!("wrote {path}");
        }
        return;
    }
    eprintln!(
        "measuring offline throughput ({} events, seed {})…",
        opts.events, opts.seed
    );
    let workload = esharp_bench::offline::OfflineWorkload::generate(opts.events, opts.seed);
    let report = workload.measure(&[1, 2, 4, 8]);
    print!("{}", report.render_table());
    if opts.json {
        let dir = opts.out.as_deref().unwrap_or(".");
        let path = format!("{dir}/BENCH_offline.json");
        std::fs::write(&path, report.to_json())
            .unwrap_or_else(|e| fail("write BENCH_offline.json", e));
        println!("wrote {path}");
    }
}

fn serve(opts: &Options) {
    use esharp_serve::{ServeConfig, Server};
    // With --corpus the server starts from persisted artifacts: the
    // corpus loads in O(bytes) — no re-tokenization, no index rebuild —
    // and expansion domains come from --domains (degraded Pal & Counts
    // when absent). Without it, build the synthetic testbed as before.
    let (corpus, esharp) = match &opts.corpus {
        Some(path) => {
            eprintln!("loading corpus from {path}…");
            let started = std::time::Instant::now();
            let corpus =
                esharp_microblog::Corpus::load(path).unwrap_or_else(|e| fail("load corpus", e));
            eprintln!(
                "corpus ready in {:.1?}: {} users · {} tweets · {} tokens",
                started.elapsed(),
                corpus.users().len(),
                corpus.tweets().len(),
                corpus.num_tokens()
            );
            let config = esharp_core::EsharpConfig::default();
            let esharp = match &opts.domains {
                Some(dpath) => esharp_core::Esharp::from_domains_file_or_degraded(dpath, config),
                None => esharp_core::Esharp::new(esharp_core::DomainCollection::default(), config),
            };
            (corpus, esharp)
        }
        None => {
            let tb = testbed(opts);
            (tb.corpus, tb.esharp)
        }
    };
    let config = ServeConfig {
        workers: opts.workers,
        cache_capacity: opts.cache_capacity,
        queue_depth: opts.queue_depth,
        domains_path: opts.domains.clone().map(std::path::PathBuf::from),
        compact_threshold: opts.compact_threshold,
        compact_interval: std::time::Duration::from_millis(opts.compact_interval_ms),
        deadline: std::time::Duration::from_millis(opts.deadline_ms.max(1)),
        hedge: opts.hedge,
        hedge_delay: std::time::Duration::from_millis(opts.hedge_delay_ms),
        max_body_bytes: opts.max_body_bytes,
        keep_alive_timeout: std::time::Duration::from_millis(opts.keep_alive_timeout_ms.max(1)),
        max_pipeline_depth: opts.max_pipeline_depth.max(1),
        batch_max_queries: opts.batch_max_queries.max(1),
        ..ServeConfig::default()
    };
    if let Some(path) = &config.domains_path {
        // Fail fast on an unusable reload source rather than at the first
        // POST /reload in production.
        if !path.exists() {
            eprintln!("esharp: warning: --domains {} does not exist yet; POST /reload will fail until it does", path.display());
        }
    } else {
        eprintln!("esharp: note: no --domains file; POST /reload will answer 400");
    }
    let server = Server::start(
        &opts.addr,
        config,
        std::sync::Arc::new(corpus),
        std::sync::Arc::new(esharp_core::SharedEsharp::new(esharp)),
    )
    .unwrap_or_else(|e| fail("bind server", e));
    println!(
        "serving on http://{} ({} workers, cache {}, queue {}) — Ctrl-C to stop",
        server.local_addr(),
        opts.workers,
        opts.cache_capacity,
        opts.queue_depth
    );
    println!("endpoints: GET /search?q=…  POST /search/batch  GET /healthz  GET /metrics  POST /reload  POST /ingest  POST /compact");
    if opts.compact_threshold > 0 {
        println!(
            "background compaction: every {} pending ops (polled each {}ms)",
            opts.compact_threshold, opts.compact_interval_ms
        );
    }
    loop {
        std::thread::park();
    }
}

/// `esharp ingest --replay FILE`: feed a file of op lines into a live
/// corpus — persisted when `--corpus`/`--oplog` are given, an in-memory
/// dry run against the synthetic testbed otherwise.
fn ingest(opts: &Options) {
    use esharp_ingest::{IngestOp, LiveCorpus};
    let Some(replay_path) = &opts.replay else {
        eprintln!("usage: esharp ingest --replay FILE [--corpus FILE --oplog FILE] [--compact]");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(replay_path)
        .unwrap_or_else(|e| fail("read replay file", e));
    let ops = IngestOp::parse_batch(&text).unwrap_or_else(|e| fail("parse replay file", e));
    if ops.is_empty() {
        fail("parse replay file", "no ops in the replay file");
    }

    let live = match (&opts.corpus, &opts.oplog) {
        (Some(corpus_path), Some(oplog_path)) => {
            if std::path::Path::new(corpus_path).exists() {
                eprintln!("opening live corpus from {corpus_path} (+ {oplog_path})…");
                LiveCorpus::open(corpus_path, oplog_path)
                    .unwrap_or_else(|e| fail("open live corpus", e))
            } else {
                eprintln!("bootstrapping {corpus_path} from the synthetic testbed…");
                let tb = testbed(opts);
                LiveCorpus::create(tb.corpus, corpus_path, oplog_path)
                    .unwrap_or_else(|e| fail("bootstrap live corpus", e))
            }
        }
        (None, None) => {
            eprintln!("no --corpus/--oplog: in-memory dry run against the testbed");
            let tb = testbed(opts);
            LiveCorpus::new(tb.corpus)
        }
        _ => fail(
            "parse arguments",
            "--corpus and --oplog must be given together",
        ),
    };

    let started = std::time::Instant::now();
    let applied = live
        .apply_batch(&ops)
        .unwrap_or_else(|e| fail("apply replay batch", e));
    println!(
        "applied {} ops in {:.1?} → corpus epoch {}, {} live tweets, {} pending ops",
        applied.len(),
        started.elapsed(),
        live.epoch(),
        live.read().corpus().live_tweet_count(),
        live.pending_ops(),
    );
    if opts.compact {
        let started = std::time::Instant::now();
        match live.compact().unwrap_or_else(|e| fail("compact", e)) {
            Some(report) => println!(
                "compacted in {:.1?}: {} → {} tweets ({} tombstones reclaimed), {} bytes written, publish pause {}µs",
                started.elapsed(),
                report.before_tweets,
                report.after_tweets,
                report.before_tombstones,
                report.bytes_written,
                report.pause.as_micros(),
            ),
            None => println!("nothing to compact"),
        }
    }
}

/// `esharp cluster`: the Figure 4 SQL clustering loop on the physical
/// planner, optionally out of core and with EXPLAIN ANALYZE output.
fn cluster(opts: &Options) {
    use esharp_community::{cluster_sql_report, SqlClusterConfig};
    let tb = testbed(opts);
    let multigraph = &tb.artifacts.multigraph;
    let pool_bytes = if opts.buffer_pool_mb > 0 {
        Some((opts.buffer_pool_mb as usize) << 20)
    } else {
        None
    };
    let config = SqlClusterConfig {
        workers: opts.workers,
        // The pool cap doubles as the operator memory grant: anything
        // that would not fit the pool spills instead of growing.
        buffer_pool_bytes: pool_bytes,
        memory_grant: pool_bytes,
        explain: opts.explain,
        ..Default::default()
    };
    let started = std::time::Instant::now();
    let (outcome, report) =
        cluster_sql_report(multigraph, &config).unwrap_or_else(|e| fail("sql clustering", e));
    println!(
        "sql clustering: {} communities after {} iterations in {:.1?} ({} workers{})",
        outcome.num_communities(),
        outcome.iterations(),
        started.elapsed(),
        opts.workers,
        match pool_bytes {
            Some(bytes) => format!(", {} MiB pool", bytes >> 20),
            None => ", in memory".to_string(),
        }
    );
    for stat in &outcome.trace {
        println!(
            "  iter {:>2}: {:>6} communities, modularity {:.4}, {} merges",
            stat.iteration, stat.communities, stat.total_modularity, stat.merges
        );
    }
    if let Some(pool) = report.pool {
        println!(
            "buffer pool: {} hits / {} misses (hit rate {:.1}%), {} evictions, {} writebacks",
            pool.hits,
            pool.misses,
            pool.hit_rate() * 100.0,
            pool.evictions,
            pool.writebacks
        );
    }
    if let Some(text) = report.explain {
        print!("{text}");
    }
}

fn sql(opts: &Options) {
    let Some(query) = opts.positional.first() else {
        eprintln!("usage: esharp sql \"select …\"");
        std::process::exit(2);
    };
    let tb = testbed(opts);
    let catalog = Catalog::new();
    catalog.register(
        "log",
        log_to_table(&tb.log, &tb.world).unwrap_or_else(|e| fail("build log table", e)),
    );
    catalog.register(
        "graph",
        graph_to_table(&tb.artifacts.graph).unwrap_or_else(|e| fail("build graph table", e)),
    );
    // communities(comm_name, query) over term texts.
    let schema = Schema::of(&[("comm_name", DataType::Int), ("query", DataType::Str)]);
    let mut builder = TableBuilder::new(schema);
    for node in 0..tb.artifacts.graph.num_nodes() as u32 {
        builder
            .push_row(vec![
                Value::Int(tb.artifacts.outcome.assignment.community_of(node) as i64),
                Value::str(tb.artifacts.graph.label(node)),
            ])
            .unwrap_or_else(|e| fail("build communities table", e));
    }
    catalog.register("communities", builder.finish());

    let ctx = ExecContext::new(catalog);
    match plan_sql(query, &ctx) {
        Ok(plan) => {
            println!("-- EXPLAIN\n{}", explain(&plan));
            match ctx.execute(&plan) {
                Ok(table) => println!("-- {} rows\n{table}", table.num_rows()),
                Err(e) => {
                    eprintln!("execution error: {e}");
                    std::process::exit(1);
                }
            }
        }
        Err(e) => {
            eprintln!("plan error: {e}");
            std::process::exit(1);
        }
    }
}
