//! Closed-loop load generator for the serving layer (`esharp bench
//! --serve`).
//!
//! Boots an in-process [`esharp_serve::Server`] on an ephemeral port and
//! replays a Zipf-distributed query mix from closed-loop client threads
//! (each client issues its next request only after reading the previous
//! response — throughput is an *achieved* number, not an offered one).
//! Phases:
//!
//! * **steady** — 4 workers, default queue, one connection per request
//!   (`Connection: close`): the pre-event-loop baseline.
//! * **steady_keepalive** — same load, but every client holds one
//!   persistent connection: measures what connection reuse buys.
//! * **steady_pipelined** — persistent connections, requests written in
//!   back-to-back bursts before reading any response: measures the
//!   incremental parser + write-coalescing path under pipelining.
//! * **overload** — 1 worker, a 2-deep queue, 4× the clients: drives the
//!   admission queue into saturation and measures the shed rate plus the
//!   latency of the requests that *were* admitted (shedding must protect
//!   them, not just the server).
//! * **batch_sequential / batch_16** — cache off (every query pays for a
//!   real detection), same query stream: singles over keep-alive vs
//!   `POST /search/batch` at 16 queries per request. The batch planner
//!   shares posting-list traversals across a batch's distinct terms, so
//!   batch throughput (measured in queries/s, same unit as sequential)
//!   must win uncached.
//! * **chaos** — a resharded corpus with one shard's primary attempt
//!   delayed by injected chaos, cache off, every request aimed at that
//!   shard (via `term_home_shard`): measures the 1-slow-shard p99
//!   regression against a sharded baseline, then re-runs with hedging
//!   on. The acceptance gate is that hedging recovers at least half of
//!   the regression.
//!
//! Every phase records its client discipline (`keep_alive`,
//! `pipeline_depth`, `batch_size`) in the JSON so a report can never
//! pass off pipelined numbers as one-shot numbers.
//!
//! `to_json` renders `BENCH_serve.json` by hand, like the offline report.

use esharp_core::{Esharp, SharedEsharp};
use esharp_eval::{EvalScale, Testbed};
use esharp_fault::{ChaosFault, ChaosPlan, NoFaults};
use esharp_ingest::LiveCorpus;
use esharp_serve::http::percent_encode;
use esharp_serve::{ServeConfig, ServeHooks, Server};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a phase's closed-loop clients speak HTTP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// One connection per request, `Connection: close`.
    OneShot,
    /// One persistent connection per client, strictly serial requests.
    KeepAlive,
    /// One persistent connection per client; requests written in bursts
    /// of up to `depth` before reading any response.
    Pipelined(usize),
}

impl LoadMode {
    fn keep_alive(self) -> bool {
        !matches!(self, LoadMode::OneShot)
    }

    fn pipeline_depth(self) -> usize {
        match self {
            LoadMode::Pipelined(depth) => depth.max(1),
            _ => 1,
        }
    }
}

/// Measured results of one load phase.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// Phase name (`steady` / `overload` / …).
    pub name: &'static str,
    /// Server worker threads.
    pub workers: usize,
    /// Admission queue depth.
    pub queue_depth: usize,
    /// Closed-loop client threads.
    pub clients: usize,
    /// Whether clients reused connections (false = one per request).
    pub keep_alive: bool,
    /// Requests written back-to-back before reading (1 = serial).
    pub pipeline_depth: usize,
    /// Queries per request (1 = `GET /search`, >1 = `POST /search/batch`).
    pub batch_size: usize,
    /// Queries completed with `200` (for batch phases each accepted
    /// request counts `batch_size` queries, so `throughput_rps` is
    /// queries/s in every phase and the phases are comparable).
    pub ok: u64,
    /// Requests answered `503` (shed).
    pub shed: u64,
    /// Transport or unexpected-status failures.
    pub errors: u64,
    /// Wall time of the phase in seconds.
    pub elapsed_secs: f64,
    /// Completed (`200`) requests per second.
    pub throughput_rps: f64,
    /// Median latency of `200` responses, microseconds.
    pub p50_us: u64,
    /// 99th-percentile latency of `200` responses, microseconds.
    pub p99_us: u64,
    /// Worst `200` latency, microseconds.
    pub max_us: u64,
}

/// The tail-tolerance section of the report: what one slow shard costs
/// at p99 and how much of that regression hedging buys back.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Shards the chaos corpus was split into.
    pub shards: usize,
    /// The shard whose primary attempt is delayed (the home shard of
    /// the benchmarked query, so every request touches it).
    pub slow_shard: usize,
    /// Injected per-request delay on the slow shard's primary, µs.
    pub injected_delay_us: u64,
    /// p99 of the sharded, cache-off baseline (no chaos), µs.
    pub baseline_p99_us: u64,
    /// p99 with the slow shard and hedging off, µs.
    pub slow_p99_us: u64,
    /// p99 with the slow shard and hedging on, µs.
    pub hedged_p99_us: u64,
    /// Fraction of the p99 regression hedging recovered:
    /// `(slow - hedged) / (slow - baseline)`. Acceptance: ≥ 0.5.
    pub hedge_recovery: f64,
    /// Hedged duplicate attempts launched during the hedged phase.
    pub hedges: u64,
    /// Hedged attempts that answered first for their shard.
    pub hedge_wins: u64,
    /// Partial (degraded) responses across the chaos phases.
    pub partial_responses: u64,
    /// Circuit-breaker trips across the chaos phases.
    pub breaker_trips: u64,
    /// Circuit-breaker recoveries across the chaos phases.
    pub breaker_recoveries: u64,
}

/// The full `esharp bench --serve` report.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    /// Logical CPUs of the measuring host.
    pub host_cpus: usize,
    /// Testbed seed (corpus, domains, and query mix all derive from it).
    pub seed: u64,
    /// Distinct queries in the Zipf mix.
    pub distinct_queries: usize,
    /// Cache hit rate scraped from `/metrics` after the steady phase.
    pub steady_hit_rate: f64,
    /// One entry per phase, steady first.
    pub phases: Vec<PhaseReport>,
    /// The 1-slow-shard tail-tolerance measurement.
    pub chaos: ChaosReport,
}

impl ServeBenchReport {
    /// Render the report as a stable, human-diffable JSON document
    /// (hand-rolled, same contract as `BENCH_offline.json`).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str("  \"bench\": \"serve\",\n");
        out.push_str(&format!("  \"host_cpus\": {},\n", self.host_cpus));
        // Concurrency comparisons (keep-alive vs one-shot, hedging) are
        // still meaningful on one CPU, but absolute throughput is not.
        out.push_str(&format!(
            "  \"degenerate_host\": {},\n",
            self.host_cpus < 2
        ));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!(
            "  \"distinct_queries\": {},\n",
            self.distinct_queries
        ));
        out.push_str(&format!(
            "  \"steady_hit_rate\": {:.4},\n",
            self.steady_hit_rate
        ));
        out.push_str("  \"phases\": [\n");
        for (i, p) in self.phases.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"workers\": {}, \"queue_depth\": {}, \"clients\": {}, \
                 \"keep_alive\": {}, \"pipeline_depth\": {}, \"batch_size\": {}, \
                 \"ok\": {}, \"shed\": {}, \"errors\": {}, \"elapsed_secs\": {:.3}, \
                 \"throughput_rps\": {:.1}, \"p50_us\": {}, \"p99_us\": {}, \"max_us\": {}}}{}\n",
                p.name,
                p.workers,
                p.queue_depth,
                p.clients,
                p.keep_alive,
                p.pipeline_depth,
                p.batch_size,
                p.ok,
                p.shed,
                p.errors,
                p.elapsed_secs,
                p.throughput_rps,
                p.p50_us,
                p.p99_us,
                p.max_us,
                if i + 1 < self.phases.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        let c = &self.chaos;
        out.push_str(&format!(
            "  \"chaos\": {{\"shards\": {}, \"slow_shard\": {}, \"injected_delay_us\": {}, \
             \"baseline_p99_us\": {}, \"slow_p99_us\": {}, \"hedged_p99_us\": {}, \
             \"hedge_recovery\": {:.3}, \"hedges\": {}, \"hedge_wins\": {}, \
             \"partial_responses\": {}, \"breaker_trips\": {}, \"breaker_recoveries\": {}}}\n",
            c.shards,
            c.slow_shard,
            c.injected_delay_us,
            c.baseline_p99_us,
            c.slow_p99_us,
            c.hedged_p99_us,
            c.hedge_recovery,
            c.hedges,
            c.hedge_wins,
            c.partial_responses,
            c.breaker_trips,
            c.breaker_recoveries,
        ));
        out.push_str("}\n");
        out
    }

    /// One row per phase, formatted for terminal output.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "serve bench — {} distinct queries (Zipf), seed {}, host_cpus={}, steady hit rate {:.1}%\n",
            self.distinct_queries,
            self.seed,
            self.host_cpus,
            self.steady_hit_rate * 100.0
        ));
        out.push_str(
            "phase                   mode     wrk  queue  clients  ok      shed    req/s      p50        p99\n",
        );
        for p in &self.phases {
            let mode = if p.batch_size > 1 {
                format!("batch{}", p.batch_size)
            } else if p.pipeline_depth > 1 {
                format!("pipe{}", p.pipeline_depth)
            } else if p.keep_alive {
                "ka".to_string()
            } else {
                "1shot".to_string()
            };
            out.push_str(&format!(
                "{:<23} {:<8} {:>3}  {:>5}  {:>7}  {:>6}  {:>6}  {:>8.0}  {:>7}µs  {:>7}µs\n",
                p.name, mode, p.workers, p.queue_depth, p.clients, p.ok, p.shed,
                p.throughput_rps, p.p50_us, p.p99_us
            ));
        }
        let c = &self.chaos;
        out.push_str(&format!(
            "chaos: shard {}/{} delayed {}µs → p99 {}µs vs {}µs baseline; hedged p99 {}µs \
             ({:.0}% of the regression recovered, {} hedges / {} wins)\n",
            c.slow_shard,
            c.shards,
            c.injected_delay_us,
            c.slow_p99_us,
            c.baseline_p99_us,
            c.hedged_p99_us,
            c.hedge_recovery * 100.0,
            c.hedges,
            c.hedge_wins,
        ));
        out
    }
}

/// A Zipf(s≈1.1) sampler over the testbed's canonical domain terms,
/// implemented with integer cumulative weights so it only needs the
/// integer `gen_range` the rest of the bench crate already uses.
struct ZipfQueries {
    /// Percent-encoded queries, most popular first.
    encoded: Vec<String>,
    /// The same queries unencoded (batch bodies are raw, newline-joined).
    raw: Vec<String>,
    cumulative: Vec<u64>,
    total: u64,
}

impl ZipfQueries {
    fn new(testbed: &Testbed) -> ZipfQueries {
        let raw: Vec<String> = testbed
            .world
            .domains
            .iter()
            .take(32)
            .map(|d| testbed.world.terms[d.terms[0] as usize].text.clone())
            .collect();
        let encoded: Vec<String> = raw.iter().map(|q| percent_encode(q)).collect();
        let mut cumulative = Vec::with_capacity(encoded.len());
        let mut total = 0u64;
        for rank in 0..encoded.len() {
            // 1e6 / rank^1.1, precomputed in fixed point.
            let weight = (1e6 / ((rank + 1) as f64).powf(1.1)) as u64;
            total += weight.max(1);
            cumulative.push(total);
        }
        ZipfQueries {
            encoded,
            raw,
            cumulative,
            total,
        }
    }

    fn sample_index(&self, rng: &mut StdRng) -> usize {
        let ticket = rng.gen_range(0..self.total);
        self.cumulative
            .partition_point(|&c| c <= ticket)
            .min(self.encoded.len() - 1)
    }

    fn sample(&self, rng: &mut StdRng) -> &str {
        &self.encoded[self.sample_index(rng)]
    }
}

struct PhaseOutcome {
    ok: u64,
    shed: u64,
    errors: u64,
    elapsed: Duration,
    /// Sorted latencies of `200` responses, microseconds.
    latencies_us: Vec<u64>,
}

/// Read exactly one HTTP/1.1 response (head + `content-length` body)
/// from `stream`, starting from whatever over-read bytes sit in `carry`.
/// Consumed bytes are drained from `carry`; bytes belonging to the next
/// pipelined response are left there. Returns the status code.
fn read_response(stream: &mut TcpStream, carry: &mut Vec<u8>) -> std::io::Result<u16> {
    fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
        haystack.windows(needle.len()).position(|w| w == needle)
    }
    let mut buf = [0u8; 4096];
    let head_end = loop {
        if let Some(at) = find(carry, b"\r\n\r\n") {
            break at + 4;
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        carry.extend_from_slice(&buf[..n]);
    };
    let head = String::from_utf8_lossy(&carry[..head_end]).to_string();
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no status"))?;
    let content_length: usize = head
        .to_ascii_lowercase()
        .split_once("content-length:")
        .and_then(|(_, rest)| rest.split_whitespace().next()?.parse().ok())
        .unwrap_or(0);
    let total = head_end + content_length;
    while carry.len() < total {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        carry.extend_from_slice(&buf[..n]);
    }
    carry.drain(..total);
    Ok(status)
}

/// A client's persistent connection plus its pipelining carry buffer.
struct ClientConn {
    stream: TcpStream,
    carry: Vec<u8>,
}

fn connect(addr: SocketAddr) -> std::io::Result<ClientConn> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_nodelay(true)?;
    Ok(ClientConn {
        stream,
        carry: Vec::with_capacity(4096),
    })
}

fn tally(outcome: &mut (u64, u64, u64, Vec<u64>), status: u16, started: Instant) {
    match status {
        200 => {
            outcome.0 += 1;
            let us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
            outcome.3.push(us);
        }
        503 => outcome.1 += 1,
        _ => outcome.2 += 1,
    }
}

/// Run one closed-loop phase: `clients` threads draw `requests` total
/// from a shared budget, each completing its request(s) before drawing
/// more. `mode` picks the connection discipline; pipelined latencies are
/// measured from the burst's first byte to that response's last byte
/// (what a pipelining client actually waits).
fn run_phase(
    addr: SocketAddr,
    queries: &Arc<ZipfQueries>,
    seed: u64,
    clients: usize,
    requests: u64,
    mode: LoadMode,
) -> PhaseOutcome {
    let budget = Arc::new(AtomicU64::new(requests));
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let budget = Arc::clone(&budget);
            let queries = Arc::clone(queries);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ (c as u64).wrapping_mul(0x9e37));
                let mut out = (0u64, 0u64, 0u64, Vec::new());
                let mut conn: Option<ClientConn> = None;
                let depth = mode.pipeline_depth() as u64;
                loop {
                    // Draw up to `depth` tickets (1 unless pipelining).
                    let mut burst = 0u64;
                    while burst < depth
                        && budget
                            .fetch_update(SeqCst, SeqCst, |b| b.checked_sub(1))
                            .is_ok()
                    {
                        burst += 1;
                    }
                    if burst == 0 {
                        break;
                    }
                    let mut payload = String::new();
                    for _ in 0..burst {
                        let query = queries.sample(&mut rng);
                        payload.push_str(&format!(
                            "GET /search?q={query} HTTP/1.1\r\nHost: bench\r\n{}\r\n",
                            if mode.keep_alive() {
                                ""
                            } else {
                                "Connection: close\r\n"
                            }
                        ));
                    }
                    let burst_started = Instant::now();
                    let result = (|| -> std::io::Result<()> {
                        if conn.is_none() {
                            conn = Some(connect(addr)?);
                        }
                        let Some(client) = conn.as_mut() else {
                            unreachable!("just connected");
                        };
                        client.stream.write_all(payload.as_bytes())?;
                        for _ in 0..burst {
                            let status = read_response(&mut client.stream, &mut client.carry)?;
                            tally(&mut out, status, burst_started);
                        }
                        Ok(())
                    })();
                    if result.is_err() {
                        out.2 += 1;
                        conn = None;
                    } else if !mode.keep_alive() {
                        conn = None;
                    }
                }
                out
            })
        })
        .collect();
    collect_outcome(handles, started)
}

/// Run one closed-loop batch phase: clients draw `batch_size` queries at
/// a time and submit them as one `POST /search/batch` over a persistent
/// connection. `ok`/`shed` count *queries* (each accepted request counts
/// `batch_size`), so throughput is queries/s — directly comparable to a
/// singles phase over the same query stream.
fn run_batch_phase(
    addr: SocketAddr,
    queries: &Arc<ZipfQueries>,
    seed: u64,
    clients: usize,
    total_queries: u64,
    batch_size: usize,
) -> PhaseOutcome {
    let budget = Arc::new(AtomicU64::new(total_queries));
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let budget = Arc::clone(&budget);
            let queries = Arc::clone(queries);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ (c as u64).wrapping_mul(0x9e37));
                let mut out = (0u64, 0u64, 0u64, Vec::new());
                let mut conn: Option<ClientConn> = None;
                loop {
                    let mut drawn = 0u64;
                    while drawn < batch_size as u64
                        && budget
                            .fetch_update(SeqCst, SeqCst, |b| b.checked_sub(1))
                            .is_ok()
                    {
                        drawn += 1;
                    }
                    if drawn == 0 {
                        break;
                    }
                    let body = (0..drawn)
                        .map(|_| queries.raw[queries.sample_index(&mut rng)].as_str())
                        .collect::<Vec<_>>()
                        .join("\n");
                    let payload = format!(
                        "POST /search/batch HTTP/1.1\r\nHost: bench\r\ncontent-length: {}\r\n\r\n{}",
                        body.len(),
                        body
                    );
                    let request_started = Instant::now();
                    let result = (|| -> std::io::Result<u16> {
                        if conn.is_none() {
                            conn = Some(connect(addr)?);
                        }
                        let Some(client) = conn.as_mut() else {
                            unreachable!("just connected");
                        };
                        client.stream.write_all(payload.as_bytes())?;
                        read_response(&mut client.stream, &mut client.carry)
                    })();
                    match result {
                        Ok(200) => {
                            out.0 += drawn;
                            let us = u64::try_from(request_started.elapsed().as_micros())
                                .unwrap_or(u64::MAX);
                            out.3.push(us);
                        }
                        Ok(503) => out.1 += drawn,
                        Ok(_) => out.2 += drawn,
                        Err(_) => {
                            out.2 += drawn;
                            conn = None;
                        }
                    }
                }
                out
            })
        })
        .collect();
    collect_outcome(handles, started)
}

#[allow(clippy::type_complexity)]
fn collect_outcome(
    handles: Vec<std::thread::JoinHandle<(u64, u64, u64, Vec<u64>)>>,
    started: Instant,
) -> PhaseOutcome {
    let mut ok = 0;
    let mut shed = 0;
    let mut errors = 0;
    let mut latencies_us = Vec::new();
    for handle in handles {
        if let Ok((o, s, e, l)) = handle.join() {
            ok += o;
            shed += s;
            errors += e;
            latencies_us.extend(l);
        } else {
            errors += 1;
        }
    }
    latencies_us.sort_unstable();
    PhaseOutcome {
        ok,
        shed,
        errors,
        elapsed: started.elapsed(),
        latencies_us,
    }
}

/// Exact quantile over sorted samples (nearest-rank).
fn quantile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1]
}

fn phase_report(
    name: &'static str,
    config: &ServeConfig,
    clients: usize,
    mode: LoadMode,
    batch_size: usize,
    outcome: &PhaseOutcome,
) -> PhaseReport {
    let elapsed_secs = outcome.elapsed.as_secs_f64().max(1e-9);
    PhaseReport {
        name,
        workers: config.workers,
        queue_depth: config.queue_depth,
        clients,
        keep_alive: mode.keep_alive(),
        pipeline_depth: mode.pipeline_depth(),
        batch_size: batch_size.max(1),
        ok: outcome.ok,
        shed: outcome.shed,
        errors: outcome.errors,
        elapsed_secs,
        throughput_rps: outcome.ok as f64 / elapsed_secs,
        p50_us: quantile(&outcome.latencies_us, 0.50),
        p99_us: quantile(&outcome.latencies_us, 0.99),
        max_us: outcome.latencies_us.last().copied().unwrap_or(0),
    }
}

/// Fetch the raw `/metrics` body.
fn fetch_metrics(addr: SocketAddr) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.write_all(b"GET /metrics HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n")?;
    let mut out = String::new();
    stream.read_to_string(&mut out)?;
    Ok(out)
}

/// Scrape `"hit_rate":X` out of a `/metrics` body without a JSON parser.
fn scrape_hit_rate(addr: SocketAddr) -> f64 {
    fetch_metrics(addr)
        .ok()
        .and_then(|text| {
            let (_, rest) = text.split_once("\"hit_rate\":")?;
            rest.split(|c: char| c != '.' && !c.is_ascii_digit())
                .next()?
                .parse()
                .ok()
        })
        .unwrap_or(0.0)
}

/// Scrape the first `"name":N` integer counter out of a `/metrics` body.
fn scrape_counter(body: &str, name: &str) -> u64 {
    body.split_once(&format!("\"{name}\":"))
        .and_then(|(_, rest)| {
            rest.split(|c: char| !c.is_ascii_digit())
                .next()?
                .parse()
                .ok()
        })
        .unwrap_or(0)
}

/// Run both phases against a tiny-corpus server and collect the report.
/// `requests` is the steady-phase budget; overload runs half of it.
pub fn run(seed: u64, requests: u64) -> std::io::Result<ServeBenchReport> {
    let testbed = Testbed::build(EvalScale::Tiny, seed);
    let corpus = Arc::new(testbed.corpus.clone());
    let queries = Arc::new(ZipfQueries::new(&testbed));
    let mut phases = Vec::new();

    // Steady trio: the same load at the acceptance configuration
    // (4 workers), once per connection discipline. Each gets a fresh
    // server so every phase warms its own cache from cold — otherwise
    // the later phases would inherit the first one's warm cache and the
    // comparison would flatter them.
    let steady_config = ServeConfig {
        workers: 4,
        queue_depth: 64,
        cache_capacity: 1024,
        ..ServeConfig::default()
    };
    let mut steady_hit_rate = 0.0;
    for (name, mode) in [
        ("steady", LoadMode::OneShot),
        ("steady_keepalive", LoadMode::KeepAlive),
        ("steady_pipelined", LoadMode::Pipelined(8)),
    ] {
        let server = Server::start(
            "127.0.0.1:0",
            steady_config.clone(),
            Arc::clone(&corpus),
            Arc::new(SharedEsharp::new(testbed.esharp.clone())),
        )?;
        let outcome = run_phase(server.local_addr(), &queries, seed, 8, requests, mode);
        if name == "steady" {
            steady_hit_rate = scrape_hit_rate(server.local_addr());
        }
        phases.push(phase_report(name, &steady_config, 8, mode, 1, &outcome));
        server.shutdown();
    }

    // Overload phase: strangle the server (1 worker, 2-deep queue) and
    // offer 4× the concurrency — saturation must shed, not collapse.
    let overload_config = ServeConfig {
        workers: 1,
        queue_depth: 2,
        cache_capacity: 1024,
        ..ServeConfig::default()
    };
    let server = Server::start(
        "127.0.0.1:0",
        overload_config.clone(),
        Arc::clone(&corpus),
        Arc::new(SharedEsharp::new(testbed.esharp.clone())),
    )?;
    let outcome = run_phase(
        server.local_addr(),
        &queries,
        seed,
        32,
        requests / 2,
        LoadMode::OneShot,
    );
    phases.push(phase_report(
        "overload",
        &overload_config,
        32,
        LoadMode::OneShot,
        1,
        &outcome,
    ));
    server.shutdown();

    // Batch pair: cache off, so every query pays for a real expansion +
    // detection, and the only lever is the batch planner's shared
    // posting-list traversal. Both phases run the same Zipf stream at
    // the same budget; `ok` counts queries in both, so throughput_rps is
    // apples-to-apples.
    const BATCH_SIZE: usize = 16;
    let batch_config = ServeConfig {
        workers: 4,
        queue_depth: 64,
        cache_capacity: 0,
        ..ServeConfig::default()
    };
    let batch_budget = (requests / 2).max(BATCH_SIZE as u64);
    let server = Server::start(
        "127.0.0.1:0",
        batch_config.clone(),
        Arc::clone(&corpus),
        Arc::new(SharedEsharp::new(testbed.esharp.clone())),
    )?;
    let outcome = run_phase(
        server.local_addr(),
        &queries,
        seed,
        4,
        batch_budget,
        LoadMode::KeepAlive,
    );
    phases.push(phase_report(
        "batch_sequential",
        &batch_config,
        4,
        LoadMode::KeepAlive,
        1,
        &outcome,
    ));
    server.shutdown();

    let server = Server::start(
        "127.0.0.1:0",
        batch_config.clone(),
        Arc::clone(&corpus),
        Arc::new(SharedEsharp::new(testbed.esharp.clone())),
    )?;
    let outcome = run_batch_phase(
        server.local_addr(),
        &queries,
        seed,
        4,
        batch_budget,
        BATCH_SIZE,
    );
    phases.push(phase_report(
        "batch_16",
        &batch_config,
        4,
        LoadMode::KeepAlive,
        BATCH_SIZE,
        &outcome,
    ));
    server.shutdown();

    // Chaos phases: a 4-shard corpus, the cache off (every request pays
    // for a real scatter-gather), and every request aimed at one query
    // whose home shard is the one chaos slows down — so the slow shard
    // is on every request's critical path and p99 measures it directly.
    const SHARDS: usize = 4;
    const DELAY_US: u64 = 25_000;
    let mut sharded = testbed.corpus.clone();
    sharded.reshard(SHARDS);
    let top_term = testbed.world.terms[testbed.world.domains[0].terms[0] as usize]
        .text
        .clone();
    let slow_shard = sharded.term_home_shard(&top_term);
    let aimed = Arc::new(ZipfQueries {
        encoded: vec![percent_encode(&top_term)],
        raw: vec![top_term.clone()],
        cumulative: vec![1],
        total: 1,
    });
    let mut chaos_esharp_config = testbed.config.clone();
    chaos_esharp_config.search_workers = SHARDS;
    let chaos_config = ServeConfig {
        workers: 4,
        queue_depth: 64,
        cache_capacity: 0,
        hedge_delay: Duration::from_millis(2),
        ..ServeConfig::default()
    };
    let boot = |hedge: bool, plan: ChaosPlan| -> std::io::Result<Server> {
        Server::start_live_with_hooks(
            "127.0.0.1:0",
            ServeConfig {
                hedge,
                ..chaos_config.clone()
            },
            Arc::new(LiveCorpus::new(sharded.clone())),
            Arc::new(SharedEsharp::new(Esharp::new(
                testbed.esharp.domains().clone(),
                chaos_esharp_config.clone(),
            ))),
            Arc::new(NoFaults),
            ServeHooks {
                chaos: Arc::new(plan),
                ..ServeHooks::default()
            },
        )
    };
    let slow_plan = || {
        ChaosPlan::new(seed).trigger(
            &format!("search:shard:{slow_shard}"),
            0,
            ChaosFault::Delay { us: DELAY_US },
        )
    };
    // The slow-shard phase pays ~DELAY_US per request by construction;
    // cap the sample so the regression measurement stays seconds, not
    // minutes, at large steady budgets.
    let chaos_requests = (requests / 4).clamp(64, 1024);

    // Sharded baseline, no chaos.
    let server = boot(false, ChaosPlan::new(seed))?;
    let outcome = run_phase(
        server.local_addr(),
        &aimed,
        seed,
        8,
        chaos_requests,
        LoadMode::OneShot,
    );
    let baseline_p99_us = quantile(&outcome.latencies_us, 0.99);
    phases.push(phase_report(
        "tail_baseline",
        &chaos_config,
        8,
        LoadMode::OneShot,
        1,
        &outcome,
    ));
    server.shutdown();

    // One slow shard, hedging off: the full regression.
    let server = boot(false, slow_plan())?;
    let outcome = run_phase(
        server.local_addr(),
        &aimed,
        seed,
        8,
        chaos_requests,
        LoadMode::OneShot,
    );
    let slow_p99_us = quantile(&outcome.latencies_us, 0.99);
    let slow_metrics = fetch_metrics(server.local_addr()).unwrap_or_default();
    phases.push(phase_report(
        "tail_slow_shard",
        &chaos_config,
        8,
        LoadMode::OneShot,
        1,
        &outcome,
    ));
    server.shutdown();

    // Same slow shard, hedging on: the recovery.
    let server = boot(true, slow_plan())?;
    let outcome = run_phase(
        server.local_addr(),
        &aimed,
        seed,
        8,
        chaos_requests,
        LoadMode::OneShot,
    );
    let hedged_p99_us = quantile(&outcome.latencies_us, 0.99);
    let hedged_metrics = fetch_metrics(server.local_addr()).unwrap_or_default();
    phases.push(phase_report(
        "tail_slow_shard_hedged",
        &chaos_config,
        8,
        LoadMode::OneShot,
        1,
        &outcome,
    ));
    server.shutdown();

    let regression = slow_p99_us.saturating_sub(baseline_p99_us);
    let recovered = slow_p99_us.saturating_sub(hedged_p99_us);
    let chaos = ChaosReport {
        shards: SHARDS,
        slow_shard,
        injected_delay_us: DELAY_US,
        baseline_p99_us,
        slow_p99_us,
        hedged_p99_us,
        hedge_recovery: if regression == 0 {
            1.0
        } else {
            recovered as f64 / regression as f64
        },
        hedges: scrape_counter(&hedged_metrics, "hedges"),
        hedge_wins: scrape_counter(&hedged_metrics, "hedge_wins"),
        partial_responses: scrape_counter(&slow_metrics, "partial_responses")
            + scrape_counter(&hedged_metrics, "partial_responses"),
        breaker_trips: scrape_counter(&slow_metrics, "trips")
            + scrape_counter(&hedged_metrics, "trips"),
        breaker_recoveries: scrape_counter(&slow_metrics, "recoveries")
            + scrape_counter(&hedged_metrics, "recoveries"),
    };

    Ok(ServeBenchReport {
        host_cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
        seed,
        distinct_queries: queries.encoded.len(),
        steady_hit_rate,
        phases,
        chaos,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_mix_is_skewed_and_deterministic() {
        let testbed = Testbed::build(EvalScale::Tiny, 5);
        let queries = ZipfQueries::new(&testbed);
        assert!(queries.encoded.len() > 1);
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let draws: Vec<&str> = (0..200).map(|_| queries.sample(&mut a)).collect();
        let replay: Vec<&str> = (0..200).map(|_| queries.sample(&mut b)).collect();
        assert_eq!(draws, replay, "sampling must be seed-deterministic");
        let head_hits = draws.iter().filter(|q| **q == queries.encoded[0]).count();
        let tail = queries.encoded.last().expect("nonempty");
        let tail_hits = draws.iter().filter(|q| *q == tail).count();
        assert!(head_hits > tail_hits, "rank 1 must dominate the tail");
    }

    #[test]
    fn quantiles_are_nearest_rank_exact() {
        assert_eq!(quantile(&[], 0.99), 0);
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(quantile(&sorted, 0.50), 50);
        assert_eq!(quantile(&sorted, 0.99), 99);
        assert_eq!(quantile(&sorted, 1.0), 100);
        assert_eq!(quantile(&[7], 0.5), 7);
    }

    #[test]
    fn a_small_run_completes_with_sane_numbers() {
        let report = run(13, 200).expect("bench run");
        assert_eq!(report.phases.len(), 9);
        let steady = &report.phases[0];
        assert!(!steady.keep_alive && steady.pipeline_depth == 1 && steady.batch_size == 1);
        assert_eq!(steady.ok + steady.shed + steady.errors, 200);
        assert_eq!(steady.errors, 0, "steady phase must not error");
        assert!(steady.throughput_rps > 0.0);
        assert!(steady.p50_us <= steady.p99_us && steady.p99_us <= steady.max_us);

        // The event-loop acceptance pair: connection reuse must beat
        // one-connection-per-request throughput, and the batch planner
        // must beat sequential singles with the cache off (both sides
        // measured in queries/s over the same query stream).
        let keepalive = &report.phases[1];
        assert!(keepalive.keep_alive && keepalive.pipeline_depth == 1);
        assert_eq!(keepalive.errors, 0, "keep-alive phase must not error");
        assert!(
            keepalive.throughput_rps > steady.throughput_rps,
            "keep-alive ({:.0} rps) must beat one-shot ({:.0} rps)",
            keepalive.throughput_rps,
            steady.throughput_rps
        );
        let pipelined = &report.phases[2];
        assert!(pipelined.keep_alive && pipelined.pipeline_depth == 8);
        assert_eq!(pipelined.errors, 0, "pipelined phase must not error");
        assert!(
            pipelined.throughput_rps > steady.throughput_rps,
            "pipelining ({:.0} rps) must beat one-shot ({:.0} rps)",
            pipelined.throughput_rps,
            steady.throughput_rps
        );
        let sequential = &report.phases[4];
        let batch = &report.phases[5];
        assert_eq!(sequential.name, "batch_sequential");
        assert_eq!(batch.name, "batch_16");
        assert_eq!(batch.batch_size, 16);
        assert_eq!(sequential.errors, 0, "sequential-singles phase must not error");
        assert_eq!(batch.errors, 0, "batch phase must not error");
        assert!(
            batch.throughput_rps > sequential.throughput_rps,
            "uncached batch ({:.0} q/s) must beat sequential singles ({:.0} q/s)",
            batch.throughput_rps,
            sequential.throughput_rps
        );

        let json = report.to_json();
        for needle in [
            "\"bench\": \"serve\"",
            "\"degenerate_host\": ",
            "\"name\": \"steady\"",
            "\"name\": \"steady_keepalive\"",
            "\"name\": \"steady_pipelined\"",
            "\"name\": \"overload\"",
            "\"name\": \"batch_sequential\"",
            "\"name\": \"batch_16\"",
            "\"name\": \"tail_slow_shard_hedged\"",
            "\"keep_alive\": true",
            "\"pipeline_depth\": 8",
            "\"batch_size\": 16",
            "\"chaos\": {",
        ] {
            assert!(json.contains(needle), "missing {needle}");
        }
        assert!(!report.render_table().is_empty());

        // The tail-tolerance acceptance gate: the injected slow shard
        // must show up at p99, and hedging must buy back at least half
        // of the regression.
        let chaos = &report.chaos;
        assert!(
            chaos.slow_p99_us >= chaos.baseline_p99_us + chaos.injected_delay_us / 2,
            "the slow shard never reached p99: slow {} vs baseline {}",
            chaos.slow_p99_us,
            chaos.baseline_p99_us
        );
        assert!(
            chaos.hedge_recovery >= 0.5,
            "hedging recovered only {:.0}% of the p99 regression (slow {}µs, hedged {}µs, \
             baseline {}µs)",
            chaos.hedge_recovery * 100.0,
            chaos.slow_p99_us,
            chaos.hedged_p99_us,
            chaos.baseline_p99_us
        );
        assert!(chaos.hedges >= 1, "the hedged phase never hedged");
        assert!(chaos.hedge_wins >= 1, "no hedge ever answered first");
    }
}
