//! Property-based tests of normalization and ranking invariants.

use esharp_expert::{normalize_feature, z_scores, Detector, DetectorConfig};
use esharp_microblog::{Corpus, Tweet, User};
use proptest::prelude::*;

proptest! {
    #[test]
    fn z_scores_center_and_scale(values in prop::collection::vec(-1e3f64..1e3, 2..50)) {
        let z = z_scores(&values);
        prop_assert_eq!(z.len(), values.len());
        let mean: f64 = z.iter().sum::<f64>() / z.len() as f64;
        prop_assert!(mean.abs() < 1e-6, "mean = {}", mean);
        // Either all-zero (degenerate sample) or unit variance.
        let var: f64 = z.iter().map(|x| x * x).sum::<f64>() / z.len() as f64;
        prop_assert!(var.abs() < 1e-9 || (var - 1.0).abs() < 1e-6, "var = {}", var);
    }

    #[test]
    fn z_scores_preserve_order(values in prop::collection::vec(-1e3f64..1e3, 2..50)) {
        let z = z_scores(&values);
        for i in 0..values.len() {
            for j in 0..values.len() {
                if values[i] < values[j] {
                    prop_assert!(z[i] <= z[j]);
                }
            }
        }
    }

    #[test]
    fn normalize_feature_is_finite_on_ratios(values in prop::collection::vec(0.0f64..=1.0, 1..40)) {
        for z in normalize_feature(&values, 1e-6) {
            prop_assert!(z.is_finite());
        }
    }
}

/// Build a corpus where user `i` posts `counts[i]` on-topic tweets and
/// `off[i]` off-topic ones.
fn corpus_from_counts(counts: &[u8], off: &[u8]) -> Corpus {
    let users: Vec<User> = (0..counts.len() as u32)
        .map(|id| User {
            id,
            handle: format!("u{id}"),
            display_name: String::new(),
            description: String::new(),
            followers: 0,
            verified: false,
            expert_domains: vec![],
            spam: false,
        })
        .collect();
    let mut tweets = Vec::new();
    for (uid, (&on, &off_count)) in counts.iter().zip(off).enumerate() {
        for _ in 0..on {
            let id = tweets.len() as u32;
            tweets.push(Tweet::parse(id, uid as u32, "topic post", |_| None));
        }
        for _ in 0..off_count {
            let id = tweets.len() as u32;
            tweets.push(Tweet::parse(id, uid as u32, "something else", |_| None));
        }
    }
    Corpus::new(users, tweets)
}

proptest! {
    #[test]
    fn detector_respects_threshold_monotonicity(
        counts in prop::collection::vec(0u8..6, 2..10),
        off in prop::collection::vec(0u8..6, 2..10),
    ) {
        prop_assume!(counts.iter().any(|&c| c > 0));
        let n = counts.len().min(off.len());
        let corpus = corpus_from_counts(&counts[..n], &off[..n]);
        let mut last = usize::MAX;
        for threshold in [-5.0, 0.0, 1.0, 3.0] {
            let config = DetectorConfig {
                min_zscore: threshold,
                max_results: usize::MAX,
                ..Default::default()
            };
            let hits = Detector::new(&corpus, config).search("topic").len();
            prop_assert!(hits <= last);
            last = hits;
        }
    }

    #[test]
    fn scratch_rank_is_bit_identical_to_reference(
        counts in prop::collection::vec(0u8..6, 2..10),
        off in prop::collection::vec(0u8..6, 2..10),
        picks in prop::collection::vec(prop::bool::ANY, 1..60),
    ) {
        // The flat-scratch rank path must reproduce the HashMap reference
        // path bit-for-bit (same users, same f64 scores, same order) on an
        // arbitrary sorted subset of tweets — including the empty subset
        // and subsets that leave some users with zero matches.
        let n = counts.len().min(off.len());
        let corpus = corpus_from_counts(&counts[..n], &off[..n]);
        let matching: Vec<u32> = (0..corpus.tweets().len() as u32)
            .filter(|&id| picks.get(id as usize).copied().unwrap_or(false))
            .collect();
        let detector = Detector::new(&corpus, DetectorConfig::default());
        prop_assert_eq!(
            detector.rank_candidates(&matching),
            detector.rank_candidates_reference(&matching)
        );
    }

    #[test]
    fn detector_scores_are_finite_and_sorted(
        counts in prop::collection::vec(0u8..6, 2..10),
        off in prop::collection::vec(0u8..6, 2..10),
    ) {
        prop_assume!(counts.iter().any(|&c| c > 0));
        let n = counts.len().min(off.len());
        let corpus = corpus_from_counts(&counts[..n], &off[..n]);
        let config = DetectorConfig {
            min_zscore: f64::NEG_INFINITY,
            max_results: usize::MAX,
            ..Default::default()
        };
        let results = Detector::new(&corpus, config).search("topic");
        for r in &results {
            prop_assert!(r.score.is_finite());
            prop_assert!((0.0..=1.0).contains(&r.features.ts));
        }
        for pair in results.windows(2) {
            prop_assert!(pair[0].score >= pair[1].score);
        }
    }
}
