//! Candidate selection and the three textual-evidence features of Pal &
//! Counts, as simplified for production in e# (§3).
//!
//! * `TS` — topical signal: `#tweets by user on topic / #tweets by user`.
//! * `MI` — mention impact: `#mentions of user on topic / #mentions`.
//! * `RI` — retweet impact: `#retweets of user's tweets on topic /
//!   #retweets of user's tweets`.

use esharp_microblog::{Corpus, TweetId, UserId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The raw feature triple for one candidate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Features {
    /// Topical signal.
    pub ts: f64,
    /// Mention impact.
    pub mi: f64,
    /// Retweet impact.
    pub ri: f64,
}

/// Per-candidate on-topic counts, before normalization by user totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TopicCounts {
    /// Matching tweets authored by the user.
    pub tweets_on_topic: u64,
    /// Mentions of the user inside matching tweets.
    pub mentions_on_topic: u64,
    /// Matching retweets of the user's content.
    pub retweets_on_topic: u64,
}

/// Candidate selection (§3): "a candidate expert is either an author of a
/// tweet, or a person mentioned in a tweet. In both cases, the tweet must
/// match the query." Returns each candidate's on-topic counts.
pub fn collect_candidates(
    corpus: &Corpus,
    matching: &[TweetId],
) -> HashMap<UserId, TopicCounts> {
    let mut candidates: HashMap<UserId, TopicCounts> = HashMap::new();
    for &tid in matching {
        let tweet = corpus.tweet(tid);
        candidates
            .entry(tweet.author)
            .or_default()
            .tweets_on_topic += 1;
        for &mentioned in &tweet.mentions {
            candidates.entry(mentioned).or_default().mentions_on_topic += 1;
        }
        if let Some(original_author) = tweet.retweet_of {
            candidates
                .entry(original_author)
                .or_default()
                .retweets_on_topic += 1;
        }
    }
    candidates
}

/// Turn on-topic counts into the TS/MI/RI ratios. A zero denominator
/// yields a zero feature (the user has no activity of that kind at all).
pub fn compute_features(corpus: &Corpus, user: UserId, counts: &TopicCounts) -> Features {
    let ratio = |num: u64, den: u64| {
        if den == 0 {
            0.0
        } else {
            num as f64 / den as f64
        }
    };
    Features {
        ts: ratio(counts.tweets_on_topic, corpus.tweets_by(user)),
        mi: ratio(counts.mentions_on_topic, corpus.mentions_of(user)),
        ri: ratio(counts.retweets_on_topic, corpus.retweets_of(user)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esharp_microblog::{Tweet, User};

    fn user(id: UserId, handle: &str) -> User {
        User {
            id,
            handle: handle.to_string(),
            display_name: handle.to_string(),
            description: String::new(),
            followers: 0,
            verified: false,
            expert_domains: vec![],
            spam: false,
        }
    }

    fn corpus() -> Corpus {
        let users = vec![user(0, "alice"), user(1, "bob"), user(2, "carol")];
        let resolve = |h: &str| match h {
            "alice" => Some(0),
            "bob" => Some(1),
            "carol" => Some(2),
            _ => None,
        };
        let tweets = vec![
            Tweet::parse(0, 0, "niners win today", resolve),
            Tweet::parse(1, 0, "pasta recipe thread", resolve),
            Tweet::parse(2, 1, "rt @alice: niners win today", resolve),
            Tweet::parse(3, 2, "watching the niners with @alice", resolve),
            Tweet::parse(4, 2, "niners niners niners", resolve),
        ];
        Corpus::new(users, tweets)
    }

    #[test]
    fn candidates_include_authors_mentioned_and_retweeted() {
        let c = corpus();
        let matching = c.match_query("niners");
        assert_eq!(matching, vec![0, 2, 3, 4]);
        let candidates = collect_candidates(&c, &matching);
        // Authors 0,1,2 plus alice via mention/retweet.
        assert_eq!(candidates.len(), 3);
        let alice = candidates[&0];
        assert_eq!(alice.tweets_on_topic, 1);
        assert_eq!(alice.mentions_on_topic, 2); // RT text + explicit mention
        assert_eq!(alice.retweets_on_topic, 1);
    }

    #[test]
    fn features_are_ratios_of_totals() {
        let c = corpus();
        let matching = c.match_query("niners");
        let candidates = collect_candidates(&c, &matching);
        let f = compute_features(&c, 0, &candidates[&0]);
        assert!((f.ts - 0.5).abs() < 1e-12); // 1 of alice's 2 tweets
        assert!((f.mi - 1.0).abs() < 1e-12); // both mentions on topic
        assert!((f.ri - 1.0).abs() < 1e-12); // her only retweet on topic
    }

    #[test]
    fn zero_denominators_yield_zero_features() {
        let c = corpus();
        let matching = c.match_query("niners");
        let candidates = collect_candidates(&c, &matching);
        // Carol is never mentioned or retweeted.
        let f = compute_features(&c, 2, &candidates[&2]);
        assert_eq!(f.mi, 0.0);
        assert_eq!(f.ri, 0.0);
        assert!(f.ts > 0.0);
    }

    #[test]
    fn empty_match_set_yields_no_candidates() {
        let c = corpus();
        assert!(collect_candidates(&c, &[]).is_empty());
    }
}
