//! Candidate selection and the three textual-evidence features of Pal &
//! Counts, as simplified for production in e# (§3).
//!
//! * `TS` — topical signal: `#tweets by user on topic / #tweets by user`.
//! * `MI` — mention impact: `#mentions of user on topic / #mentions`.
//! * `RI` — retweet impact: `#retweets of user's tweets on topic /
//!   #retweets of user's tweets`.

use esharp_microblog::{Corpus, TweetId, UserId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The raw feature triple for one candidate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Features {
    /// Topical signal.
    pub ts: f64,
    /// Mention impact.
    pub mi: f64,
    /// Retweet impact.
    pub ri: f64,
}

/// Per-candidate on-topic counts, before normalization by user totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TopicCounts {
    /// Matching tweets authored by the user.
    pub tweets_on_topic: u64,
    /// Mentions of the user inside matching tweets.
    pub mentions_on_topic: u64,
    /// Matching retweets of the user's content.
    pub retweets_on_topic: u64,
}

/// Matched-set size below which [`CandidateScratch::collect_with`] stays
/// serial: candidate counting is an array index per event, so scattering
/// a small match set over the pool costs more than the counting itself.
pub const PARALLEL_COLLECT_THRESHOLD: usize = 4096;

/// Candidate selection (§3): "a candidate expert is either an author of a
/// tweet, or a person mentioned in a tweet. In both cases, the tweet must
/// match the query." Returns each candidate's on-topic counts.
pub fn collect_candidates(
    corpus: &Corpus,
    matching: &[TweetId],
) -> HashMap<UserId, TopicCounts> {
    let mut candidates: HashMap<UserId, TopicCounts> = HashMap::new();
    for &tid in matching {
        let tweet = corpus.tweet(tid);
        candidates
            .entry(tweet.author)
            .or_default()
            .tweets_on_topic += 1;
        for &mentioned in &tweet.mentions {
            candidates.entry(mentioned).or_default().mentions_on_topic += 1;
        }
        if let Some(original_author) = tweet.retweet_of {
            candidates
                .entry(original_author)
                .or_default()
                .retweets_on_topic += 1;
        }
    }
    candidates
}

/// Reusable dense accumulators for candidate selection — the PR 1 flat
/// accumulator pattern applied to the online rank path.
///
/// [`collect_candidates`] allocates a fresh `HashMap` per query; at
/// serving rates that is the dominant allocation on the rank path. The
/// scratch keeps one `Vec<TopicCounts>` sized to the corpus user table
/// plus a touched list: accumulation is an array index per event, reset
/// is `O(|touched|)`, and after warm-up a query allocates nothing here.
/// Candidates come back in ascending user order — the same deterministic
/// order the `HashMap`-then-sort path produces, so rankings are
/// bit-identical (enforced by proptest).
#[derive(Debug, Default)]
pub struct CandidateScratch {
    counts: Vec<TopicCounts>,
    touched: Vec<UserId>,
    ext_counts: Vec<crate::features_ext::ExtendedCounts>,
    ext_touched: Vec<UserId>,
}

impl CandidateScratch {
    /// A fresh scratch; buffers grow to corpus size on first use.
    pub fn new() -> CandidateScratch {
        CandidateScratch::default()
    }

    /// Candidate selection (§3) into the dense table: same semantics as
    /// [`collect_candidates`], reusing this scratch's buffers.
    pub fn collect(&mut self, corpus: &Corpus, matching: &[TweetId]) {
        for &u in &self.touched {
            if let Some(c) = self.counts.get_mut(u as usize) {
                *c = TopicCounts::default();
            }
        }
        self.touched.clear();
        self.counts.resize(corpus.users().len(), TopicCounts::default());
        for &tid in matching {
            let tweet = corpus.tweet(tid);
            Self::touch(&mut self.counts, &mut self.touched, tweet.author).tweets_on_topic += 1;
            for &mentioned in &tweet.mentions {
                Self::touch(&mut self.counts, &mut self.touched, mentioned).mentions_on_topic +=
                    1;
            }
            if let Some(original_author) = tweet.retweet_of {
                Self::touch(&mut self.counts, &mut self.touched, original_author)
                    .retweets_on_topic += 1;
            }
        }
        self.touched.sort_unstable();
    }

    /// Candidate selection with optional chunk-parallel accumulation:
    /// the matched list is split into fixed contiguous chunks, each
    /// chunk's counts are accumulated independently on the shared pool,
    /// and the partial counts are summed into the dense table. Counts
    /// are integer adds (commutative) and candidates are sorted at the
    /// end, so the result is bit-identical to [`CandidateScratch::collect`]
    /// at any worker count. Small match sets (under
    /// [`PARALLEL_COLLECT_THRESHOLD`]) stay serial — the scatter costs
    /// more than the counting.
    pub fn collect_with(&mut self, corpus: &Corpus, matching: &[TweetId], workers: usize) {
        if workers <= 1 || matching.len() < PARALLEL_COLLECT_THRESHOLD {
            self.collect(corpus, matching);
        } else {
            self.collect_parallel(corpus, matching, workers);
        }
    }

    /// The parallel arm of [`CandidateScratch::collect_with`], split out
    /// so tests can exercise the merge below the size threshold.
    fn collect_parallel(&mut self, corpus: &Corpus, matching: &[TweetId], workers: usize) {
        for &u in &self.touched {
            if let Some(c) = self.counts.get_mut(u as usize) {
                *c = TopicCounts::default();
            }
        }
        self.touched.clear();
        self.counts.resize(corpus.users().len(), TopicCounts::default());
        let chunk = matching.len().div_ceil(workers.max(1));
        let tasks: Vec<_> = esharp_par::chunk_ranges(matching.len(), chunk)
            .into_iter()
            .map(|r| {
                let slice = &matching[r];
                move || collect_candidates(corpus, slice)
            })
            .collect();
        for partial in esharp_par::shared_pool(workers).run(tasks) {
            for (user, c) in partial {
                let slot = Self::touch(&mut self.counts, &mut self.touched, user);
                slot.tweets_on_topic += c.tweets_on_topic;
                slot.mentions_on_topic += c.mentions_on_topic;
                slot.retweets_on_topic += c.retweets_on_topic;
            }
        }
        self.touched.sort_unstable();
    }

    /// A slot, recording the user in the touched list on first contact.
    /// Counts only ever increment, so "still all-default" is exactly
    /// "never touched since the last reset".
    fn touch<'s>(
        counts: &'s mut [TopicCounts],
        touched: &mut Vec<UserId>,
        user: UserId,
    ) -> &'s mut TopicCounts {
        let slot = &mut counts[user as usize];
        if *slot == TopicCounts::default() {
            touched.push(user);
        }
        slot
    }

    /// Candidates of the last [`CandidateScratch::collect`], in ascending
    /// user order.
    pub fn candidates(&self) -> impl Iterator<Item = (UserId, TopicCounts)> + '_ {
        self.touched.iter().map(|&u| (u, self.counts[u as usize]))
    }

    /// Number of candidates collected.
    pub fn len(&self) -> usize {
        self.touched.len()
    }

    /// True when the last collect produced no candidates.
    pub fn is_empty(&self) -> bool {
        self.touched.is_empty()
    }

    /// The counts of one candidate (all-zero for non-candidates).
    pub fn counts_of(&self, user: UserId) -> TopicCounts {
        self.counts.get(user as usize).copied().unwrap_or_default()
    }

    /// Extended-tier counts (authors only), dense-accumulated: same
    /// semantics as [`crate::features_ext::collect_extended`].
    pub fn collect_extended(&mut self, corpus: &Corpus, matching: &[TweetId]) {
        use crate::features_ext::ExtendedCounts;
        for &u in &self.ext_touched {
            if let Some(c) = self.ext_counts.get_mut(u as usize) {
                *c = ExtendedCounts::default();
            }
        }
        self.ext_touched.clear();
        self.ext_counts
            .resize(corpus.users().len(), ExtendedCounts::default());
        for &tid in matching {
            let tweet = corpus.tweet(tid);
            let slot = &mut self.ext_counts[tweet.author as usize];
            if *slot == ExtendedCounts::default() {
                self.ext_touched.push(tweet.author);
            }
            slot.tweets += 1;
            if tweet.retweet_of.is_none() {
                slot.original += 1;
            }
            if !crate::features_ext::is_conversational(corpus, tid) {
                slot.non_chat += 1;
            }
        }
    }

    /// Extended counts of one candidate (all-zero for non-authors).
    pub fn extended_of(&self, user: UserId) -> crate::features_ext::ExtendedCounts {
        self.ext_counts
            .get(user as usize)
            .copied()
            .unwrap_or_default()
    }
}

/// Turn on-topic counts into the TS/MI/RI ratios. A zero denominator
/// yields a zero feature (the user has no activity of that kind at all).
pub fn compute_features(corpus: &Corpus, user: UserId, counts: &TopicCounts) -> Features {
    let ratio = |num: u64, den: u64| {
        if den == 0 {
            0.0
        } else {
            num as f64 / den as f64
        }
    };
    Features {
        ts: ratio(counts.tweets_on_topic, corpus.tweets_by(user)),
        mi: ratio(counts.mentions_on_topic, corpus.mentions_of(user)),
        ri: ratio(counts.retweets_on_topic, corpus.retweets_of(user)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esharp_microblog::{Tweet, User};

    fn user(id: UserId, handle: &str) -> User {
        User {
            id,
            handle: handle.to_string(),
            display_name: handle.to_string(),
            description: String::new(),
            followers: 0,
            verified: false,
            expert_domains: vec![],
            spam: false,
        }
    }

    fn corpus() -> Corpus {
        let users = vec![user(0, "alice"), user(1, "bob"), user(2, "carol")];
        let resolve = |h: &str| match h {
            "alice" => Some(0),
            "bob" => Some(1),
            "carol" => Some(2),
            _ => None,
        };
        let tweets = vec![
            Tweet::parse(0, 0, "niners win today", resolve),
            Tweet::parse(1, 0, "pasta recipe thread", resolve),
            Tweet::parse(2, 1, "rt @alice: niners win today", resolve),
            Tweet::parse(3, 2, "watching the niners with @alice", resolve),
            Tweet::parse(4, 2, "niners niners niners", resolve),
        ];
        Corpus::new(users, tweets)
    }

    #[test]
    fn candidates_include_authors_mentioned_and_retweeted() {
        let c = corpus();
        let matching = c.match_query("niners");
        assert_eq!(matching, vec![0, 2, 3, 4]);
        let candidates = collect_candidates(&c, &matching);
        // Authors 0,1,2 plus alice via mention/retweet.
        assert_eq!(candidates.len(), 3);
        let alice = candidates[&0];
        assert_eq!(alice.tweets_on_topic, 1);
        assert_eq!(alice.mentions_on_topic, 2); // RT text + explicit mention
        assert_eq!(alice.retweets_on_topic, 1);
    }

    #[test]
    fn features_are_ratios_of_totals() {
        let c = corpus();
        let matching = c.match_query("niners");
        let candidates = collect_candidates(&c, &matching);
        let f = compute_features(&c, 0, &candidates[&0]);
        assert!((f.ts - 0.5).abs() < 1e-12); // 1 of alice's 2 tweets
        assert!((f.mi - 1.0).abs() < 1e-12); // both mentions on topic
        assert!((f.ri - 1.0).abs() < 1e-12); // her only retweet on topic
    }

    #[test]
    fn zero_denominators_yield_zero_features() {
        let c = corpus();
        let matching = c.match_query("niners");
        let candidates = collect_candidates(&c, &matching);
        // Carol is never mentioned or retweeted.
        let f = compute_features(&c, 2, &candidates[&2]);
        assert_eq!(f.mi, 0.0);
        assert_eq!(f.ri, 0.0);
        assert!(f.ts > 0.0);
    }

    #[test]
    fn empty_match_set_yields_no_candidates() {
        let c = corpus();
        assert!(collect_candidates(&c, &[]).is_empty());
    }

    #[test]
    fn parallel_collect_is_bit_identical_to_serial() {
        let c = corpus();
        let matching = c.match_query("niners");
        let mut serial = CandidateScratch::new();
        serial.collect(&c, &matching);
        let expected: Vec<(UserId, TopicCounts)> = serial.candidates().collect();
        for workers in [2, 3, 8] {
            let mut parallel = CandidateScratch::new();
            // Call the parallel arm directly — the match set is far below
            // the size threshold, which is exactly why this exercises the
            // chunked merge.
            parallel.collect_parallel(&c, &matching, workers);
            let got: Vec<(UserId, TopicCounts)> = parallel.candidates().collect();
            assert_eq!(got, expected, "divergence at workers={workers}");
        }
    }

    #[test]
    fn collect_with_resets_between_queries() {
        let c = corpus();
        let niners = c.match_query("niners");
        let pasta = c.match_query("pasta");
        let mut scratch = CandidateScratch::new();
        scratch.collect_parallel(&c, &niners, 2);
        scratch.collect_parallel(&c, &pasta, 2);
        let mut fresh = CandidateScratch::new();
        fresh.collect(&c, &pasta);
        assert_eq!(
            scratch.candidates().collect::<Vec<_>>(),
            fresh.candidates().collect::<Vec<_>>()
        );
    }
}
