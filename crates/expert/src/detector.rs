//! The end-to-end baseline detector: candidate selection → features →
//! normalization → weighted ranking → z-score threshold (§3).

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::cluster_filter::cluster_filter;
use crate::features::{collect_candidates, compute_features, CandidateScratch, Features};
use crate::features_ext::{collect_extended, compute_extended, ExtendedWeights};
use crate::normalize::{normalize_feature, z_scores};
use esharp_microblog::{Corpus, TweetId, UserId};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

thread_local! {
    /// Per-thread candidate scratch: the serve worker pool shares one
    /// detector across threads, so the reusable buffers live here rather
    /// than behind a lock on the rank path.
    static SCRATCH: RefCell<CandidateScratch> = RefCell::new(CandidateScratch::new());
}

/// Detector configuration. Defaults follow the paper: the three features
/// the authors "present as important", aggregated by a weighted sum with a
/// TS-dominant weighting, up to 15 experts per query (the crowdsourcing
/// setup), and the expensive cluster-analysis filter disabled ("it is
/// contrary to our objective of improving recall … we discarded it").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Weights of (TS, MI, RI) in the aggregated score.
    pub weights: (f64, f64, f64),
    /// Reject candidates whose aggregated score is below this threshold —
    /// the tuning knob swept in Figure 9.
    pub min_zscore: f64,
    /// Cap on returned experts ("we generated up to 15 experts per
    /// algorithm").
    pub max_results: usize,
    /// Additive epsilon inside the log transform.
    pub log_epsilon: f64,
    /// Enable Pal & Counts' optional cluster-analysis filter (ablation;
    /// the paper's production version runs without it).
    pub cluster_filter: bool,
    /// Fold in the fuller WSDM'11 feature tier (SS/NCS/RT/HUB) that e#'s
    /// production simplification dropped (ablation; `None` reproduces the
    /// paper's detector exactly).
    pub extended: Option<ExtendedWeights>,
    /// Worker threads for candidate counting over large match sets
    /// (chunk-parallel with a commutative integer merge — bit-identical
    /// to serial at any setting; small match sets stay serial either
    /// way). `1` keeps the rank path entirely on the caller.
    #[serde(default = "default_rank_workers")]
    pub rank_workers: usize,
}

/// Serde fallback for configs written before `rank_workers` existed.
fn default_rank_workers() -> usize {
    1
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            weights: (1.0, 0.5, 0.5),
            min_zscore: 0.0,
            max_results: 15,
            log_epsilon: 1e-6,
            cluster_filter: false,
            extended: None,
            rank_workers: default_rank_workers(),
        }
    }
}

/// One ranked expert.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpertResult {
    /// The account.
    pub user: UserId,
    /// Aggregated (weighted z-score) score.
    pub score: f64,
    /// Raw feature ratios.
    pub features: Features,
}

/// The Pal & Counts detector over a fixed corpus.
#[derive(Debug, Clone)]
pub struct Detector<'c> {
    corpus: &'c Corpus,
    config: DetectorConfig,
}

impl<'c> Detector<'c> {
    /// Create a detector over a corpus.
    pub fn new(corpus: &'c Corpus, config: DetectorConfig) -> Self {
        Detector { corpus, config }
    }

    /// The active configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Search experts for a single query string (baseline behaviour: no
    /// expansion).
    pub fn search(&self, query: &str) -> Vec<ExpertResult> {
        let matching = self.corpus.match_query(query);
        self.rank_candidates(&matching)
    }

    /// Rank the candidates induced by an explicit set of matching tweets.
    /// e#'s query expansion unions several match sets and calls this once,
    /// so baseline and expanded searches share one scoring path. Uses the
    /// per-thread [`CandidateScratch`]; results are bit-identical to
    /// [`Detector::rank_candidates_reference`] (enforced by proptest).
    pub fn rank_candidates(&self, matching: &[TweetId]) -> Vec<ExpertResult> {
        SCRATCH.with(|scratch| self.rank_candidates_in(matching, &mut scratch.borrow_mut()))
    }

    /// Rank several match sets through a single thread-local scratch
    /// checkout — the batch planner's rank seam. Each set's result is
    /// bit-identical to calling [`Detector::rank_candidates`] on it
    /// alone: every `collect_with` resets the scratch, so sets cannot
    /// observe each other; the batch only amortizes the `RefCell`
    /// borrow and keeps the buffers hot across queries.
    pub fn rank_candidates_batch(&self, match_sets: &[Vec<TweetId>]) -> Vec<Vec<ExpertResult>> {
        SCRATCH.with(|scratch| {
            let mut scratch = scratch.borrow_mut();
            match_sets
                .iter()
                .map(|matching| self.rank_candidates_in(matching, &mut scratch))
                .collect()
        })
    }

    /// [`Detector::rank_candidates`] with an explicit scratch, for callers
    /// that manage their own reuse (the bench harness).
    pub fn rank_candidates_in(
        &self,
        matching: &[TweetId],
        scratch: &mut CandidateScratch,
    ) -> Vec<ExpertResult> {
        scratch.collect_with(self.corpus, matching, self.config.rank_workers);
        if scratch.is_empty() {
            return Vec::new();
        }
        // Candidates arrive in ascending user order — the same
        // deterministic order the reference path sorts into.
        let entries: Vec<(UserId, Features)> = scratch
            .candidates()
            .map(|(user, counts)| (user, compute_features(self.corpus, user, &counts)))
            .collect();

        let ts: Vec<f64> = entries.iter().map(|(_, f)| f.ts).collect();
        let mi: Vec<f64> = entries.iter().map(|(_, f)| f.mi).collect();
        let ri: Vec<f64> = entries.iter().map(|(_, f)| f.ri).collect();
        let zts = normalize_feature(&ts, self.config.log_epsilon);
        let zmi = normalize_feature(&mi, self.config.log_epsilon);
        let zri = normalize_feature(&ri, self.config.log_epsilon);

        // Optional extended feature tier (SS/NCS/RT/HUB).
        let extended_contrib: Vec<f64> = match &self.config.extended {
            None => vec![0.0; entries.len()],
            Some(weights) => {
                scratch.collect_extended(self.corpus, matching);
                let ext: Vec<crate::features_ext::ExtendedFeatures> = entries
                    .iter()
                    .map(|&(user, _)| {
                        let counts = scratch.extended_of(user);
                        let topic = scratch.counts_of(user);
                        compute_extended(self.corpus, user, &counts, &topic)
                    })
                    .collect();
                let zss = z_scores(&ext.iter().map(|f| f.ss).collect::<Vec<_>>());
                let zncs = z_scores(&ext.iter().map(|f| f.ncs).collect::<Vec<_>>());
                let zrt = z_scores(&ext.iter().map(|f| f.rt).collect::<Vec<_>>());
                let zhub = z_scores(&ext.iter().map(|f| f.hub).collect::<Vec<_>>());
                (0..entries.len())
                    .map(|i| weights.combine(zss[i], zncs[i], zrt[i], zhub[i]))
                    .collect()
            }
        };

        self.finish(entries, zts, zmi, zri, extended_contrib)
    }

    /// The pre-scratch implementation, kept verbatim as the string-keyed
    /// era's rank path: per-query `HashMap` accumulation, then sort. The
    /// online bench measures the scratch path against this baseline; the
    /// proptests pin both to bit-identical output.
    pub fn rank_candidates_reference(&self, matching: &[TweetId]) -> Vec<ExpertResult> {
        let candidate_counts = collect_candidates(self.corpus, matching);
        if candidate_counts.is_empty() {
            return Vec::new();
        }
        // Deterministic candidate order before any numeric work.
        let mut entries: Vec<(UserId, Features)> = candidate_counts
            .iter()
            .map(|(&user, counts)| (user, compute_features(self.corpus, user, counts)))
            .collect();
        entries.sort_by_key(|&(user, _)| user);

        let ts: Vec<f64> = entries.iter().map(|(_, f)| f.ts).collect();
        let mi: Vec<f64> = entries.iter().map(|(_, f)| f.mi).collect();
        let ri: Vec<f64> = entries.iter().map(|(_, f)| f.ri).collect();
        let zts = normalize_feature(&ts, self.config.log_epsilon);
        let zmi = normalize_feature(&mi, self.config.log_epsilon);
        let zri = normalize_feature(&ri, self.config.log_epsilon);

        let extended_contrib: Vec<f64> = match &self.config.extended {
            None => vec![0.0; entries.len()],
            Some(weights) => {
                let ext_counts = collect_extended(self.corpus, matching);
                let ext: Vec<crate::features_ext::ExtendedFeatures> = entries
                    .iter()
                    .map(|&(user, _)| {
                        let counts = ext_counts.get(&user).copied().unwrap_or_default();
                        let topic = candidate_counts.get(&user).copied().unwrap_or_default();
                        compute_extended(self.corpus, user, &counts, &topic)
                    })
                    .collect();
                let zss = z_scores(&ext.iter().map(|f| f.ss).collect::<Vec<_>>());
                let zncs = z_scores(&ext.iter().map(|f| f.ncs).collect::<Vec<_>>());
                let zrt = z_scores(&ext.iter().map(|f| f.rt).collect::<Vec<_>>());
                let zhub = z_scores(&ext.iter().map(|f| f.hub).collect::<Vec<_>>());
                (0..entries.len())
                    .map(|i| weights.combine(zss[i], zncs[i], zrt[i], zhub[i]))
                    .collect()
            }
        };

        self.finish(entries, zts, zmi, zri, extended_contrib)
    }

    /// Shared scoring tail: weighted sum, optional cluster filter,
    /// threshold, sort, cap.
    fn finish(
        &self,
        entries: Vec<(UserId, Features)>,
        zts: Vec<f64>,
        zmi: Vec<f64>,
        zri: Vec<f64>,
        extended_contrib: Vec<f64>,
    ) -> Vec<ExpertResult> {
        let (w_ts, w_mi, w_ri) = self.config.weights;
        let mut results: Vec<ExpertResult> = entries
            .iter()
            .enumerate()
            .map(|(i, &(user, features))| ExpertResult {
                user,
                score: w_ts * zts[i] + w_mi * zmi[i] + w_ri * zri[i] + extended_contrib[i],
                features,
            })
            .collect();

        if self.config.cluster_filter && results.len() >= 4 {
            results = cluster_filter(results);
        }

        results.retain(|r| r.score >= self.config.min_zscore);
        results.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.user.cmp(&b.user)));
        results.truncate(self.config.max_results);
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esharp_microblog::{generate_corpus, CorpusConfig};
    use esharp_querylog::{World, WorldConfig};

    fn build() -> (World, Corpus) {
        let world = World::generate(&WorldConfig::tiny(31));
        let corpus = generate_corpus(&world, &CorpusConfig::tiny(31));
        (world, corpus)
    }

    #[test]
    fn finds_the_planted_experts_first() {
        let (world, corpus) = build();
        let detector = Detector::new(&corpus, DetectorConfig::default());
        let results = detector.search("diabetes");
        assert!(!results.is_empty(), "no candidates for diabetes");
        let diabetes = world.domain_by_label("diabetes").unwrap();
        // The top result should be a planted diabetes expert.
        let top = corpus.user(results[0].user);
        assert!(
            top.expert_domains.contains(&diabetes.id),
            "top hit {} is not a diabetes expert",
            top.handle
        );
    }

    #[test]
    fn unknown_query_returns_empty() {
        let (_, corpus) = build();
        let detector = Detector::new(&corpus, DetectorConfig::default());
        assert!(detector.search("zzzzqqq").is_empty());
    }

    #[test]
    fn results_are_sorted_capped_and_deterministic() {
        let (_, corpus) = build();
        let config = DetectorConfig {
            max_results: 5,
            min_zscore: -10.0,
            ..Default::default()
        };
        let detector = Detector::new(&corpus, config);
        let a = detector.search("football");
        let b = detector.search("football");
        assert_eq!(a, b);
        assert!(a.len() <= 5);
        for pair in a.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }

    #[test]
    fn min_zscore_is_monotone_in_result_count() {
        let (_, corpus) = build();
        let counts: Vec<usize> = [-1.0, 0.0, 1.0, 2.0, 4.0]
            .iter()
            .map(|&threshold| {
                let config = DetectorConfig {
                    min_zscore: threshold,
                    max_results: usize::MAX,
                    ..Default::default()
                };
                Detector::new(&corpus, config).search("football").len()
            })
            .collect();
        for pair in counts.windows(2) {
            assert!(pair[0] >= pair[1], "counts not monotone: {counts:?}");
        }
    }

    #[test]
    fn extended_features_change_ranking_but_not_the_contract() {
        let (_, corpus) = build();
        let plain = Detector::new(&corpus, DetectorConfig::default());
        let extended = Detector::new(
            &corpus,
            DetectorConfig {
                extended: Some(crate::features_ext::ExtendedWeights::default()),
                min_zscore: f64::NEG_INFINITY,
                max_results: usize::MAX,
                ..Default::default()
            },
        );
        let a = plain.search("football");
        let b = extended.search("football");
        assert!(!b.is_empty());
        // Same candidate universe, possibly different order/scores.
        let mut ua: Vec<u32> = plain
            .rank_candidates(&corpus.match_query("football"))
            .iter()
            .map(|e| e.user)
            .collect();
        let mut ub: Vec<u32> = b.iter().map(|e| e.user).collect();
        ua.sort_unstable();
        ub.sort_unstable();
        // The plain detector filters at z >= 0; compare against its
        // unfiltered universe instead.
        assert!(ua.iter().all(|u| ub.contains(u)));
        // Determinism.
        assert_eq!(b, extended.search("football"));
        let _ = a;
    }

    #[test]
    fn rank_candidates_over_union_equals_search_for_single_query() {
        let (_, corpus) = build();
        let detector = Detector::new(&corpus, DetectorConfig::default());
        let matching = corpus.match_query("football");
        assert_eq!(detector.rank_candidates(&matching), detector.search("football"));
    }

    #[test]
    fn scratch_path_is_bit_identical_to_reference() {
        let (world, corpus) = build();
        for config in [
            DetectorConfig::default(),
            DetectorConfig {
                extended: Some(crate::features_ext::ExtendedWeights::default()),
                min_zscore: f64::NEG_INFINITY,
                max_results: usize::MAX,
                ..Default::default()
            },
            DetectorConfig {
                cluster_filter: true,
                min_zscore: -5.0,
                ..Default::default()
            },
        ] {
            let detector = Detector::new(&corpus, config);
            let mut scratch = crate::features::CandidateScratch::new();
            for domain in &world.domains {
                let matching = corpus.match_query(&domain.label);
                let fast = detector.rank_candidates_in(&matching, &mut scratch);
                let reference = detector.rank_candidates_reference(&matching);
                assert_eq!(fast, reference, "divergence on {:?}", domain.label);
            }
        }
    }
}
