//! Pal & Counts' optional cluster-analysis filter.
//!
//! The original paper refines its ranking with Gaussian mixture clustering
//! over the feature space, keeping only the "authority" cluster. e#
//! discards the step — "computationally expensive, and … contrary to our
//! objective of improving recall" (§3) — but we implement a 2-means
//! variant so the ablation benches can quantify exactly what discarding it
//! buys and costs.

use crate::detector::ExpertResult;

/// Split results into two clusters by score (1-D 2-means, deterministic
/// initialization at min/max) and keep the higher-scoring cluster.
pub fn cluster_filter(results: Vec<ExpertResult>) -> Vec<ExpertResult> {
    if results.len() < 4 {
        return results;
    }
    let scores: Vec<f64> = results.iter().map(|r| r.score).collect();
    let mut lo = scores.iter().copied().fold(f64::INFINITY, f64::min);
    let mut hi = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if (hi - lo).abs() < 1e-12 {
        return results; // all identical: nothing to separate
    }
    // Lloyd iterations on one dimension converge in a handful of steps.
    let mut boundary = (lo + hi) / 2.0;
    for _ in 0..32 {
        let (mut sum_lo, mut n_lo, mut sum_hi, mut n_hi) = (0.0, 0usize, 0.0, 0usize);
        for &s in &scores {
            if s < boundary {
                sum_lo += s;
                n_lo += 1;
            } else {
                sum_hi += s;
                n_hi += 1;
            }
        }
        if n_lo == 0 || n_hi == 0 {
            break;
        }
        let new_lo = sum_lo / n_lo as f64;
        let new_hi = sum_hi / n_hi as f64;
        let new_boundary = (new_lo + new_hi) / 2.0;
        if (new_boundary - boundary).abs() < 1e-12 {
            lo = new_lo;
            hi = new_hi;
            break;
        }
        boundary = new_boundary;
        lo = new_lo;
        hi = new_hi;
    }
    let cut = (lo + hi) / 2.0;
    results.into_iter().filter(|r| r.score >= cut).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::Features;

    fn result(user: u32, score: f64) -> ExpertResult {
        ExpertResult {
            user,
            score,
            features: Features {
                ts: 0.0,
                mi: 0.0,
                ri: 0.0,
            },
        }
    }

    #[test]
    fn keeps_the_high_cluster() {
        let results = vec![
            result(0, 5.0),
            result(1, 4.8),
            result(2, 0.1),
            result(3, 0.2),
            result(4, 5.2),
        ];
        let kept = cluster_filter(results);
        let users: Vec<u32> = kept.iter().map(|r| r.user).collect();
        assert_eq!(users, vec![0, 1, 4]);
    }

    #[test]
    fn small_or_uniform_inputs_pass_through() {
        let small = vec![result(0, 1.0), result(1, 2.0)];
        assert_eq!(cluster_filter(small.clone()).len(), 2);
        let uniform = vec![result(0, 1.0); 6];
        assert_eq!(cluster_filter(uniform).len(), 6);
    }

    #[test]
    fn filter_reduces_recall() {
        // The exact property the paper discards it for.
        let results: Vec<ExpertResult> =
            (0..10).map(|i| result(i, i as f64)).collect();
        let kept = cluster_filter(results.clone());
        assert!(kept.len() < results.len());
    }
}
