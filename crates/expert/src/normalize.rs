//! Feature normalization (§3): "To normalize the features, we compute
//! their z-score. … In practice, the features appear to be log-normally
//! distributed. Therefore, we take their logarithm to obtain Gaussian
//! distributions."

/// Natural log with an additive epsilon so zero-valued features stay
/// finite (`ln(0)` would sink the z-score to −∞ and poison the mean).
pub fn log_transform(x: f64, epsilon: f64) -> f64 {
    (x + epsilon).ln()
}

/// Z-scores of a sample: `(x − µ) / σ`. When the standard deviation is 0
/// (all candidates identical, or a single candidate), every z-score is 0.
pub fn z_scores(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    if n == 0 {
        return Vec::new();
    }
    let mean = values.iter().sum::<f64>() / n as f64;
    let variance = values.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
    let sd = variance.sqrt();
    if sd == 0.0 || !sd.is_finite() {
        return vec![0.0; n];
    }
    values.iter().map(|x| (x - mean) / sd).collect()
}

/// Apply the full paper pipeline to one feature column: log-transform then
/// z-score.
pub fn normalize_feature(values: &[f64], epsilon: f64) -> Vec<f64> {
    let logged: Vec<f64> = values.iter().map(|&x| log_transform(x, epsilon)).collect();
    z_scores(&logged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_scores_have_zero_mean_unit_sd() {
        let z = z_scores(&[1.0, 2.0, 3.0, 4.0]);
        let mean: f64 = z.iter().sum::<f64>() / z.len() as f64;
        assert!(mean.abs() < 1e-12);
        let var: f64 = z.iter().map(|x| x * x).sum::<f64>() / z.len() as f64;
        assert!((var - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constant_sample_gives_zeros() {
        assert_eq!(z_scores(&[5.0, 5.0, 5.0]), vec![0.0, 0.0, 0.0]);
        assert_eq!(z_scores(&[42.0]), vec![0.0]);
        assert!(z_scores(&[]).is_empty());
    }

    #[test]
    fn log_transform_handles_zero() {
        let y = log_transform(0.0, 1e-6);
        assert!(y.is_finite());
        assert!(y < 0.0);
        assert!(log_transform(1.0, 1e-6) > y);
    }

    #[test]
    fn normalization_is_monotone() {
        let z = normalize_feature(&[0.0, 0.1, 0.5, 1.0], 1e-6);
        for pair in z.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }
}
