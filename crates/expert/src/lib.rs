//! # esharp-expert
//!
//! The baseline expert detector of e# (EDBT 2016, §3): Pal & Counts'
//! topical-authority framework, "simplified for production purposes".
//!
//! * Candidate selection: authors and mentioned users of tweets matching
//!   **all** query terms after lower-casing.
//! * Features: topical signal (TS), mention impact (MI), retweet impact
//!   (RI).
//! * Normalization: log transform (the features are log-normal) + z-score.
//! * Ranking: weighted sum, minimum z-score threshold (the Figure 9 knob),
//!   top-15.
//! * The optional cluster-analysis precision filter the paper discarded is
//!   available behind [`DetectorConfig::cluster_filter`] for ablations.
//!
//! e# itself (`esharp-core`) wraps this detector with query expansion; per
//! the paper it "can work with any Expertise Retrieval system".

#![warn(missing_docs)]

mod cluster_filter;
mod detector;
mod features;
pub mod features_ext;
mod normalize;

pub use cluster_filter::cluster_filter;
pub use detector::{Detector, DetectorConfig, ExpertResult};
pub use features::{
    collect_candidates, compute_features, CandidateScratch, Features, TopicCounts,
};
pub use features_ext::{ExtendedFeatures, ExtendedWeights};
pub use normalize::{log_transform, normalize_feature, z_scores};
