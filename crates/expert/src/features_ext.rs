//! The fuller Pal & Counts feature set.
//!
//! §3: "In their paper, Pal and Counts evaluate a dozen features. We kept
//! those which they present as important" — TS, MI, RI. This module
//! implements the next tier of the original WSDM'11 feature family on top
//! of the same corpus statistics, so the simplification can be measured
//! instead of assumed (see the `extended_features` ablation):
//!
//! * **SS — signal strength**: `#original tweets on topic / #tweets on
//!   topic` (authors of original content over pure retweeters).
//! * **NCS — non-chat signal**: share of on-topic tweets that are not
//!   conversational (do not start with a mention).
//! * **RT — retweet rate**: `#retweets by user on topic / #tweets by user
//!   on topic` (high values indicate an amplifier, not a source; enters
//!   the score negatively).
//! * **HUB — network attention**: `log(1 + followers)`, the coarse
//!   influence prior the original paper derives from the social graph.

use crate::features::TopicCounts;
use esharp_microblog::{Corpus, TweetId, UserId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The extended feature vector (complements [`crate::Features`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExtendedFeatures {
    /// Signal strength: originality of the on-topic stream.
    pub ss: f64,
    /// Non-chat signal: broadcast (not conversational) share.
    pub ncs: f64,
    /// Retweet rate: share of the user's on-topic tweets that are
    /// themselves retweets.
    pub rt: f64,
    /// Network attention: `ln(1 + followers)`.
    pub hub: f64,
}

/// Per-candidate extended counts accumulated from the match set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtendedCounts {
    /// On-topic tweets authored by the user.
    pub tweets: u64,
    /// … of which are original (not retweets).
    pub original: u64,
    /// … of which are broadcast (do not start with a mention).
    pub non_chat: u64,
}

/// True when a tweet is conversational — it opens with a mention. The
/// check runs on the corpus's interned tokens (one array lookup + first
/// byte of the interned text), not on a re-tokenization of the tweet.
pub fn is_conversational(corpus: &Corpus, tweet: TweetId) -> bool {
    corpus
        .tweet_tokens(tweet)
        .first()
        .map(|&t| corpus.token_text(t).starts_with('@'))
        .unwrap_or(false)
}

/// Accumulate extended counts for every author in the match set.
pub fn collect_extended(corpus: &Corpus, matching: &[TweetId]) -> HashMap<UserId, ExtendedCounts> {
    let mut counts: HashMap<UserId, ExtendedCounts> = HashMap::new();
    for &tid in matching {
        let tweet = corpus.tweet(tid);
        let entry = counts.entry(tweet.author).or_default();
        entry.tweets += 1;
        if tweet.retweet_of.is_none() {
            entry.original += 1;
        }
        if !is_conversational(corpus, tid) {
            entry.non_chat += 1;
        }
    }
    counts
}

/// Turn extended counts into the feature vector.
pub fn compute_extended(
    corpus: &Corpus,
    user: UserId,
    counts: &ExtendedCounts,
    topic: &TopicCounts,
) -> ExtendedFeatures {
    let ratio = |num: u64, den: u64| {
        if den == 0 {
            0.0
        } else {
            num as f64 / den as f64
        }
    };
    let retweets_authored = counts.tweets.saturating_sub(counts.original);
    // `topic.tweets_on_topic` equals `counts.tweets` for authors; the
    // parameter keeps the signature honest for mentioned-only candidates
    // (zero authored tweets ⇒ all ratios zero).
    let _ = topic;
    ExtendedFeatures {
        ss: ratio(counts.original, counts.tweets),
        ncs: ratio(counts.non_chat, counts.tweets),
        rt: ratio(retweets_authored, counts.tweets),
        hub: (1.0 + corpus.user(user).followers as f64).ln(),
    }
}

/// Weights for folding the extended features into the aggregate score.
/// RT enters negatively: pure amplifiers are not sources.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ExtendedWeights {
    /// Weight of SS.
    pub ss: f64,
    /// Weight of NCS.
    pub ncs: f64,
    /// Weight of RT (applied negatively).
    pub rt: f64,
    /// Weight of HUB.
    pub hub: f64,
}

impl Default for ExtendedWeights {
    fn default() -> Self {
        ExtendedWeights {
            ss: 0.3,
            ncs: 0.2,
            rt: 0.3,
            hub: 0.1,
        }
    }
}

impl ExtendedWeights {
    /// The weighted extended contribution for one candidate, over
    /// *z-scored* feature columns.
    pub fn combine(&self, zss: f64, zncs: f64, zrt: f64, zhub: f64) -> f64 {
        self.ss * zss + self.ncs * zncs - self.rt * zrt + self.hub * zhub
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esharp_microblog::{Tweet, User};

    fn user(id: UserId, handle: &str, followers: u64) -> User {
        User {
            id,
            handle: handle.to_string(),
            display_name: handle.to_string(),
            description: String::new(),
            followers,
            verified: false,
            expert_domains: vec![],
            spam: false,
        }
    }

    fn corpus() -> Corpus {
        let users = vec![user(0, "orig", 100), user(1, "amp", 10)];
        let resolve = |h: &str| match h {
            "orig" => Some(0),
            "amp" => Some(1),
            _ => None,
        };
        let tweets = vec![
            Tweet::parse(0, 0, "niners win big today", resolve),
            Tweet::parse(1, 0, "@amp the niners looked great", resolve),
            Tweet::parse(2, 1, "rt @orig: niners win big today", resolve),
        ];
        Corpus::new(users, tweets)
    }

    #[test]
    fn extended_counts_split_original_and_chat() {
        let c = corpus();
        let matching = c.match_query("niners");
        let counts = collect_extended(&c, &matching);
        let orig = counts[&0];
        assert_eq!(orig.tweets, 2);
        assert_eq!(orig.original, 2);
        assert_eq!(orig.non_chat, 1); // tweet 1 starts with @amp
        let amp = counts[&1];
        assert_eq!(amp.tweets, 1);
        assert_eq!(amp.original, 0);
    }

    #[test]
    fn features_separate_sources_from_amplifiers() {
        let c = corpus();
        let matching = c.match_query("niners");
        let counts = collect_extended(&c, &matching);
        let topic = TopicCounts::default();
        let orig = compute_extended(&c, 0, &counts[&0], &topic);
        let amp = compute_extended(&c, 1, &counts[&1], &topic);
        assert!(orig.ss > amp.ss);
        assert!(amp.rt > orig.rt);
        assert!(orig.hub > amp.hub); // more followers
        assert!((amp.rt - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weights_penalize_retweet_rate() {
        let w = ExtendedWeights::default();
        let source = w.combine(1.0, 1.0, -1.0, 0.0);
        let amplifier = w.combine(-1.0, -1.0, 1.0, 0.0);
        assert!(source > amplifier);
    }

    #[test]
    fn empty_counts_are_all_zero() {
        let c = corpus();
        let f = compute_extended(&c, 0, &ExtendedCounts::default(), &TopicCounts::default());
        assert_eq!(f.ss, 0.0);
        assert_eq!(f.rt, 0.0);
        assert!(f.hub > 0.0); // followers exist regardless of activity
    }
}
