//! The evaluation testbed: one coherent world, search log, corpus and
//! trained e# instance shared by every experiment.

use esharp_core::{
    run_offline, run_offline_resumable, CheckpointDir, Esharp, EsharpConfig, EsharpResult,
    OfflineArtifacts,
};
use esharp_microblog::{generate_corpus, Corpus, CorpusConfig};
use esharp_querylog::{AggregatedLog, LogConfig, LogGenerator, World, WorldConfig};
use serde::{Deserialize, Serialize};

/// Size presets for the testbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvalScale {
    /// Unit-test sized (seconds end to end).
    Tiny,
    /// Development sized.
    Small,
    /// The scale the EXPERIMENTS.md numbers are produced at: hundreds of
    /// domains, millions of raw log events, tens of thousands of posts —
    /// the laptop-scale analog of the paper's 998 GB / 60 M-edge setup.
    Paper,
}

/// Fully materialized evaluation fixture.
pub struct Testbed {
    /// Ground truth.
    pub world: World,
    /// The aggregated search log the offline stage consumed.
    pub log: AggregatedLog,
    /// Offline artifacts (graph, clustering trace, domains, stage stats).
    pub artifacts: OfflineArtifacts,
    /// The microblog corpus.
    pub corpus: Corpus,
    /// The trained online system.
    pub esharp: Esharp,
    /// The e# configuration used.
    pub config: EsharpConfig,
    /// The scale this testbed was built at.
    pub scale: EvalScale,
}

impl Testbed {
    /// Build a testbed at the given scale and seed. Deterministic.
    pub fn build(scale: EvalScale, seed: u64) -> Testbed {
        let (world_cfg, log_cfg, corpus_cfg, esharp_cfg) = presets(scale, seed);
        let world = World::generate(&world_cfg);
        let events = LogGenerator::new(&world, &log_cfg);
        let log = AggregatedLog::from_events(events, world.terms.len());
        let artifacts =
            run_offline(&log, &world, &esharp_cfg).expect("offline pipeline must succeed");
        let corpus = generate_corpus(&world, &corpus_cfg);
        let esharp = Esharp::new(artifacts.domains.clone(), esharp_cfg.clone());
        Testbed {
            world,
            log,
            artifacts,
            corpus,
            esharp,
            config: esharp_cfg,
            scale,
        }
    }

    /// [`Testbed::build`] through the crash-safe offline pipeline: every
    /// stage is checkpointed into `ckpt`, and a rerun (same scale + seed)
    /// resumes from whatever validated checkpoints survive. Unlike
    /// [`Testbed::build`] this propagates persistence failures instead of
    /// panicking — the CLI turns them into a nonzero exit.
    pub fn build_resumable(
        scale: EvalScale,
        seed: u64,
        ckpt: &CheckpointDir,
    ) -> EsharpResult<Testbed> {
        let (world_cfg, log_cfg, corpus_cfg, esharp_cfg) = presets(scale, seed);
        let world = World::generate(&world_cfg);
        let events = LogGenerator::new(&world, &log_cfg);
        let log = AggregatedLog::from_events(events, world.terms.len());
        let artifacts = run_offline_resumable(&log, &world, &esharp_cfg, ckpt)?;
        let corpus = generate_corpus(&world, &corpus_cfg);
        let esharp = Esharp::new(artifacts.domains.clone(), esharp_cfg.clone());
        Ok(Testbed {
            world,
            log,
            artifacts,
            corpus,
            esharp,
            config: esharp_cfg,
            scale,
        })
    }

    /// Rebuild the online system with a different detector threshold
    /// (Figures 9–10 sweep this without re-running the offline stage).
    pub fn with_min_zscore(&self, min_zscore: f64) -> Esharp {
        let mut config = self.config.clone();
        config.detector.min_zscore = min_zscore;
        Esharp::new(self.esharp.domains().clone(), config)
    }
}

fn presets(scale: EvalScale, seed: u64) -> (WorldConfig, LogConfig, CorpusConfig, EsharpConfig) {
    match scale {
        EvalScale::Tiny => (
            WorldConfig::tiny(seed),
            LogConfig::tiny(seed ^ 1),
            CorpusConfig::tiny(seed ^ 2),
            EsharpConfig::tiny(),
        ),
        EvalScale::Small => (
            WorldConfig {
                domains_per_category: 15,
                seed,
                ..WorldConfig::default()
            },
            LogConfig {
                events: 150_000,
                seed: seed ^ 1,
                ..LogConfig::default()
            },
            CorpusConfig {
                regular_users: 200,
                spam_users: 20,
                seed: seed ^ 2,
                ..CorpusConfig::default()
            },
            EsharpConfig {
                min_support: 20,
                workers: 2,
                ..EsharpConfig::default()
            },
        ),
        EvalScale::Paper => (
            WorldConfig {
                domains_per_category: 40,
                seed,
                ..WorldConfig::default()
            },
            LogConfig {
                events: 2_000_000,
                seed: seed ^ 1,
                ..LogConfig::default()
            },
            CorpusConfig {
                regular_users: 1_500,
                spam_users: 120,
                seed: seed ^ 2,
                ..CorpusConfig::default()
            },
            EsharpConfig {
                min_support: 50,
                workers: 8,
                ..EsharpConfig::default()
            },
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_testbed_is_coherent() {
        let tb = Testbed::build(EvalScale::Tiny, 61);
        assert!(tb.artifacts.domains.len() > 1);
        assert!(!tb.corpus.tweets().is_empty());
        let out = tb.esharp.search(&tb.corpus, "49ers");
        assert!(!out.expansion.is_empty());
    }

    #[test]
    fn resumable_build_matches_plain_build() {
        let dir = std::env::temp_dir().join("esharp_harness_resume");
        let _ = std::fs::remove_dir_all(&dir);
        let ckpt = CheckpointDir::new(&dir).unwrap();
        let plain = Testbed::build(EvalScale::Tiny, 61);
        // Cold: every stage computed and checkpointed. Warm: every stage
        // loaded back. Both must match the checkpoint-free build exactly.
        let cold = Testbed::build_resumable(EvalScale::Tiny, 61, &ckpt).unwrap();
        let warm = Testbed::build_resumable(EvalScale::Tiny, 61, &ckpt).unwrap();
        for (name, tb) in [("cold", &cold), ("warm", &warm)] {
            assert_eq!(
                tb.artifacts.domains.domains(),
                plain.artifacts.domains.domains(),
                "{name} domains diverged"
            );
            assert_eq!(tb.artifacts.outcome.trace, plain.artifacts.outcome.trace);
            assert_eq!(tb.artifacts.graph.num_edges(), plain.artifacts.graph.num_edges());
            assert_eq!(tb.artifacts.dropped_terms, plain.artifacts.dropped_terms);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn threshold_override_changes_only_the_detector() {
        let tb = Testbed::build(EvalScale::Tiny, 61);
        let strict = tb.with_min_zscore(5.0);
        let loose = tb.with_min_zscore(-5.0);
        let q = "football";
        assert!(
            strict.search(&tb.corpus, q).experts.len()
                <= loose.search(&tb.corpus, q).experts.len()
        );
    }
}
