//! ASCII rendering and JSON persistence for experiment outputs.

use serde::Serialize;
use std::fmt::Write as _;
use std::path::Path;

/// A renderable ASCII table.
#[derive(Debug, Clone)]
pub struct AsciiTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl AsciiTable {
    /// Start a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        AsciiTable {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (cells are stringified by the caller).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                let _ = write!(s, "{:<width$}", cell, width = widths[i]);
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }
}

/// Render a named numeric series (a figure's data) as `x<tab>y` lines.
pub fn render_series(title: &str, series: &[(String, Vec<(f64, f64)>)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    for (name, points) in series {
        let _ = writeln!(out, "-- {name}");
        for (x, y) in points {
            let _ = writeln!(out, "{x:>8.3}\t{y:.4}");
        }
    }
    out
}

/// Persist any serializable experiment payload as pretty JSON.
pub fn save_json<T: Serialize>(path: impl AsRef<Path>, value: &T) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let json = serde_json::to_string_pretty(value).map_err(std::io::Error::other)?;
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = AsciiTable::new("Demo", &["set", "value"]);
        t.row(vec!["Sports".into(), "0.96".into()]);
        t.row(vec!["Top 250".into(), "0.86".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("Sports"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn series_renders_points() {
        let s = render_series(
            "Fig",
            &[("e#".to_string(), vec![(0.0, 1.0), (1.0, 0.5)])],
        );
        assert!(s.contains("-- e#"));
        assert!(s.contains("0.5000"));
    }

    #[test]
    fn save_json_writes_file() {
        let dir = std::env::temp_dir().join("esharp_eval_test");
        let path = dir.join("x.json");
        save_json(&path, &vec![1, 2, 3]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains('2'));
        let _ = std::fs::remove_dir_all(dir);
    }
}
