//! Unit tests for the scaling experiment (kept in a separate file so the
//! experiment module stays readable).

use super::scaling::{log_scaling, render_log_scaling, worker_scaling};
use esharp_graph::MultiGraph;

#[test]
fn log_scaling_grows_monotonically() {
    let rows = log_scaling(11, &[5_000, 20_000], 10);
    assert_eq!(rows.len(), 2);
    assert!(rows[1].terms >= rows[0].terms);
    assert!(rows[1].edges >= rows[0].edges);
    assert!(rows.iter().all(|r| r.communities > 0));
    assert!(render_log_scaling(&rows).contains("Events"));
}

#[test]
fn worker_scaling_preserves_the_partition() {
    // A graph big enough that the parallel path actually engages.
    let edges: Vec<(u32, u32, u64)> = (0..4000u32)
        .map(|i| (i % 97, (i * 31) % 97, 1 + (i % 3) as u64))
        .collect();
    let g = MultiGraph::from_edges(97, edges);
    let rows = worker_scaling(&g, &[1, 4]);
    assert_eq!(rows.len(), 2);
    assert!(rows[0].speedup == 1.0);
    // same_partition is asserted inside worker_scaling; reaching here is
    // the real check.
}
