//! Table-shaped experiments: Table 1 (query sets), Tables 2–7 (example
//! experts), Table 8 (coverage), Table 9 (resource consumption).

use crate::crowd::Crowd;
use crate::harness::Testbed;
use crate::metrics::{coverage, improvement_pct, CoverageRow};
use crate::querysets::{build_query_sets, QuerySet};
use crate::report::AsciiTable;
use crate::experiments::runs::SetRun;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Table 1: the query sets used in the study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1 {
    /// Sets with counts and example queries.
    pub sets: Vec<QuerySet>,
}

/// Run Table 1.
pub fn table1(testbed: &Testbed) -> Table1 {
    Table1 {
        sets: build_query_sets(&testbed.world, &testbed.log),
    }
}

impl Table1 {
    /// Render in the paper's Set/Count/Examples shape.
    pub fn render(&self) -> String {
        let mut t = AsciiTable::new(
            "Table 1: queries used for the crowdsourcing study",
            &["Set Name", "Count", "Examples"],
        );
        for set in &self.sets {
            t.row(vec![
                set.name.clone(),
                set.queries.len().to_string(),
                set.examples(5).join(", "),
            ]);
        }
        t.render()
    }
}

/// One expert card as printed in Tables 2–7.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExpertCard {
    /// Handle / screen name.
    pub screen_name: String,
    /// Profile description.
    pub description: String,
    /// Verified flag.
    pub verified: bool,
    /// Follower count.
    pub followers: u64,
    /// Ground truth: is this account actually expert for the query?
    pub relevant: bool,
}

/// Tables 2–7: selected experts for the showcase queries, both algorithms.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExampleTables {
    /// Per query: (query, baseline top-k, e# top-k).
    pub entries: Vec<(String, Vec<ExpertCard>, Vec<ExpertCard>)>,
}

/// The six showcase queries of Tables 2–7.
pub const SHOWCASE_QUERIES: [&str; 6] = [
    "49ers",
    "bluetooth speakers",
    "dow futures",
    "diabetes",
    "world war i",
    "sarah palin",
];

/// Run the example tables (top `k` per algorithm).
pub fn example_tables(testbed: &Testbed, k: usize) -> ExampleTables {
    let card = |user_id: u32, query: &str| {
        let u = testbed.corpus.user(user_id);
        ExpertCard {
            screen_name: u.handle.clone(),
            description: u.description.clone(),
            verified: u.verified,
            followers: u.followers,
            relevant: Crowd::ground_truth(&testbed.world, &testbed.corpus, query, user_id),
        }
    };
    let entries = SHOWCASE_QUERIES
        .iter()
        .map(|&query| {
            let baseline = testbed
                .esharp
                .search_baseline(&testbed.corpus, query)
                .experts
                .iter()
                .take(k)
                .map(|e| card(e.user, query))
                .collect();
            let esharp = testbed
                .esharp
                .search(&testbed.corpus, query)
                .experts
                .iter()
                .take(k)
                .map(|e| card(e.user, query))
                .collect();
            (query.to_string(), baseline, esharp)
        })
        .collect();
    ExampleTables { entries }
}

impl ExampleTables {
    /// Render in the paper's per-query card shape.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (query, baseline, esharp) in &self.entries {
            let mut t = AsciiTable::new(
                format!("Tables 2–7: selected experts for the query \"{query}\""),
                &["Algorithm", "Screen Name", "Description", "Verified", "Followers"],
            );
            for (algo, cards) in [("Baseline", baseline), ("e#", esharp)] {
                for c in cards {
                    t.row(vec![
                        algo.to_string(),
                        c.screen_name.clone(),
                        truncate(&c.description, 48),
                        c.verified.to_string(),
                        c.followers.to_string(),
                    ]);
                }
            }
            out.push_str(&t.render());
            out.push('\n');
        }
        out
    }
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        s.to_string()
    } else {
        format!("{}…", &s[..s.char_indices().take(max).last().map(|(i, c)| i + c.len_utf8()).unwrap_or(max)])
    }
}

/// Table 8: proportion of queries with at least one candidate expert.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table8 {
    /// One row per query set.
    pub rows: Vec<CoverageRow>,
}

/// Run Table 8 from precomputed set runs.
pub fn table8(runs: &[SetRun]) -> Table8 {
    let rows = runs
        .iter()
        .map(|run| {
            let baseline = coverage(&run.baseline_counts());
            let esharp = coverage(&run.esharp_counts());
            CoverageRow {
                set: run.set.name.clone(),
                baseline,
                esharp,
                improvement: improvement_pct(baseline, esharp),
            }
        })
        .collect();
    Table8 { rows }
}

impl Table8 {
    /// Render in the paper's shape.
    pub fn render(&self) -> String {
        let mut t = AsciiTable::new(
            "Table 8: proportion of queries with ≥1 candidate expert",
            &["Data set", "Baseline", "e#", "Improvement"],
        );
        for row in &self.rows {
            t.row(vec![
                row.set.clone(),
                format!("{:.2}", row.baseline),
                format!("{:.2}", row.esharp),
                format!("{:+.1}%", row.improvement),
            ]);
        }
        t.render()
    }
}

/// Table 9: resource consumption of the pipeline stages.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table9 {
    /// `(step, workers, wall, bytes read, bytes written)` rows for the
    /// offline stages.
    pub offline: Vec<(String, usize, Duration, u64, u64)>,
    /// Mean online expansion latency.
    pub expansion_avg: Duration,
    /// Mean online detection latency.
    pub detection_avg: Duration,
    /// Queries timed for the online averages.
    pub timed_queries: usize,
    /// Size of the domain collection (paper: ~100 MB).
    pub collection_bytes: u64,
}

/// Run Table 9: offline stats from the artifacts, online latencies
/// measured over the given probe queries.
pub fn table9(testbed: &Testbed, probe_queries: &[String]) -> Table9 {
    let offline = testbed
        .artifacts
        .stages
        .iter()
        .map(|s| {
            (
                s.stage.clone(),
                s.workers,
                s.wall,
                s.bytes_read,
                s.bytes_written,
            )
        })
        .collect();
    let mut expansion_total = Duration::ZERO;
    let mut detection_total = Duration::ZERO;
    for q in probe_queries {
        let out = testbed.esharp.search(&testbed.corpus, q);
        expansion_total += out.expansion_time;
        detection_total += out.detection_time;
    }
    let n = probe_queries.len().max(1) as u32;
    Table9 {
        offline,
        expansion_avg: expansion_total / n,
        detection_avg: detection_total / n,
        timed_queries: probe_queries.len(),
        collection_bytes: testbed.esharp.domains().byte_size(),
    }
}

impl Table9 {
    /// Render in the paper's Step/VMs/Runtime/Read/Write shape.
    pub fn render(&self) -> String {
        let mut t = AsciiTable::new(
            "Table 9: resource consumption for one iteration",
            &["Step", "Workers", "Runtime", "Read", "Write"],
        );
        for (step, workers, wall, read, write) in &self.offline {
            t.row(vec![
                step.clone(),
                workers.to_string(),
                format!("{wall:.2?}"),
                human_bytes(*read),
                human_bytes(*write),
            ]);
        }
        t.row(vec![
            "expansion".into(),
            "1".into(),
            format!("{:.2?}", self.expansion_avg),
            String::new(),
            String::new(),
        ]);
        t.row(vec![
            "detection".into(),
            "1".into(),
            format!("{:.2?}", self.detection_avg),
            String::new(),
            String::new(),
        ]);
        format!(
            "{}(domain collection: {}, online latencies averaged over {} queries)\n",
            t.render(),
            human_bytes(self.collection_bytes),
            self.timed_queries
        )
    }
}

fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    format!("{value:.1} {}", UNITS[unit])
}
