//! Freshness experiment — §2's unmeasured claim, measured.
//!
//! "Thanks to the query log, our collection of domains is inherently
//! current. For instance, at the time of writing, it contained keywords
//! related to new technological products (smart watches or VR glasses) or
//! upcoming media events (e.g., Star Wars VII)."
//!
//! The pipeline runs weekly (§6.3). This experiment simulates two weekly
//! iterations: week 1's world, then week 2's world where new topics have
//! *emerged* (and started trending in search). Rebuilding the collection
//! must pick the emerging topics up — queries for them go from
//! unanswerable to expanded.

use crate::report::AsciiTable;
use esharp_core::{run_offline, DomainCollection, EsharpConfig};
use esharp_querylog::{
    AggregatedLog, Category, Domain, LogConfig, LogGenerator, World, WorldConfig,
};
use serde::{Deserialize, Serialize};

/// The emerging topics injected into week 2 (the paper's own examples).
pub const EMERGING: [(&str, &[&str]); 3] = [
    ("star wars vii", &["star wars vii", "the force awakens", "episode vii"]),
    ("smart watches", &["smart watches", "smartwatch", "watch os"]),
    ("vr glasses", &["vr glasses", "virtual reality headset", "vr headset"]),
];

/// Outcome of the two-week simulation for one emerging topic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FreshnessRow {
    /// The emerging head term.
    pub topic: String,
    /// Was the topic in week 1's collection?
    pub week1_known: bool,
    /// Is it in week 2's collection after the weekly rebuild?
    pub week2_known: bool,
    /// Expansion terms week 2's collection produces for it.
    pub week2_expansion: Vec<String>,
}

/// Append the emerging domains to a world (week 2's reality).
fn with_emerging(week1: &WorldConfig) -> World {
    let mut world = World::generate(week1);
    for (label, terms) in EMERGING {
        let id = world.domains.len() as u32;
        let mut term_ids = Vec::new();
        for t in terms {
            // Intern by hand: these terms are new to the world.
            let term_id = world.terms.len() as u32;
            world.terms.push(esharp_querylog::TermInfo {
                text: t.to_string(),
                domains: vec![id],
            });
            term_ids.push(term_id);
        }
        let url_base = world.urls.len() as u32;
        let slug: String = label.chars().filter(|c| c.is_alphanumeric()).collect();
        world.urls.push(format!("{slug}-official.com"));
        world.urls.push(format!("{slug}-news.com"));
        let variant_flags = vec![false; term_ids.len()];
        world.domains.push(Domain {
            id,
            label: label.to_string(),
            category: Category::General,
            terms: term_ids,
            variant_flags,
            urls: vec![url_base, url_base + 1],
            hub_urls: vec![],
            // Emerging topics trend hard: weight comparable to the head
            // showcase domains (popularities are normalized per-world, so
            // this is only a relative share).
            popularity: 0.02,
        });
    }
    world
}

/// Run the two-week freshness simulation.
pub fn freshness(seed: u64) -> Vec<FreshnessRow> {
    let world_config = WorldConfig::tiny(seed);
    let log_config = LogConfig::tiny(seed ^ 1);
    let esharp_config = EsharpConfig::tiny();

    let build = |world: &World| -> DomainCollection {
        let log = AggregatedLog::from_events(
            LogGenerator::new(world, &log_config),
            world.terms.len(),
        );
        run_offline(&log, world, &esharp_config)
            .expect("offline pipeline")
            .domains
    };

    let week1_world = World::generate(&world_config);
    let week1 = build(&week1_world);
    let week2_world = with_emerging(&world_config);
    let week2 = build(&week2_world);

    EMERGING
        .iter()
        .map(|(topic, _)| FreshnessRow {
            topic: topic.to_string(),
            week1_known: week1.lookup(topic).is_some(),
            week2_known: week2.lookup(topic).is_some(),
            week2_expansion: week2.expand(topic, 10),
        })
        .collect()
}

/// Render the freshness table.
pub fn render_freshness(rows: &[FreshnessRow]) -> String {
    let mut t = AsciiTable::new(
        "Freshness: emerging topics across two weekly pipeline iterations (§2)",
        &["Topic", "Week 1", "Week 2", "Week 2 expansion"],
    );
    for r in rows {
        t.row(vec![
            r.topic.clone(),
            if r.week1_known { "known" } else { "unknown" }.into(),
            if r.week2_known { "known" } else { "unknown" }.into(),
            r.week2_expansion.join(", "),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weekly_rebuild_picks_up_emerging_topics() {
        let rows = freshness(901);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(!row.week1_known, "{} leaked into week 1", row.topic);
            assert!(row.week2_known, "{} missed in week 2", row.topic);
            assert!(
                row.week2_expansion.len() >= 2,
                "{} expanded to {:?} only",
                row.topic,
                row.week2_expansion
            );
        }
        assert!(render_freshness(&rows).contains("star wars vii"));
    }

    #[test]
    fn emerging_world_is_a_superset() {
        let config = WorldConfig::tiny(902);
        let base = World::generate(&config);
        let extended = with_emerging(&config);
        assert_eq!(extended.domains.len(), base.domains.len() + 3);
        assert!(extended.term_id("the force awakens").is_some());
        assert!(base.term_id("the force awakens").is_none());
    }
}
