//! Scaling study (beyond the paper's single Table 9 row): how the offline
//! stages behave as the log grows, and how the parallel statistics pass
//! speeds up with workers — the quantitative backing for the paper's
//! "processed in a distributed, parallel fashion" claim.

use crate::report::AsciiTable;
use esharp_community::{cluster_parallel, ParallelConfig};
use esharp_graph::{build_graph, GraphConfig, MultiGraph};
use esharp_querylog::{AggregatedLog, LogConfig, LogGenerator, World, WorldConfig};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// One row of the log-size scaling sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalingRow {
    /// Raw events generated.
    pub events: usize,
    /// Query terms surviving the support filter.
    pub terms: usize,
    /// Similarity-graph edges.
    pub edges: usize,
    /// Clustering iterations to convergence.
    pub iterations: usize,
    /// Final community count.
    pub communities: usize,
    /// Extraction wall time.
    pub extraction_wall: Duration,
    /// Clustering wall time.
    pub clustering_wall: Duration,
}

/// Sweep the raw log size and measure every offline stage.
pub fn log_scaling(seed: u64, event_counts: &[usize], min_support: u64) -> Vec<ScalingRow> {
    let world = World::generate(&WorldConfig {
        domains_per_category: 20,
        seed,
        ..WorldConfig::default()
    });
    event_counts
        .iter()
        .map(|&events| {
            let log = AggregatedLog::from_events(
                LogGenerator::new(
                    &world,
                    &LogConfig {
                        events,
                        seed: seed ^ 1,
                        ..LogConfig::default()
                    },
                ),
                world.terms.len(),
            );
            let started = Instant::now();
            let (filtered, _) = log.filter_min_support(min_support);
            let (graph, _) = build_graph(&filtered, &world, &GraphConfig::default());
            let extraction_wall = started.elapsed();

            let started = Instant::now();
            let multigraph = MultiGraph::from_similarity(&graph, 6.0);
            let outcome = cluster_parallel(&multigraph, &ParallelConfig::default());
            let clustering_wall = started.elapsed();

            ScalingRow {
                events,
                terms: graph.num_nodes(),
                edges: graph.num_edges(),
                iterations: outcome.iterations(),
                communities: outcome.assignment.num_communities(),
                extraction_wall,
                clustering_wall,
            }
        })
        .collect()
}

/// Render the log-size sweep.
pub fn render_log_scaling(rows: &[ScalingRow]) -> String {
    let mut t = AsciiTable::new(
        "Scaling: offline pipeline vs raw log size",
        &["Events", "Terms", "Edges", "Iterations", "Communities", "Extraction", "Clustering"],
    );
    for r in rows {
        t.row(vec![
            r.events.to_string(),
            r.terms.to_string(),
            r.edges.to_string(),
            r.iterations.to_string(),
            r.communities.to_string(),
            format!("{:.1?}", r.extraction_wall),
            format!("{:.1?}", r.clustering_wall),
        ]);
    }
    t.render()
}

/// One row of the worker-count sweep over the clustering statistics pass.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkerRow {
    /// Worker threads.
    pub workers: usize,
    /// Clustering wall time.
    pub wall: Duration,
    /// Speedup vs 1 worker.
    pub speedup: f64,
}

/// Sweep worker counts over the same multigraph; results must be
/// identical, wall time should shrink (for graphs big enough to amortize
/// the fan-out).
pub fn worker_scaling(multigraph: &MultiGraph, worker_counts: &[usize]) -> Vec<WorkerRow> {
    let mut rows: Vec<WorkerRow> = Vec::with_capacity(worker_counts.len());
    let mut reference: Option<esharp_community::Assignment> = None;
    let mut base_wall = None;
    for &workers in worker_counts {
        let started = Instant::now();
        let outcome = cluster_parallel(
            multigraph,
            &ParallelConfig {
                workers,
                ..Default::default()
            },
        );
        let wall = started.elapsed();
        match &reference {
            Some(r) => assert!(
                r.same_partition(&outcome.assignment),
                "worker count changed the clustering"
            ),
            None => reference = Some(outcome.assignment.clone()),
        }
        let base = *base_wall.get_or_insert(wall);
        rows.push(WorkerRow {
            workers,
            wall,
            speedup: base.as_secs_f64() / wall.as_secs_f64().max(1e-12),
        });
    }
    rows
}

/// Render the worker sweep.
pub fn render_worker_scaling(rows: &[WorkerRow]) -> String {
    let mut t = AsciiTable::new(
        "Scaling: clustering wall time vs workers (same partition verified)",
        &["Workers", "Wall", "Speedup"],
    );
    for r in rows {
        t.row(vec![
            r.workers.to_string(),
            format!("{:.1?}", r.wall),
            format!("{:.2}x", r.speedup),
        ]);
    }
    t.render()
}
