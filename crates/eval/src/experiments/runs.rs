//! Shared execution of the 750-query comparison: both algorithms over
//! every query set, reused by Table 8, Figure 8 and the example tables.

use crate::harness::Testbed;
use crate::querysets::{build_query_sets, QuerySet};
use esharp_microblog::UserId;
use serde::{Deserialize, Serialize};

/// Results of running one query set through both algorithms.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SetRun {
    /// The query set.
    pub set: QuerySet,
    /// Ranked experts per query — baseline.
    pub baseline: Vec<Vec<UserId>>,
    /// Ranked experts per query — e#.
    pub esharp: Vec<Vec<UserId>>,
}

impl SetRun {
    /// Experts-per-query counts for the baseline.
    pub fn baseline_counts(&self) -> Vec<usize> {
        self.baseline.iter().map(Vec::len).collect()
    }

    /// Experts-per-query counts for e#.
    pub fn esharp_counts(&self) -> Vec<usize> {
        self.esharp.iter().map(Vec::len).collect()
    }
}

/// Run every Table 1 set through baseline and e#.
pub fn run_all_sets(testbed: &Testbed) -> Vec<SetRun> {
    let sets = build_query_sets(&testbed.world, &testbed.log);
    sets.into_iter()
        .map(|set| {
            let baseline: Vec<Vec<UserId>> = set
                .queries
                .iter()
                .map(|q| {
                    testbed
                        .esharp
                        .search_baseline(&testbed.corpus, q)
                        .experts
                        .iter()
                        .map(|e| e.user)
                        .collect()
                })
                .collect();
            let esharp: Vec<Vec<UserId>> = set
                .queries
                .iter()
                .map(|q| {
                    testbed
                        .esharp
                        .search(&testbed.corpus, q)
                        .experts
                        .iter()
                        .map(|e| e.user)
                        .collect()
                })
                .collect();
            SetRun {
                set,
                baseline,
                esharp,
            }
        })
        .collect()
}
