//! Offline-side figures: Figure 5 (convergence), Figure 6 (community
//! sizes), Figure 7 (the 49ers neighborhood).

use crate::harness::Testbed;
use crate::report::{render_series, AsciiTable};
use esharp_community::{neighborhood_of_term, CommunityView, SizeHistogram};
use serde::{Deserialize, Serialize};

/// Figure 5: communities count per iteration of the community-detection
/// algorithm.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5 {
    /// `(iteration, communities)` points.
    pub points: Vec<(usize, usize)>,
    /// Iterations to convergence (the paper observes ~6).
    pub iterations_to_converge: usize,
}

/// Run Figure 5 on a built testbed.
pub fn fig5(testbed: &Testbed) -> Fig5 {
    let trace = &testbed.artifacts.outcome.trace;
    Fig5 {
        points: trace.iter().map(|s| (s.iteration, s.communities)).collect(),
        iterations_to_converge: testbed.artifacts.outcome.iterations(),
    }
}

impl Fig5 {
    /// Render as a series.
    pub fn render(&self) -> String {
        let series = vec![(
            "communities".to_string(),
            self.points
                .iter()
                .map(|&(i, c)| (i as f64, c as f64))
                .collect(),
        )];
        format!(
            "{}(converged after {} iterations)\n",
            render_series("Figure 5: convergence of community detection", &series),
            self.iterations_to_converge
        )
    }
}

/// Figure 6: distribution of community sizes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6 {
    /// The histogram.
    pub histogram: SizeHistogram,
    /// Bucket shares `[1, 2–10, 10–50, >50]`.
    pub shares: [f64; 4],
}

/// Run Figure 6.
pub fn fig6(testbed: &Testbed) -> Fig6 {
    let histogram = SizeHistogram::compute(&testbed.artifacts.outcome.assignment);
    Fig6 {
        histogram,
        shares: histogram.shares(),
    }
}

impl Fig6 {
    /// Render as a table.
    pub fn render(&self) -> String {
        let mut t = AsciiTable::new(
            "Figure 6: distribution of community sizes",
            &["queries per community", "count", "share"],
        );
        let counts = [
            self.histogram.orphans,
            self.histogram.small,
            self.histogram.medium,
            self.histogram.large,
        ];
        for (label, (count, share)) in ["1", "2 to 10", "10 to 50", "More than 50"]
            .iter()
            .zip(counts.iter().zip(self.shares.iter()))
        {
            t.row(vec![
                label.to_string(),
                count.to_string(),
                format!("{:.1}%", share * 100.0),
            ]);
        }
        t.render()
    }
}

/// Figure 7: the community containing a seed term plus its closest
/// communities.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7 {
    /// The seed term.
    pub term: String,
    /// The seed community.
    pub seed: CommunityView,
    /// Closest communities, nearest first.
    pub neighbors: Vec<CommunityView>,
}

/// Run Figure 7 for a seed term (the paper uses `49ers`, k = 3).
pub fn fig7(testbed: &Testbed, term: &str, k: usize) -> Option<Fig7> {
    let (seed, neighbors) = neighborhood_of_term(
        &testbed.artifacts.graph,
        &testbed.artifacts.outcome.assignment,
        term,
        k,
    )?;
    Some(Fig7 {
        term: term.to_string(),
        seed,
        neighbors,
    })
}

impl Fig7 {
    /// Render member lists.
    pub fn render(&self) -> String {
        let mut out = format!(
            "== Figure 7: communities around \"{}\" ==\nseed community ({} terms): {}\n",
            self.term,
            self.seed.members.len(),
            preview(&self.seed.members, 12)
        );
        for (i, n) in self.neighbors.iter().enumerate() {
            out.push_str(&format!(
                "neighbor {} (closeness {:.3}, {} terms): {}\n",
                i + 1,
                n.closeness,
                n.members.len(),
                preview(&n.members, 12)
            ));
        }
        out
    }
}

fn preview(members: &[String], k: usize) -> String {
    let shown: Vec<&str> = members.iter().take(k).map(String::as_str).collect();
    if members.len() > k {
        format!("{}, … (+{})", shown.join(", "), members.len() - k)
    } else {
        shown.join(", ")
    }
}
