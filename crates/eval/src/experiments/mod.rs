//! One module per table/figure of the paper's evaluation (§6), plus
//! ablations. See DESIGN.md §3 for the experiment index.

pub mod ablation;
pub mod figures;
pub mod freshness;
pub mod recall_precision;
pub mod runs;
pub mod scaling;
pub mod tables;

#[cfg(test)]
mod tests_scaling;
