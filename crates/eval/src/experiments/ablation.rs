//! Ablations beyond the paper's own evaluation (DESIGN.md §4):
//! clustering-backend comparison against ground truth, and the effect of
//! the discarded cluster-analysis precision filter.

use crate::harness::Testbed;
use crate::report::AsciiTable;
use esharp_community::{ari, nmi, Assignment};
use esharp_core::{run_clustering, ClusterBackend, Esharp};
use esharp_microblog::UserId;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// One clustering backend's scorecard.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BackendScore {
    /// Backend name.
    pub backend: String,
    /// Wall-clock clustering time.
    pub wall: Duration,
    /// Final community count.
    pub communities: usize,
    /// Normalized modularity of the result.
    pub modularity: f64,
    /// NMI vs the world's ground-truth domains.
    pub nmi: f64,
    /// ARI vs the world's ground-truth domains.
    pub ari: f64,
}

/// Ground-truth assignment over the similarity graph's nodes: each node's
/// primary world domain (nodes whose term the world does not know keep a
/// fresh singleton id — cannot happen with generated logs, but the guard
/// keeps the mapping total).
pub fn ground_truth_assignment(testbed: &Testbed) -> Assignment {
    let graph = &testbed.artifacts.graph;
    let offset = testbed.world.num_domains() as u32;
    let mut fresh = 0u32;
    let communities: Vec<u32> = (0..graph.num_nodes() as u32)
        .map(|node| {
            let label = graph.label(node);
            match testbed
                .world
                .term_id(label)
                .and_then(|t| testbed.world.primary_domain_of(t))
            {
                Some(domain) => domain,
                None => {
                    fresh += 1;
                    offset + fresh
                }
            }
        })
        .collect();
    Assignment::from_vec(communities)
}

/// Compare every clustering backend on the testbed's multigraph.
pub fn backend_comparison(testbed: &Testbed) -> Vec<BackendScore> {
    let truth = ground_truth_assignment(testbed);
    let backends = [
        ClusterBackend::Parallel,
        ClusterBackend::Sql,
        ClusterBackend::Newman,
        ClusterBackend::Louvain,
        ClusterBackend::LabelPropagation,
    ];
    backends
        .iter()
        .map(|&backend| {
            let mut config = testbed.config.clone();
            config.backend = backend;
            let started = Instant::now();
            let outcome = run_clustering(&testbed.artifacts.multigraph, &config)
                .expect("clustering backends must run");
            let wall = started.elapsed();
            let stats = esharp_community::PartitionStats::compute(
                &testbed.artifacts.multigraph,
                &outcome.assignment,
            );
            BackendScore {
                backend: format!("{backend:?}"),
                wall,
                communities: outcome.assignment.num_communities(),
                modularity: stats.normalized_modularity(),
                nmi: nmi(&outcome.assignment, &truth),
                ari: ari(&outcome.assignment, &truth),
            }
        })
        .collect()
}

/// Render the backend comparison.
pub fn render_backend_comparison(scores: &[BackendScore]) -> String {
    let mut t = AsciiTable::new(
        "Ablation: community-detection backends vs ground truth",
        &["Backend", "Wall", "Communities", "Modularity Q", "NMI", "ARI"],
    );
    for s in scores {
        t.row(vec![
            s.backend.clone(),
            format!("{:.2?}", s.wall),
            s.communities.to_string(),
            format!("{:.3}", s.modularity),
            format!("{:.3}", s.nmi),
            format!("{:.3}", s.ari),
        ]);
    }
    t.render()
}

/// One row of the min-support ablation (§4.1's ≥50/month rule).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SupportRow {
    /// The support threshold.
    pub min_support: u64,
    /// Queries surviving the filter.
    pub queries_kept: usize,
    /// Queries dropped.
    pub queries_dropped: usize,
    /// Edges in the resulting similarity graph.
    pub graph_edges: usize,
    /// Communities found on the resulting multigraph.
    pub communities: usize,
    /// NMI of the clustering against ground truth.
    pub nmi: f64,
}

/// Sweep the support threshold and measure its effect on graph size,
/// clustering size and clustering quality — quantifying the paper's
/// "remove all the queries which appear less than 50 times per month, to
/// reduce noise and save space".
pub fn support_ablation(testbed: &Testbed, thresholds: &[u64]) -> Vec<SupportRow> {
    use esharp_graph::{build_graph, MultiGraph};
    thresholds
        .iter()
        .map(|&min_support| {
            let (filtered, dropped) = testbed.log.filter_min_support(min_support);
            let (graph, _) = build_graph(&filtered, &testbed.world, &testbed.config.graph);
            let multigraph = MultiGraph::from_similarity(&graph, testbed.config.discretize_scale);
            let outcome = run_clustering(&multigraph, &testbed.config)
                .expect("clustering must run");
            // Ground truth over this graph's nodes.
            let offset = testbed.world.num_domains() as u32;
            let mut fresh = 0u32;
            let truth = Assignment::from_vec(
                (0..graph.num_nodes() as u32)
                    .map(|node| {
                        match testbed
                            .world
                            .term_id(graph.label(node))
                            .and_then(|t| testbed.world.primary_domain_of(t))
                        {
                            Some(domain) => domain,
                            None => {
                                fresh += 1;
                                offset + fresh
                            }
                        }
                    })
                    .collect(),
            );
            SupportRow {
                min_support,
                queries_kept: filtered.num_terms(),
                queries_dropped: dropped,
                graph_edges: graph.num_edges(),
                communities: outcome.assignment.num_communities(),
                nmi: nmi(&outcome.assignment, &truth),
            }
        })
        .collect()
}

/// Render the support ablation.
pub fn render_support_ablation(rows: &[SupportRow]) -> String {
    let mut t = AsciiTable::new(
        "Ablation: min-support filter (§4.1, paper uses ≥50/month)",
        &["Min support", "Queries kept", "Dropped", "Graph edges", "Communities", "NMI"],
    );
    for r in rows {
        t.row(vec![
            r.min_support.to_string(),
            r.queries_kept.to_string(),
            r.queries_dropped.to_string(),
            r.graph_edges.to_string(),
            r.communities.to_string(),
            format!("{:.3}", r.nmi),
        ]);
    }
    t.render()
}

/// The discarded precision filter's effect on one query set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FilterAblation {
    /// Queries probed.
    pub queries: usize,
    /// Experts returned with the filter off (the paper's production
    /// configuration).
    pub experts_without: usize,
    /// Experts returned with Pal & Counts' cluster filter on.
    pub experts_with: usize,
    /// Ground-truth precision without the filter.
    pub precision_without: f64,
    /// Ground-truth precision with the filter.
    pub precision_with: f64,
}

/// Quantify what §3's "we discarded it" costs and buys, over the showcase
/// queries plus the most popular domains.
pub fn filter_ablation(testbed: &Testbed, queries: &[String]) -> FilterAblation {
    let mut with_cfg = testbed.config.clone();
    with_cfg.detector.cluster_filter = true;
    let with_filter = Esharp::new(testbed.esharp.domains().clone(), with_cfg);

    let mut experts_without = 0usize;
    let mut experts_with = 0usize;
    let mut relevant_without = 0usize;
    let mut relevant_with = 0usize;
    let relevant = |q: &str, u: UserId| {
        crate::crowd::Crowd::ground_truth(&testbed.world, &testbed.corpus, q, u)
    };
    for q in queries {
        for e in &testbed.esharp.search(&testbed.corpus, q).experts {
            experts_without += 1;
            if relevant(q, e.user) {
                relevant_without += 1;
            }
        }
        for e in &with_filter.search(&testbed.corpus, q).experts {
            experts_with += 1;
            if relevant(q, e.user) {
                relevant_with += 1;
            }
        }
    }
    let precision = |relevant: usize, total: usize| {
        if total == 0 {
            0.0
        } else {
            relevant as f64 / total as f64
        }
    };
    FilterAblation {
        queries: queries.len(),
        experts_without,
        experts_with,
        precision_without: precision(relevant_without, experts_without),
        precision_with: precision(relevant_with, experts_with),
    }
}

/// The extended-feature-tier ablation: the paper's TS/MI/RI
/// simplification vs the fuller WSDM'11 feature set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExtendedFeaturesAblation {
    /// Probe queries used.
    pub queries: usize,
    /// Ground-truth precision with TS/MI/RI only (the paper's detector).
    pub precision_simplified: f64,
    /// Ground-truth precision with SS/NCS/RT/HUB folded in.
    pub precision_extended: f64,
}

/// Measure what the §3 simplification ("we kept those which they present
/// as important") costs in ground-truth precision.
pub fn extended_features_ablation(
    testbed: &Testbed,
    queries: &[String],
) -> ExtendedFeaturesAblation {
    let mut ext_cfg = testbed.config.clone();
    ext_cfg.detector.extended = Some(esharp_expert::ExtendedWeights::default());
    let extended = Esharp::new(testbed.esharp.domains().clone(), ext_cfg);

    let precision_of = |esharp: &Esharp| {
        let mut relevant = 0usize;
        let mut total = 0usize;
        for q in queries {
            for e in &esharp.search(&testbed.corpus, q).experts {
                total += 1;
                if crate::crowd::Crowd::ground_truth(&testbed.world, &testbed.corpus, q, e.user) {
                    relevant += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            relevant as f64 / total as f64
        }
    };
    ExtendedFeaturesAblation {
        queries: queries.len(),
        precision_simplified: precision_of(&testbed.esharp),
        precision_extended: precision_of(&extended),
    }
}

/// Render the extended-feature ablation.
pub fn render_extended_features_ablation(a: &ExtendedFeaturesAblation) -> String {
    let mut t = AsciiTable::new(
        "Ablation: TS/MI/RI simplification vs full WSDM'11 feature tier",
        &["Detector", "Precision"],
    );
    t.row(vec![
        "TS/MI/RI (paper's simplification)".into(),
        format!("{:.3}", a.precision_simplified),
    ]);
    t.row(vec![
        "+ SS/NCS/RT/HUB (extended)".into(),
        format!("{:.3}", a.precision_extended),
    ]);
    format!("{}({} probe queries)
", t.render(), a.queries)
}

/// Render the filter ablation.
pub fn render_filter_ablation(a: &FilterAblation) -> String {
    let mut t = AsciiTable::new(
        "Ablation: Pal & Counts' discarded cluster-analysis filter",
        &["Configuration", "Experts returned", "Precision"],
    );
    t.row(vec![
        "filter off (paper's choice)".into(),
        a.experts_without.to_string(),
        format!("{:.3}", a.precision_without),
    ]);
    t.row(vec![
        "filter on".into(),
        a.experts_with.to_string(),
        format!("{:.3}", a.precision_with),
    ]);
    format!("{}({} probe queries)\n", t.render(), a.queries)
}
