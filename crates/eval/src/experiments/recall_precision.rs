//! Online-side figures: Figure 8 (experts-per-query distribution),
//! Figure 9 (z-score threshold sweep) and Figure 10 (size vs quality
//! trade-off, crowd-judged).

use crate::crowd::{Crowd, CrowdConfig};
use crate::harness::Testbed;
use crate::metrics::{at_least_curve, avg_experts};
use crate::querysets::build_query_sets;
use crate::report::render_series;
use crate::experiments::runs::SetRun;
use esharp_microblog::UserId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Figure 8: for each set and algorithm, the percentage of queries with
/// at least `n` experts, `n = 0..=14`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8 {
    /// `(set name, baseline curve, e# curve)`.
    pub curves: Vec<(String, Vec<f64>, Vec<f64>)>,
}

/// Maximum `n` in Figure 8's x axis.
pub const FIG8_MAX_N: usize = 14;

/// Run Figure 8 from precomputed set runs.
pub fn fig8(runs: &[SetRun]) -> Fig8 {
    let curves = runs
        .iter()
        .map(|run| {
            (
                run.set.name.clone(),
                at_least_curve(&run.baseline_counts(), FIG8_MAX_N),
                at_least_curve(&run.esharp_counts(), FIG8_MAX_N),
            )
        })
        .collect();
    Fig8 { curves }
}

impl Fig8 {
    /// Render each set's two curves.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (set, baseline, esharp) in &self.curves {
            let series = vec![
                (
                    "Baseline".to_string(),
                    baseline
                        .iter()
                        .enumerate()
                        .map(|(n, &pct)| (n as f64, pct))
                        .collect(),
                ),
                (
                    "e#".to_string(),
                    esharp
                        .iter()
                        .enumerate()
                        .map(|(n, &pct)| (n as f64, pct))
                        .collect(),
                ),
            ];
            out.push_str(&render_series(
                &format!("Figure 8 ({set}): % queries with ≥ n experts"),
                &series,
            ));
        }
        out
    }
}

/// Figure 9: average experts per query on the Top 250 set as the minimum
/// z-score threshold sweeps.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9 {
    /// `(threshold, baseline avg, e# avg)` rows.
    pub points: Vec<(f64, f64, f64)>,
}

/// The thresholds swept in Figure 9 (0 to 8, as in the paper's x axis).
pub fn fig9_thresholds() -> Vec<f64> {
    (0..=16).map(|i| i as f64 * 0.5).collect()
}

/// Run Figure 9 on the Top 250 set.
pub fn fig9(testbed: &Testbed) -> Fig9 {
    let sets = build_query_sets(&testbed.world, &testbed.log);
    let top = sets.last().expect("Top 250 set exists");
    let points = fig9_thresholds()
        .into_iter()
        .map(|threshold| {
            let esharp = testbed.with_min_zscore(threshold);
            let mut baseline_counts = Vec::with_capacity(top.queries.len());
            let mut esharp_counts = Vec::with_capacity(top.queries.len());
            for q in &top.queries {
                baseline_counts.push(esharp.search_baseline(&testbed.corpus, q).experts.len());
                esharp_counts.push(esharp.search(&testbed.corpus, q).experts.len());
            }
            (
                threshold,
                avg_experts(&baseline_counts),
                avg_experts(&esharp_counts),
            )
        })
        .collect();
    Fig9 { points }
}

impl Fig9 {
    /// Render the two series.
    pub fn render(&self) -> String {
        let series = vec![
            (
                "Baseline".to_string(),
                self.points.iter().map(|&(z, b, _)| (z, b)).collect(),
            ),
            (
                "e#".to_string(),
                self.points.iter().map(|&(z, _, e)| (z, e)).collect(),
            ),
        ];
        render_series(
            "Figure 9: min z-score vs avg experts per query (Top 250)",
            &series,
        )
    }
}

/// One Figure 10 trade-off curve: `(avg experts per query, impurity)`
/// points as the threshold sweeps.
pub type TradeoffCurve = Vec<(f64, f64)>;

/// Figure 10: impurity (share of crowd-rejected results) as a function of
/// the average number of experts per query, per set and algorithm.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig10 {
    /// `(set, baseline curve, e# curve)`.
    pub curves: Vec<(String, TradeoffCurve, TradeoffCurve)>,
}

/// Thresholds swept to trace the Figure 10 trade-off curves.
pub fn fig10_thresholds() -> Vec<f64> {
    (0..=8).map(|i| i as f64).collect()
}

/// Run Figure 10: sweep the threshold, judge every returned expert with
/// the simulated crowd (each `(query, account)` pair judged once and
/// cached, as one crowdworker batch would be).
pub fn fig10(testbed: &Testbed, crowd_config: &CrowdConfig) -> Fig10 {
    let sets = build_query_sets(&testbed.world, &testbed.log);
    let mut crowd = Crowd::new(crowd_config.clone());
    let mut verdicts: HashMap<(String, UserId), bool> = HashMap::new();
    let mut judge = |query: &str, user: UserId, crowd: &mut Crowd| -> bool {
        *verdicts
            .entry((query.to_string(), user))
            .or_insert_with(|| crowd.judge(&testbed.world, &testbed.corpus, query, user))
    };

    let mut curves = Vec::with_capacity(sets.len());
    for set in &sets {
        let mut baseline_points = Vec::new();
        let mut esharp_points = Vec::new();
        for threshold in fig10_thresholds() {
            let esharp = testbed.with_min_zscore(threshold);
            let mut tally = |expanded: bool| -> (f64, f64) {
                let mut counts = Vec::with_capacity(set.queries.len());
                let mut judged = 0usize;
                let mut rejected = 0usize;
                for q in &set.queries {
                    let outcome = if expanded {
                        esharp.search(&testbed.corpus, q)
                    } else {
                        esharp.search_baseline(&testbed.corpus, q)
                    };
                    counts.push(outcome.experts.len());
                    for e in &outcome.experts {
                        judged += 1;
                        if !judge(q, e.user, &mut crowd) {
                            rejected += 1;
                        }
                    }
                }
                let impurity = if judged == 0 {
                    0.0
                } else {
                    rejected as f64 / judged as f64
                };
                (avg_experts(&counts), impurity)
            };
            baseline_points.push(tally(false));
            esharp_points.push(tally(true));
        }
        curves.push((set.name.clone(), baseline_points, esharp_points));
    }
    Fig10 { curves }
}

impl Fig10 {
    /// Render each set's two trade-off curves.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (set, baseline, esharp) in &self.curves {
            let series = vec![
                ("Baseline".to_string(), baseline.clone()),
                ("e#".to_string(), esharp.clone()),
            ];
            out.push_str(&render_series(
                &format!("Figure 10 ({set}): avg experts per query vs impurity"),
                &series,
            ));
        }
        out
    }
}
