//! Query-set construction — the analog of the paper's Table 1.
//!
//! The paper uses the 100 most popular search terms per category (Sports,
//! Electronics, Finance, Health), the top-100 Wikipedia pages, and the
//! top-250 queries overall. Our analog draws from the same two signals:
//! category-tagged domain popularity (ground truth) and observed query
//! frequency in the synthetic log.

use esharp_querylog::{AggregatedLog, Category, World, ALL_CATEGORIES};
use serde::{Deserialize, Serialize};

/// One named query set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuerySet {
    /// Set name (Table 1's "Set Name").
    pub name: String,
    /// The queries.
    pub queries: Vec<String>,
}

impl QuerySet {
    /// Up to `k` example queries for display.
    pub fn examples(&self, k: usize) -> Vec<&str> {
        self.queries.iter().take(k).map(String::as_str).collect()
    }
}

/// Target sizes from Table 1 (the builder clamps to what the world can
/// supply at small scales).
pub const CATEGORY_SET_SIZE: usize = 100;
/// Target size of the Top 250 set.
pub const TOP_SET_SIZE: usize = 250;

/// Build the six Table 1 sets.
///
/// Category sets rank the category's domains by popularity and walk their
/// member terms (head terms first), so popular topics contribute their
/// canonical query plus a few variants — mirroring "the 100 most popular
/// search terms … for each category". The `Top 250` set takes the most
/// frequent queries of the *log itself* ("the top 250 queries of a
/// commercial search engine"), which is also the log e# was trained on —
/// the paper calls out exactly that overlap when explaining the set's
/// large gain.
pub fn build_query_sets(world: &World, log: &AggregatedLog) -> Vec<QuerySet> {
    let mut sets = Vec::with_capacity(6);
    for category in ALL_CATEGORIES {
        if category == Category::General {
            continue; // General feeds Top 250 only, as in the paper.
        }
        let name = if category == Category::Wikipedia {
            "Wikipedia".to_string()
        } else {
            category.name().to_string()
        };
        sets.push(QuerySet {
            name,
            queries: category_queries(world, category, CATEGORY_SET_SIZE),
        });
    }
    sets.push(QuerySet {
        name: "Top 250".to_string(),
        queries: top_queries(world, log, TOP_SET_SIZE),
    });
    sets
}

/// The most popular member terms of a category, head terms first.
fn category_queries(world: &World, category: Category, target: usize) -> Vec<String> {
    let domains = world.domains_in_category(category);
    let mut queries = Vec::with_capacity(target);
    // Round-robin over domains by term rank: all heads first, then all
    // second terms, etc. — keeps the set popularity-ranked and diverse.
    let max_terms = domains.iter().map(|d| d.terms.len()).max().unwrap_or(0);
    'outer: for rank in 0..max_terms {
        for d in &domains {
            if let Some(&term) = d.terms.get(rank) {
                let text = world.term_text(term).to_string();
                if !queries.contains(&text) {
                    queries.push(text);
                    if queries.len() >= target {
                        break 'outer;
                    }
                }
            }
        }
    }
    queries
}

/// The `k` most frequent queries of the log (all categories).
fn top_queries(world: &World, log: &AggregatedLog, k: usize) -> Vec<String> {
    let mut ranked: Vec<(u64, u32)> = log
        .term_totals
        .iter()
        .enumerate()
        .filter(|&(_, &total)| total > 0)
        .map(|(term, &total)| (total, term as u32))
        .collect();
    ranked.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    ranked
        .into_iter()
        .take(k)
        .map(|(_, term)| world.term_text(term).to_string())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use esharp_querylog::{LogConfig, LogGenerator, WorldConfig};

    fn inputs() -> (World, AggregatedLog) {
        let world = World::generate(&WorldConfig::tiny(71));
        let log = AggregatedLog::from_events(
            LogGenerator::new(&world, &LogConfig::tiny(71)),
            world.terms.len(),
        );
        (world, log)
    }

    #[test]
    fn builds_six_sets_in_table1_order() {
        let (world, log) = inputs();
        let sets = build_query_sets(&world, &log);
        let names: Vec<&str> = sets.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["Sports", "Electronics", "Finance", "Health", "Wikipedia", "Top 250"]
        );
        for set in &sets {
            assert!(!set.queries.is_empty(), "{} is empty", set.name);
        }
    }

    #[test]
    fn sports_set_includes_the_showcase_topics() {
        let (world, log) = inputs();
        let sets = build_query_sets(&world, &log);
        let sports = &sets[0];
        assert!(
            sports.queries.iter().any(|q| q == "49ers"),
            "sports queries: {:?}",
            sports.examples(10)
        );
    }

    #[test]
    fn queries_are_unique_within_a_set() {
        let (world, log) = inputs();
        for set in build_query_sets(&world, &log) {
            let mut dedup = set.queries.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), set.queries.len(), "{} has dups", set.name);
        }
    }

    #[test]
    fn top_set_is_frequency_ranked() {
        let (world, log) = inputs();
        let sets = build_query_sets(&world, &log);
        let top = sets.last().unwrap();
        let freq = |q: &str| {
            let term = world.term_id(q).unwrap();
            log.term_totals[term as usize]
        };
        for pair in top.queries.windows(2) {
            assert!(freq(&pair[0]) >= freq(&pair[1]));
        }
    }
}
