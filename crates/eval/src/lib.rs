//! # esharp-eval
//!
//! Evaluation harness reproducing §6 of *e#: Sharper Expertise Detection
//! from Microblogs* (EDBT 2016): the Table 1 query sets, the simulated
//! crowdsourcing protocol (3 noisy judges + majority voting), the
//! retrieval metrics, and one experiment module per table/figure
//! (Figures 5–10, Tables 1–9) plus ablations the paper could not run on
//! proprietary data (clustering quality vs ground truth, the discarded
//! precision filter).
//!
//! Entry point: build a [`Testbed`] at a scale, then call the experiment
//! functions in [`experiments`]. The `esharp-bench` crate's `repro`
//! binary drives all of them and writes EXPERIMENTS.md data.

#![warn(missing_docs)]

pub mod crowd;
pub mod experiments;
pub mod harness;
pub mod metrics;
pub mod querysets;
pub mod report;

pub use crowd::{Crowd, CrowdConfig};
pub use harness::{EvalScale, Testbed};
pub use querysets::{build_query_sets, QuerySet};
