//! Simulated crowdsourcing (§6.2.1).
//!
//! The paper's protocol: each (query, account) pair is reviewed by 3
//! workers who flag "non-experts" ("accounts from which they could not
//! get any objective information about the topic"); spammers are filtered
//! with trivial preliminary questions; majority voting aggregates. We
//! reproduce the protocol over ground truth: a worker is correct with a
//! per-worker accuracy, spam workers (those that slip past the screening)
//! answer randomly, and 3 votes decide.

use esharp_microblog::{Corpus, UserId};
use esharp_querylog::World;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Crowd simulation parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrowdConfig {
    /// Votes per (query, account) item ("each expert was reviewed by 3
    /// different workers").
    pub workers_per_item: usize,
    /// Probability a diligent worker judges correctly.
    pub worker_accuracy: f64,
    /// Share of judgments cast by spam workers who answer at random
    /// despite the screening questions.
    pub spammer_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CrowdConfig {
    fn default() -> Self {
        CrowdConfig {
            workers_per_item: 3,
            worker_accuracy: 0.88,
            spammer_rate: 0.05,
            seed: 0xC0D,
        }
    }
}

/// A deterministic simulated crowd.
pub struct Crowd {
    config: CrowdConfig,
    rng: StdRng,
}

impl Crowd {
    /// Create a crowd.
    pub fn new(config: CrowdConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        Crowd { config, rng }
    }

    /// Ground truth: is `user` a genuine expert for `query`? True iff the
    /// query term belongs to a domain the account is expert in (spam
    /// accounts are never relevant).
    pub fn ground_truth(world: &World, corpus: &Corpus, query: &str, user: UserId) -> bool {
        let account = corpus.user(user);
        if account.spam || account.expert_domains.is_empty() {
            return false;
        }
        let Some(term) = world.term_id(&query.to_lowercase()) else {
            return false;
        };
        world.terms[term as usize]
            .domains
            .iter()
            .any(|d| account.expert_domains.contains(d))
    }

    /// Run the 3-worker majority vote for one (query, account) item.
    /// Returns true when the crowd deems the account a *relevant expert*
    /// (i.e. it was not flagged as a non-expert by the majority).
    pub fn judge(&mut self, world: &World, corpus: &Corpus, query: &str, user: UserId) -> bool {
        let truth = Self::ground_truth(world, corpus, query, user);
        let mut relevant_votes = 0;
        for _ in 0..self.config.workers_per_item {
            let vote = if self.rng.gen_bool(self.config.spammer_rate) {
                self.rng.gen_bool(0.5)
            } else if self.rng.gen_bool(self.config.worker_accuracy) {
                truth
            } else {
                !truth
            };
            if vote {
                relevant_votes += 1;
            }
        }
        relevant_votes * 2 > self.config.workers_per_item
    }

    /// Judge a whole result list; returns the *impurity* — "the proportion
    /// of results marked as non relevant by the judges" (Figure 10's y
    /// axis). `None` for empty lists.
    pub fn impurity(
        &mut self,
        world: &World,
        corpus: &Corpus,
        query: &str,
        users: &[UserId],
    ) -> Option<f64> {
        if users.is_empty() {
            return None;
        }
        let non_relevant = users
            .iter()
            .filter(|&&u| !self.judge(world, corpus, query, u))
            .count();
        Some(non_relevant as f64 / users.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esharp_microblog::{generate_corpus, CorpusConfig};
    use esharp_querylog::WorldConfig;

    fn build() -> (World, Corpus) {
        let world = World::generate(&WorldConfig::tiny(81));
        let corpus = generate_corpus(&world, &CorpusConfig::tiny(81));
        (world, corpus)
    }

    #[test]
    fn ground_truth_matches_planted_labels() {
        let (world, corpus) = build();
        let domain = world.domain_by_label("diabetes").unwrap();
        let expert = corpus
            .users()
            .iter()
            .find(|u| u.expert_domains.contains(&domain.id))
            .unwrap();
        assert!(Crowd::ground_truth(&world, &corpus, "diabetes", expert.id));
        assert!(Crowd::ground_truth(&world, &corpus, "t1d", expert.id));
        assert!(!Crowd::ground_truth(&world, &corpus, "49ers", expert.id));
        let spammer = corpus.users().iter().find(|u| u.spam).unwrap();
        assert!(!Crowd::ground_truth(&world, &corpus, "diabetes", spammer.id));
    }

    #[test]
    fn perfect_workers_reproduce_ground_truth() {
        let (world, corpus) = build();
        let mut crowd = Crowd::new(CrowdConfig {
            worker_accuracy: 1.0,
            spammer_rate: 0.0,
            ..Default::default()
        });
        for user in corpus.users().iter().take(30) {
            let truth = Crowd::ground_truth(&world, &corpus, "diabetes", user.id);
            assert_eq!(crowd.judge(&world, &corpus, "diabetes", user.id), truth);
        }
    }

    #[test]
    fn noisy_workers_mostly_agree_with_truth() {
        let (world, corpus) = build();
        let mut crowd = Crowd::new(CrowdConfig::default());
        let mut agree = 0;
        let mut total = 0;
        for user in corpus.users() {
            for query in ["diabetes", "49ers", "dow futures"] {
                let truth = Crowd::ground_truth(&world, &corpus, query, user.id);
                if crowd.judge(&world, &corpus, query, user.id) == truth {
                    agree += 1;
                }
                total += 1;
            }
        }
        // Majority of 3 workers at 88% accuracy ⇒ ≥95% agreement expected.
        assert!(
            agree as f64 / total as f64 > 0.9,
            "crowd agreement {agree}/{total}"
        );
    }

    #[test]
    fn spam_workers_degrade_agreement() {
        let (world, corpus) = build();
        let score = |spammer_rate: f64| {
            let mut crowd = Crowd::new(CrowdConfig {
                spammer_rate,
                ..Default::default()
            });
            let mut agree = 0usize;
            let mut total = 0usize;
            for user in corpus.users() {
                let truth = Crowd::ground_truth(&world, &corpus, "diabetes", user.id);
                if crowd.judge(&world, &corpus, "diabetes", user.id) == truth {
                    agree += 1;
                }
                total += 1;
            }
            agree as f64 / total as f64
        };
        let clean = score(0.0);
        let noisy = score(0.9);
        assert!(
            clean > noisy,
            "spam workers should hurt agreement: clean {clean:.2} vs noisy {noisy:.2}"
        );
    }

    #[test]
    fn judging_is_deterministic_per_crowd_seed() {
        let (world, corpus) = build();
        let run = || {
            let mut crowd = Crowd::new(CrowdConfig::default());
            (0..20u32)
                .map(|u| crowd.judge(&world, &corpus, "diabetes", u))
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn impurity_bounds() {
        let (world, corpus) = build();
        let mut crowd = Crowd::new(CrowdConfig::default());
        assert_eq!(crowd.impurity(&world, &corpus, "diabetes", &[]), None);
        let users: Vec<UserId> = (0..20).collect();
        let impurity = crowd
            .impurity(&world, &corpus, "diabetes", &users)
            .unwrap();
        assert!((0.0..=1.0).contains(&impurity));
    }
}
