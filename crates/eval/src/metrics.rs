//! Retrieval metrics shared by the experiments.

use serde::{Deserialize, Serialize};

/// Fraction of queries with at least one expert (Table 8's measure).
pub fn coverage(expert_counts: &[usize]) -> f64 {
    if expert_counts.is_empty() {
        return 0.0;
    }
    expert_counts.iter().filter(|&&c| c >= 1).count() as f64 / expert_counts.len() as f64
}

/// Figure 8's series: for each `n` in `0..=max_n`, the percentage of
/// queries with **at least** `n` experts.
pub fn at_least_curve(expert_counts: &[usize], max_n: usize) -> Vec<f64> {
    let total = expert_counts.len().max(1) as f64;
    (0..=max_n)
        .map(|n| expert_counts.iter().filter(|&&c| c >= n).count() as f64 * 100.0 / total)
        .collect()
}

/// Average experts per query (Figure 9's y axis).
pub fn avg_experts(expert_counts: &[usize]) -> f64 {
    if expert_counts.is_empty() {
        return 0.0;
    }
    expert_counts.iter().sum::<usize>() as f64 / expert_counts.len() as f64
}

/// Relative improvement `after` vs `before`, as the paper reports it in
/// Table 8 (a percentage; 0 when the baseline is 0).
pub fn improvement_pct(before: f64, after: f64) -> f64 {
    if before == 0.0 {
        0.0
    } else {
        (after - before) / before * 100.0
    }
}

/// Paired coverage measurement for one query set (one Table 8 row).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoverageRow {
    /// Query-set name.
    pub set: String,
    /// Baseline coverage.
    pub baseline: f64,
    /// e# coverage.
    pub esharp: f64,
    /// Relative improvement (%).
    pub improvement: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_counts_nonempty_result_lists() {
        assert_eq!(coverage(&[0, 1, 5, 0]), 0.5);
        assert_eq!(coverage(&[]), 0.0);
        assert_eq!(coverage(&[2, 2]), 1.0);
    }

    #[test]
    fn at_least_curve_is_monotone_and_starts_at_100() {
        let curve = at_least_curve(&[0, 1, 3, 14, 14], 14);
        assert_eq!(curve.len(), 15);
        assert_eq!(curve[0], 100.0);
        for pair in curve.windows(2) {
            assert!(pair[0] >= pair[1]);
        }
        assert_eq!(curve[14], 40.0); // 2 of 5 queries have ≥14
    }

    #[test]
    fn avg_and_improvement() {
        assert_eq!(avg_experts(&[2, 4]), 3.0);
        assert!((improvement_pct(0.8, 0.88) - 10.0).abs() < 1e-9);
        assert_eq!(improvement_pct(0.0, 0.5), 0.0);
    }
}
