//! Property-based tests of click vectors, graph normalization,
//! discretization, and the parallel builder's determinism.

use esharp_graph::{build_graph, ClickVector, Edge, GraphConfig, MultiGraph, SimilarityGraph};
use esharp_querylog::{AggregatedLog, LogConfig, LogGenerator, World, WorldConfig};
use proptest::prelude::*;
use std::sync::Arc;

fn arb_vector(max_nnz: usize) -> impl Strategy<Value = ClickVector> {
    prop::collection::vec((0u32..40, 1.0f64..50.0), 0..max_nnz)
        .prop_map(ClickVector::from_pairs)
}

fn arb_edges(nodes: u32, max_edges: usize) -> impl Strategy<Value = Vec<Edge>> {
    prop::collection::vec(
        (0u32..nodes, 0u32..nodes, 0.01f64..1.0),
        0..max_edges,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(a, b, weight)| Edge { a, b, weight })
            .collect()
    })
}

proptest! {
    #[test]
    fn cosine_is_symmetric_and_bounded(a in arb_vector(15), b in arb_vector(15)) {
        let ab = a.cosine(&b);
        let ba = b.cosine(&a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&ab));
    }

    #[test]
    fn cosine_self_is_one_for_nonempty(a in arb_vector(15)) {
        prop_assume!(!a.is_empty());
        prop_assert!((a.cosine(&a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn normalization_preserves_direction(a in arb_vector(15), b in arb_vector(15)) {
        prop_assume!(!a.is_empty() && !b.is_empty());
        let before = a.cosine(&b);
        let mut na = a.clone();
        let mut nb = b.clone();
        na.normalize();
        nb.normalize();
        // After normalization, cosine equals the plain dot product.
        prop_assert!((na.dot(&nb) - before).abs() < 1e-9);
    }

    #[test]
    fn graph_normalization_invariants(edges in arb_edges(12, 50)) {
        let labels: Vec<Arc<str>> = (0..12).map(|i| Arc::from(format!("t{i}").as_str())).collect();
        let g = SimilarityGraph::new(labels, edges);
        // No self loops, endpoints ordered, no duplicates.
        let mut seen = std::collections::HashSet::new();
        for e in g.edges() {
            prop_assert!(e.a < e.b);
            prop_assert!(seen.insert((e.a, e.b)));
        }
        // CSR adjacency is symmetric and consistent with the edge list.
        let mut degree_sum = 0usize;
        for v in 0..g.num_nodes() as u32 {
            degree_sum += g.degree(v);
            for &(w, weight) in g.neighbors(v) {
                let back = g.neighbors(w).iter().any(|&(x, xw)| x == v && xw == weight);
                prop_assert!(back, "asymmetric adjacency {v}-{w}");
            }
        }
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
    }

    #[test]
    fn discretization_conserves_totals(edges in arb_edges(10, 40), scale in 1.0f64..100.0) {
        let labels: Vec<Arc<str>> = (0..10).map(|i| Arc::from(format!("t{i}").as_str())).collect();
        let g = SimilarityGraph::new(labels, edges);
        let mg = MultiGraph::from_similarity(&g, scale);
        prop_assert_eq!(mg.num_nodes(), g.num_nodes());
        // Edges rounding to zero are dropped; the rest keep multiplicity ≥ 1
        // and degree sum = 2 m_G.
        prop_assert!(mg.edges().len() <= g.num_edges());
        let expected_kept = g
            .edges()
            .iter()
            .filter(|e| (e.weight * scale).round() as u64 >= 1)
            .count();
        prop_assert_eq!(mg.edges().len(), expected_kept);
        let mut total = 0u64;
        for &(_, _, k) in mg.edges() {
            prop_assert!(k >= 1);
            total += k;
        }
        prop_assert_eq!(total, mg.total_edges());
        prop_assert_eq!(mg.degrees().iter().sum::<u64>(), mg.total_degree());
    }
}

proptest! {
    // Each case generates a fresh world + log, so keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The flat-buffer builder must be bit-identical at any worker count:
    /// chunk boundaries depend only on the input length, and the merge
    /// folds chunks in order, so thread scheduling never reaches the f64
    /// sums. Any seed, any worker count ⇒ same graph as `workers = 1`.
    #[test]
    fn parallel_build_bitexact_for_any_seed(
        seed in 0u64..1024,
        workers in 2usize..=8,
        events in 1_000usize..6_000,
    ) {
        let world = World::generate(&WorldConfig::tiny(seed));
        let log = AggregatedLog::from_events(
            LogGenerator::new(
                &world,
                &LogConfig { events, ..LogConfig::tiny(seed ^ 1) },
            ),
            world.terms.len(),
        );
        let (filtered, _) = log.filter_min_support(5);

        let serial_config = GraphConfig::default();
        let (serial, serial_stats) = build_graph(&filtered, &world, &serial_config);
        let parallel_config = GraphConfig { workers, ..serial_config };
        let (parallel, stats) = build_graph(&filtered, &world, &parallel_config);

        prop_assert_eq!(parallel.num_nodes(), serial.num_nodes());
        prop_assert_eq!(stats.candidate_pairs, serial_stats.candidate_pairs);
        prop_assert_eq!(stats.urls_skipped, serial_stats.urls_skipped);
        prop_assert_eq!(parallel.num_edges(), serial.num_edges());
        for (p, s) in parallel.edges().iter().zip(serial.edges()) {
            prop_assert_eq!((p.a, p.b), (s.a, s.b));
            prop_assert_eq!(
                p.weight.to_bits(),
                s.weight.to_bits(),
                "workers={}: edge ({}, {}) weight drifted",
                workers, p.a, p.b
            );
        }
    }
}
