//! Building the similarity graph from an aggregated log (§4.1).
//!
//! Naive all-pairs cosine is quadratic in the vocabulary; the practical
//! construction (after Baeza-Yates & Tiberi, the paper's [1]) accumulates
//! dot products *through the URL inverted index*: two queries only share a
//! dot-product term if they clicked the same URL, so iterating URLs and
//! emitting per-URL pair contributions visits exactly the non-zero entries
//! of the similarity matrix. URLs clicked by a huge number of distinct
//! queries (hubs) are capped — they carry little discriminative signal and
//! would otherwise make the pair generation quadratic again.

use crate::graph::{Edge, NodeId, SimilarityGraph};
use crate::vector::ClickVector;
use esharp_querylog::{AggregatedLog, TermId, World};
use std::collections::HashMap;
use std::sync::Arc;

/// Graph construction parameters.
#[derive(Debug, Clone)]
pub struct GraphConfig {
    /// Minimum cosine similarity for an edge to be kept.
    pub min_similarity: f64,
    /// URLs clicked by more than this many distinct queries are skipped in
    /// pair generation (hub suppression).
    pub max_url_fanout: usize,
}

impl Default for GraphConfig {
    fn default() -> Self {
        GraphConfig {
            min_similarity: 0.02,
            max_url_fanout: 400,
        }
    }
}

/// Intermediate per-pair accumulation statistics, reported for Table 9
/// style accounting.
#[derive(Debug, Clone, Default)]
pub struct BuildStats {
    /// Distinct queries that survived the support filter and got a vector.
    pub num_queries: usize,
    /// Candidate pairs accumulated through the inverted index.
    pub candidate_pairs: usize,
    /// Edges kept after the similarity threshold.
    pub edges_kept: usize,
    /// URLs skipped by the fanout cap.
    pub urls_skipped: usize,
}

/// Build the term-similarity graph from an aggregated (and already
/// support-filtered) log. Node labels are term texts resolved through the
/// world.
pub fn build_graph(
    log: &AggregatedLog,
    world: &World,
    config: &GraphConfig,
) -> (SimilarityGraph, BuildStats) {
    let mut stats = BuildStats::default();

    // 1. Dense node ids for the surviving terms, in term-id order.
    let mut node_of_term: HashMap<TermId, NodeId> = HashMap::new();
    let mut labels: Vec<Arc<str>> = Vec::new();
    for record in &log.records {
        node_of_term.entry(record.term).or_insert_with(|| {
            let id = labels.len() as NodeId;
            labels.push(Arc::from(world.term_text(record.term)));
            id
        });
    }
    stats.num_queries = labels.len();

    // 2. Normalized click vector per node.
    let mut pairs_per_node: Vec<Vec<(esharp_querylog::UrlId, f64)>> =
        vec![Vec::new(); labels.len()];
    for record in &log.records {
        let node = node_of_term[&record.term];
        pairs_per_node[node as usize].push((record.url, record.clicks as f64));
    }
    let vectors: Vec<ClickVector> = pairs_per_node
        .into_iter()
        .map(|pairs| {
            let mut v = ClickVector::from_pairs(pairs);
            v.normalize();
            v
        })
        .collect();

    // 3. URL inverted index over normalized weights.
    let mut inverted: HashMap<esharp_querylog::UrlId, Vec<(NodeId, f64)>> = HashMap::new();
    for (node, vector) in vectors.iter().enumerate() {
        for &(url, weight) in vector.components() {
            inverted
                .entry(url)
                .or_default()
                .push((node as NodeId, weight));
        }
    }

    // 4. Accumulate cosine contributions per candidate pair.
    let mut sims: HashMap<(NodeId, NodeId), f64> = HashMap::new();
    let mut posting_lists: Vec<(&esharp_querylog::UrlId, &Vec<(NodeId, f64)>)> =
        inverted.iter().collect();
    // Deterministic iteration order keyed by the (unique) URL id — float
    // accumulation order must not depend on HashMap iteration.
    posting_lists.sort_by_key(|&(url, _)| *url);
    for (_, postings) in posting_lists {
        if postings.len() > config.max_url_fanout {
            stats.urls_skipped += 1;
            continue;
        }
        for i in 0..postings.len() {
            let (ni, wi) = postings[i];
            for &(nj, wj) in &postings[i + 1..] {
                let key = (ni.min(nj), ni.max(nj));
                *sims.entry(key).or_insert(0.0) += wi * wj;
            }
        }
    }
    stats.candidate_pairs = sims.len();

    // 5. Threshold into edges.
    let edges: Vec<Edge> = sims
        .into_iter()
        .filter(|&(_, w)| w >= config.min_similarity)
        .map(|((a, b), weight)| Edge {
            a,
            b,
            weight: weight.min(1.0),
        })
        .collect();
    stats.edges_kept = edges.len();

    (SimilarityGraph::new(labels, edges), stats)
}

/// Reference implementation: all-pairs cosine over the same vectors.
/// Quadratic; exists to validate `build_graph` in tests and to serve as
/// the baseline in the `graph_build` ablation bench.
pub fn build_graph_naive(
    log: &AggregatedLog,
    world: &World,
    config: &GraphConfig,
) -> SimilarityGraph {
    let mut node_of_term: HashMap<TermId, NodeId> = HashMap::new();
    let mut labels: Vec<Arc<str>> = Vec::new();
    for record in &log.records {
        node_of_term.entry(record.term).or_insert_with(|| {
            let id = labels.len() as NodeId;
            labels.push(Arc::from(world.term_text(record.term)));
            id
        });
    }
    let mut pairs_per_node: Vec<Vec<(esharp_querylog::UrlId, f64)>> =
        vec![Vec::new(); labels.len()];
    for record in &log.records {
        let node = node_of_term[&record.term];
        pairs_per_node[node as usize].push((record.url, record.clicks as f64));
    }
    let vectors: Vec<ClickVector> = pairs_per_node
        .into_iter()
        .map(ClickVector::from_pairs)
        .collect();
    let mut edges = Vec::new();
    for i in 0..vectors.len() {
        for j in i + 1..vectors.len() {
            let sim = vectors[i].cosine(&vectors[j]);
            if sim >= config.min_similarity {
                edges.push(Edge {
                    a: i as NodeId,
                    b: j as NodeId,
                    weight: sim,
                });
            }
        }
    }
    SimilarityGraph::new(labels, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use esharp_querylog::{LogConfig, LogGenerator, WorldConfig};

    fn build_inputs() -> (World, AggregatedLog) {
        let world = World::generate(&WorldConfig::tiny(11));
        let log = AggregatedLog::from_events(
            LogGenerator::new(&world, &LogConfig::tiny(11)),
            world.terms.len(),
        );
        let (filtered, _) = log.filter_min_support(10);
        (world, filtered)
    }

    #[test]
    fn inverted_index_matches_naive_all_pairs() {
        let (world, log) = build_inputs();
        let config = GraphConfig {
            min_similarity: 0.10,
            max_url_fanout: usize::MAX, // no cap ⇒ must agree exactly
        };
        let (fast, _) = build_graph(&log, &world, &config);
        let naive = build_graph_naive(&log, &world, &config);
        assert_eq!(fast.num_nodes(), naive.num_nodes());
        assert_eq!(fast.num_edges(), naive.num_edges());
        for (a, b) in fast.edges().iter().zip(naive.edges()) {
            assert_eq!(a.a, b.a);
            assert_eq!(a.b, b.b);
            assert!((a.weight - b.weight).abs() < 1e-9);
        }
    }

    #[test]
    fn same_domain_terms_are_strongly_connected() {
        let (world, log) = build_inputs();
        let (graph, _) = build_graph(&log, &world, &GraphConfig::default());
        let niners = graph.node_by_label("49ers");
        let draft = graph.node_by_label("49ers draft");
        let (Some(a), Some(b)) = (niners, draft) else {
            panic!("showcase terms missing from graph");
        };
        let weight = graph
            .neighbors(a)
            .iter()
            .find(|&&(v, _)| v == b)
            .map(|&(_, w)| w);
        assert!(
            weight.unwrap_or(0.0) > 0.3,
            "expected strong intra-domain similarity, got {weight:?}"
        );
    }

    #[test]
    fn cross_category_terms_are_not_connected_strongly() {
        let (world, log) = build_inputs();
        let (graph, _) = build_graph(&log, &world, &GraphConfig::default());
        if let (Some(a), Some(b)) = (
            graph.node_by_label("49ers"),
            graph.node_by_label("diabetes"),
        ) {
            let weight = graph
                .neighbors(a)
                .iter()
                .find(|&&(v, _)| v == b)
                .map(|&(_, w)| w)
                .unwrap_or(0.0);
            assert!(weight < 0.2, "49ers–diabetes similarity {weight}");
        }
    }

    #[test]
    fn fanout_cap_skips_hub_urls() {
        let (world, log) = build_inputs();
        let config = GraphConfig {
            min_similarity: 0.02,
            max_url_fanout: 5,
        };
        let (_, stats) = build_graph(&log, &world, &config);
        assert!(stats.urls_skipped > 0);
    }

    #[test]
    fn stats_are_coherent() {
        let (world, log) = build_inputs();
        let (graph, stats) = build_graph(&log, &world, &GraphConfig::default());
        assert_eq!(stats.num_queries, graph.num_nodes());
        assert_eq!(stats.edges_kept, graph.num_edges());
        assert!(stats.candidate_pairs >= stats.edges_kept);
    }
}
