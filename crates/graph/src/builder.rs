//! Building the similarity graph from an aggregated log (§4.1).
//!
//! Naive all-pairs cosine is quadratic in the vocabulary; the practical
//! construction (after Baeza-Yates & Tiberi, the paper's [1]) accumulates
//! dot products *through the URL inverted index*: two queries only share a
//! dot-product term if they clicked the same URL, so iterating URLs and
//! emitting per-URL pair contributions visits exactly the non-zero entries
//! of the similarity matrix. URLs clicked by a huge number of distinct
//! queries (hubs) are capped — they carry little discriminative signal and
//! would otherwise make the pair generation quadratic again.

use crate::graph::{Edge, NodeId, SimilarityGraph};
use crate::vector::ClickVector;
use esharp_par::{default_chunk, shared_pool};
use esharp_querylog::{AggregatedLog, TermId, World};
use std::collections::HashMap;
use std::sync::Arc;

/// Graph construction parameters.
#[derive(Debug, Clone)]
pub struct GraphConfig {
    /// Minimum cosine similarity for an edge to be kept.
    pub min_similarity: f64,
    /// URLs clicked by more than this many distinct queries are skipped in
    /// pair generation (hub suppression).
    pub max_url_fanout: usize,
    /// Worker threads for the pair-accumulation kernel. The output is
    /// bit-identical at any value (see the determinism note on
    /// [`build_graph`]); this knob only trades wall clock.
    pub workers: usize,
}

impl Default for GraphConfig {
    fn default() -> Self {
        GraphConfig {
            min_similarity: 0.02,
            max_url_fanout: 400,
            workers: 1,
        }
    }
}

/// Intermediate per-pair accumulation statistics, reported for Table 9
/// style accounting.
#[derive(Debug, Clone, Default)]
pub struct BuildStats {
    /// Distinct queries that survived the support filter and got a vector.
    pub num_queries: usize,
    /// Candidate pairs accumulated through the inverted index.
    pub candidate_pairs: usize,
    /// Edges kept after the similarity threshold.
    pub edges_kept: usize,
    /// URLs skipped by the fanout cap.
    pub urls_skipped: usize,
}

/// Build the term-similarity graph from an aggregated (and already
/// support-filtered) log. Node labels are term texts resolved through the
/// world.
///
/// # Determinism
///
/// Pair accumulation runs on `config.workers` threads but is bit-identical
/// at every worker count: posting lists are processed in URL-id order over
/// chunks whose boundaries depend only on the list count — never on the
/// worker count — and each chunk reduces its own flat buffer of
/// `(packed pair, contribution)` tuples by stable sort + left-to-right
/// fold (contributions to a pair summed in URL order). The per-chunk
/// partial sums are then concatenated in chunk order and folded the same
/// way, so the final per-pair sum is always the identical f64 addition
/// tree regardless of how many threads executed the chunks.
pub fn build_graph(
    log: &AggregatedLog,
    world: &World,
    config: &GraphConfig,
) -> (SimilarityGraph, BuildStats) {
    let mut stats = BuildStats::default();

    // 1. Dense node ids for the surviving terms, in term-id order.
    let mut node_of_term: HashMap<TermId, NodeId> = HashMap::new();
    let mut labels: Vec<Arc<str>> = Vec::new();
    for record in &log.records {
        node_of_term.entry(record.term).or_insert_with(|| {
            let id = labels.len() as NodeId;
            labels.push(Arc::from(world.term_text(record.term)));
            id
        });
    }
    stats.num_queries = labels.len();

    // 2. Normalized click vector per node.
    let mut pairs_per_node: Vec<Vec<(esharp_querylog::UrlId, f64)>> =
        vec![Vec::new(); labels.len()];
    for record in &log.records {
        let node = node_of_term[&record.term];
        pairs_per_node[node as usize].push((record.url, record.clicks as f64));
    }
    let vectors: Vec<ClickVector> = pairs_per_node
        .into_iter()
        .map(|pairs| {
            let mut v = ClickVector::from_pairs(pairs);
            v.normalize();
            v
        })
        .collect();

    // 3. URL inverted index over normalized weights.
    let mut inverted: HashMap<esharp_querylog::UrlId, Vec<(NodeId, f64)>> = HashMap::new();
    for (node, vector) in vectors.iter().enumerate() {
        for &(url, weight) in vector.components() {
            inverted
                .entry(url)
                .or_default()
                .push((node as NodeId, weight));
        }
    }

    // 4. Accumulate cosine contributions per candidate pair. Posting
    //    lists are visited in URL-id order — float accumulation order must
    //    not depend on HashMap iteration or on the worker count — and each
    //    worker fills a flat `(packed pair, contribution)` buffer instead
    //    of hammering a shared map.
    let mut posting_lists: Vec<(&esharp_querylog::UrlId, &Vec<(NodeId, f64)>)> =
        inverted.iter().collect();
    posting_lists.sort_by_key(|&(url, _)| *url);
    let kept_lists: Vec<&[(NodeId, f64)]> = posting_lists
        .iter()
        .filter(|(_, postings)| postings.len() <= config.max_url_fanout)
        .map(|(_, postings)| postings.as_slice())
        .collect();
    stats.urls_skipped = posting_lists.len() - kept_lists.len();

    let pool = shared_pool(config.workers);
    let buffers = pool.map_chunks(&kept_lists, default_chunk(kept_lists.len()), |lists| {
        let mut buffer: Vec<(u64, f64)> = Vec::new();
        for postings in lists {
            for i in 0..postings.len() {
                let (ni, wi) = postings[i];
                for &(nj, wj) in &postings[i + 1..] {
                    buffer.push((pack_pair(ni, nj), wi * wj));
                }
            }
        }
        // Reduce inside the chunk: the merge then handles one partial sum
        // per (chunk, pair) instead of every raw contribution.
        fold_sorted_contributions(&mut buffer);
        buffer
    });
    let mut contributions: Vec<(u64, f64)> = Vec::with_capacity(
        buffers.iter().map(Vec::len).sum(),
    );
    for buffer in buffers {
        contributions.extend(buffer);
    }
    fold_sorted_contributions(&mut contributions);
    stats.candidate_pairs = contributions.len();

    // 5. Threshold into edges.
    let edges: Vec<Edge> = contributions
        .into_iter()
        .filter(|&(_, w)| w >= config.min_similarity)
        .map(|(pair, weight)| Edge {
            a: (pair >> 32) as NodeId,
            b: pair as NodeId,
            weight: weight.min(1.0),
        })
        .collect();
    stats.edges_kept = edges.len();

    (SimilarityGraph::new(labels, edges), stats)
}

/// Canonical (unordered) pair packed into one u64: smaller id in the high
/// half, so sorting packed keys orders pairs lexicographically by (a, b).
#[inline]
fn pack_pair(a: NodeId, b: NodeId) -> u64 {
    ((a.min(b) as u64) << 32) | a.max(b) as u64
}

/// Stable-sort by pair and fold each equal-key run left-to-right in place.
/// Stability matters: contributions to the same pair keep their original
/// (URL / chunk) order, which pins the f64 addition sequence.
fn fold_sorted_contributions(contributions: &mut Vec<(u64, f64)>) {
    contributions.sort_by_key(|&(pair, _)| pair);
    let mut write = 0;
    let mut read = 0;
    while read < contributions.len() {
        let (pair, mut sum) = contributions[read];
        read += 1;
        while read < contributions.len() && contributions[read].0 == pair {
            sum += contributions[read].1;
            read += 1;
        }
        contributions[write] = (pair, sum);
        write += 1;
    }
    contributions.truncate(write);
}

/// Reference implementation: all-pairs cosine over the same vectors.
/// Quadratic; exists to validate `build_graph` in tests and to serve as
/// the baseline in the `graph_build` ablation bench.
pub fn build_graph_naive(
    log: &AggregatedLog,
    world: &World,
    config: &GraphConfig,
) -> SimilarityGraph {
    let mut node_of_term: HashMap<TermId, NodeId> = HashMap::new();
    let mut labels: Vec<Arc<str>> = Vec::new();
    for record in &log.records {
        node_of_term.entry(record.term).or_insert_with(|| {
            let id = labels.len() as NodeId;
            labels.push(Arc::from(world.term_text(record.term)));
            id
        });
    }
    let mut pairs_per_node: Vec<Vec<(esharp_querylog::UrlId, f64)>> =
        vec![Vec::new(); labels.len()];
    for record in &log.records {
        let node = node_of_term[&record.term];
        pairs_per_node[node as usize].push((record.url, record.clicks as f64));
    }
    let vectors: Vec<ClickVector> = pairs_per_node
        .into_iter()
        .map(ClickVector::from_pairs)
        .collect();
    let mut edges = Vec::new();
    for i in 0..vectors.len() {
        for j in i + 1..vectors.len() {
            let sim = vectors[i].cosine(&vectors[j]);
            if sim >= config.min_similarity {
                edges.push(Edge {
                    a: i as NodeId,
                    b: j as NodeId,
                    weight: sim,
                });
            }
        }
    }
    SimilarityGraph::new(labels, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use esharp_querylog::{LogConfig, LogGenerator, WorldConfig};

    fn build_inputs() -> (World, AggregatedLog) {
        let world = World::generate(&WorldConfig::tiny(11));
        let log = AggregatedLog::from_events(
            LogGenerator::new(&world, &LogConfig::tiny(11)),
            world.terms.len(),
        );
        let (filtered, _) = log.filter_min_support(10);
        (world, filtered)
    }

    #[test]
    fn inverted_index_matches_naive_all_pairs() {
        let (world, log) = build_inputs();
        let config = GraphConfig {
            min_similarity: 0.10,
            max_url_fanout: usize::MAX, // no cap ⇒ must agree exactly
            workers: 1,
        };
        let (fast, _) = build_graph(&log, &world, &config);
        let naive = build_graph_naive(&log, &world, &config);
        assert_eq!(fast.num_nodes(), naive.num_nodes());
        assert_eq!(fast.num_edges(), naive.num_edges());
        for (a, b) in fast.edges().iter().zip(naive.edges()) {
            assert_eq!(a.a, b.a);
            assert_eq!(a.b, b.b);
            assert!((a.weight - b.weight).abs() < 1e-9);
        }
    }

    #[test]
    fn parallel_matches_serial_bitexact() {
        let (world, log) = build_inputs();
        let mut config = GraphConfig::default();
        let (serial, serial_stats) = build_graph(&log, &world, &config);
        for workers in [2, 4, 8] {
            config.workers = workers;
            let (parallel, stats) = build_graph(&log, &world, &config);
            assert_eq!(parallel.num_nodes(), serial.num_nodes());
            assert_eq!(stats.candidate_pairs, serial_stats.candidate_pairs);
            assert_eq!(stats.urls_skipped, serial_stats.urls_skipped);
            assert_eq!(parallel.num_edges(), serial.num_edges(), "workers={workers}");
            for (p, s) in parallel.edges().iter().zip(serial.edges()) {
                assert_eq!((p.a, p.b), (s.a, s.b));
                assert_eq!(
                    p.weight.to_bits(),
                    s.weight.to_bits(),
                    "workers={workers}: edge ({}, {}) weight drifted",
                    p.a,
                    p.b
                );
            }
        }
    }

    #[test]
    fn same_domain_terms_are_strongly_connected() {
        let (world, log) = build_inputs();
        let (graph, _) = build_graph(&log, &world, &GraphConfig::default());
        let niners = graph.node_by_label("49ers");
        let draft = graph.node_by_label("49ers draft");
        let (Some(a), Some(b)) = (niners, draft) else {
            panic!("showcase terms missing from graph");
        };
        let weight = graph
            .neighbors(a)
            .iter()
            .find(|&&(v, _)| v == b)
            .map(|&(_, w)| w);
        assert!(
            weight.unwrap_or(0.0) > 0.3,
            "expected strong intra-domain similarity, got {weight:?}"
        );
    }

    #[test]
    fn cross_category_terms_are_not_connected_strongly() {
        let (world, log) = build_inputs();
        let (graph, _) = build_graph(&log, &world, &GraphConfig::default());
        if let (Some(a), Some(b)) = (
            graph.node_by_label("49ers"),
            graph.node_by_label("diabetes"),
        ) {
            let weight = graph
                .neighbors(a)
                .iter()
                .find(|&&(v, _)| v == b)
                .map(|&(_, w)| w)
                .unwrap_or(0.0);
            assert!(weight < 0.2, "49ers–diabetes similarity {weight}");
        }
    }

    #[test]
    fn fanout_cap_skips_hub_urls() {
        let (world, log) = build_inputs();
        let config = GraphConfig {
            min_similarity: 0.02,
            max_url_fanout: 5,
            workers: 1,
        };
        let (_, stats) = build_graph(&log, &world, &config);
        assert!(stats.urls_skipped > 0);
    }

    #[test]
    fn stats_are_coherent() {
        let (world, log) = build_inputs();
        let (graph, stats) = build_graph(&log, &world, &GraphConfig::default());
        assert_eq!(stats.num_queries, graph.num_nodes());
        assert_eq!(stats.edges_kept, graph.num_edges());
        assert!(stats.candidate_pairs >= stats.edges_kept);
    }
}
