//! The term-similarity graph: weighted, undirected, with node labels.

use std::collections::HashMap;
use std::sync::Arc;

/// Node index inside a [`SimilarityGraph`] (dense, 0-based — distinct from
/// the world-level `TermId`, because the support filter drops terms).
pub type NodeId = u32;

/// One undirected weighted edge (`a < b` by construction).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Smaller endpoint.
    pub a: NodeId,
    /// Larger endpoint.
    pub b: NodeId,
    /// Similarity weight in `(0, 1]`.
    pub weight: f64,
}

/// A weighted undirected term-similarity graph with CSR adjacency.
#[derive(Debug, Clone)]
pub struct SimilarityGraph {
    labels: Vec<Arc<str>>,
    edges: Vec<Edge>,
    /// CSR offsets: node `v`'s neighbors live at `adj[offsets[v]..offsets[v+1]]`.
    offsets: Vec<usize>,
    /// `(neighbor, weight)` pairs.
    adj: Vec<(NodeId, f64)>,
}

impl SimilarityGraph {
    /// Build a graph from node labels and undirected edges. Edge endpoints
    /// are normalized to `a < b`; self-loops are dropped; duplicate edges
    /// keep the maximum weight.
    pub fn new(labels: Vec<Arc<str>>, edges: Vec<Edge>) -> Self {
        let n = labels.len();
        let mut dedup: HashMap<(NodeId, NodeId), f64> = HashMap::with_capacity(edges.len());
        for e in edges {
            if e.a == e.b {
                continue;
            }
            let key = (e.a.min(e.b), e.a.max(e.b));
            debug_assert!((key.1 as usize) < n, "edge endpoint out of range");
            let w = dedup.entry(key).or_insert(0.0);
            if e.weight > *w {
                *w = e.weight;
            }
        }
        let mut edges: Vec<Edge> = dedup
            .into_iter()
            .map(|((a, b), weight)| Edge { a, b, weight })
            .collect();
        edges.sort_by_key(|e| (e.a, e.b));

        // CSR adjacency (both directions).
        let mut degree = vec![0usize; n];
        for e in &edges {
            degree[e.a as usize] += 1;
            degree[e.b as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut adj = vec![(0 as NodeId, 0.0); acc];
        for e in &edges {
            adj[cursor[e.a as usize]] = (e.b, e.weight);
            cursor[e.a as usize] += 1;
            adj[cursor[e.b as usize]] = (e.a, e.weight);
            cursor[e.b as usize] += 1;
        }
        SimilarityGraph {
            labels,
            edges,
            offsets,
            adj,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.labels.len()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The node labels (term texts).
    pub fn labels(&self) -> &[Arc<str>] {
        &self.labels
    }

    /// The label of one node.
    pub fn label(&self, node: NodeId) -> &str {
        &self.labels[node as usize]
    }

    /// Find a node by its exact label.
    pub fn node_by_label(&self, label: &str) -> Option<NodeId> {
        self.labels
            .iter()
            .position(|l| l.as_ref() == label)
            .map(|i| i as NodeId)
    }

    /// All edges (normalized, sorted).
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// `(neighbor, weight)` pairs of a node.
    pub fn neighbors(&self, node: NodeId) -> &[(NodeId, f64)] {
        let v = node as usize;
        &self.adj[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Unweighted degree of a node.
    pub fn degree(&self, node: NodeId) -> usize {
        self.neighbors(node).len()
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.weight).sum()
    }

    /// Approximate payload bytes (Table 9 accounting).
    pub fn byte_size(&self) -> u64 {
        let label_bytes: usize = self.labels.iter().map(|l| l.len()).sum();
        (label_bytes + self.edges.len() * std::mem::size_of::<Edge>()) as u64
    }
}

/// The discretized multigraph of §4.2.1's footnote: "we rescale and
/// discretize the weights to obtain integers. Then, we create one edge for
/// each unit." Modularity is computed on this representation.
#[derive(Debug, Clone)]
pub struct MultiGraph {
    /// Number of nodes (same node ids as the source graph).
    num_nodes: usize,
    /// `(a, b, multiplicity)` with `a < b`, sorted.
    edges: Vec<(NodeId, NodeId, u64)>,
    /// Weighted degree of each node (sum of incident multiplicities).
    degrees: Vec<u64>,
    /// Total number of unit edges `m_G` (sum of multiplicities).
    total_edges: u64,
}

impl MultiGraph {
    /// Discretize a similarity graph: each edge's multiplicity is
    /// `round(weight * scale)`; edges rounding to zero are dropped. The
    /// scale therefore doubles as the clustering resolution: weaker ties
    /// stay visible in the [`SimilarityGraph`] (Figure 7's "closest
    /// communities") but do not participate in modularity maximization —
    /// keeping a unit floor instead lets every sub-threshold tie merge
    /// communities (the classic resolution limit).
    pub fn from_similarity(graph: &SimilarityGraph, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        let mut edges = Vec::with_capacity(graph.num_edges());
        let mut degrees = vec![0u64; graph.num_nodes()];
        let mut total = 0u64;
        for e in graph.edges() {
            let k = (e.weight * scale).round() as u64;
            if k == 0 {
                continue;
            }
            edges.push((e.a, e.b, k));
            degrees[e.a as usize] += k;
            degrees[e.b as usize] += k;
            total += k;
        }
        MultiGraph {
            num_nodes: graph.num_nodes(),
            edges,
            degrees,
            total_edges: total,
        }
    }

    /// Build directly from `(a, b, multiplicity)` triples (tests, fixtures).
    pub fn from_edges(num_nodes: usize, raw: Vec<(NodeId, NodeId, u64)>) -> Self {
        let mut dedup: HashMap<(NodeId, NodeId), u64> = HashMap::new();
        for (a, b, k) in raw {
            if a == b || k == 0 {
                continue;
            }
            *dedup.entry((a.min(b), a.max(b))).or_insert(0) += k;
        }
        let mut edges: Vec<(NodeId, NodeId, u64)> =
            dedup.into_iter().map(|((a, b), k)| (a, b, k)).collect();
        edges.sort_unstable();
        let mut degrees = vec![0u64; num_nodes];
        let mut total = 0u64;
        for &(a, b, k) in &edges {
            degrees[a as usize] += k;
            degrees[b as usize] += k;
            total += k;
        }
        MultiGraph {
            num_nodes,
            edges,
            degrees,
            total_edges: total,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// `(a, b, multiplicity)` triples, sorted, `a < b`.
    pub fn edges(&self) -> &[(NodeId, NodeId, u64)] {
        &self.edges
    }

    /// Weighted degree of a node.
    pub fn degree(&self, node: NodeId) -> u64 {
        self.degrees[node as usize]
    }

    /// All weighted degrees.
    pub fn degrees(&self) -> &[u64] {
        &self.degrees
    }

    /// Total unit-edge count `m_G`.
    pub fn total_edges(&self) -> u64 {
        self.total_edges
    }

    /// Sum of all degrees `D_G = 2 m_G`.
    pub fn total_degree(&self) -> u64 {
        2 * self.total_edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n: usize) -> Vec<Arc<str>> {
        (0..n).map(|i| Arc::from(format!("t{i}").as_str())).collect()
    }

    #[test]
    fn normalizes_dedups_and_drops_self_loops() {
        let g = SimilarityGraph::new(
            labels(3),
            vec![
                Edge { a: 1, b: 0, weight: 0.5 },
                Edge { a: 0, b: 1, weight: 0.9 },
                Edge { a: 2, b: 2, weight: 1.0 },
                Edge { a: 1, b: 2, weight: 0.2 },
            ],
        );
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edges()[0], Edge { a: 0, b: 1, weight: 0.9 });
    }

    #[test]
    fn csr_adjacency_is_symmetric() {
        let g = SimilarityGraph::new(
            labels(4),
            vec![
                Edge { a: 0, b: 1, weight: 0.5 },
                Edge { a: 1, b: 2, weight: 0.4 },
                Edge { a: 0, b: 3, weight: 0.1 },
            ],
        );
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(3), 1);
        let n1: Vec<NodeId> = g.neighbors(1).iter().map(|&(v, _)| v).collect();
        assert!(n1.contains(&0) && n1.contains(&2));
        assert_eq!(g.neighbors(3), &[(0, 0.1)]);
    }

    #[test]
    fn node_lookup_by_label() {
        let g = SimilarityGraph::new(labels(2), vec![]);
        assert_eq!(g.node_by_label("t1"), Some(1));
        assert_eq!(g.node_by_label("zzz"), None);
    }

    #[test]
    fn discretization_rounds_and_drops_weak_edges() {
        let g = SimilarityGraph::new(
            labels(3),
            vec![
                Edge { a: 0, b: 1, weight: 0.55 },
                Edge { a: 1, b: 2, weight: 0.001 },
            ],
        );
        let mg = MultiGraph::from_similarity(&g, 10.0);
        // 0.55*10 rounds to 6; 0.001*10 rounds to 0 and is dropped.
        assert_eq!(mg.edges(), &[(0, 1, 6)]);
        assert_eq!(mg.degree(1), 6);
        assert_eq!(mg.degree(2), 0);
        assert_eq!(mg.total_edges(), 6);
        assert_eq!(mg.total_degree(), 12);
    }

    #[test]
    fn from_edges_merges_duplicates() {
        let mg = MultiGraph::from_edges(3, vec![(0, 1, 2), (1, 0, 3), (2, 2, 5), (1, 2, 0)]);
        assert_eq!(mg.edges(), &[(0, 1, 5)]);
        assert_eq!(mg.total_edges(), 5);
    }
}
