//! Graph persistence.
//!
//! The paper's pipeline runs weekly; the similarity graph (2.6 GB in
//! production) is persisted between stages. Graphs are stored as two
//! binary relations (`nodes(id, label)`, `edges(a, b, weight)`) in
//! `esharp-relation`'s compact table format, length-prefixed in one file.

use crate::graph::{Edge, NodeId, SimilarityGraph};
use esharp_relation::binfmt::{decode_table, encode_table};
use esharp_relation::{DataType, Schema, Table, TableBuilder, Value};
use std::io::{self, Read as _, Write as _};
use std::path::Path;
use std::sync::Arc;

/// Persist a graph to `path`.
pub fn save_graph(graph: &SimilarityGraph, path: impl AsRef<Path>) -> io::Result<()> {
    let nodes_schema = Schema::of(&[("id", DataType::Int), ("label", DataType::Str)]);
    let mut nodes = TableBuilder::with_capacity(nodes_schema, graph.num_nodes());
    for (id, label) in graph.labels().iter().enumerate() {
        nodes
            .push_row(vec![Value::Int(id as i64), Value::Str(Arc::clone(label))])
            .map_err(io::Error::other)?;
    }
    let edges_schema = Schema::of(&[
        ("a", DataType::Int),
        ("b", DataType::Int),
        ("weight", DataType::Float),
    ]);
    let mut edges = TableBuilder::with_capacity(edges_schema, graph.num_edges());
    for e in graph.edges() {
        edges
            .push_row(vec![
                Value::Int(e.a as i64),
                Value::Int(e.b as i64),
                Value::Float(e.weight),
            ])
            .map_err(io::Error::other)?;
    }

    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    for table in [nodes.finish(), edges.finish()] {
        let bytes = encode_table(&table);
        file.write_all(&(bytes.len() as u64).to_le_bytes())?;
        file.write_all(&bytes)?;
    }
    file.flush()
}

/// Load a graph persisted by [`save_graph`].
pub fn load_graph(path: impl AsRef<Path>) -> io::Result<SimilarityGraph> {
    let mut file = std::io::BufReader::new(std::fs::File::open(path)?);
    let read_table = |file: &mut std::io::BufReader<std::fs::File>| -> io::Result<Table> {
        let mut len_bytes = [0u8; 8];
        file.read_exact(&mut len_bytes)?;
        let len = u64::from_le_bytes(len_bytes) as usize;
        let mut payload = vec![0u8; len];
        file.read_exact(&mut payload)?;
        decode_table(payload.into()).map_err(io::Error::other)
    };
    let nodes = read_table(&mut file)?;
    let edges = read_table(&mut file)?;

    let label_col = nodes.column_by_name("label").map_err(io::Error::other)?;
    let id_col = nodes.column_by_name("id").map_err(io::Error::other)?;
    let mut labels: Vec<Arc<str>> = vec![Arc::from(""); nodes.num_rows()];
    for row in 0..nodes.num_rows() {
        let id = id_col
            .value(row)
            .as_int()
            .ok_or_else(|| io::Error::other("non-int node id"))? as usize;
        if id >= labels.len() {
            return Err(io::Error::other("node id out of range"));
        }
        let Value::Str(label) = label_col.value(row) else {
            return Err(io::Error::other("non-string label"));
        };
        labels[id] = label;
    }

    let mut edge_list = Vec::with_capacity(edges.num_rows());
    let a_col = edges.column_by_name("a").map_err(io::Error::other)?;
    let b_col = edges.column_by_name("b").map_err(io::Error::other)?;
    let w_col = edges.column_by_name("weight").map_err(io::Error::other)?;
    for row in 0..edges.num_rows() {
        let get = |v: Value| v.as_int().ok_or_else(|| io::Error::other("non-int endpoint"));
        edge_list.push(Edge {
            a: get(a_col.value(row))? as NodeId,
            b: get(b_col.value(row))? as NodeId,
            weight: w_col
                .value(row)
                .as_float()
                .ok_or_else(|| io::Error::other("non-float weight"))?,
        });
    }
    Ok(SimilarityGraph::new(labels, edge_list))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimilarityGraph {
        SimilarityGraph::new(
            vec![Arc::from("49ers"), Arc::from("nfl"), Arc::from("orphan")],
            vec![Edge {
                a: 0,
                b: 1,
                weight: 0.29,
            }],
        )
    }

    #[test]
    fn round_trip_preserves_graph_including_isolated_nodes() {
        let g = sample();
        let dir = std::env::temp_dir().join("esharp_graph_io_test");
        let path = dir.join("graph.bin");
        save_graph(&g, &path).unwrap();
        let back = load_graph(&path).unwrap();
        assert_eq!(back.num_nodes(), 3);
        assert_eq!(back.num_edges(), 1);
        assert_eq!(back.label(2), "orphan");
        assert_eq!(back.edges()[0], g.edges()[0]);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn missing_file_errors() {
        assert!(load_graph("/nonexistent/esharp/graph.bin").is_err());
    }

    #[test]
    fn truncated_file_errors() {
        let g = sample();
        let dir = std::env::temp_dir().join("esharp_graph_io_trunc");
        let path = dir.join("graph.bin");
        save_graph(&g, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(load_graph(&path).is_err());
        let _ = std::fs::remove_dir_all(dir);
    }
}
