//! Graph persistence.
//!
//! The paper's pipeline runs weekly; the similarity graph (2.6 GB in
//! production) is persisted between stages. Graphs are stored as two
//! binary relations (`nodes(id, label)`, `edges(a, b, weight)`) in
//! `esharp-relation`'s compact checksummed table format, length-prefixed
//! in one file. Writes are atomic (write-temp-then-rename, see
//! `esharp_relation::atomic`), so a crash mid-save never shadows a good
//! graph file; reads reject truncation, trailing bytes and bit flips.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::graph::{Edge, NodeId, SimilarityGraph};
use esharp_fault::{FaultInjector, NoFaults, RetryPolicy};
use esharp_relation::atomic::atomic_write_with;
use esharp_relation::binfmt::{decode_frames_exact, encode_frames};
use esharp_relation::{DataType, Schema, Table, TableBuilder, Value};
use std::io;
use std::path::Path;
use std::sync::Arc;

/// Persist a graph to `path` atomically.
pub fn save_graph(graph: &SimilarityGraph, path: impl AsRef<Path>) -> io::Result<()> {
    save_graph_with(graph, path, &NoFaults, "write:graph", &RetryPolicy::none())
}

/// [`save_graph`] with fault injection and bounded retry threaded into
/// the write (the checkpointed pipeline's entry point).
pub fn save_graph_with(
    graph: &SimilarityGraph,
    path: impl AsRef<Path>,
    injector: &dyn FaultInjector,
    site: &str,
    retry: &RetryPolicy,
) -> io::Result<()> {
    let (nodes, edges) = graph_tables(graph)?;
    let buf = encode_frames(&[nodes, edges]);
    atomic_write_with(path, &buf, injector, site, retry)
}

/// Encode a graph as its `(nodes, edges)` relation pair — the on-disk
/// representation of [`save_graph`], reused by the checkpointed pipeline
/// to embed graphs in multi-frame checkpoint files.
pub fn graph_tables(graph: &SimilarityGraph) -> io::Result<(Table, Table)> {
    let nodes_schema = Schema::of(&[("id", DataType::Int), ("label", DataType::Str)]);
    let mut nodes = TableBuilder::with_capacity(nodes_schema, graph.num_nodes());
    for (id, label) in graph.labels().iter().enumerate() {
        nodes
            .push_row(vec![Value::Int(id as i64), Value::Str(Arc::clone(label))])
            .map_err(io::Error::other)?;
    }
    let edges_schema = Schema::of(&[
        ("a", DataType::Int),
        ("b", DataType::Int),
        ("weight", DataType::Float),
    ]);
    let mut edges = TableBuilder::with_capacity(edges_schema, graph.num_edges());
    for e in graph.edges() {
        edges
            .push_row(vec![
                Value::Int(e.a as i64),
                Value::Int(e.b as i64),
                Value::Float(e.weight),
            ])
            .map_err(io::Error::other)?;
    }

    Ok((nodes.finish(), edges.finish()))
}

/// Load a graph persisted by [`save_graph`]. Strict: the file must hold
/// exactly the two expected frames — truncation, bit flips and trailing
/// bytes after the edges table all error instead of being ignored.
pub fn load_graph(path: impl AsRef<Path>) -> io::Result<SimilarityGraph> {
    let data = std::fs::read(path)?;
    let mut tables = decode_frames_exact(&data, 2).map_err(io::Error::other)?;
    let edges = tables.pop().ok_or_else(|| io::Error::other("missing edges table"))?;
    let nodes = tables.pop().ok_or_else(|| io::Error::other("missing nodes table"))?;
    graph_from_tables(&nodes, &edges)
}

/// Rebuild a graph from its `(nodes, edges)` relation pair, validating
/// ids and types (the inverse of [`graph_tables`]).
pub fn graph_from_tables(nodes: &Table, edges: &Table) -> io::Result<SimilarityGraph> {
    let label_col = nodes.column_by_name("label").map_err(io::Error::other)?;
    let id_col = nodes.column_by_name("id").map_err(io::Error::other)?;
    let mut labels: Vec<Arc<str>> = vec![Arc::from(""); nodes.num_rows()];
    for row in 0..nodes.num_rows() {
        let id = id_col
            .value(row)
            .as_int()
            .ok_or_else(|| io::Error::other("non-int node id"))? as usize;
        if id >= labels.len() {
            return Err(io::Error::other("node id out of range"));
        }
        let Value::Str(label) = label_col.value(row) else {
            return Err(io::Error::other("non-string label"));
        };
        labels[id] = label;
    }

    let mut edge_list = Vec::with_capacity(edges.num_rows());
    let a_col = edges.column_by_name("a").map_err(io::Error::other)?;
    let b_col = edges.column_by_name("b").map_err(io::Error::other)?;
    let w_col = edges.column_by_name("weight").map_err(io::Error::other)?;
    for row in 0..edges.num_rows() {
        let get = |v: Value| v.as_int().ok_or_else(|| io::Error::other("non-int endpoint"));
        edge_list.push(Edge {
            a: get(a_col.value(row))? as NodeId,
            b: get(b_col.value(row))? as NodeId,
            weight: w_col
                .value(row)
                .as_float()
                .ok_or_else(|| io::Error::other("non-float weight"))?,
        });
    }
    Ok(SimilarityGraph::new(labels, edge_list))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimilarityGraph {
        SimilarityGraph::new(
            vec![Arc::from("49ers"), Arc::from("nfl"), Arc::from("orphan")],
            vec![Edge {
                a: 0,
                b: 1,
                weight: 0.29,
            }],
        )
    }

    #[test]
    fn round_trip_preserves_graph_including_isolated_nodes() {
        let g = sample();
        let dir = std::env::temp_dir().join("esharp_graph_io_test");
        let path = dir.join("graph.bin");
        save_graph(&g, &path).unwrap();
        let back = load_graph(&path).unwrap();
        assert_eq!(back.num_nodes(), 3);
        assert_eq!(back.num_edges(), 1);
        assert_eq!(back.label(2), "orphan");
        assert_eq!(back.edges()[0], g.edges()[0]);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn missing_file_errors() {
        assert!(load_graph("/nonexistent/esharp/graph.bin").is_err());
    }

    #[test]
    fn truncation_at_every_boundary_errors() {
        let g = sample();
        let dir = std::env::temp_dir().join("esharp_graph_io_trunc");
        let path = dir.join("graph.bin");
        save_graph(&g, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        for cut in 0..bytes.len() {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            assert!(load_graph(&path).is_err(), "cut at {cut} accepted");
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn trailing_bytes_after_edges_table_error() {
        let g = sample();
        let dir = std::env::temp_dir().join("esharp_graph_io_trailing");
        let path = dir.join("graph.bin");
        save_graph(&g, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0u8; 16]);
        std::fs::write(&path, &bytes).unwrap();
        assert!(load_graph(&path).is_err(), "trailing bytes silently ignored");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn every_single_bit_flip_errors() {
        let g = sample();
        let dir = std::env::temp_dir().join("esharp_graph_io_bitflip");
        let path = dir.join("graph.bin");
        save_graph(&g, &path).unwrap();
        let good = std::fs::read(&path).unwrap();
        for byte in 0..good.len() {
            for bit in 0..8 {
                let mut bad = good.clone();
                bad[byte] ^= 1 << bit;
                std::fs::write(&path, &bad).unwrap();
                assert!(
                    load_graph(&path).is_err(),
                    "bit flip at byte {byte} bit {bit} accepted"
                );
            }
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn torn_save_never_shadows_previous_graph() {
        use esharp_fault::{Fault, FaultPlan};
        let g = sample();
        let dir = std::env::temp_dir().join("esharp_graph_io_torn");
        let path = dir.join("graph.bin");
        save_graph(&g, &path).unwrap();
        let plan = FaultPlan::new(1).trigger(
            "write:graph",
            0,
            Fault::TornWrite { numerator: 3, denominator: 4 },
        );
        let bigger = SimilarityGraph::new(
            vec![Arc::from("a"), Arc::from("b")],
            vec![Edge { a: 0, b: 1, weight: 1.0 }],
        );
        assert!(save_graph_with(
            &bigger,
            &path,
            &plan,
            "write:graph",
            &RetryPolicy::none()
        )
        .is_err());
        // The original artifact is still fully readable.
        let back = load_graph(&path).unwrap();
        assert_eq!(back.num_nodes(), 3);
        assert_eq!(back.edges()[0], g.edges()[0]);
        let _ = std::fs::remove_dir_all(dir);
    }
}
