//! # esharp-graph
//!
//! Term-similarity graph construction from query-log click behaviour —
//! §4.1 of *e#: Sharper Expertise Detection from Microblogs* (EDBT 2016).
//!
//! Pipeline position: `esharp-querylog`'s aggregated `(query, url, clicks)`
//! records come in; a weighted undirected [`SimilarityGraph`] (cosine
//! similarity between per-query click vectors, built through the URL
//! inverted index rather than all-pairs) and its discretized
//! [`MultiGraph`] (the paper's unit-edge representation for modularity)
//! come out. [`relation_io`] converts graphs to/from the relational tables
//! the Figure 4 SQL operates on.

#![warn(missing_docs)]

mod builder;
mod graph;
pub mod io;
pub mod relation_io;
mod vector;

pub use builder::{build_graph, build_graph_naive, BuildStats, GraphConfig};
pub use graph::{Edge, MultiGraph, NodeId, SimilarityGraph};
pub use vector::ClickVector;
