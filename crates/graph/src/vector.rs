//! Sparse click vectors and cosine similarity (§4.1, Figure 2).
//!
//! "Consider a vector space where each dimension represents a URL from the
//! query log. In this space, we associate each query to a vector. Each
//! component of the vector represents the number of clicks on the URL."

use esharp_querylog::UrlId;

/// A sparse vector over URL dimensions, sorted by URL id.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ClickVector {
    components: Vec<(UrlId, f64)>,
}

impl ClickVector {
    /// Build from unsorted `(url, clicks)` pairs; duplicate URLs are summed.
    pub fn from_pairs(mut pairs: Vec<(UrlId, f64)>) -> Self {
        pairs.sort_by_key(|&(url, _)| url);
        let mut components: Vec<(UrlId, f64)> = Vec::with_capacity(pairs.len());
        for (url, clicks) in pairs {
            match components.last_mut() {
                Some((last_url, acc)) if *last_url == url => *acc += clicks,
                _ => components.push((url, clicks)),
            }
        }
        ClickVector { components }
    }

    /// The sorted components.
    pub fn components(&self) -> &[(UrlId, f64)] {
        &self.components
    }

    /// Number of non-zero dimensions.
    pub fn nnz(&self) -> usize {
        self.components.len()
    }

    /// True if the vector is all-zero.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.components
            .iter()
            .map(|&(_, x)| x * x)
            .sum::<f64>()
            .sqrt()
    }

    /// Dot product with another vector (merge join on sorted URL ids).
    pub fn dot(&self, other: &ClickVector) -> f64 {
        let (mut i, mut j) = (0, 0);
        let mut acc = 0.0;
        while i < self.components.len() && j < other.components.len() {
            let (ua, xa) = self.components[i];
            let (ub, xb) = other.components[j];
            match ua.cmp(&ub) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += xa * xb;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Cosine similarity in `[0, 1]` (both vectors are non-negative click
    /// counts). Zero if either vector is empty.
    pub fn cosine(&self, other: &ClickVector) -> f64 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            return 0.0;
        }
        (self.dot(other) / denom).clamp(0.0, 1.0)
    }

    /// Scale the vector to unit norm (no-op on empty vectors). Normalized
    /// vectors let the graph builder accumulate cosine similarity directly
    /// as a sum of per-URL products.
    pub fn normalize(&mut self) {
        let n = self.norm();
        if n > 0.0 {
            for (_, x) in &mut self.components {
                *x /= n;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure2_example() {
        // 49ers: 49ers.com=25, espn.com=10 ; nfl: nfl.com=20, espn.com=15.
        // URLs: 0=49ers.com, 1=espn.com, 2=nfl.com.
        let niners = ClickVector::from_pairs(vec![(0, 25.0), (1, 10.0)]);
        let nfl = ClickVector::from_pairs(vec![(2, 20.0), (1, 15.0)]);
        let sim = niners.cosine(&nfl);
        // The paper's Figure 2 reports 0.22 after rounding the intermediate
        // norms; the exact value of 150 / (√725·√625) is 0.2228….
        assert!((sim - 0.2228).abs() < 1e-3, "sim = {sim}");
    }

    #[test]
    fn duplicate_urls_are_summed() {
        let v = ClickVector::from_pairs(vec![(3, 1.0), (3, 2.0), (1, 4.0)]);
        assert_eq!(v.components(), &[(1, 4.0), (3, 3.0)]);
    }

    #[test]
    fn cosine_bounds_and_identity() {
        let v = ClickVector::from_pairs(vec![(0, 3.0), (7, 4.0)]);
        assert!((v.cosine(&v) - 1.0).abs() < 1e-12);
        let w = ClickVector::from_pairs(vec![(1, 5.0)]);
        assert_eq!(v.cosine(&w), 0.0);
        let empty = ClickVector::default();
        assert_eq!(v.cosine(&empty), 0.0);
    }

    #[test]
    fn normalize_gives_unit_norm() {
        let mut v = ClickVector::from_pairs(vec![(0, 3.0), (1, 4.0)]);
        v.normalize();
        assert!((v.norm() - 1.0).abs() < 1e-12);
        let mut empty = ClickVector::default();
        empty.normalize(); // must not panic
    }

    #[test]
    fn dot_is_merge_join() {
        let a = ClickVector::from_pairs(vec![(0, 1.0), (2, 2.0), (4, 3.0)]);
        let b = ClickVector::from_pairs(vec![(1, 1.0), (2, 5.0), (4, 1.0)]);
        assert_eq!(a.dot(&b), 13.0);
    }
}
