//! Conversions between graph structures and relational tables, so the
//! SQL-based community detection (Figure 4) can run on the engine.

use crate::graph::{MultiGraph, NodeId, SimilarityGraph};
use esharp_querylog::{AggregatedLog, World};
use esharp_relation::{DataType, RelResult, Schema, Table, TableBuilder, Value};

/// The aggregated log as a `log(query, url, clicks)` table — the relational
/// starting point of the offline pipeline (998 GB in the paper's Table 9).
pub fn log_to_table(log: &AggregatedLog, world: &World) -> RelResult<Table> {
    let schema = Schema::of(&[
        ("query", DataType::Str),
        ("url", DataType::Str),
        ("clicks", DataType::Int),
    ]);
    let mut builder = TableBuilder::with_capacity(schema, log.records.len());
    for r in &log.records {
        builder.push_row(vec![
            Value::str(world.term_text(r.term)),
            Value::str(world.url_text(r.url)),
            Value::Int(r.clicks as i64),
        ])?;
    }
    Ok(builder.finish())
}

/// The similarity graph as the paper's `Graph(query1, query2, distance)`
/// table. Each undirected edge is emitted in **both** directions, which is
/// what Figure 4's joins assume ("for each community, list all the
/// neighbor communities").
pub fn graph_to_table(graph: &SimilarityGraph) -> RelResult<Table> {
    let schema = Schema::of(&[
        ("query1", DataType::Str),
        ("query2", DataType::Str),
        ("distance", DataType::Float),
    ]);
    let mut builder = TableBuilder::with_capacity(schema, graph.num_edges() * 2);
    for e in graph.edges() {
        let (qa, qb) = (graph.label(e.a), graph.label(e.b));
        builder.push_row(vec![Value::str(qa), Value::str(qb), Value::Float(e.weight)])?;
        builder.push_row(vec![Value::str(qb), Value::str(qa), Value::Float(e.weight)])?;
    }
    Ok(builder.finish())
}

/// The discretized multigraph as a `graph(node1, node2, multiplicity)`
/// table over integer node ids (both directions, like [`graph_to_table`]).
pub fn multigraph_to_table(graph: &MultiGraph) -> RelResult<Table> {
    let schema = Schema::of(&[
        ("node1", DataType::Int),
        ("node2", DataType::Int),
        ("multiplicity", DataType::Int),
    ]);
    let mut builder = TableBuilder::with_capacity(schema, graph.edges().len() * 2);
    for &(a, b, k) in graph.edges() {
        builder.push_row(vec![
            Value::Int(a as i64),
            Value::Int(b as i64),
            Value::Int(k as i64),
        ])?;
        builder.push_row(vec![
            Value::Int(b as i64),
            Value::Int(a as i64),
            Value::Int(k as i64),
        ])?;
    }
    Ok(builder.finish())
}

/// A node→community assignment as the paper's
/// `Communities(comm_name, query)` table over integer ids.
pub fn assignment_to_table(assignment: &[NodeId]) -> RelResult<Table> {
    let schema = Schema::of(&[("comm_name", DataType::Int), ("query", DataType::Int)]);
    let mut builder = TableBuilder::with_capacity(schema, assignment.len());
    for (node, &comm) in assignment.iter().enumerate() {
        builder.push_row(vec![Value::Int(comm as i64), Value::Int(node as i64)])?;
    }
    Ok(builder.finish())
}

/// Read a `Communities(comm_name, query)` table back into a node→community
/// vector of length `num_nodes`.
pub fn table_to_assignment(table: &Table, num_nodes: usize) -> RelResult<Vec<NodeId>> {
    let comm_col = table.column_by_name("comm_name")?;
    let node_col = table.column_by_name("query")?;
    let mut assignment = vec![0 as NodeId; num_nodes];
    let mut seen = vec![false; num_nodes];
    for row in 0..table.num_rows() {
        let node = node_col
            .value(row)
            .as_int()
            .ok_or_else(|| esharp_relation::RelError::Eval("non-int node id".into()))?
            as usize;
        let comm = comm_col
            .value(row)
            .as_int()
            .ok_or_else(|| esharp_relation::RelError::Eval("non-int community id".into()))?;
        if node >= num_nodes {
            return Err(esharp_relation::RelError::Eval(format!(
                "node id {node} out of range ({num_nodes} nodes)"
            )));
        }
        assignment[node] = comm as NodeId;
        seen[node] = true;
    }
    if let Some(missing) = seen.iter().position(|&s| !s) {
        return Err(esharp_relation::RelError::Eval(format!(
            "node {missing} missing from communities table"
        )));
    }
    Ok(assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Edge;
    use std::sync::Arc;

    fn graph() -> SimilarityGraph {
        SimilarityGraph::new(
            vec![Arc::from("a"), Arc::from("b"), Arc::from("c")],
            vec![
                Edge { a: 0, b: 1, weight: 0.5 },
                Edge { a: 1, b: 2, weight: 0.25 },
            ],
        )
    }

    #[test]
    fn graph_table_is_symmetric() {
        let t = graph_to_table(&graph()).unwrap();
        assert_eq!(t.num_rows(), 4);
        let rows = t.sorted_rows();
        assert!(rows.contains(&vec![Value::str("a"), Value::str("b"), Value::Float(0.5)]));
        assert!(rows.contains(&vec![Value::str("b"), Value::str("a"), Value::Float(0.5)]));
    }

    #[test]
    fn assignment_round_trips() {
        let assignment: Vec<NodeId> = vec![0, 0, 2];
        let t = assignment_to_table(&assignment).unwrap();
        assert_eq!(t.num_rows(), 3);
        let back = table_to_assignment(&t, 3).unwrap();
        assert_eq!(back, assignment);
    }

    #[test]
    fn table_to_assignment_validates_coverage() {
        let assignment: Vec<NodeId> = vec![0, 1];
        let t = assignment_to_table(&assignment).unwrap();
        assert!(table_to_assignment(&t, 3).is_err());
    }

    #[test]
    fn multigraph_table_has_both_directions() {
        let mg = MultiGraph::from_edges(3, vec![(0, 1, 4)]);
        let t = multigraph_to_table(&mg).unwrap();
        assert_eq!(t.num_rows(), 2);
    }
}
