//! # esharp-microblog
//!
//! Microblog (Twitter-like) corpus substrate for the e# reproduction
//! (EDBT 2016). The paper's detector consumes tweet text, authorship,
//! mentions and retweets; its corpus is proprietary, so this crate
//! provides both the data model and a synthetic generator driven by the
//! same ground-truth `World` as the search log (DESIGN.md §1).
//!
//! * [`User`], [`Tweet`] — entities, with mention/retweet parsing.
//! * [`Corpus`] — indexed corpus: interned tokens ([`SymbolTable`]),
//!   flat CSR postings ([`PostingsIndex`]), conjunctive all-terms query
//!   matching (§3) with k-way expansion unions, per-user totals for the
//!   TS/MI/RI feature denominators, JSON + checksummed binary
//!   persistence (`corpus.bin`, zero-rebuild load).
//! * [`generate_corpus`] — expert/regular/spam account generation with
//!   topically concentrated experts and short posts (the recall problem
//!   e# exists to fix).

#![warn(missing_docs)]

pub mod arena;
pub mod binio;
pub mod bounded;
mod corpus;
pub mod index;
mod intern;
pub mod segio;
mod synth;
pub mod tokenize;
mod types;

pub use arena::{AlignedBuf, CorpusArena};
pub use bounded::{BoundedSearch, ShardOutcome};
pub use corpus::Corpus;
pub use index::{PostingsIndex, PostingsShard};
pub use intern::SymbolTable;
pub use segio::LoadMode;
pub use synth::{generate_corpus, generate_corpus_streaming, CorpusConfig};
pub use types::{TokenId, Tweet, TweetId, User, UserId};
