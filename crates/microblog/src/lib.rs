//! # esharp-microblog
//!
//! Microblog (Twitter-like) corpus substrate for the e# reproduction
//! (EDBT 2016). The paper's detector consumes tweet text, authorship,
//! mentions and retweets; its corpus is proprietary, so this crate
//! provides both the data model and a synthetic generator driven by the
//! same ground-truth `World` as the search log (DESIGN.md §1).
//!
//! * [`User`], [`Tweet`] — entities, with mention/retweet parsing.
//! * [`Corpus`] — indexed corpus: token inverted index, conjunctive
//!   all-terms query matching (§3), per-user totals for the TS/MI/RI
//!   feature denominators.
//! * [`generate_corpus`] — expert/regular/spam account generation with
//!   topically concentrated experts and short posts (the recall problem
//!   e# exists to fix).

#![warn(missing_docs)]

mod corpus;
mod synth;
pub mod tokenize;
mod types;

pub use corpus::Corpus;
pub use synth::{generate_corpus, CorpusConfig};
pub use types::{Tweet, TweetId, User, UserId};
