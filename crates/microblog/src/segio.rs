//! Sharded corpus persistence: a manifest, a global segment, and one
//! raw-`u32` segment per postings shard — with a zero-copy load mode.
//!
//! The monolithic `corpus.bin` (see [`crate::binio`]) decodes every
//! arena out of `i64` frame columns into fresh `Vec`s; at million-user
//! scale the load is decode-bound, not I/O-bound. The sharded layout
//! splits the corpus at exactly the decode boundary:
//!
//! * **`corpus.manifest`** — a tiny checksummed table of contents:
//!   corpus counts, the shard count, and per-segment (length, CRC,
//!   token range) entries. Written last, atomically, so a partially
//!   written directory is never openable.
//! * **`global.bin`** — the string-heavy, inherently-owned data (users,
//!   tweet texts, mentions, symbol texts, per-user totals) in the same
//!   checksummed frame container as `corpus.bin`. Strings must be
//!   re-materialized as `String`s anyway, so zero-copy buys nothing
//!   here.
//! * **`tokens.seg`** — the per-tweet token arena (offsets + ids) as
//!   raw little-endian `u32` runs at 4-aligned offsets.
//! * **`postings-<i>.seg`** — one segment per postings shard: the
//!   shard-local CSR offsets and the postings arena, same raw layout.
//!
//! Loading reads each `.seg` into one page-aligned [`AlignedBuf`],
//! validates its CRC **once**, checks every structural invariant
//! (offset monotonicity, id ranges, strict posting-list sortedness) by
//! reading the buffer in place, and then either borrows the arenas
//! straight out of the buffer ([`LoadMode::ZeroCopy`] — the arenas in
//! the resulting [`Corpus`] are `CorpusArena::Shared` views and N
//! workers holding corpus clones share the segment bytes) or copies
//! them into owned vectors ([`LoadMode::Copy`] — the honest baseline
//! the bench compares against). Corruption of any byte — manifest,
//! global frames, or any segment, including a missing segment file —
//! fails at open with `InvalidData`, never at query time.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::arena::{AlignedBuf, CorpusArena};
use crate::binio::{
    checked_id, checked_len, col_bool, col_int, col_str, ends_to_offsets, totals,
};
use crate::corpus::Corpus;
use crate::index::{PostingsIndex, PostingsShard};
use crate::intern::SymbolTable;
use crate::types::{Tweet, TweetId, User, UserId};
use esharp_relation::atomic::{atomic_write, crc32};
use esharp_relation::binfmt::{decode_frames_exact, encode_frames};
use esharp_relation::{Column, DataType, Schema, Table};
use std::io;
use std::path::Path;
use std::sync::Arc;

/// Leading bytes of a shard manifest ([`Corpus::load`] sniffs these).
pub const MANIFEST_MAGIC: &[u8; 4] = b"ESMF";
/// Leading bytes of every raw segment file.
const SEGMENT_MAGIC: &[u8; 4] = b"ESSG";
/// Manifest / segment format revision.
const VERSION: u16 = 1;
/// Segment kind: the per-tweet token arena.
const KIND_TOKENS: u16 = 1;
/// Segment kind: one postings shard.
const KIND_POSTINGS: u16 = 2;
/// Frames in `global.bin`: meta, users, user_domains, tweets,
/// tweet_mentions, symbols.
const GLOBAL_FRAMES: usize = 6;
/// Fixed-size segment header: magic, version, kind, crc, row range,
/// offsets length, arena length.
const SEG_HEADER: usize = 32;
/// Fixed manifest prefix before the per-shard entries.
const MANIFEST_HEADER: usize = 48;
/// Bytes per manifest shard entry.
const SHARD_ENTRY: usize = 20;

/// How segment arenas enter memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// Decode segments into owned vectors (the materializing baseline).
    Copy,
    /// Borrow arenas out of the page-aligned segment buffers; the
    /// corpus holds `Arc`s to the buffers and copies nothing.
    ZeroCopy,
}

fn bad(msg: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("sharded corpus: {msg}"))
}

// ---------------------------------------------------------------------
// Writing.
// ---------------------------------------------------------------------

impl Corpus {
    /// Persist the corpus as a shard manifest plus segments in
    /// `manifest_path`'s directory: `global.bin`, `tokens.seg`, and one
    /// `postings-<i>.seg` per shard, re-cut to `shards` contiguous
    /// token ranges balanced by postings bytes. Every file is written
    /// atomically; the manifest goes last, so a crash mid-save leaves
    /// either the old manifest or none — never a manifest naming
    /// half-written segments. Like the monolithic format, uncompacted
    /// delta state is refused.
    pub fn save_sharded(
        &self,
        manifest_path: impl AsRef<Path>,
        shards: usize,
    ) -> io::Result<()> {
        save_sharded(self, manifest_path.as_ref(), shards)
    }
}

fn save_sharded(corpus: &Corpus, manifest_path: &Path, shards: usize) -> io::Result<()> {
    if corpus.has_delta() {
        return Err(io::Error::other(
            "corpus has uncompacted delta state (appends or tombstones); \
             call Corpus::compact() before persisting",
        ));
    }
    let dir = manifest_path.parent().unwrap_or_else(|| Path::new("."));
    std::fs::create_dir_all(dir)?;

    let global = encode_global(corpus)?;
    atomic_write(dir.join("global.bin"), &global)?;

    let (token_offsets, token_ids) = corpus.token_arena_parts();
    let tokens_seg = encode_segment(
        KIND_TOKENS,
        0,
        corpus.tweets().len() as u32,
        token_offsets,
        token_ids,
    );
    let tokens_crc = segment_crc(&tokens_seg);
    atomic_write(dir.join("tokens.seg"), &tokens_seg)?;

    let sharded = corpus.postings_index().resharded(shards);
    let mut entries = Vec::with_capacity(sharded.shard_count());
    for (i, shard) in sharded.shards().iter().enumerate() {
        let (offsets, arena) = shard.parts();
        let seg = encode_segment(
            KIND_POSTINGS,
            shard.token_start(),
            shard.token_end(),
            offsets,
            arena,
        );
        entries.push(ShardEntry {
            token_start: shard.token_start(),
            token_end: shard.token_end(),
            file_len: seg.len() as u64,
            crc: segment_crc(&seg),
        });
        atomic_write(dir.join(format!("postings-{i}.seg")), &seg)?;
    }

    let manifest = encode_manifest(
        corpus.users().len() as u32,
        corpus.tweets().len() as u32,
        corpus.num_tokens() as u32,
        global.len() as u64,
        tokens_seg.len() as u64,
        tokens_crc,
        &entries,
    );
    atomic_write(manifest_path, &manifest)
}

/// The CRC a segment's header carries (bytes `[12..]` of the file) —
/// also recorded in the manifest to bind manifest ↔ segment identity
/// without hashing any byte twice at open.
fn segment_crc(seg: &[u8]) -> u32 {
    u32::from_le_bytes([seg[8], seg[9], seg[10], seg[11]])
}

fn encode_segment(kind: u16, row_start: u32, row_end: u32, offsets: &[u32], arena: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(SEG_HEADER + (offsets.len() + arena.len()) * 4);
    out.extend_from_slice(SEGMENT_MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&kind.to_le_bytes());
    out.extend_from_slice(&[0u8; 4]); // crc placeholder
    out.extend_from_slice(&row_start.to_le_bytes());
    out.extend_from_slice(&row_end.to_le_bytes());
    out.extend_from_slice(&(offsets.len() as u32).to_le_bytes());
    out.extend_from_slice(&(arena.len() as u64).to_le_bytes());
    for &v in offsets {
        out.extend_from_slice(&v.to_le_bytes());
    }
    for &v in arena {
        out.extend_from_slice(&v.to_le_bytes());
    }
    let crc = crc32(&out[12..]);
    out[8..12].copy_from_slice(&crc.to_le_bytes());
    out
}

struct ShardEntry {
    token_start: u32,
    token_end: u32,
    file_len: u64,
    crc: u32,
}

fn encode_manifest(
    num_users: u32,
    num_tweets: u32,
    num_tokens: u32,
    global_len: u64,
    tokens_len: u64,
    tokens_crc: u32,
    shards: &[ShardEntry],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(MANIFEST_HEADER + shards.len() * SHARD_ENTRY);
    out.extend_from_slice(MANIFEST_MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes()); // pad
    out.extend_from_slice(&[0u8; 4]); // crc placeholder
    out.extend_from_slice(&num_users.to_le_bytes());
    out.extend_from_slice(&num_tweets.to_le_bytes());
    out.extend_from_slice(&num_tokens.to_le_bytes());
    out.extend_from_slice(&(shards.len() as u32).to_le_bytes());
    out.extend_from_slice(&global_len.to_le_bytes());
    out.extend_from_slice(&tokens_len.to_le_bytes());
    out.extend_from_slice(&tokens_crc.to_le_bytes());
    for s in shards {
        out.extend_from_slice(&s.token_start.to_le_bytes());
        out.extend_from_slice(&s.token_end.to_le_bytes());
        out.extend_from_slice(&s.file_len.to_le_bytes());
        out.extend_from_slice(&s.crc.to_le_bytes());
    }
    let crc = crc32(&out[12..]);
    out[8..12].copy_from_slice(&crc.to_le_bytes());
    out
}

/// `global.bin`: the six string-heavy frames. Compared to the
/// monolithic container this drops the `tweet_tokens` and `postings`
/// frames (they live in raw segments) and the per-tweet `tokens_end`
/// column (the tokens segment carries its own offsets).
fn encode_global(corpus: &Corpus) -> io::Result<Vec<u8>> {
    let rel = |e: esharp_relation::RelError| io::Error::other(e.to_string());
    let meta = Table::new(
        Schema::of(&[("key", DataType::Str), ("value", DataType::Int)]),
        vec![
            Column::Str(vec![
                "format".into(),
                "num_users".into(),
                "num_tweets".into(),
                "num_tokens".into(),
            ]),
            Column::Int(vec![
                VERSION as i64,
                corpus.users().len() as i64,
                corpus.tweets().len() as i64,
                corpus.num_tokens() as i64,
            ]),
        ],
    )
    .map_err(rel)?;

    let users = corpus.users();
    let mut domains: Vec<i64> = Vec::new();
    let mut domains_end = Vec::with_capacity(users.len());
    for u in users {
        domains.extend(u.expert_domains.iter().map(|&d| d as i64));
        domains_end.push(domains.len() as i64);
    }
    let users_table = Table::new(
        Schema::of(&[
            ("handle", DataType::Str),
            ("display_name", DataType::Str),
            ("description", DataType::Str),
            ("followers", DataType::Int),
            ("verified", DataType::Bool),
            ("spam", DataType::Bool),
            ("tweets_by", DataType::Int),
            ("mentions_of", DataType::Int),
            ("retweets_of", DataType::Int),
            ("domains_end", DataType::Int),
        ]),
        vec![
            Column::Str(users.iter().map(|u| u.handle.as_str().into()).collect()),
            Column::Str(users.iter().map(|u| u.display_name.as_str().into()).collect()),
            Column::Str(users.iter().map(|u| u.description.as_str().into()).collect()),
            Column::Int(users.iter().map(|u| u.followers as i64).collect()),
            Column::Bool(users.iter().map(|u| u.verified).collect()),
            Column::Bool(users.iter().map(|u| u.spam).collect()),
            Column::Int(users.iter().map(|u| corpus.tweets_by(u.id) as i64).collect()),
            Column::Int(users.iter().map(|u| corpus.mentions_of(u.id) as i64).collect()),
            Column::Int(users.iter().map(|u| corpus.retweets_of(u.id) as i64).collect()),
            Column::Int(domains_end),
        ],
    )
    .map_err(rel)?;
    let user_domains = Table::new(
        Schema::of(&[("domain", DataType::Int)]),
        vec![Column::Int(domains)],
    )
    .map_err(rel)?;

    let tweets = corpus.tweets();
    let mut mentions: Vec<i64> = Vec::new();
    let mut mentions_end = Vec::with_capacity(tweets.len());
    for t in tweets {
        mentions.extend(t.mentions.iter().map(|&m| m as i64));
        mentions_end.push(mentions.len() as i64);
    }
    let tweets_table = Table::new(
        Schema::of(&[
            ("author", DataType::Int),
            ("text", DataType::Str),
            ("retweet_of", DataType::Int),
            ("mentions_end", DataType::Int),
        ]),
        vec![
            Column::Int(tweets.iter().map(|t| t.author as i64).collect()),
            Column::Str(tweets.iter().map(|t| t.text.as_str().into()).collect()),
            Column::Int(
                tweets
                    .iter()
                    .map(|t| t.retweet_of.map_or(-1, |u| u as i64))
                    .collect(),
            ),
            Column::Int(mentions_end),
        ],
    )
    .map_err(rel)?;
    let tweet_mentions = Table::new(
        Schema::of(&[("user", DataType::Int)]),
        vec![Column::Int(mentions)],
    )
    .map_err(rel)?;
    let symbols = Table::new(
        Schema::of(&[("token", DataType::Str)]),
        vec![Column::Str(
            (0..corpus.num_tokens())
                .map(|t| corpus.token_text(t as u32).into())
                .collect(),
        )],
    )
    .map_err(rel)?;

    Ok(encode_frames(&[
        meta,
        users_table,
        user_domains,
        tweets_table,
        tweet_mentions,
        symbols,
    ]))
}

// ---------------------------------------------------------------------
// Reading.
// ---------------------------------------------------------------------

/// Open a sharded corpus from its manifest file.
pub fn load_sharded(manifest_path: impl AsRef<Path>, mode: LoadMode) -> io::Result<Corpus> {
    let path = manifest_path.as_ref();
    let data = std::fs::read(path)?;
    load_sharded_manifest(path, &data, mode)
}

/// Open a sharded corpus whose manifest bytes are already in hand (the
/// [`Corpus::load`] sniff path).
pub fn load_sharded_manifest(
    manifest_path: &Path,
    manifest: &[u8],
    mode: LoadMode,
) -> io::Result<Corpus> {
    let m = decode_manifest(manifest)?;
    let dir = manifest_path.parent().unwrap_or_else(|| Path::new("."));

    // global.bin — frame container, self-checksummed per frame.
    let global = std::fs::read(dir.join("global.bin"))
        .map_err(|e| bad(format!("global.bin: {e}")))?;
    if global.len() as u64 != m.global_len {
        return Err(bad(format!(
            "global.bin is {} bytes, manifest says {}",
            global.len(),
            m.global_len
        )));
    }
    let g = decode_global(&global, &m)?;

    // tokens.seg — the per-tweet token arena.
    let tokens_seg = open_segment(
        &dir.join("tokens.seg"),
        KIND_TOKENS,
        m.tokens_len,
        m.tokens_crc,
    )?;
    if tokens_seg.row_start != 0 || tokens_seg.row_end != m.num_tweets {
        return Err(bad("tokens segment row range disagrees with manifest"));
    }
    let (token_offsets, token_ids) = tokens_seg.arenas(mode)?;
    validate_offsets(&token_offsets, m.num_tweets as usize, token_ids.len(), "tweet tokens")?;
    if token_ids.iter().any(|&t| t >= m.num_tokens) {
        return Err(bad("tweet token id out of range"));
    }

    // postings-<i>.seg — one per shard; must tile [0, num_tokens).
    let mut shards = Vec::with_capacity(m.shards.len());
    for (i, entry) in m.shards.iter().enumerate() {
        let seg = open_segment(
            &dir.join(format!("postings-{i}.seg")),
            KIND_POSTINGS,
            entry.file_len,
            entry.crc,
        )?;
        if seg.row_start != entry.token_start || seg.row_end != entry.token_end {
            return Err(bad(format!(
                "postings-{i}.seg token range disagrees with manifest"
            )));
        }
        let (offsets, arena) = seg.arenas(mode)?;
        let range = (entry.token_end - entry.token_start) as usize;
        validate_offsets(&offsets, range, arena.len(), "postings")?;
        let offs = offsets.as_slice();
        let list_arena = arena.as_slice();
        for w in offs.windows(2) {
            let list = &list_arena[w[0] as usize..w[1] as usize];
            if list.windows(2).any(|p| p[0] >= p[1]) {
                return Err(bad("posting list not strictly sorted"));
            }
        }
        if list_arena.iter().any(|&t| t >= m.num_tweets) {
            return Err(bad("posting tweet id out of range"));
        }
        shards.push(
            PostingsShard::new(entry.token_start, entry.token_end, offsets, arena)
                .map_err(bad)?,
        );
    }
    if m.shards.last().map_or(0, |s| s.token_end) != m.num_tokens
        || m.shards.first().map_or(0, |s| s.token_start) != 0
    {
        return Err(bad("postings shards do not cover the token space"));
    }
    let postings = PostingsIndex::from_shards(shards).map_err(bad)?;

    Ok(Corpus::from_parts(
        g.users,
        g.tweets,
        g.symbols,
        token_offsets,
        token_ids,
        postings,
        g.tweets_by_user,
        g.mentions_of_user,
        g.retweets_of_user,
    ))
}

struct Manifest {
    num_users: u32,
    num_tweets: u32,
    num_tokens: u32,
    global_len: u64,
    tokens_len: u64,
    tokens_crc: u32,
    shards: Vec<ShardEntry>,
}

fn read_u16(b: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([b[at], b[at + 1]])
}

fn read_u32(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([b[at], b[at + 1], b[at + 2], b[at + 3]])
}

fn read_u64(b: &[u8], at: usize) -> u64 {
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&b[at..at + 8]);
    u64::from_le_bytes(raw)
}

fn decode_manifest(data: &[u8]) -> io::Result<Manifest> {
    if data.len() < MANIFEST_HEADER {
        return Err(bad("manifest truncated"));
    }
    if &data[0..4] != MANIFEST_MAGIC {
        return Err(bad("manifest magic mismatch"));
    }
    if read_u16(data, 4) != VERSION {
        return Err(bad(format!("unsupported manifest version {}", read_u16(data, 4))));
    }
    if read_u32(data, 8) != crc32(&data[12..]) {
        return Err(bad("manifest checksum mismatch"));
    }
    let num_shards = read_u32(data, 24) as usize;
    if data.len() != MANIFEST_HEADER + num_shards * SHARD_ENTRY {
        return Err(bad("manifest length disagrees with its shard count"));
    }
    let mut shards = Vec::with_capacity(num_shards);
    for i in 0..num_shards {
        let at = MANIFEST_HEADER + i * SHARD_ENTRY;
        shards.push(ShardEntry {
            token_start: read_u32(data, at),
            token_end: read_u32(data, at + 4),
            file_len: read_u64(data, at + 8),
            crc: read_u32(data, at + 16),
        });
    }
    Ok(Manifest {
        num_users: read_u32(data, 12),
        num_tweets: read_u32(data, 16),
        num_tokens: read_u32(data, 20),
        global_len: read_u64(data, 28),
        tokens_len: read_u64(data, 36),
        tokens_crc: read_u32(data, 44),
        shards,
    })
}

/// A validated, parsed segment: the buffer plus the byte ranges of its
/// two arenas.
struct Segment {
    buf: Arc<AlignedBuf>,
    row_start: u32,
    row_end: u32,
    offsets_len: usize,
    arena_len: usize,
}

impl Segment {
    /// The (offsets, arena) pair in the requested representation.
    fn arenas(&self, mode: LoadMode) -> io::Result<(CorpusArena, CorpusArena)> {
        let offsets_at = SEG_HEADER;
        let arena_at = SEG_HEADER + self.offsets_len * 4;
        match mode {
            LoadMode::ZeroCopy => Ok((
                CorpusArena::shared(self.buf.clone(), offsets_at, self.offsets_len)
                    .map_err(bad)?,
                CorpusArena::shared(self.buf.clone(), arena_at, self.arena_len).map_err(bad)?,
            )),
            LoadMode::Copy => {
                let decode = |at: usize, len: usize| -> Vec<u32> {
                    self.buf.as_slice()[at..at + len * 4]
                        .chunks_exact(4)
                        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                        .collect()
                };
                Ok((
                    CorpusArena::Owned(decode(offsets_at, self.offsets_len)),
                    CorpusArena::Owned(decode(arena_at, self.arena_len)),
                ))
            }
        }
    }
}

/// Read one segment file into a page-aligned buffer and validate its
/// header: magic, version, kind, the CRC over the payload (computed
/// exactly once), and that its length and CRC match what the manifest
/// recorded for it.
fn open_segment(path: &Path, kind: u16, want_len: u64, want_crc: u32) -> io::Result<Segment> {
    let name = path.file_name().map_or_else(
        || path.display().to_string(),
        |n| n.to_string_lossy().into_owned(),
    );
    let buf = AlignedBuf::from_file(path).map_err(|e| bad(format!("{name}: {e}")))?;
    let data = buf.as_slice();
    if data.len() as u64 != want_len {
        return Err(bad(format!(
            "{name} is {} bytes, manifest says {want_len}",
            data.len()
        )));
    }
    if data.len() < SEG_HEADER {
        return Err(bad(format!("{name} truncated")));
    }
    if &data[0..4] != SEGMENT_MAGIC {
        return Err(bad(format!("{name}: segment magic mismatch")));
    }
    if read_u16(data, 4) != VERSION {
        return Err(bad(format!("{name}: unsupported segment version")));
    }
    if read_u16(data, 6) != kind {
        return Err(bad(format!("{name}: wrong segment kind")));
    }
    let crc = read_u32(data, 8);
    if crc != want_crc {
        return Err(bad(format!("{name}: segment identity disagrees with manifest")));
    }
    if crc != crc32(&data[12..]) {
        return Err(bad(format!("{name}: segment checksum mismatch")));
    }
    let offsets_len = checked_len(read_u32(data, 20) as i64, "segment offsets length")?;
    let arena_len64 = read_u64(data, 24);
    if arena_len64 > u32::MAX as u64 {
        return Err(bad(format!("{name}: segment arena length out of range")));
    }
    let arena_len = arena_len64 as usize;
    let want = SEG_HEADER + (offsets_len + arena_len) * 4;
    if data.len() != want {
        return Err(bad(format!(
            "{name} is {} bytes but its header describes {want}",
            data.len()
        )));
    }
    let row_start = read_u32(data, 12);
    let row_end = read_u32(data, 16);
    Ok(Segment {
        buf: Arc::new(buf),
        row_start,
        row_end,
        offsets_len,
        arena_len,
    })
}

/// CSR offsets invariants shared by both segment kinds: one entry per
/// row plus one, starting at 0, monotone, ending at the arena length.
fn validate_offsets(
    offsets: &CorpusArena,
    rows: usize,
    arena_len: usize,
    what: &str,
) -> io::Result<()> {
    let offs = offsets.as_slice();
    if offs.len() != rows + 1 {
        return Err(bad(format!("{what} offsets hold {} entries for {rows} rows", offs.len())));
    }
    if offs.first() != Some(&0) {
        return Err(bad(format!("{what} offsets must start at 0")));
    }
    if offs.windows(2).any(|w| w[0] > w[1]) {
        return Err(bad(format!("{what} offsets not monotone")));
    }
    if offs.last().copied().unwrap_or(0) as usize != arena_len {
        return Err(bad(format!("{what} offsets must end at the arena length")));
    }
    Ok(())
}

struct Global {
    users: Vec<User>,
    tweets: Vec<Tweet>,
    symbols: SymbolTable,
    tweets_by_user: Vec<u64>,
    mentions_of_user: Vec<u64>,
    retweets_of_user: Vec<u64>,
}

fn decode_global(data: &[u8], m: &Manifest) -> io::Result<Global> {
    let frames = decode_frames_exact(data, GLOBAL_FRAMES)
        .map_err(|e| bad(format!("global.bin: {e}")))?;
    let [meta, users_t, user_domains, tweets_t, tweet_mentions, symbols_t]: [Table;
        GLOBAL_FRAMES] = frames
        .try_into()
        .map_err(|_| bad("global.bin: wrong frame count"))?;

    let keys = col_str(&meta, "key")?;
    let values = col_int(&meta, "value")?;
    let meta_value = |key: &str| -> io::Result<i64> {
        keys.iter()
            .position(|k| &**k == key)
            .map(|i| values[i])
            .ok_or_else(|| bad(format!("global.bin: meta key {key} missing")))
    };
    if meta_value("format")? != VERSION as i64 {
        return Err(bad("global.bin: unsupported format"));
    }
    let num_users = checked_len(meta_value("num_users")?, "num_users")?;
    let num_tweets = checked_len(meta_value("num_tweets")?, "num_tweets")?;
    let num_tokens = checked_len(meta_value("num_tokens")?, "num_tokens")?;
    if num_users != m.num_users as usize
        || num_tweets != m.num_tweets as usize
        || num_tokens != m.num_tokens as usize
    {
        return Err(bad("global.bin counts disagree with the manifest"));
    }

    if users_t.num_rows() != num_users {
        return Err(bad("users frame row count disagrees with meta"));
    }
    let handles = col_str(&users_t, "handle")?;
    let display_names = col_str(&users_t, "display_name")?;
    let descriptions = col_str(&users_t, "description")?;
    let followers = col_int(&users_t, "followers")?;
    let verified = col_bool(&users_t, "verified")?;
    let spam = col_bool(&users_t, "spam")?;
    let domains = col_int(&user_domains, "domain")?;
    let domain_offsets = ends_to_offsets(
        col_int(&users_t, "domains_end")?,
        domains.len(),
        "user domains",
    )?;
    let mut users = Vec::with_capacity(num_users);
    for i in 0..num_users {
        let expert_domains = domains[domain_offsets[i] as usize..domain_offsets[i + 1] as usize]
            .iter()
            .map(|&d| checked_id(d, u32::MAX as usize, "expert domain"))
            .collect::<io::Result<Vec<u32>>>()?;
        users.push(User {
            id: i as UserId,
            handle: handles[i].to_string(),
            display_name: display_names[i].to_string(),
            description: descriptions[i].to_string(),
            followers: u64::try_from(followers[i])
                .map_err(|_| bad("negative followers"))?,
            verified: verified[i],
            expert_domains,
            spam: spam[i],
        });
    }
    let tweets_by_user = totals(col_int(&users_t, "tweets_by")?, "tweets_by")?;
    let mentions_of_user = totals(col_int(&users_t, "mentions_of")?, "mentions_of")?;
    let retweets_of_user = totals(col_int(&users_t, "retweets_of")?, "retweets_of")?;

    if tweets_t.num_rows() != num_tweets {
        return Err(bad("tweets frame row count disagrees with meta"));
    }
    let authors = col_int(&tweets_t, "author")?;
    let texts = col_str(&tweets_t, "text")?;
    let retweet_ofs = col_int(&tweets_t, "retweet_of")?;
    let mention_arena = col_int(&tweet_mentions, "user")?;
    let mention_offsets = ends_to_offsets(
        col_int(&tweets_t, "mentions_end")?,
        mention_arena.len(),
        "tweet mentions",
    )?;
    let mut tweets = Vec::with_capacity(num_tweets);
    for i in 0..num_tweets {
        let mentions = mention_arena[mention_offsets[i] as usize..mention_offsets[i + 1] as usize]
            .iter()
            .map(|&u| checked_id(u, num_users, "mention user id"))
            .collect::<io::Result<Vec<UserId>>>()?;
        let retweet_of = match retweet_ofs[i] {
            -1 => None,
            id => Some(checked_id(id, num_users, "retweet_of user id")?),
        };
        tweets.push(Tweet {
            id: i as TweetId,
            author: checked_id(authors[i], num_users, "tweet author")?,
            text: texts[i].to_string(),
            mentions,
            retweet_of,
        });
    }

    if symbols_t.num_rows() != num_tokens {
        return Err(bad("symbols frame row count disagrees with meta"));
    }
    let texts: Vec<Box<str>> = col_str(&symbols_t, "token")?
        .iter()
        .map(|s| Box::from(&**s))
        .collect();
    let symbols = SymbolTable::from_texts(texts).map_err(bad)?;

    Ok(Global {
        users,
        tweets,
        symbols,
        tweets_by_user,
        mentions_of_user,
        retweets_of_user,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::User;

    fn sample() -> Corpus {
        let users = vec![
            User {
                id: 0,
                handle: "alice".into(),
                display_name: "Alice".into(),
                description: "qb talk".into(),
                followers: 120,
                verified: true,
                expert_domains: vec![0, 3],
                spam: false,
            },
            User {
                id: 1,
                handle: "bob".into(),
                display_name: "Bob".into(),
                description: String::new(),
                followers: 4,
                verified: false,
                expert_domains: vec![],
                spam: true,
            },
        ];
        let resolve = |h: &str| match h {
            "alice" => Some(0),
            "bob" => Some(1),
            _ => None,
        };
        let tweets = vec![
            Tweet::parse(0, 0, "the 49ers draft was exciting", resolve),
            Tweet::parse(1, 1, "RT @alice: the 49ers draft was exciting", resolve),
            Tweet::parse(2, 1, "go go niners with @alice", resolve),
        ];
        Corpus::new(users, tweets)
    }

    fn dir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(name);
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn sharded_round_trip_both_modes() {
        let c = sample();
        for k in [1usize, 2, 4] {
            let d = dir(&format!("esharp_segio_round_trip_{k}"));
            let manifest = d.join("corpus.manifest");
            c.save_sharded(&manifest, k).unwrap();
            for mode in [LoadMode::Copy, LoadMode::ZeroCopy] {
                let back = load_sharded(&manifest, mode).unwrap();
                assert_eq!(back.users().len(), c.users().len());
                assert_eq!(back.tweets().len(), c.tweets().len());
                assert_eq!(back.num_tokens(), c.num_tokens());
                for t in 0..c.num_tokens() as u32 {
                    assert_eq!(back.postings(t), c.postings(t));
                    assert_eq!(back.token_text(t), c.token_text(t));
                }
                for id in 0..c.tweets().len() as u32 {
                    assert_eq!(back.tweet_tokens(id), c.tweet_tokens(id));
                }
                assert_eq!(
                    back.match_query("49ers draft"),
                    c.match_query("49ers draft")
                );
                assert_eq!(
                    back.is_zero_copy(),
                    mode == LoadMode::ZeroCopy && cfg!(target_endian = "little")
                );
                // Re-encoding through the monolithic container is
                // byte-identical regardless of shard count or load mode.
                assert_eq!(
                    crate::binio::encode_corpus(&back).unwrap(),
                    crate::binio::encode_corpus(&c).unwrap()
                );
            }
            let _ = std::fs::remove_dir_all(d);
        }
    }

    #[test]
    fn corpus_load_sniffs_the_manifest() {
        let c = sample();
        let d = dir("esharp_segio_sniff");
        let manifest = d.join("corpus.manifest");
        c.save_sharded(&manifest, 2).unwrap();
        let back = Corpus::load(&manifest).unwrap();
        assert_eq!(back.match_query("niners"), c.match_query("niners"));
        let _ = std::fs::remove_dir_all(d);
    }

    #[test]
    fn missing_segment_fails_at_open() {
        let c = sample();
        let d = dir("esharp_segio_missing");
        let manifest = d.join("corpus.manifest");
        c.save_sharded(&manifest, 3).unwrap();
        std::fs::remove_file(d.join("postings-1.seg")).unwrap();
        assert!(load_sharded(&manifest, LoadMode::ZeroCopy).is_err());
        let _ = std::fs::remove_dir_all(d);
    }

    #[test]
    fn zero_copy_appends_work_via_copy_on_write() {
        let c = sample();
        let d = dir("esharp_segio_cow");
        let manifest = d.join("corpus.manifest");
        c.save_sharded(&manifest, 2).unwrap();
        let mut back = load_sharded(&manifest, LoadMode::ZeroCopy).unwrap();
        let id = back.append_tweet("alice", "the niners draft steal").unwrap();
        assert_eq!(back.match_query("steal"), vec![id]);
        assert_eq!(back.match_query("draft"), vec![0, 1, id]);
        let _ = std::fs::remove_dir_all(d);
    }
}
