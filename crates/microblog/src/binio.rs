//! Binary corpus persistence: O(bytes) load, no rebuild.
//!
//! [`Corpus::save`] writes JSON and [`Corpus::load`]ing it re-tokenizes
//! every tweet and rebuilds every index — fine for small fixtures, wrong
//! for a serving process that restarts against a multi-GB corpus. This
//! module serializes the *interned* representation (symbol table, per-
//! tweet token arena, CSR postings, per-user totals) directly onto the
//! shared `esharp-relation::binfmt` v2 checksummed frames, so loading is
//! decode + validate: no tokenization, no postings build, only the two
//! small hash indexes (token text → id, handle → user) are rebuilt.
//!
//! The file is eight length-prefixed frames (see [`FRAMES`]); every frame
//! is CRC32-checksummed, the container rejects trailing bytes, and writes
//! go through `atomic_write` — the same torn-write/bit-flip guarantees as
//! every other PR 2 artifact. Corruption surfaces as `io::Error`
//! (`InvalidData`), never a panic.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::corpus::Corpus;
use crate::index::PostingsIndex;
use crate::intern::SymbolTable;
use crate::types::{Tweet, TweetId, User, UserId};
use esharp_relation::binfmt::{decode_frames_exact, encode_frames};
use esharp_relation::{atomic::atomic_write, Column, DataType, Schema, Table};
use std::io;
use std::path::Path;

/// Format revision carried in the meta frame (bump on layout change).
const FORMAT: i64 = 1;

/// The frames of a `corpus.bin`, in order: meta, users, user_domains,
/// tweets, tweet_tokens, tweet_mentions, symbols, postings. CSR arenas
/// (domains, tokens, mentions, postings) are flat child frames addressed
/// by per-row end offsets in their parent frame.
pub const FRAMES: usize = 8;

impl Corpus {
    /// Persist the corpus in the binary format (checksummed frames,
    /// atomic write). [`Corpus::load`] sniffs the format automatically.
    pub fn save_binary(&self, path: impl AsRef<Path>) -> io::Result<()> {
        atomic_write(path, &encode_corpus(self)?)
    }
}

/// Encode a corpus into the eight-frame binary container.
///
/// The container only represents fully-compacted corpora: delta posting
/// lists and tombstones have no frames, so encoding a corpus with
/// uncompacted ingest state is refused rather than silently dropping it.
pub fn encode_corpus(corpus: &Corpus) -> io::Result<Vec<u8>> {
    if corpus.has_delta() {
        return Err(io::Error::other(
            "corpus has uncompacted delta state (appends or tombstones); \
             call Corpus::compact() before encoding",
        ));
    }
    let rel = |e: esharp_relation::RelError| io::Error::other(e.to_string());

    let meta = Table::new(
        Schema::of(&[("key", DataType::Str), ("value", DataType::Int)]),
        vec![
            Column::Str(vec![
                "format".into(),
                "num_users".into(),
                "num_tweets".into(),
                "num_tokens".into(),
            ]),
            Column::Int(vec![
                FORMAT,
                corpus.users().len() as i64,
                corpus.tweets().len() as i64,
                corpus.num_tokens() as i64,
            ]),
        ],
    )
    .map_err(rel)?;

    let users = corpus.users();
    let mut domains: Vec<i64> = Vec::new();
    let mut domains_end = Vec::with_capacity(users.len());
    for u in users {
        domains.extend(u.expert_domains.iter().map(|&d| d as i64));
        domains_end.push(domains.len() as i64);
    }
    let users_table = Table::new(
        Schema::of(&[
            ("handle", DataType::Str),
            ("display_name", DataType::Str),
            ("description", DataType::Str),
            ("followers", DataType::Int),
            ("verified", DataType::Bool),
            ("spam", DataType::Bool),
            ("tweets_by", DataType::Int),
            ("mentions_of", DataType::Int),
            ("retweets_of", DataType::Int),
            ("domains_end", DataType::Int),
        ]),
        vec![
            Column::Str(users.iter().map(|u| u.handle.as_str().into()).collect()),
            Column::Str(users.iter().map(|u| u.display_name.as_str().into()).collect()),
            Column::Str(users.iter().map(|u| u.description.as_str().into()).collect()),
            Column::Int(users.iter().map(|u| u.followers as i64).collect()),
            Column::Bool(users.iter().map(|u| u.verified).collect()),
            Column::Bool(users.iter().map(|u| u.spam).collect()),
            Column::Int(users.iter().map(|u| corpus.tweets_by(u.id) as i64).collect()),
            Column::Int(users.iter().map(|u| corpus.mentions_of(u.id) as i64).collect()),
            Column::Int(users.iter().map(|u| corpus.retweets_of(u.id) as i64).collect()),
            Column::Int(domains_end),
        ],
    )
    .map_err(rel)?;
    let user_domains = Table::new(
        Schema::of(&[("domain", DataType::Int)]),
        vec![Column::Int(domains)],
    )
    .map_err(rel)?;

    let tweets = corpus.tweets();
    let mut tokens: Vec<i64> = Vec::new();
    let mut tokens_end = Vec::with_capacity(tweets.len());
    let mut mentions: Vec<i64> = Vec::new();
    let mut mentions_end = Vec::with_capacity(tweets.len());
    for t in tweets {
        tokens.extend(corpus.tweet_tokens(t.id).iter().map(|&tok| tok as i64));
        tokens_end.push(tokens.len() as i64);
        mentions.extend(t.mentions.iter().map(|&m| m as i64));
        mentions_end.push(mentions.len() as i64);
    }
    let tweets_table = Table::new(
        Schema::of(&[
            ("author", DataType::Int),
            ("text", DataType::Str),
            ("retweet_of", DataType::Int),
            ("tokens_end", DataType::Int),
            ("mentions_end", DataType::Int),
        ]),
        vec![
            Column::Int(tweets.iter().map(|t| t.author as i64).collect()),
            Column::Str(tweets.iter().map(|t| t.text.as_str().into()).collect()),
            Column::Int(
                tweets
                    .iter()
                    .map(|t| t.retweet_of.map_or(-1, |u| u as i64))
                    .collect(),
            ),
            Column::Int(tokens_end),
            Column::Int(mentions_end),
        ],
    )
    .map_err(rel)?;
    let tweet_tokens = Table::new(
        Schema::of(&[("token", DataType::Int)]),
        vec![Column::Int(tokens)],
    )
    .map_err(rel)?;
    let tweet_mentions = Table::new(
        Schema::of(&[("user", DataType::Int)]),
        vec![Column::Int(mentions)],
    )
    .map_err(rel)?;

    let num_tokens = corpus.num_tokens();
    let mut postings_end = Vec::with_capacity(num_tokens);
    let mut postings_flat: Vec<i64> = Vec::new();
    for token in 0..num_tokens {
        postings_flat.extend(corpus.postings(token as u32).iter().map(|&t| t as i64));
        postings_end.push(postings_flat.len() as i64);
    }
    let symbols = Table::new(
        Schema::of(&[("token", DataType::Str), ("postings_end", DataType::Int)]),
        vec![
            Column::Str(
                (0..num_tokens)
                    .map(|t| corpus.token_text(t as u32).into())
                    .collect(),
            ),
            Column::Int(postings_end),
        ],
    )
    .map_err(rel)?;
    let postings = Table::new(
        Schema::of(&[("tweet", DataType::Int)]),
        vec![Column::Int(postings_flat)],
    )
    .map_err(rel)?;

    Ok(encode_frames(&[
        meta,
        users_table,
        user_domains,
        tweets_table,
        tweet_tokens,
        tweet_mentions,
        symbols,
        postings,
    ]))
}

/// Decode a corpus from the binary container, validating every offset and
/// id. Corruption — bad checksum, truncation, out-of-range ids, non-
/// monotone offsets — errors with `InvalidData`; it never panics and
/// never yields a plausible-but-wrong corpus.
pub fn decode_corpus(data: &[u8]) -> io::Result<Corpus> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, format!("corpus.bin: {msg}"));
    let frames = decode_frames_exact(data, FRAMES)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let [meta, users_t, user_domains, tweets_t, tweet_tokens, tweet_mentions, symbols_t, postings_t]: [Table; FRAMES] =
        frames
            .try_into()
            .map_err(|_| bad("wrong frame count"))?;

    // Meta.
    let keys = col_str(&meta, "key")?;
    let values = col_int(&meta, "value")?;
    let meta_value = |key: &str| -> io::Result<i64> {
        keys.iter()
            .position(|k| &**k == key)
            .map(|i| values[i])
            .ok_or_else(|| bad(&format!("meta key {key} missing")))
    };
    let format = meta_value("format")?;
    if format != FORMAT {
        return Err(bad(&format!("unsupported corpus format {format}")));
    }
    let num_users = checked_len(meta_value("num_users")?, "num_users")?;
    let num_tweets = checked_len(meta_value("num_tweets")?, "num_tweets")?;
    let num_tokens = checked_len(meta_value("num_tokens")?, "num_tokens")?;

    // Users + their domains arena.
    if users_t.num_rows() != num_users {
        return Err(bad("users frame row count disagrees with meta"));
    }
    let handles = col_str(&users_t, "handle")?;
    let display_names = col_str(&users_t, "display_name")?;
    let descriptions = col_str(&users_t, "description")?;
    let followers = col_int(&users_t, "followers")?;
    let verified = col_bool(&users_t, "verified")?;
    let spam = col_bool(&users_t, "spam")?;
    let tweets_by = col_int(&users_t, "tweets_by")?;
    let mentions_of = col_int(&users_t, "mentions_of")?;
    let retweets_of = col_int(&users_t, "retweets_of")?;
    let domains = col_int(&user_domains, "domain")?;
    let domain_offsets = ends_to_offsets(
        col_int(&users_t, "domains_end")?,
        domains.len(),
        "user domains",
    )?;
    let mut users = Vec::with_capacity(num_users);
    for i in 0..num_users {
        let expert_domains = domains[domain_offsets[i] as usize..domain_offsets[i + 1] as usize]
            .iter()
            .map(|&d| checked_id(d, u32::MAX as usize, "expert domain"))
            .collect::<io::Result<Vec<u32>>>()?;
        users.push(User {
            id: i as UserId,
            handle: handles[i].to_string(),
            display_name: display_names[i].to_string(),
            description: descriptions[i].to_string(),
            followers: checked_total(followers[i], "followers")?,
            verified: verified[i],
            expert_domains,
            spam: spam[i],
        });
    }
    let tweets_by_user = totals(tweets_by, "tweets_by")?;
    let mentions_of_user = totals(mentions_of, "mentions_of")?;
    let retweets_of_user = totals(retweets_of, "retweets_of")?;

    // Tweets + their token and mention arenas.
    if tweets_t.num_rows() != num_tweets {
        return Err(bad("tweets frame row count disagrees with meta"));
    }
    let authors = col_int(&tweets_t, "author")?;
    let texts = col_str(&tweets_t, "text")?;
    let retweet_ofs = col_int(&tweets_t, "retweet_of")?;
    let token_arena = col_int(&tweet_tokens, "token")?;
    let token_offsets = ends_to_offsets(
        col_int(&tweets_t, "tokens_end")?,
        token_arena.len(),
        "tweet tokens",
    )?;
    let mention_arena = col_int(&tweet_mentions, "user")?;
    let mention_offsets = ends_to_offsets(
        col_int(&tweets_t, "mentions_end")?,
        mention_arena.len(),
        "tweet mentions",
    )?;
    let mut tweets = Vec::with_capacity(num_tweets);
    for i in 0..num_tweets {
        let mentions = mention_arena[mention_offsets[i] as usize..mention_offsets[i + 1] as usize]
            .iter()
            .map(|&m| checked_id(m, num_users, "mention user id"))
            .collect::<io::Result<Vec<UserId>>>()?;
        let retweet_of = match retweet_ofs[i] {
            -1 => None,
            id => Some(checked_id(id, num_users, "retweet_of user id")?),
        };
        tweets.push(Tweet {
            id: i as TweetId,
            author: checked_id(authors[i], num_users, "tweet author")?,
            text: texts[i].to_string(),
            mentions,
            retweet_of,
        });
    }
    let token_ids = token_arena
        .iter()
        .map(|&t| checked_id(t, num_tokens, "tweet token id"))
        .collect::<io::Result<Vec<u32>>>()?;

    // Symbols + postings arena.
    if symbols_t.num_rows() != num_tokens {
        return Err(bad("symbols frame row count disagrees with meta"));
    }
    let texts: Vec<Box<str>> = col_str(&symbols_t, "token")?
        .iter()
        .map(|s| Box::from(&**s))
        .collect();
    let symbols = SymbolTable::from_texts(texts).map_err(|e| bad(&e))?;
    let posting_arena = col_int(&postings_t, "tweet")?;
    let posting_offsets = ends_to_offsets(
        col_int(&symbols_t, "postings_end")?,
        posting_arena.len(),
        "postings",
    )?;
    let posting_tweets = posting_arena
        .iter()
        .map(|&t| checked_id(t, num_tweets, "posting tweet id"))
        .collect::<io::Result<Vec<TweetId>>>()?;
    for w in posting_offsets.windows(2) {
        let list = &posting_tweets[w[0] as usize..w[1] as usize];
        if list.windows(2).any(|p| p[0] >= p[1]) {
            return Err(bad("posting list not strictly sorted"));
        }
    }
    let postings = PostingsIndex::from_parts(posting_offsets, posting_tweets)
        .map_err(|e| bad(&e))?;

    if tweets_by_user.len() != num_users
        || mentions_of_user.len() != num_users
        || retweets_of_user.len() != num_users
    {
        return Err(bad("per-user totals disagree with num_users"));
    }

    Ok(Corpus::from_parts(
        users,
        tweets,
        symbols,
        crate::arena::CorpusArena::Owned(token_offsets),
        crate::arena::CorpusArena::Owned(token_ids),
        postings,
        tweets_by_user,
        mentions_of_user,
        retweets_of_user,
    ))
}

pub(crate) fn col_int<'t>(table: &'t Table, name: &str) -> io::Result<&'t [i64]> {
    table
        .column_by_name(name)
        .ok()
        .and_then(Column::as_int)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("corpus.bin: int column {name} missing"),
            )
        })
}

pub(crate) fn col_str<'t>(table: &'t Table, name: &str) -> io::Result<&'t [std::sync::Arc<str>]> {
    table
        .column_by_name(name)
        .ok()
        .and_then(Column::as_str)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("corpus.bin: str column {name} missing"),
            )
        })
}

pub(crate) fn col_bool<'t>(table: &'t Table, name: &str) -> io::Result<&'t [bool]> {
    match table.column_by_name(name) {
        Ok(Column::Bool(v)) => Ok(v),
        _ => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("corpus.bin: bool column {name} missing"),
        )),
    }
}

/// Turn per-row end offsets into a `[0, end0, end1, …]` CSR offsets vec,
/// rejecting non-monotone sequences and a final end that misses the
/// arena length.
pub(crate) fn ends_to_offsets(ends: &[i64], arena_len: usize, what: &str) -> io::Result<Vec<u32>> {
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, format!("corpus.bin: {msg}"));
    let mut offsets = Vec::with_capacity(ends.len() + 1);
    offsets.push(0u32);
    let mut prev = 0i64;
    for &end in ends {
        if end < prev || end > arena_len as i64 {
            return Err(bad(format!("{what} offsets not monotone within the arena")));
        }
        prev = end;
        offsets.push(end as u32);
    }
    if prev != arena_len as i64 {
        return Err(bad(format!("{what} arena has bytes no row claims")));
    }
    Ok(offsets)
}

pub(crate) fn checked_id(value: i64, bound: usize, what: &str) -> io::Result<u32> {
    if value < 0 || value >= bound as i64 || value > u32::MAX as i64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("corpus.bin: {what} {value} out of range"),
        ));
    }
    Ok(value as u32)
}

pub(crate) fn checked_total(value: i64, what: &str) -> io::Result<u64> {
    u64::try_from(value).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("corpus.bin: negative {what}"),
        )
    })
}

pub(crate) fn checked_len(value: i64, what: &str) -> io::Result<usize> {
    if !(0..=u32::MAX as i64).contains(&value) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("corpus.bin: {what} {value} out of range"),
        ));
    }
    Ok(value as usize)
}

pub(crate) fn totals(values: &[i64], what: &str) -> io::Result<Vec<u64>> {
    values.iter().map(|&v| checked_total(v, what)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::User;

    fn sample() -> Corpus {
        let users = vec![
            User {
                id: 0,
                handle: "alice".into(),
                display_name: "Alice".into(),
                description: "qb talk".into(),
                followers: 120,
                verified: true,
                expert_domains: vec![0, 3],
                spam: false,
            },
            User {
                id: 1,
                handle: "bob".into(),
                display_name: "Bob".into(),
                description: String::new(),
                followers: 4,
                verified: false,
                expert_domains: vec![],
                spam: true,
            },
        ];
        let resolve = |h: &str| match h {
            "alice" => Some(0),
            "bob" => Some(1),
            _ => None,
        };
        let tweets = vec![
            Tweet::parse(0, 0, "the 49ers draft was exciting", resolve),
            Tweet::parse(1, 1, "RT @alice: the 49ers draft was exciting", resolve),
            Tweet::parse(2, 1, "go go niners with @alice", resolve),
        ];
        Corpus::new(users, tweets)
    }

    fn equivalent(a: &Corpus, b: &Corpus) {
        assert_eq!(a.users().len(), b.users().len());
        for (x, y) in a.users().iter().zip(b.users()) {
            assert_eq!(x.handle, y.handle);
            assert_eq!(x.expert_domains, y.expert_domains);
            assert_eq!(x.followers, y.followers);
            assert_eq!((x.verified, x.spam), (y.verified, y.spam));
        }
        assert_eq!(a.tweets().len(), b.tweets().len());
        for (x, y) in a.tweets().iter().zip(b.tweets()) {
            assert_eq!(x.text, y.text);
            assert_eq!(x.mentions, y.mentions);
            assert_eq!(x.retweet_of, y.retweet_of);
            assert_eq!(a.tweet_tokens(x.id), b.tweet_tokens(y.id));
        }
        assert_eq!(a.num_tokens(), b.num_tokens());
        for t in 0..a.num_tokens() as u32 {
            assert_eq!(a.token_text(t), b.token_text(t));
            assert_eq!(a.postings(t), b.postings(t));
        }
        for u in 0..a.users().len() as u32 {
            assert_eq!(a.tweets_by(u), b.tweets_by(u));
            assert_eq!(a.mentions_of(u), b.mentions_of(u));
            assert_eq!(a.retweets_of(u), b.retweets_of(u));
        }
    }

    #[test]
    fn binary_round_trip_is_identical() {
        let c = sample();
        let bytes = encode_corpus(&c).unwrap();
        let back = decode_corpus(&bytes).unwrap();
        equivalent(&c, &back);
        assert_eq!(back.match_query("49ers draft"), c.match_query("49ers draft"));
        assert_eq!(back.user_by_handle("bob"), Some(1));
    }

    #[test]
    fn save_binary_loads_through_autodetect() {
        let c = sample();
        let dir = std::env::temp_dir().join("esharp_binio_autodetect");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.bin");
        c.save_binary(&path).unwrap();
        let back = Corpus::load(&path).unwrap();
        equivalent(&c, &back);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn rejects_truncation_at_every_boundary() {
        let bytes = encode_corpus(&sample()).unwrap();
        for cut in 0..bytes.len() {
            assert!(decode_corpus(&bytes[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut bytes = encode_corpus(&sample()).unwrap();
        bytes.push(0);
        assert!(decode_corpus(&bytes).is_err());
    }
}
