//! Page-aligned segment buffers and the arenas that borrow from them.
//!
//! The binary corpus load used to be decode-bound: every `u32` arena
//! (tweet tokens, postings offsets, postings) was copied out of the frame
//! container into a fresh `Vec`. The sharded segment format (`segio`)
//! stores those arenas as raw little-endian `u32` runs at 4-byte-aligned
//! file offsets, so a load can instead read the whole segment into one
//! [`AlignedBuf`], validate its checksum once, and hand out `&[u32]`
//! views straight into the buffer — zero copies, and N serve workers
//! holding `Arc` clones of the same corpus share one physical copy of
//! the segment bytes.
//!
//! Ownership rules (see PERF.md §"Shard layout"):
//! * [`AlignedBuf`] owns the bytes; it is allocated on a 4096-byte
//!   (page) boundary so any in-file offset that is a multiple of 4 is
//!   also 4-aligned in memory — the precondition for reinterpreting the
//!   run as `[u32]`.
//! * [`CorpusArena`] is either an owned `Vec<u32>` (the build /
//!   decode-copy path) or an `Arc<AlignedBuf>` plus a validated range
//!   (the zero-copy path). Both deref to `&[u32]`; clones of the shared
//!   variant bump the `Arc`, not the bytes.
//! * Mutation ([`CorpusArena::make_owned`]) copies a shared arena out of
//!   its buffer first — copy-on-write, so streaming ingest can append to
//!   a zero-copy corpus at the cost of materializing only the arenas it
//!   actually touches.
//!
//! Zero-copy reinterpretation assumes the host is little-endian like the
//! file; `segio` falls back to the copy path on big-endian targets.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
use std::io::{self, Read};
use std::path::Path;
use std::ptr::NonNull;
use std::sync::Arc;

/// Alignment of every [`AlignedBuf`]: one page. Stricter than the 4
/// bytes `[u32]` views require, but it keeps segment reads page-aligned
/// (the fast path for direct and buffered I/O alike) and leaves room for
/// wider SIMD loads over the arenas.
pub const SEGMENT_ALIGN: usize = 4096;

/// An owned, immutable, page-aligned byte buffer holding one segment
/// file. The allocation never moves, so slices handed out by
/// [`CorpusArena`] stay valid for as long as any `Arc<AlignedBuf>`
/// clone lives.
pub struct AlignedBuf {
    ptr: NonNull<u8>,
    len: usize,
}

// SAFETY: the buffer is immutable after construction and the allocation
// is uniquely owned by this struct; sharing `&AlignedBuf` across threads
// is plain shared-read access.
unsafe impl Send for AlignedBuf {}
unsafe impl Sync for AlignedBuf {}

impl AlignedBuf {
    fn alloc_uninit(len: usize) -> AlignedBuf {
        if len == 0 {
            return AlignedBuf {
                ptr: NonNull::<u8>::dangling(),
                len: 0,
            };
        }
        // Layout error is impossible for (len, 4096) with len already
        // bounds-checked by the callers (file sizes), but stay panic-free.
        let layout = match Layout::from_size_align(len, SEGMENT_ALIGN) {
            Ok(l) => l,
            Err(_) => Layout::new::<u8>(),
        };
        // SAFETY: layout has non-zero size (len > 0).
        let raw = unsafe { alloc(layout) };
        let Some(ptr) = NonNull::new(raw) else {
            handle_alloc_error(layout);
        };
        AlignedBuf { ptr, len }
    }

    /// Read an entire file into a fresh page-aligned buffer.
    pub fn from_file(path: impl AsRef<Path>) -> io::Result<AlignedBuf> {
        let mut file = std::fs::File::open(path)?;
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "segment larger than the address space",
            ));
        }
        let mut buf = AlignedBuf::alloc_uninit(len as usize);
        file.read_exact(buf.as_mut_slice())?;
        Ok(buf)
    }

    /// Copy `bytes` into a fresh page-aligned buffer (tests and
    /// in-memory validation paths).
    pub fn from_bytes(bytes: &[u8]) -> AlignedBuf {
        let mut buf = AlignedBuf::alloc_uninit(bytes.len());
        buf.as_mut_slice().copy_from_slice(bytes);
        buf
    }

    // Only used during construction; the buffer is immutable once built.
    fn as_mut_slice(&mut self) -> &mut [u8] {
        if self.len == 0 {
            return &mut [];
        }
        // SAFETY: ptr is valid for len bytes and uniquely borrowed.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }

    /// The buffer contents.
    pub fn as_slice(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: ptr is valid for len bytes for the life of self.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        if self.len == 0 {
            return;
        }
        if let Ok(layout) = Layout::from_size_align(self.len, SEGMENT_ALIGN) {
            // SAFETY: allocated in alloc_uninit with this exact layout.
            unsafe { dealloc(self.ptr.as_ptr(), layout) };
        }
    }
}

impl std::fmt::Debug for AlignedBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlignedBuf").field("len", &self.len).finish()
    }
}

/// A flat `u32` arena that is either owned outright or a validated view
/// into a shared segment buffer. All read paths go through
/// [`CorpusArena::as_slice`] (or `Deref`); the representation is an
/// implementation detail of how the corpus was loaded.
#[derive(Debug, Clone)]
pub enum CorpusArena {
    /// The build / decode-copy representation: a plain vector.
    Owned(Vec<u32>),
    /// A zero-copy view: `len` little-endian `u32`s starting `byte_start`
    /// bytes into the shared buffer. Constructed only through
    /// [`CorpusArena::shared`], which checks bounds and alignment.
    Shared {
        /// The segment buffer this arena borrows from.
        buf: Arc<AlignedBuf>,
        /// Byte offset of the first element (always 4-aligned).
        byte_start: usize,
        /// Element count.
        len: usize,
    },
}

impl Default for CorpusArena {
    fn default() -> CorpusArena {
        CorpusArena::Owned(Vec::new())
    }
}

impl CorpusArena {
    /// A zero-copy view of `len` `u32`s at `byte_start` in `buf`.
    /// Fails (rather than panicking later) when the range escapes the
    /// buffer or is not 4-aligned — both are file-corruption shapes, not
    /// programmer errors, on the segment load path.
    pub fn shared(buf: Arc<AlignedBuf>, byte_start: usize, len: usize) -> Result<CorpusArena, String> {
        if cfg!(target_endian = "big") {
            // The on-disk arenas are little-endian; reinterpreting them on
            // a big-endian host would read scrambled ids. Decode instead.
            let bytes = buf
                .as_slice()
                .get(byte_start..byte_start + len * 4)
                .ok_or("segment arena range out of bounds")?;
            let owned = bytes
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect();
            return Ok(CorpusArena::Owned(owned));
        }
        let byte_len = len
            .checked_mul(4)
            .ok_or("segment arena length overflows")?;
        let end = byte_start
            .checked_add(byte_len)
            .ok_or("segment arena range overflows")?;
        if end > buf.len() {
            return Err(format!(
                "segment arena range {byte_start}..{end} exceeds buffer of {} bytes",
                buf.len()
            ));
        }
        if !byte_start.is_multiple_of(4) {
            return Err(format!("segment arena offset {byte_start} not 4-aligned"));
        }
        Ok(CorpusArena::Shared {
            buf,
            byte_start,
            len,
        })
    }

    /// The elements, wherever they live.
    pub fn as_slice(&self) -> &[u32] {
        match self {
            CorpusArena::Owned(v) => v,
            CorpusArena::Shared {
                buf,
                byte_start,
                len,
            } => {
                if *len == 0 {
                    return &[];
                }
                // SAFETY: `shared` validated that [byte_start, byte_start
                // + 4*len) is in bounds and 4-aligned, the buffer is
                // page-aligned and immutable, and the Arc keeps it alive
                // for at least the life of self.
                unsafe {
                    std::slice::from_raw_parts(
                        buf.as_slice().as_ptr().add(*byte_start).cast::<u32>(),
                        *len,
                    )
                }
            }
        }
    }

    /// Mutable access, materializing a shared view into an owned vector
    /// first (copy-on-write: appending to a zero-copy corpus pays for
    /// exactly the arenas it touches).
    pub fn make_owned(&mut self) -> &mut Vec<u32> {
        if let CorpusArena::Shared { .. } = self {
            *self = CorpusArena::Owned(self.as_slice().to_vec());
        }
        match self {
            CorpusArena::Owned(v) => v,
            // Unreachable: the branch above rewrote Shared to Owned.
            CorpusArena::Shared { .. } => unreachable!("make_owned left a shared arena"),
        }
    }

    /// True when this arena borrows a shared segment buffer.
    pub fn is_shared(&self) -> bool {
        matches!(self, CorpusArena::Shared { .. })
    }

    /// Element count.
    pub fn len(&self) -> usize {
        match self {
            CorpusArena::Owned(v) => v.len(),
            CorpusArena::Shared { len, .. } => *len,
        }
    }

    /// True when the arena holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl From<Vec<u32>> for CorpusArena {
    fn from(v: Vec<u32>) -> CorpusArena {
        CorpusArena::Owned(v)
    }
}

impl std::ops::Deref for CorpusArena {
    type Target = [u32];

    fn deref(&self) -> &[u32] {
        self.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_buf_round_trips_and_is_page_aligned() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let buf = AlignedBuf::from_bytes(&data);
        assert_eq!(buf.as_slice(), &data[..]);
        assert_eq!(buf.as_slice().as_ptr() as usize % SEGMENT_ALIGN, 0);
        let empty = AlignedBuf::from_bytes(&[]);
        assert!(empty.is_empty());
        assert_eq!(empty.as_slice(), &[] as &[u8]);
    }

    #[test]
    fn shared_arena_reads_le_u32s() {
        let values: Vec<u32> = vec![7, 0, u32::MAX, 123_456_789];
        let mut bytes = vec![0u8; 4]; // leading pad to exercise byte_start
        for v in &values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let buf = Arc::new(AlignedBuf::from_bytes(&bytes));
        let arena = CorpusArena::shared(buf, 4, values.len()).unwrap();
        assert_eq!(arena.as_slice(), &values[..]);
        assert_eq!(arena.len(), 4);
        let cloned = arena.clone();
        assert_eq!(cloned.as_slice(), &values[..]);
    }

    #[test]
    fn shared_arena_rejects_bad_ranges() {
        let buf = Arc::new(AlignedBuf::from_bytes(&[0u8; 16]));
        assert!(CorpusArena::shared(buf.clone(), 0, 4).is_ok());
        assert!(CorpusArena::shared(buf.clone(), 0, 5).is_err(), "past end");
        assert!(CorpusArena::shared(buf.clone(), 2, 2).is_err(), "unaligned");
        assert!(CorpusArena::shared(buf, usize::MAX, 1).is_err(), "overflow");
    }

    #[test]
    fn make_owned_detaches_from_the_buffer() {
        let bytes: Vec<u8> = [1u32, 2, 3].iter().flat_map(|v| v.to_le_bytes()).collect();
        let buf = Arc::new(AlignedBuf::from_bytes(&bytes));
        let mut arena = CorpusArena::shared(buf, 0, 3).unwrap();
        assert!(arena.is_shared() || cfg!(target_endian = "big"));
        arena.make_owned().push(4);
        assert!(!arena.is_shared());
        assert_eq!(arena.as_slice(), &[1, 2, 3, 4]);
    }

    #[test]
    fn from_file_round_trips() {
        let dir = std::env::temp_dir().join("esharp_arena_file_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seg");
        let data: Vec<u8> = (0..4096u32).flat_map(|v| v.to_le_bytes()).collect();
        std::fs::write(&path, &data).unwrap();
        let buf = AlignedBuf::from_file(&path).unwrap();
        assert_eq!(buf.as_slice(), &data[..]);
        let _ = std::fs::remove_dir_all(dir);
    }
}
