//! Core microblog entities: users and tweets.

use serde::{Deserialize, Serialize};

/// Identifier of a user in a corpus.
pub type UserId = u32;
/// Identifier of a tweet in a corpus.
pub type TweetId = u32;
/// Identifier of an interned token (index into the corpus symbol table,
/// see [`crate::SymbolTable`]).
pub type TokenId = u32;

/// A microblog account.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct User {
    /// Identifier (index into the corpus user table).
    pub id: UserId,
    /// Unique handle (lower-case, no sigil), e.g. `ninersgoldrush`.
    pub handle: String,
    /// Display name shown in the Tables 2–7 style output.
    pub display_name: String,
    /// Profile description.
    pub description: String,
    /// Follower count (log-normal in the wild; same here).
    pub followers: u64,
    /// Twitter-style verification flag ("attests the authenticity of a
    /// popular account").
    pub verified: bool,
    /// Ground truth (synthetic corpora only): domains this account is
    /// genuinely expert in. Empty for regular users and spammers.
    pub expert_domains: Vec<u32>,
    /// Ground truth: true for spam/noise accounts.
    pub spam: bool,
}

/// A single micropost.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tweet {
    /// Identifier (index into the corpus tweet table).
    pub id: TweetId,
    /// Author user id.
    pub author: UserId,
    /// Raw text (≤ 140 chars in spirit; the generator keeps posts short).
    /// Tokens are derived from it: the corpus interns them at build time
    /// (see [`crate::Corpus::tweet_tokens`]); old serialized corpora that
    /// carried a redundant `tokens` field still deserialize (serde ignores
    /// unknown fields).
    pub text: String,
    /// Users mentioned in the tweet.
    pub mentions: Vec<UserId>,
    /// When this is a retweet: the original author.
    pub retweet_of: Option<UserId>,
}

impl Tweet {
    /// Build a tweet from raw text, resolving mentions through a handle
    /// lookup. Used both by the generator and by ingestion tests.
    pub fn parse(
        id: TweetId,
        author: UserId,
        text: impl Into<String>,
        resolve_handle: impl Fn(&str) -> Option<UserId>,
    ) -> Tweet {
        let text = text.into();
        let tokens = crate::tokenize::tokenize(&text);
        let mentions: Vec<UserId> = crate::tokenize::mentions(&tokens)
            .into_iter()
            .filter_map(&resolve_handle)
            .collect();
        let retweet_of =
            crate::tokenize::retweeted_handle(&tokens).and_then(&resolve_handle);
        Tweet {
            id,
            author,
            text,
            mentions,
            retweet_of,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resolver(handle: &str) -> Option<UserId> {
        match handle {
            "alice" => Some(1),
            "bob" => Some(2),
            _ => None,
        }
    }

    #[test]
    fn parse_resolves_mentions_and_retweets() {
        let t = Tweet::parse(0, 9, "RT @alice: great catch by @bob!", resolver);
        assert_eq!(t.retweet_of, Some(1));
        assert_eq!(t.mentions, vec![1, 2]);
        assert!(crate::tokenize::tokenize(&t.text).contains(&"great".to_string()));
    }

    #[test]
    fn unknown_handles_are_dropped() {
        let t = Tweet::parse(0, 9, "hello @stranger", resolver);
        assert!(t.mentions.is_empty());
        assert_eq!(t.retweet_of, None);
    }
}
