//! Flat CSR postings index over interned tokens.
//!
//! The string-keyed `HashMap<String, Vec<TweetId>>` index paid one hash +
//! one pointer chase per query token and kept every posting list as its
//! own allocation. Here postings live in a single contiguous `TweetId`
//! arena addressed by per-token offsets — CSR layout, like the PR 1
//! follower graph — so a token's list is `&arena[offsets[t]..offsets[t+1]]`
//! and the whole index is two `Vec`s (which is also what makes the binary
//! corpus format an O(bytes) load: the arena serializes as-is).
//!
//! Intersections pick their algorithm by skew: near-equal list lengths use
//! the linear merge, while a rare term against a head term gallops
//! (exponential probe + binary search) through the long list, turning the
//! `O(|a|+|b|)` scan into `O(|a| log |b|)`.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::types::{TokenId, TweetId};

/// When the longer list is at least this many times the shorter one,
/// galloping beats the linear merge (the crossover is shallow; 16 is a
/// conservative pick that also keeps the tests exercising both paths).
const GALLOP_SKEW: usize = 16;

/// Postings for every interned token, CSR layout: token `t`'s sorted,
/// deduplicated tweet ids are `arena[offsets[t] .. offsets[t + 1]]`.
#[derive(Debug, Clone, Default)]
pub struct PostingsIndex {
    offsets: Vec<u32>,
    arena: Vec<TweetId>,
}

impl PostingsIndex {
    /// Build the index by counting sort over per-tweet token lists.
    ///
    /// `tweet_tokens` yields each tweet's interned tokens **in tweet id
    /// order** (ids = iteration order), which keeps every posting list
    /// sorted for free. Within-tweet duplicate tokens are dropped with a
    /// `last_seen` sentinel — O(1) per token, no per-tweet set.
    pub fn build<'a, I>(num_tokens: usize, tweet_tokens: I) -> PostingsIndex
    where
        I: Iterator<Item = &'a [TokenId]> + Clone,
    {
        // Pass 1: posting-list lengths (deduplicated within each tweet).
        let mut counts = vec![0u32; num_tokens];
        let mut last_seen = vec![u32::MAX; num_tokens];
        for (tweet, tokens) in tweet_tokens.clone().enumerate() {
            let tweet = tweet as u32;
            for &t in tokens {
                if last_seen[t as usize] != tweet {
                    last_seen[t as usize] = tweet;
                    counts[t as usize] += 1;
                }
            }
        }
        // Prefix-sum into offsets; `cursor[t]` walks each token's slot.
        let mut offsets = Vec::with_capacity(num_tokens + 1);
        let mut total = 0u32;
        offsets.push(0);
        for &c in &counts {
            total += c;
            offsets.push(total);
        }
        // Pass 2: scatter tweet ids into the arena.
        let mut arena = vec![0 as TweetId; total as usize];
        let mut cursor: Vec<u32> = offsets[..num_tokens].to_vec();
        last_seen.fill(u32::MAX);
        for (tweet, tokens) in tweet_tokens.enumerate() {
            let tweet = tweet as u32;
            for &t in tokens {
                if last_seen[t as usize] != tweet {
                    last_seen[t as usize] = tweet;
                    arena[cursor[t as usize] as usize] = tweet;
                    cursor[t as usize] += 1;
                }
            }
        }
        PostingsIndex { offsets, arena }
    }

    /// Reassemble an index from its two flat columns (binary corpus load).
    /// Offsets must be monotone and end at the arena length.
    pub fn from_parts(offsets: Vec<u32>, arena: Vec<TweetId>) -> Result<PostingsIndex, String> {
        if offsets.first() != Some(&0) {
            return Err("postings offsets must start at 0".to_string());
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("postings offsets must be monotone".to_string());
        }
        if offsets.last().copied().unwrap_or(0) as usize != arena.len() {
            return Err("postings offsets must end at the arena length".to_string());
        }
        Ok(PostingsIndex { offsets, arena })
    }

    /// Number of tokens indexed.
    pub fn num_tokens(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// The sorted posting list of `token`.
    pub fn postings(&self, token: TokenId) -> &[TweetId] {
        let t = token as usize;
        &self.arena[self.offsets[t] as usize..self.offsets[t + 1] as usize]
    }

    /// The flat columns, for serialization: `(offsets, arena)`.
    pub fn parts(&self) -> (&[u32], &[TweetId]) {
        (&self.offsets, &self.arena)
    }
}

/// Intersect two sorted, deduplicated lists, galloping when skewed.
pub fn intersect(a: &[TweetId], b: &[TweetId]) -> Vec<TweetId> {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(short.len());
    if short.len() * GALLOP_SKEW < long.len() {
        intersect_gallop(short, long, &mut out);
    } else {
        intersect_linear(short, long, &mut out);
    }
    out
}

fn intersect_linear(a: &[TweetId], b: &[TweetId], out: &mut Vec<TweetId>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// For each element of the short list, gallop through the long one:
/// double a probe distance until we overshoot, then binary-search the
/// bracketed window. The long-list cursor only moves forward, so the
/// whole intersection is `O(|short| · log |long|)`.
fn intersect_gallop(short: &[TweetId], long: &[TweetId], out: &mut Vec<TweetId>) {
    let mut lo = 0usize;
    for &x in short {
        if lo >= long.len() {
            break;
        }
        let mut step = 1usize;
        let mut hi = lo;
        while hi < long.len() && long[hi] < x {
            lo = hi + 1;
            hi += step;
            step *= 2;
        }
        // Invariant: long[lo - 1] < x (if lo > 0) and long[hi] >= x (if in
        // bounds), so x can only sit inside [lo, hi] — the probe position
        // itself may hold the match, hence the inclusive upper bound.
        let hi = (hi + 1).min(long.len());
        match long[lo..hi].binary_search(&x) {
            Ok(pos) => {
                out.push(x);
                lo += pos + 1;
            }
            Err(pos) => lo += pos,
        }
    }
}

/// Union of k sorted, deduplicated lists into a sorted, deduplicated
/// result.
///
/// Sequential two-way merges, shortest list first, ping-ponging between
/// two buffers sized for the worst case up front. Posting-list lengths
/// on the expansion-union path are heavily skewed (a few hot tokens,
/// many near-empty tails), so merging smallest-first keeps the
/// accumulator tiny for most of the rounds — and the whole union costs
/// exactly two allocations, where per-round merge buffers dominated the
/// measured per-query match time.
pub fn union_sorted(lists: &[&[TweetId]]) -> Vec<TweetId> {
    let mut sorted: Vec<&[TweetId]> = lists.iter().copied().filter(|l| !l.is_empty()).collect();
    match sorted.len() {
        0 => return Vec::new(),
        1 => return sorted[0].to_vec(),
        _ => {}
    }
    sorted.sort_unstable_by_key(|l| l.len());
    let total: usize = sorted.iter().map(|l| l.len()).sum();
    let mut acc: Vec<TweetId> = Vec::with_capacity(total);
    let mut scratch: Vec<TweetId> = Vec::with_capacity(total);
    merge_union_into(sorted[0], sorted[1], &mut acc);
    for list in &sorted[2..] {
        scratch.clear();
        merge_union_into(&acc, list, &mut scratch);
        std::mem::swap(&mut acc, &mut scratch);
    }
    acc
}

/// Merge two sorted, deduplicated lists into their sorted, deduplicated
/// union, appended to `out`.
fn merge_union_into(a: &[TweetId], b: &[TweetId], out: &mut Vec<TweetId>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_sorted_deduped_lists() {
        // tweet 0: [0, 1, 0]  tweet 1: [1]  tweet 2: [0, 2]
        let tweets: Vec<Vec<TokenId>> = vec![vec![0, 1, 0], vec![1], vec![0, 2]];
        let idx = PostingsIndex::build(3, tweets.iter().map(|t| t.as_slice()));
        assert_eq!(idx.postings(0), &[0, 2]);
        assert_eq!(idx.postings(1), &[0, 1]);
        assert_eq!(idx.postings(2), &[2]);
        assert_eq!(idx.num_tokens(), 3);
    }

    #[test]
    fn from_parts_validates() {
        assert!(PostingsIndex::from_parts(vec![0, 1, 2], vec![5, 7]).is_ok());
        assert!(PostingsIndex::from_parts(vec![1, 2], vec![5, 7]).is_err());
        assert!(PostingsIndex::from_parts(vec![0, 2, 1], vec![5, 7]).is_err());
        assert!(PostingsIndex::from_parts(vec![0, 1], vec![5, 7]).is_err());
    }

    #[test]
    fn gallop_matches_linear_on_random_lists() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..200 {
            let short_len = rng.gen_range(0..8);
            let long_len = rng.gen_range(0..400);
            let mut short: Vec<TweetId> =
                (0..short_len).map(|_| rng.gen_range(0..500)).collect();
            let mut long: Vec<TweetId> =
                (0..long_len).map(|_| rng.gen_range(0..500)).collect();
            short.sort_unstable();
            short.dedup();
            long.sort_unstable();
            long.dedup();
            let mut linear = Vec::new();
            intersect_linear(&short, &long, &mut linear);
            let mut gallop = Vec::new();
            intersect_gallop(&short, &long, &mut gallop);
            assert_eq!(gallop, linear);
            assert_eq!(intersect(&short, &long), linear);
            assert_eq!(intersect(&long, &short), linear);
        }
    }

    #[test]
    fn union_merges_and_dedups() {
        let a: &[TweetId] = &[1, 3, 5];
        let b: &[TweetId] = &[2, 3, 6];
        let c: &[TweetId] = &[5];
        assert_eq!(union_sorted(&[a, b, c]), vec![1, 2, 3, 5, 6]);
        assert_eq!(union_sorted(&[a]), vec![1, 3, 5]);
        assert_eq!(union_sorted(&[]), Vec::<TweetId>::new());
        assert_eq!(union_sorted(&[&[], &[]]), Vec::<TweetId>::new());
    }

    #[test]
    fn union_matches_sort_dedup_reference() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let k = rng.gen_range(0..5);
            let lists: Vec<Vec<TweetId>> = (0..k)
                .map(|_| {
                    let mut l: Vec<TweetId> =
                        (0..rng.gen_range(0..40)).map(|_| rng.gen_range(0..60)).collect();
                    l.sort_unstable();
                    l.dedup();
                    l
                })
                .collect();
            let refs: Vec<&[TweetId]> = lists.iter().map(|l| l.as_slice()).collect();
            let mut reference: Vec<TweetId> = lists.concat();
            reference.sort_unstable();
            reference.dedup();
            assert_eq!(union_sorted(&refs), reference);
        }
    }
}
