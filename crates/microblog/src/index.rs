//! Flat CSR postings index over interned tokens, sharded by token range.
//!
//! The string-keyed `HashMap<String, Vec<TweetId>>` index paid one hash +
//! one pointer chase per query token and kept every posting list as its
//! own allocation. Here postings live in contiguous `TweetId` arenas
//! addressed by per-token offsets — CSR layout, like the PR 1 follower
//! graph — so a token's list is one slice of one arena and the whole
//! index serializes as flat columns (which is also what makes the binary
//! corpus format an O(bytes) load).
//!
//! The index is **sharded**: tokens are partitioned into contiguous id
//! ranges, each with its own (offsets, arena) pair — a
//! [`PostingsShard`]. A freshly built index has one shard covering every
//! token; [`PostingsIndex::resharded`] re-cuts the ranges so each shard
//! holds roughly equal postings bytes, which is what the sharded segment
//! format persists and the scatter-gather match path fans out over.
//! Because a token's posting list is identical no matter which shard
//! holds it, every query result is bit-identical at any shard count.
//! Shard arenas are [`CorpusArena`]s, so a shard can either own its
//! columns or borrow them zero-copy from a loaded segment buffer.
//!
//! Intersections pick their algorithm by skew: near-equal list lengths use
//! the linear merge, while a rare term against a head term gallops
//! (exponential probe + binary search) through the long list, turning the
//! `O(|a|+|b|)` scan into `O(|a| log |b|)`.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::arena::CorpusArena;
use crate::types::{TokenId, TweetId};

/// When the longer list is at least this many times the shorter one,
/// galloping beats the linear merge (the crossover is shallow; 16 is a
/// conservative pick that also keeps the tests exercising both paths).
const GALLOP_SKEW: usize = 16;

/// One contiguous token range of the postings index: token `t` (with
/// `token_start <= t < token_end`) has its sorted, deduplicated tweet
/// ids at `arena[offsets[t - token_start] .. offsets[t - token_start + 1]]`.
/// Offsets are shard-local (they start at 0), so a shard is
/// self-contained — exactly what one segment file persists.
#[derive(Debug, Clone)]
pub struct PostingsShard {
    token_start: u32,
    token_end: u32,
    offsets: CorpusArena,
    arena: CorpusArena,
}

impl PostingsShard {
    /// Assemble a shard from its columns, validating the CSR invariants:
    /// `offsets` has one entry per token in the range plus one, starts at
    /// 0, is monotone, and ends at the arena length.
    pub fn new(
        token_start: u32,
        token_end: u32,
        offsets: CorpusArena,
        arena: CorpusArena,
    ) -> Result<PostingsShard, String> {
        if token_start > token_end {
            return Err(format!(
                "shard token range {token_start}..{token_end} is inverted"
            ));
        }
        let range = (token_end - token_start) as usize;
        if offsets.len() != range + 1 {
            return Err(format!(
                "shard offsets hold {} entries for {} tokens",
                offsets.len(),
                range
            ));
        }
        if offsets.first() != Some(&0) {
            return Err("shard offsets must start at 0".to_string());
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("shard offsets must be monotone".to_string());
        }
        if offsets.last().copied().unwrap_or(0) as usize != arena.len() {
            return Err("shard offsets must end at the arena length".to_string());
        }
        Ok(PostingsShard {
            token_start,
            token_end,
            offsets,
            arena,
        })
    }

    /// First token id covered by this shard.
    pub fn token_start(&self) -> u32 {
        self.token_start
    }

    /// One past the last token id covered by this shard.
    pub fn token_end(&self) -> u32 {
        self.token_end
    }

    /// The sorted posting list of `token` (which must be in range).
    pub fn postings(&self, token: TokenId) -> &[TweetId] {
        let t = (token - self.token_start) as usize;
        let offsets = self.offsets.as_slice();
        &self.arena.as_slice()[offsets[t] as usize..offsets[t + 1] as usize]
    }

    /// The shard's flat columns: `(offsets, arena)`, offsets shard-local.
    pub fn parts(&self) -> (&[u32], &[TweetId]) {
        (self.offsets.as_slice(), self.arena.as_slice())
    }

    /// Payload bytes of this shard (postings arena + offsets).
    pub fn byte_size(&self) -> u64 {
        (self.arena.len() as u64 + self.offsets.len() as u64) * 4
    }

    /// True when the shard borrows its columns from a shared segment
    /// buffer instead of owning them.
    pub fn is_zero_copy(&self) -> bool {
        self.arena.is_shared() || self.offsets.is_shared()
    }
}

/// Postings for every interned token, as one or more contiguous
/// token-range shards (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct PostingsIndex {
    shards: Vec<PostingsShard>,
}

impl PostingsIndex {
    /// Build the index by counting sort over per-tweet token lists. The
    /// result is a single shard covering every token; reshard afterwards
    /// if a different layout is wanted.
    ///
    /// `tweet_tokens` yields each tweet's interned tokens **in tweet id
    /// order** (ids = iteration order), which keeps every posting list
    /// sorted for free. Within-tweet duplicate tokens are dropped with a
    /// `last_seen` sentinel — O(1) per token, no per-tweet set.
    pub fn build<'a, I>(num_tokens: usize, tweet_tokens: I) -> PostingsIndex
    where
        I: Iterator<Item = &'a [TokenId]> + Clone,
    {
        // Pass 1: posting-list lengths (deduplicated within each tweet).
        let mut counts = vec![0u32; num_tokens];
        let mut last_seen = vec![u32::MAX; num_tokens];
        for (tweet, tokens) in tweet_tokens.clone().enumerate() {
            let tweet = tweet as u32;
            for &t in tokens {
                if last_seen[t as usize] != tweet {
                    last_seen[t as usize] = tweet;
                    counts[t as usize] += 1;
                }
            }
        }
        // Prefix-sum into offsets; `cursor[t]` walks each token's slot.
        let mut offsets = Vec::with_capacity(num_tokens + 1);
        let mut total = 0u32;
        offsets.push(0);
        for &c in &counts {
            total += c;
            offsets.push(total);
        }
        // Pass 2: scatter tweet ids into the arena.
        let mut arena = vec![0 as TweetId; total as usize];
        let mut cursor: Vec<u32> = offsets[..num_tokens].to_vec();
        last_seen.fill(u32::MAX);
        for (tweet, tokens) in tweet_tokens.enumerate() {
            let tweet = tweet as u32;
            for &t in tokens {
                if last_seen[t as usize] != tweet {
                    last_seen[t as usize] = tweet;
                    arena[cursor[t as usize] as usize] = tweet;
                    cursor[t as usize] += 1;
                }
            }
        }
        PostingsIndex {
            shards: vec![PostingsShard {
                token_start: 0,
                token_end: num_tokens as u32,
                offsets: CorpusArena::Owned(offsets),
                arena: CorpusArena::Owned(arena),
            }],
        }
    }

    /// Reassemble a single-shard index from its two flat columns (the
    /// monolithic binary corpus load). Offsets must be monotone and end
    /// at the arena length.
    pub fn from_parts(offsets: Vec<u32>, arena: Vec<TweetId>) -> Result<PostingsIndex, String> {
        let num_tokens = offsets.len().saturating_sub(1) as u32;
        let shard = PostingsShard::new(
            0,
            num_tokens,
            CorpusArena::Owned(offsets),
            CorpusArena::Owned(arena),
        )?;
        Ok(PostingsIndex {
            shards: vec![shard],
        })
    }

    /// Reassemble an index from pre-validated shards (the sharded segment
    /// load). Shards must tile the token space: contiguous, in order,
    /// starting at 0.
    pub fn from_shards(shards: Vec<PostingsShard>) -> Result<PostingsIndex, String> {
        let mut expected = 0u32;
        for (i, s) in shards.iter().enumerate() {
            if s.token_start != expected {
                return Err(format!(
                    "shard {i} starts at token {} but the previous shard ended at {expected}",
                    s.token_start
                ));
            }
            expected = s.token_end;
        }
        Ok(PostingsIndex { shards })
    }

    /// Re-cut the index into (at most) `k` contiguous token-range shards
    /// balanced by postings bytes: boundaries are chosen so shard `i`
    /// ends once the running arena total crosses `i/k` of the whole.
    /// Hot-token skew is bounded by one token's list per shard — a single
    /// token's postings are never split. Always produces owned shards.
    pub fn resharded(&self, k: usize) -> PostingsIndex {
        let num_tokens = self.num_tokens();
        let k = k.clamp(1, num_tokens.max(1));
        let total: u64 = self
            .shards
            .iter()
            .map(|s| s.arena.len() as u64)
            .sum();
        let mut shards = Vec::with_capacity(k);
        let mut offsets: Vec<u32> = vec![0];
        let mut arena: Vec<TweetId> = Vec::new();
        let mut token_start = 0u32;
        let mut consumed = 0u64; // arena entries already assigned to finished shards
        for token in 0..num_tokens as u32 {
            let list = self.postings(token);
            arena.extend_from_slice(list);
            offsets.push(arena.len() as u32);
            consumed += list.len() as u64;
            // Cut after this token if we've crossed the next boundary,
            // leaving at least one token for each remaining shard.
            let built = shards.len() as u64;
            let tokens_left = num_tokens as u32 - (token + 1);
            let shards_left = k as u64 - built - 1;
            let past_quota = consumed * k as u64 >= total * (built + 1);
            if shards_left > 0 && (past_quota || tokens_left as u64 <= shards_left) {
                shards.push(PostingsShard {
                    token_start,
                    token_end: token + 1,
                    offsets: CorpusArena::Owned(std::mem::replace(&mut offsets, vec![0])),
                    arena: CorpusArena::Owned(std::mem::take(&mut arena)),
                });
                token_start = token + 1;
            }
        }
        shards.push(PostingsShard {
            token_start,
            token_end: num_tokens as u32,
            offsets: CorpusArena::Owned(offsets),
            arena: CorpusArena::Owned(arena),
        });
        PostingsIndex { shards }
    }

    /// Number of tokens indexed.
    pub fn num_tokens(&self) -> usize {
        self.shards.last().map_or(0, |s| s.token_end as usize)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len().max(1)
    }

    /// The shards, in token order.
    pub fn shards(&self) -> &[PostingsShard] {
        &self.shards
    }

    /// Index of the shard holding `token` (clamped into range — callers
    /// use this to group work, and an out-of-range token belongs to the
    /// last group as well as any).
    pub fn shard_of(&self, token: TokenId) -> usize {
        if self.shards.len() <= 1 {
            return 0;
        }
        self.shards
            .partition_point(|s| s.token_end <= token)
            .min(self.shards.len() - 1)
    }

    /// The sorted posting list of `token`.
    pub fn postings(&self, token: TokenId) -> &[TweetId] {
        // Single-shard is the overwhelmingly common in-process layout;
        // skip the boundary search entirely there.
        if self.shards.len() == 1 {
            return self.shards[0].postings(token);
        }
        self.shards[self.shard_of(token)].postings(token)
    }

    /// Total postings entries across all shards.
    pub fn arena_len(&self) -> usize {
        self.shards.iter().map(|s| s.arena.len()).sum()
    }

    /// True when any shard borrows from a shared segment buffer.
    pub fn is_zero_copy(&self) -> bool {
        self.shards.iter().any(PostingsShard::is_zero_copy)
    }
}

/// Intersect two sorted, deduplicated lists, galloping when skewed.
pub fn intersect(a: &[TweetId], b: &[TweetId]) -> Vec<TweetId> {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(short.len());
    if short.len() * GALLOP_SKEW < long.len() {
        intersect_gallop(short, long, &mut out);
    } else {
        intersect_linear(short, long, &mut out);
    }
    out
}

fn intersect_linear(a: &[TweetId], b: &[TweetId], out: &mut Vec<TweetId>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// For each element of the short list, gallop through the long one:
/// double a probe distance until we overshoot, then binary-search the
/// bracketed window. The long-list cursor only moves forward, so the
/// whole intersection is `O(|short| · log |long|)`.
fn intersect_gallop(short: &[TweetId], long: &[TweetId], out: &mut Vec<TweetId>) {
    let mut lo = 0usize;
    for &x in short {
        if lo >= long.len() {
            break;
        }
        let mut step = 1usize;
        let mut hi = lo;
        while hi < long.len() && long[hi] < x {
            lo = hi + 1;
            hi += step;
            step *= 2;
        }
        // Invariant: long[lo - 1] < x (if lo > 0) and long[hi] >= x (if in
        // bounds), so x can only sit inside [lo, hi] — the probe position
        // itself may hold the match, hence the inclusive upper bound.
        let hi = (hi + 1).min(long.len());
        match long[lo..hi].binary_search(&x) {
            Ok(pos) => {
                out.push(x);
                lo += pos + 1;
            }
            Err(pos) => lo += pos,
        }
    }
}

/// Union of k sorted, deduplicated lists into a sorted, deduplicated
/// result.
///
/// Sequential two-way merges, shortest list first, ping-ponging between
/// two buffers sized for the worst case up front. Posting-list lengths
/// on the expansion-union path are heavily skewed (a few hot tokens,
/// many near-empty tails), so merging smallest-first keeps the
/// accumulator tiny for most of the rounds — and the whole union costs
/// exactly two allocations, where per-round merge buffers dominated the
/// measured per-query match time.
pub fn union_sorted(lists: &[&[TweetId]]) -> Vec<TweetId> {
    let mut sorted: Vec<&[TweetId]> = lists.iter().copied().filter(|l| !l.is_empty()).collect();
    match sorted.len() {
        0 => return Vec::new(),
        1 => return sorted[0].to_vec(),
        _ => {}
    }
    sorted.sort_unstable_by_key(|l| l.len());
    let total: usize = sorted.iter().map(|l| l.len()).sum();
    let mut acc: Vec<TweetId> = Vec::with_capacity(total);
    let mut scratch: Vec<TweetId> = Vec::with_capacity(total);
    merge_union_into(sorted[0], sorted[1], &mut acc);
    for list in &sorted[2..] {
        scratch.clear();
        merge_union_into(&acc, list, &mut scratch);
        std::mem::swap(&mut acc, &mut scratch);
    }
    acc
}

/// Merge two sorted, deduplicated lists into their sorted, deduplicated
/// union, appended to `out`.
fn merge_union_into(a: &[TweetId], b: &[TweetId], out: &mut Vec<TweetId>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_sorted_deduped_lists() {
        // tweet 0: [0, 1, 0]  tweet 1: [1]  tweet 2: [0, 2]
        let tweets: Vec<Vec<TokenId>> = vec![vec![0, 1, 0], vec![1], vec![0, 2]];
        let idx = PostingsIndex::build(3, tweets.iter().map(|t| t.as_slice()));
        assert_eq!(idx.postings(0), &[0, 2]);
        assert_eq!(idx.postings(1), &[0, 1]);
        assert_eq!(idx.postings(2), &[2]);
        assert_eq!(idx.num_tokens(), 3);
        assert_eq!(idx.shard_count(), 1);
    }

    #[test]
    fn from_parts_validates() {
        assert!(PostingsIndex::from_parts(vec![0, 1, 2], vec![5, 7]).is_ok());
        assert!(PostingsIndex::from_parts(vec![1, 2], vec![5, 7]).is_err());
        assert!(PostingsIndex::from_parts(vec![0, 2, 1], vec![5, 7]).is_err());
        assert!(PostingsIndex::from_parts(vec![0, 1], vec![5, 7]).is_err());
    }

    #[test]
    fn resharding_preserves_every_posting_list() {
        let tweets: Vec<Vec<TokenId>> = vec![
            vec![0, 1, 2, 3],
            vec![1, 3],
            vec![0, 3, 4],
            vec![2, 4, 5],
            vec![5],
        ];
        let idx = PostingsIndex::build(6, tweets.iter().map(|t| t.as_slice()));
        for k in 1..=8 {
            let sharded = idx.resharded(k);
            assert!(sharded.shard_count() <= 6, "never more shards than tokens");
            assert_eq!(sharded.num_tokens(), idx.num_tokens());
            for t in 0..6 {
                assert_eq!(sharded.postings(t), idx.postings(t), "k={k} token={t}");
                let s = sharded.shard_of(t);
                assert!(sharded.shards()[s].token_start() <= t);
                assert!(t < sharded.shards()[s].token_end());
            }
            assert_eq!(sharded.arena_len(), idx.arena_len());
        }
    }

    #[test]
    fn from_shards_requires_contiguous_coverage() {
        let shard = |start: u32, end: u32| {
            PostingsShard::new(
                start,
                end,
                CorpusArena::Owned(vec![0; (end - start) as usize + 1]),
                CorpusArena::Owned(vec![]),
            )
            .unwrap()
        };
        assert!(PostingsIndex::from_shards(vec![shard(0, 2), shard(2, 5)]).is_ok());
        assert!(PostingsIndex::from_shards(vec![shard(1, 2)]).is_err(), "gap at 0");
        assert!(
            PostingsIndex::from_shards(vec![shard(0, 2), shard(3, 5)]).is_err(),
            "gap in the middle"
        );
        assert!(
            PostingsIndex::from_shards(vec![shard(0, 3), shard(2, 5)]).is_err(),
            "overlap"
        );
    }

    #[test]
    fn shard_validation_rejects_bad_offsets() {
        let ok = PostingsShard::new(
            0,
            2,
            CorpusArena::Owned(vec![0, 1, 2]),
            CorpusArena::Owned(vec![5, 7]),
        );
        assert!(ok.is_ok());
        let wrong_len = PostingsShard::new(
            0,
            2,
            CorpusArena::Owned(vec![0, 2]),
            CorpusArena::Owned(vec![5, 7]),
        );
        assert!(wrong_len.is_err());
        let not_monotone = PostingsShard::new(
            0,
            2,
            CorpusArena::Owned(vec![0, 2, 1]),
            CorpusArena::Owned(vec![5, 7]),
        );
        assert!(not_monotone.is_err());
    }

    #[test]
    fn gallop_matches_linear_on_random_lists() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..200 {
            let short_len = rng.gen_range(0..8);
            let long_len = rng.gen_range(0..400);
            let mut short: Vec<TweetId> =
                (0..short_len).map(|_| rng.gen_range(0..500)).collect();
            let mut long: Vec<TweetId> =
                (0..long_len).map(|_| rng.gen_range(0..500)).collect();
            short.sort_unstable();
            short.dedup();
            long.sort_unstable();
            long.dedup();
            let mut linear = Vec::new();
            intersect_linear(&short, &long, &mut linear);
            let mut gallop = Vec::new();
            intersect_gallop(&short, &long, &mut gallop);
            assert_eq!(gallop, linear);
            assert_eq!(intersect(&short, &long), linear);
            assert_eq!(intersect(&long, &short), linear);
        }
    }

    #[test]
    fn union_merges_and_dedups() {
        let a: &[TweetId] = &[1, 3, 5];
        let b: &[TweetId] = &[2, 3, 6];
        let c: &[TweetId] = &[5];
        assert_eq!(union_sorted(&[a, b, c]), vec![1, 2, 3, 5, 6]);
        assert_eq!(union_sorted(&[a]), vec![1, 3, 5]);
        assert_eq!(union_sorted(&[]), Vec::<TweetId>::new());
        assert_eq!(union_sorted(&[&[], &[]]), Vec::<TweetId>::new());
    }

    #[test]
    fn union_matches_sort_dedup_reference() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let k = rng.gen_range(0..5);
            let lists: Vec<Vec<TweetId>> = (0..k)
                .map(|_| {
                    let mut l: Vec<TweetId> =
                        (0..rng.gen_range(0..40)).map(|_| rng.gen_range(0..60)).collect();
                    l.sort_unstable();
                    l.dedup();
                    l
                })
                .collect();
            let refs: Vec<&[TweetId]> = lists.iter().map(|l| l.as_slice()).collect();
            let mut reference: Vec<TweetId> = lists.concat();
            reference.sort_unstable();
            reference.dedup();
            assert_eq!(union_sorted(&refs), reference);
        }
    }
}
