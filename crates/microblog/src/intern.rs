//! Corpus-wide token interning: token text ↔ dense `u32` [`TokenId`].
//!
//! The online read path (§5, Table 9) never needs token *strings* —
//! matching is equality over the query's and the tweets' token sets. A
//! symbol table assigned at corpus build time turns every later
//! comparison into a `u32` compare, every postings key into an array
//! index, and every per-tweet token list into a slice of a flat arena
//! (see [`crate::Corpus`]). Queries hash each of their (few) tokens once
//! against this table; tweets never hash again after the build.

use crate::types::TokenId;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a, 64-bit. Symbol-table keys are short corpus tokens: FNV's
/// byte-at-a-time multiply beats SipHash's block setup at these lengths,
/// and hash-flooding resistance buys nothing against keys the corpus
/// itself produced. Used for the intern index only — general-purpose
/// maps keep the std default.
#[derive(Debug, Clone)]
pub struct TokenHasher(u64);

impl Default for TokenHasher {
    fn default() -> TokenHasher {
        TokenHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for TokenHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        self.0 = h;
    }
}

type TokenBuildHasher = BuildHasherDefault<TokenHasher>;

/// An append-only token ↔ id table. Ids are dense and assigned in first-
/// appearance order, so a corpus built from tweets in id order interns
/// deterministically.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    texts: Vec<Box<str>>,
    index: HashMap<Box<str>, TokenId, TokenBuildHasher>,
}

impl SymbolTable {
    /// An empty table.
    pub fn new() -> SymbolTable {
        SymbolTable::default()
    }

    /// An empty table with room for `capacity` distinct tokens.
    pub fn with_capacity(capacity: usize) -> SymbolTable {
        SymbolTable {
            texts: Vec::with_capacity(capacity),
            index: HashMap::with_capacity_and_hasher(capacity, TokenBuildHasher::default()),
        }
    }

    /// Rebuild a table from its text column (the binary-corpus load path).
    /// Fails on duplicate texts — a valid table is injective.
    pub fn from_texts(texts: Vec<Box<str>>) -> Result<SymbolTable, String> {
        let mut index =
            HashMap::with_capacity_and_hasher(texts.len(), TokenBuildHasher::default());
        for (id, text) in texts.iter().enumerate() {
            if index.insert(text.clone(), id as TokenId).is_some() {
                return Err(format!("duplicate interned token {text:?}"));
            }
        }
        Ok(SymbolTable { texts, index })
    }

    /// Intern `text`, returning its (possibly fresh) id.
    pub fn intern(&mut self, text: &str) -> TokenId {
        if let Some(&id) = self.index.get(text) {
            return id;
        }
        let id = self.texts.len() as TokenId;
        let boxed: Box<str> = Box::from(text);
        self.texts.push(boxed.clone());
        self.index.insert(boxed, id);
        id
    }

    /// Look `text` up without interning (the query path: an unseen token
    /// matches nothing).
    pub fn get(&self, text: &str) -> Option<TokenId> {
        self.index.get(text).copied()
    }

    /// The text of an interned token.
    pub fn text(&self, id: TokenId) -> &str {
        &self.texts[id as usize]
    }

    /// All texts, in id order.
    pub fn texts(&self) -> &[Box<str>] {
        &self.texts
    }

    /// Distinct tokens interned.
    pub fn len(&self) -> usize {
        self.texts.len()
    }

    /// True when no token has been interned.
    pub fn is_empty(&self) -> bool {
        self.texts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut t = SymbolTable::new();
        let a = t.intern("niners");
        let b = t.intern("draft");
        assert_eq!(t.intern("niners"), a);
        assert_eq!((a, b), (0, 1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.text(a), "niners");
        assert_eq!(t.get("draft"), Some(b));
        assert_eq!(t.get("unseen"), None);
    }

    #[test]
    fn from_texts_round_trips_and_rejects_duplicates() {
        let mut t = SymbolTable::new();
        t.intern("a");
        t.intern("b");
        let back = SymbolTable::from_texts(t.texts().to_vec()).unwrap();
        assert_eq!(back.get("b"), Some(1));
        assert!(SymbolTable::from_texts(vec!["x".into(), "x".into()]).is_err());
    }
}
