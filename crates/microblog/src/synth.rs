//! Synthetic microblog corpus generation.
//!
//! Stands in for the paper's Twitter firehose (DESIGN.md §1). The
//! generator samples from the same ground-truth [`World`] as the search
//! log, so the evaluation can score detected experts against known labels.
//!
//! Account types:
//! * **Experts** — attached to specific domains; most of their posts are
//!   on-domain, and other users preferentially mention and retweet them
//!   (giving the TS/MI/RI features real signal).
//! * **Regulars** — a handful of interest domains, lower volume, rarely
//!   mentioned.
//! * **Spammers** — post across random domains with no concentration (the
//!   "spam, fake accounts" noise the paper calls out).
//!
//! Posts are short (one or two topical terms plus filler), so an expert
//! who tweets `niners` is invisible to a literal `49ers` query — the
//! sparsity that motivates e#'s query expansion.

use crate::corpus::Corpus;
use crate::types::{Tweet, TweetId, User, UserId};
use esharp_querylog::dist::LogNormal;
use esharp_querylog::{DomainId, World};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Corpus generator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Experts minted per domain (inclusive range).
    pub experts_per_domain: (usize, usize),
    /// Regular (non-expert) accounts.
    pub regular_users: usize,
    /// Spam accounts.
    pub spam_users: usize,
    /// Log-normal (mu, sigma) of tweets per expert.
    pub expert_tweets: (f64, f64),
    /// Log-normal (mu, sigma) of tweets per regular/spam account.
    pub regular_tweets: (f64, f64),
    /// Probability an expert's post is on one of their own domains.
    pub expert_concentration: f64,
    /// Probability a post mentions a same-domain expert.
    pub mention_prob: f64,
    /// Probability a post is a retweet of a same-domain expert.
    pub retweet_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            experts_per_domain: (2, 4),
            regular_users: 400,
            spam_users: 40,
            expert_tweets: (3.4, 0.6),  // median ≈ 30 posts
            regular_tweets: (2.0, 0.7), // median ≈ 7 posts
            expert_concentration: 0.85,
            mention_prob: 0.25,
            retweet_prob: 0.15,
            seed: 0x7717,
        }
    }
}

impl CorpusConfig {
    /// Small configuration for unit tests.
    pub fn tiny(seed: u64) -> Self {
        CorpusConfig {
            experts_per_domain: (1, 2),
            regular_users: 60,
            spam_users: 8,
            seed,
            ..CorpusConfig::default()
        }
    }

    /// Load-test configuration: ≥1M accounts producing ≥10M tweets
    /// (regular-volume mean ≈ e^(2.1+0.7²/2) ≈ 10.4 posts/account).
    /// Build it with [`generate_corpus_streaming`] — the batch generator
    /// works too, but the streaming build's peak memory is the finished
    /// corpus and nothing more.
    pub fn large(seed: u64) -> Self {
        CorpusConfig {
            experts_per_domain: (8, 16),
            regular_users: 1_000_000,
            spam_users: 50_000,
            regular_tweets: (2.1, 0.7),
            seed,
            ..CorpusConfig::default()
        }
    }
}

const FILLER: [&str; 18] = [
    "great", "today", "watch", "new", "the", "win", "update", "breaking", "love", "best",
    "live", "now", "big", "news", "this", "season", "really", "so",
];

const HANDLE_SUFFIX: [&str; 8] = [
    "news", "fan", "daily", "hub", "watch", "talk", "zone", "source",
];

const DESC_TEMPLATES: [&str; 6] = [
    "All news about {}",
    "Your source for all breaking {} updates",
    "Huge {} fan. LET'S GO!",
    "Covering {} since 2009",
    "{} analysis and opinion",
    "We deliver the latest {} news every day",
];

/// Where generated tweets land. Both corpus builders run the exact same
/// generation code against the exact same RNG stream — only the sink
/// differs — so their outputs are bit-identical by construction.
trait TweetSink {
    /// The fixed user table (handles are needed to compose mention text).
    fn users(&self) -> &[User];
    /// The id the next accepted tweet must carry.
    fn next_id(&self) -> TweetId;
    /// Accept one generated tweet.
    fn accept(&mut self, tweet: Tweet);
}

/// Batch sink: collect tweets for a one-shot [`Corpus::new`].
struct VecSink {
    users: Vec<User>,
    tweets: Vec<Tweet>,
}

impl TweetSink for VecSink {
    fn users(&self) -> &[User] {
        &self.users
    }
    fn next_id(&self) -> TweetId {
        self.tweets.len() as TweetId
    }
    fn accept(&mut self, tweet: Tweet) {
        self.tweets.push(tweet);
    }
}

impl TweetSink for crate::corpus::CorpusBuilder {
    fn users(&self) -> &[User] {
        self.users()
    }
    fn next_id(&self) -> TweetId {
        self.next_tweet_id()
    }
    fn accept(&mut self, tweet: Tweet) {
        self.push_tweet(tweet);
    }
}

/// Generate an indexed corpus from a world.
pub fn generate_corpus(world: &World, config: &CorpusConfig) -> Corpus {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let (users, experts_of_domain) = generate_users(world, config, &mut rng);
    let mut sink = VecSink {
        users,
        tweets: Vec::new(),
    };
    generate_tweets(world, config, &experts_of_domain, &mut rng, &mut sink);
    Corpus::new(sink.users, sink.tweets)
}

/// Generate an indexed corpus from a world, tokenizing and interning
/// each tweet as it is produced instead of materializing the full tweet
/// list and re-walking it. Bit-identical to [`generate_corpus`] for the
/// same world and config; peak memory is the finished corpus. This is
/// how the [`CorpusConfig::large`] scale (1M users, 10M tweets) is
/// built.
pub fn generate_corpus_streaming(world: &World, config: &CorpusConfig) -> Corpus {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let (users, experts_of_domain) = generate_users(world, config, &mut rng);
    let mut builder = crate::corpus::CorpusBuilder::new(users);
    generate_tweets(world, config, &experts_of_domain, &mut rng, &mut builder);
    builder.finish()
}

/// Mint the account population: per-domain experts, regulars, spammers.
fn generate_users(
    world: &World,
    config: &CorpusConfig,
    rng: &mut StdRng,
) -> (Vec<User>, Vec<Vec<UserId>>) {
    let mut users: Vec<User> = Vec::new();

    // --- Experts, per domain.
    let mut experts_of_domain: Vec<Vec<UserId>> = vec![Vec::new(); world.num_domains()];
    for domain in &world.domains {
        let (lo, hi) = config.experts_per_domain;
        let count = rng.gen_range(lo..=hi);
        for i in 0..count {
            let id = users.len() as UserId;
            let slug: String = domain
                .label
                .chars()
                .filter(|c| c.is_alphanumeric())
                .collect();
            let suffix = HANDLE_SUFFIX[rng.gen_range(0..HANDLE_SUFFIX.len())];
            let handle = format!("{slug}{suffix}{i}");
            let followers = LogNormal::new(6.0, 1.8).sample(rng) as u64;
            let template = DESC_TEMPLATES[rng.gen_range(0..DESC_TEMPLATES.len())];
            users.push(User {
                id,
                handle: handle.clone(),
                display_name: title_case(&format!("{} {}", domain.label, suffix)),
                description: template.replace("{}", &domain.label),
                followers,
                verified: followers > 20_000 && rng.gen_bool(0.5),
                expert_domains: vec![domain.id],
                spam: false,
            });
            experts_of_domain[domain.id as usize].push(id);
        }
    }

    // --- Regular users.
    for i in 0..config.regular_users {
        let id = users.len() as UserId;
        let followers = LogNormal::new(3.5, 1.2).sample(rng) as u64;
        users.push(User {
            id,
            handle: format!("user{i}"),
            display_name: format!("User {i}"),
            description: "just here for the timeline".to_string(),
            followers,
            verified: false,
            expert_domains: vec![],
            spam: false,
        });
    }

    // --- Spammers.
    for i in 0..config.spam_users {
        let id = users.len() as UserId;
        users.push(User {
            id,
            handle: format!("dealbot{i}"),
            display_name: format!("Best Deals {i}"),
            description: "amazing deals every hour, click now".to_string(),
            followers: rng.gen_range(0..50),
            verified: false,
            expert_domains: vec![],
            spam: true,
        });
    }

    (users, experts_of_domain)
}

/// Generate every tweet, in deterministic user order, into `sink`.
fn generate_tweets(
    world: &World,
    config: &CorpusConfig,
    experts_of_domain: &[Vec<UserId>],
    rng: &mut StdRng,
    sink: &mut impl TweetSink,
) {
    let expert_volume = LogNormal::new(config.expert_tweets.0, config.expert_tweets.1);
    let regular_volume = LogNormal::new(config.regular_tweets.0, config.regular_tweets.1);
    let num_users = sink.users().len();
    for uid in 0..num_users as UserId {
        let (is_expert, is_spam, own_domains) = {
            let u = &sink.users()[uid as usize];
            (!u.expert_domains.is_empty(), u.spam, u.expert_domains.clone())
        };
        let volume = if is_expert {
            expert_volume.sample(rng)
        } else {
            regular_volume.sample(rng)
        }
        .round()
        .max(1.0) as usize;

        // Regulars hold a few stable interests.
        let interests: Vec<DomainId> = if is_expert {
            own_domains.clone()
        } else {
            let k = rng.gen_range(2..=4);
            (0..k)
                .map(|_| rng.gen_range(0..world.num_domains()) as DomainId)
                .collect()
        };

        for _ in 0..volume {
            let domain_id = if is_spam {
                rng.gen_range(0..world.num_domains()) as DomainId
            } else if is_expert && rng.gen_bool(config.expert_concentration) {
                own_domains[rng.gen_range(0..own_domains.len())]
            } else if !is_expert && !interests.is_empty() && rng.gen_bool(0.8) {
                interests[rng.gen_range(0..interests.len())]
            } else {
                rng.gen_range(0..world.num_domains()) as DomainId
            };
            let tweet = compose_tweet(
                sink.next_id(),
                uid,
                domain_id,
                world,
                experts_of_domain,
                sink.users(),
                config,
                rng,
            );
            sink.accept(tweet);
        }
    }
}

/// Compose one post about `domain`: one or two of the domain's terms,
/// filler, and possibly a mention or retweet of a same-domain expert.
#[allow(clippy::too_many_arguments)]
fn compose_tweet(
    id: TweetId,
    author: UserId,
    domain: DomainId,
    world: &World,
    experts_of_domain: &[Vec<UserId>],
    users: &[User],
    config: &CorpusConfig,
    rng: &mut StdRng,
) -> Tweet {
    let d = &world.domains[domain as usize];
    // Posts use the domain's *canonical* vocabulary, geometrically
    // head-skewed; minted surface variants (hashtags, typos, initials)
    // are searched far more than they are posted. This vocabulary gap is
    // the paper's recall problem: a query for a variant matches no tweet
    // verbatim, yet its domain's experts are all there.
    let canonical = d.canonical_terms();
    let variants = d.variant_terms();
    let pick_term = |rng: &mut StdRng| {
        let pool = if !variants.is_empty() && rng.gen_bool(0.02) {
            &variants
        } else if !canonical.is_empty() {
            &canonical
        } else {
            &d.terms
        };
        let mut idx = 0;
        while idx + 1 < pool.len() && rng.gen_bool(0.35) {
            idx += 1;
        }
        let term = world.term_text(pool[idx]);
        // Posts often drop the qualifier of a multi-word concept
        // ("49ers draft" → just "49ers"), which defeats the detector's
        // conjunctive all-terms matching for the full phrase.
        if term.contains(' ') && rng.gen_bool(0.4) {
            term.split_whitespace().next().unwrap_or(term).to_string()
        } else {
            term.to_string()
        }
    };

    let mut body = String::new();
    body.push_str(FILLER[rng.gen_range(0..FILLER.len())]);
    body.push(' ');
    body.push_str(&pick_term(rng));
    if rng.gen_bool(0.3) {
        body.push(' ');
        body.push_str(&pick_term(rng));
    }
    body.push(' ');
    body.push_str(FILLER[rng.gen_range(0..FILLER.len())]);

    let experts = &experts_of_domain[domain as usize];
    let mut mentions: Vec<UserId> = Vec::new();
    let mut retweet_of = None;

    let candidates: Vec<UserId> = experts.iter().copied().filter(|&e| e != author).collect();
    if !candidates.is_empty() && rng.gen_bool(config.retweet_prob) {
        let target = candidates[rng.gen_range(0..candidates.len())];
        body = format!("rt @{}: {}", users[target as usize].handle, body);
        retweet_of = Some(target);
        mentions.push(target);
    } else if !candidates.is_empty() && rng.gen_bool(config.mention_prob) {
        let target = candidates[rng.gen_range(0..candidates.len())];
        body = format!("{} @{}", body, users[target as usize].handle);
        mentions.push(target);
    }

    Tweet {
        id,
        author,
        text: body,
        mentions,
        retweet_of,
    }
}

fn title_case(s: &str) -> String {
    s.split_whitespace()
        .map(|w| {
            let mut chars = w.chars();
            match chars.next() {
                Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
                None => String::new(),
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use esharp_querylog::WorldConfig;

    fn build() -> (World, Corpus) {
        let world = World::generate(&WorldConfig::tiny(21));
        let corpus = generate_corpus(&world, &CorpusConfig::tiny(21));
        (world, corpus)
    }

    #[test]
    fn corpus_is_deterministic() {
        let world = World::generate(&WorldConfig::tiny(21));
        let a = generate_corpus(&world, &CorpusConfig::tiny(5));
        let b = generate_corpus(&world, &CorpusConfig::tiny(5));
        assert_eq!(a.users().len(), b.users().len());
        assert_eq!(a.tweets().len(), b.tweets().len());
        assert_eq!(a.tweets()[10].text, b.tweets()[10].text);
    }

    #[test]
    fn streaming_build_is_bit_identical_to_batch() {
        let world = World::generate(&WorldConfig::tiny(21));
        let config = CorpusConfig::tiny(9);
        let batch = generate_corpus(&world, &config);
        let streamed = generate_corpus_streaming(&world, &config);
        assert_eq!(batch.users().len(), streamed.users().len());
        assert_eq!(batch.tweets().len(), streamed.tweets().len());
        assert_eq!(
            crate::binio::encode_corpus(&batch).unwrap(),
            crate::binio::encode_corpus(&streamed).unwrap()
        );
    }

    #[test]
    fn every_domain_has_experts() {
        let (world, corpus) = build();
        for d in &world.domains {
            let count = corpus
                .users()
                .iter()
                .filter(|u| u.expert_domains.contains(&d.id))
                .count();
            assert!(count >= 1, "domain {} has no experts", d.label);
        }
    }

    #[test]
    fn experts_are_topically_concentrated() {
        let (world, corpus) = build();
        // Pick one expert; most of their tweets must mention their domain's
        // vocabulary.
        let expert = corpus
            .users()
            .iter()
            .find(|u| !u.expert_domains.is_empty())
            .unwrap();
        let domain = &world.domains[expert.expert_domains[0] as usize];
        let domain_words: Vec<String> = domain
            .terms
            .iter()
            .flat_map(|&t| world.term_text(t).split_whitespace())
            .map(str::to_string)
            .collect();
        let own: Vec<&Tweet> = corpus
            .tweets()
            .iter()
            .filter(|t| t.author == expert.id)
            .collect();
        let on_topic = own
            .iter()
            .filter(|t| {
                crate::tokenize::tokenize(&t.text)
                    .iter()
                    .any(|tok| domain_words.contains(tok))
            })
            .count();
        assert!(
            on_topic * 2 > own.len(),
            "expert {} on-topic {}/{}",
            expert.handle,
            on_topic,
            own.len()
        );
    }

    #[test]
    fn mentions_and_retweets_flow_to_experts() {
        let (_, corpus) = build();
        let expert_mentions: u64 = corpus
            .users()
            .iter()
            .filter(|u| !u.expert_domains.is_empty())
            .map(|u| corpus.mentions_of(u.id))
            .sum();
        assert!(expert_mentions > 0, "no expert was ever mentioned");
        let expert_retweets: u64 = corpus
            .users()
            .iter()
            .filter(|u| !u.expert_domains.is_empty())
            .map(|u| corpus.retweets_of(u.id))
            .sum();
        assert!(expert_retweets > 0, "no expert was ever retweeted");
    }

    #[test]
    fn retweet_text_round_trips_through_parser() {
        let (_, corpus) = build();
        let rt = corpus
            .tweets()
            .iter()
            .find(|t| t.retweet_of.is_some())
            .expect("some retweets exist");
        let reparsed = Tweet::parse(rt.id, rt.author, rt.text.clone(), |h| {
            corpus.user_by_handle(h)
        });
        assert_eq!(reparsed.retweet_of, rt.retweet_of);
        assert_eq!(reparsed.mentions, rt.mentions);
    }
}
