//! Deadline-bounded scatter-gather: the tail-tolerant variant of
//! [`Corpus::match_terms_with`].
//!
//! [`Corpus::match_terms_bounded`] runs the same shard-grouped fan-out,
//! but every shard task carries the request's [`Budget`] and abandons at
//! chunk boundaries once it expires; the gather then merges whatever
//! answered and reports the rest in a [`ShardOutcome`] instead of
//! blocking the whole query on the slowest shard. Three tail-tolerance
//! mechanisms hang off it (DESIGN.md §11):
//!
//! * **chaos seams** — each shard attempt consults the injected
//!   [`ChaosInjector`] at `search:shard:<i>` (attempt 0 = primary,
//!   1 = hedge), so stalls/delays/panics are seed-replayable,
//! * **hedging** — one hedger task waits `hedge_delay_us`, then
//!   re-issues every still-missing shard as attempt 1; slots are
//!   first-answer-wins, so a straggling primary and its hedge can race
//!   without affecting the merged bytes (a union is idempotent),
//! * **circuit breakers** — sick shards are skipped before any work is
//!   spent on them, and every attempt's outcome is recorded back.
//!
//! Determinism: on a [`esharp_fault::VirtualClock`] an injected wait
//! charges ticks to the waiting task *without advancing shared time*
//! (see [`charge_wait`]'s accounting), so whether a shard answers is a
//! pure function of the chaos plan and the budget — never of thread
//! interleaving — and the chaos matrix can assert exact missing-shard
//! sets. Shard panics are caught per task; they surface as a missing
//! shard and a counter, never as a torn-down caller.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::corpus::{Corpus, TermMatch};
use crate::index::union_sorted;
use crate::types::TweetId;
use esharp_fault::{Budget, ChaosFault, ChaosInjector, NoChaos, ShardBreakers, TickSource};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering::SeqCst};
use std::sync::Mutex;

/// Everything a bounded fan-out needs beyond the terms themselves.
pub struct BoundedSearch<'a> {
    /// The request's deadline + cancellation token.
    pub budget: &'a Budget,
    /// Chaos seams (production passes [`NoChaos`]).
    pub chaos: &'a dyn ChaosInjector,
    /// Per-shard circuit breakers, if the caller runs them.
    pub breakers: Option<&'a ShardBreakers>,
    /// Whether to re-issue missing shards as hedged duplicates.
    pub hedge: bool,
    /// How long the hedger waits before re-issuing, in budget ticks.
    pub hedge_delay_us: u64,
}

/// The production injector is a unit value, so a shared static keeps
/// plain bounded searches allocation-free.
static NO_CHAOS: NoChaos = NoChaos;

impl<'a> BoundedSearch<'a> {
    /// A plain bounded search: deadline only, no chaos, no breakers, no
    /// hedging.
    pub fn new(budget: &'a Budget) -> BoundedSearch<'a> {
        BoundedSearch {
            budget,
            chaos: &NO_CHAOS,
            breakers: None,
            hedge: false,
            hedge_delay_us: 0,
        }
    }

    /// Enable hedged re-issue of missing shards after `delay_us` ticks.
    pub fn hedged(mut self, delay_us: u64) -> BoundedSearch<'a> {
        self.hedge = true;
        self.hedge_delay_us = delay_us;
        self
    }

    /// Inject chaos at the shard seams.
    pub fn with_chaos(mut self, chaos: &'a dyn ChaosInjector) -> BoundedSearch<'a> {
        self.chaos = chaos;
        self
    }

    /// Gate and record shard attempts through circuit breakers.
    pub fn with_breakers(mut self, breakers: &'a ShardBreakers) -> BoundedSearch<'a> {
        self.breakers = Some(breakers);
        self
    }
}

/// What a bounded fan-out produced: the merged match set of the shards
/// that answered, plus exactly which shards did not and why.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardOutcome {
    /// Union of the shards that answered, tombstones filtered — when
    /// nothing is missing, bit-identical to [`Corpus::match_terms`].
    pub matched: Vec<TweetId>,
    /// Shards that were tried but missed the deadline, stalled, or
    /// panicked (sorted).
    pub shards_missing: Vec<usize>,
    /// Shards skipped outright by an open circuit breaker (sorted).
    pub shards_skipped: Vec<usize>,
    /// Hedged duplicate attempts launched.
    pub hedges: u32,
    /// Hedged attempts that answered first for their shard.
    pub hedge_wins: u32,
    /// Shard attempts that panicked (contained; counted per attempt).
    pub shard_panics: u32,
}

impl ShardOutcome {
    /// Whether any shard's contribution is absent from `matched`.
    pub fn is_partial(&self) -> bool {
        !self.shards_missing.is_empty() || !self.shards_skipped.is_empty()
    }

    /// All absent shards — missing ∪ skipped, sorted — the
    /// `shards_missing` list a degraded response reports.
    pub fn absent_shards(&self) -> Vec<usize> {
        let mut all: Vec<usize> = self
            .shards_missing
            .iter()
            .chain(self.shards_skipped.iter())
            .copied()
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    }
}

/// Wait on `clock`, returning only the ticks the clock did **not**
/// observe — a wall clock's sleep shows up in `now_us()` so the charge
/// is ~0; a virtual clock's wait returns instantly without advancing
/// shared time, so the full wait becomes a task-local budget charge.
/// This split is what keeps concurrent tasks from racing on simulated
/// time.
fn charge_wait(clock: &dyn TickSource, us: u64, release: &(dyn Fn() -> bool + Sync)) -> u64 {
    let before = clock.now_us();
    let waited = clock.wait_us(us, release);
    waited.saturating_sub(clock.now_us().saturating_sub(before))
}

impl Corpus {
    /// [`Corpus::match_terms_with`] under a deadline: shard tasks that
    /// miss the budget (or stall, or panic) are abandoned and reported
    /// in the [`ShardOutcome`] rather than stalling the gather forever.
    /// When every shard answers, `matched` is bit-identical to the
    /// serial path.
    pub fn match_terms_bounded(
        &self,
        terms: &[String],
        workers: usize,
        ctx: &BoundedSearch<'_>,
    ) -> ShardOutcome {
        let clock = ctx.budget.clock().as_ref();
        let k = self.shard_count().max(1);
        let mut groups: Vec<Vec<&String>> = vec![Vec::new(); k];
        for term in terms {
            groups[self.term_home_shard(term)].push(term);
        }

        // Breaker gate: spend nothing on shards with open breakers.
        let mut admitted: Vec<usize> = Vec::new();
        let mut skipped: Vec<usize> = Vec::new();
        for (shard, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let allowed = ctx.breakers.is_none_or(|b| b.allow(shard, clock));
            if allowed {
                admitted.push(shard);
            } else {
                skipped.push(shard);
            }
        }
        if admitted.is_empty() {
            return ShardOutcome {
                shards_skipped: skipped,
                ..ShardOutcome::default()
            };
        }

        // First-answer-wins result slot per admitted shard.
        let slots: Vec<Mutex<Option<Vec<TweetId>>>> =
            admitted.iter().map(|_| Mutex::new(None)).collect();
        let done: Vec<AtomicBool> = admitted.iter().map(|_| AtomicBool::new(false)).collect();
        let panics = AtomicU32::new(0);
        let hedges = AtomicU32::new(0);
        let hedge_wins = AtomicU32::new(0);

        // One shard attempt: consult chaos, respect the budget at every
        // term boundary, publish into the slot unless someone already
        // did. `base_charge` carries virtual ticks the attempt already
        // spent before starting (the hedger's own delay).
        let attempt_shard = |slot_idx: usize, attempt: u32, base_charge: u64| {
            let shard = admitted[slot_idx];
            let mut charged = base_charge;
            let release = || done[slot_idx].load(SeqCst) || ctx.budget.cancelled();
            let site = format!("search:shard:{shard}");
            match ctx.chaos.chaos_at(&site, attempt) {
                Some(ChaosFault::Delay { us }) => {
                    charged = charged.saturating_add(charge_wait(clock, us, &release));
                }
                Some(ChaosFault::Stall) => {
                    // Wedged: never answers. Hold the worker until the
                    // budget runs out or a hedge fills the slot, then
                    // abandon — exactly what a real stuck shard costs.
                    let rest = ctx.budget.remaining_us_with(charged).saturating_add(1);
                    let _ = clock.wait_us(rest, &release);
                    return;
                }
                Some(ChaosFault::Panic) => {
                    panic!("injected chaos panic at {site} attempt {attempt}")
                }
                None => {}
            }
            let group = &groups[shard];
            let mut matches: Vec<TermMatch<'_>> = Vec::with_capacity(group.len());
            for term in group {
                if ctx.budget.expired_with(charged) {
                    return;
                }
                matches.push(self.match_term(term));
            }
            let lists: Vec<&[TweetId]> = matches
                .iter()
                .map(TermMatch::as_slice)
                .filter(|list| !list.is_empty())
                .collect();
            let merged = union_sorted(&lists);
            if ctx.budget.expired_with(charged) {
                return;
            }
            if let Ok(mut slot) = slots[slot_idx].lock() {
                if slot.is_none() {
                    *slot = Some(merged);
                    done[slot_idx].store(true, SeqCst);
                    if attempt > 0 {
                        hedge_wins.fetch_add(1, SeqCst);
                    }
                }
            }
        };

        // A panicking shard attempt must cost one shard, not the query:
        // contain it here (the pool would otherwise resume it on the
        // caller) and let the empty slot report it as missing.
        let contained = |slot_idx: usize, attempt: u32, base_charge: u64| {
            if catch_unwind(AssertUnwindSafe(|| attempt_shard(slot_idx, attempt, base_charge)))
                .is_err()
            {
                panics.fetch_add(1, SeqCst);
            }
        };

        let contained = &contained;
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..admitted.len())
            .map(|slot_idx| {
                Box::new(move || contained(slot_idx, 0, 0)) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        if ctx.hedge {
            let hedger = || {
                let all_done =
                    || done.iter().all(|d| d.load(SeqCst)) || ctx.budget.cancelled();
                let charged = charge_wait(clock, ctx.hedge_delay_us, &all_done);
                for (slot_idx, slot_done) in done.iter().enumerate() {
                    if slot_done.load(SeqCst) || ctx.budget.expired_with(charged) {
                        continue;
                    }
                    hedges.fetch_add(1, SeqCst);
                    contained(slot_idx, 1, charged);
                }
            };
            tasks.push(Box::new(hedger));
        }
        esharp_par::shared_pool(workers).run(tasks);

        // Gather: merge what answered (slots are in ascending shard
        // order, so the merge order is deterministic), report the rest.
        let mut partials: Vec<Vec<TweetId>> = Vec::with_capacity(admitted.len());
        let mut missing: Vec<usize> = Vec::new();
        for (slot_idx, &shard) in admitted.iter().enumerate() {
            let answer = slots[slot_idx].lock().ok().and_then(|mut s| s.take());
            let ok = answer.is_some();
            if let Some(list) = answer {
                partials.push(list);
            } else {
                missing.push(shard);
            }
            if let Some(breakers) = ctx.breakers {
                breakers.record(shard, ok, clock);
            }
        }
        let lists: Vec<&[TweetId]> = partials
            .iter()
            .map(Vec::as_slice)
            .filter(|list| !list.is_empty())
            .collect();
        ShardOutcome {
            matched: self.without_tombstones(union_sorted(&lists)),
            shards_missing: missing,
            shards_skipped: skipped,
            hedges: hedges.load(SeqCst),
            hedge_wins: hedge_wins.load(SeqCst),
            shard_panics: panics.load(SeqCst),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate_corpus, CorpusConfig};
    use crate::types::TokenId;
    use esharp_fault::{BreakerConfig, ChaosPlan, VirtualClock};
    use esharp_querylog::{World, WorldConfig};
    use std::sync::Arc;

    fn corpus_with_shards(k: usize) -> Corpus {
        let world = World::generate(&WorldConfig::tiny(21));
        let mut corpus = generate_corpus(&world, &CorpusConfig::tiny(7));
        corpus.reshard(k);
        corpus
    }

    fn spread_terms(corpus: &Corpus, per_shard: usize) -> Vec<String> {
        // Pick single-token terms covering every shard.
        let k = corpus.shard_count();
        let mut picked: Vec<Vec<String>> = vec![Vec::new(); k];
        for id in 0..corpus.num_tokens() {
            let token = corpus.token_text(id as TokenId).to_string();
            let shard = corpus.term_home_shard(&token);
            if picked[shard].len() < per_shard {
                picked[shard].push(token);
            }
        }
        let terms: Vec<String> = picked.into_iter().flatten().collect();
        assert!(
            terms.len() >= k,
            "synthetic corpus must cover every shard with at least one term"
        );
        terms
    }

    fn virtual_budget(limit_us: u64) -> Budget {
        Budget::with_clock(Arc::new(VirtualClock::new()), limit_us)
    }

    #[test]
    fn unbothered_bounded_search_is_bit_identical_to_serial() {
        let corpus = corpus_with_shards(4);
        let terms = spread_terms(&corpus, 2);
        let budget = virtual_budget(1_000_000);
        let outcome = corpus.match_terms_bounded(&terms, 4, &BoundedSearch::new(&budget));
        assert!(!outcome.is_partial());
        assert_eq!(outcome.matched, corpus.match_terms(&terms));
        assert_eq!(outcome.hedges, 0);
        assert_eq!(outcome.shard_panics, 0);
    }

    #[test]
    fn stalled_shard_yields_partial_with_exact_missing_set() {
        let corpus = corpus_with_shards(4);
        let terms = spread_terms(&corpus, 2);
        let full = corpus.match_terms(&terms);
        for stalled in 0..corpus.shard_count() {
            let plan = ChaosPlan::new(1).stall_at(&format!("search:shard:{stalled}"));
            let budget = virtual_budget(10_000);
            let ctx = BoundedSearch::new(&budget).with_chaos(&plan);
            let outcome = corpus.match_terms_bounded(&terms, 4, &ctx);
            assert_eq!(outcome.shards_missing, vec![stalled]);
            assert!(outcome.is_partial());
            assert!(
                outcome.matched.iter().all(|id| full.contains(id)),
                "a partial answer must be a subset of the full answer"
            );
        }
    }

    #[test]
    fn hedging_recovers_a_stalled_shard_bit_identically() {
        let corpus = corpus_with_shards(4);
        let terms = spread_terms(&corpus, 2);
        let full = corpus.match_terms(&terms);
        for stalled in 0..corpus.shard_count() {
            let plan = ChaosPlan::new(1).stall_at(&format!("search:shard:{stalled}"));
            let budget = virtual_budget(10_000);
            let ctx = BoundedSearch::new(&budget).with_chaos(&plan).hedged(1_000);
            let outcome = corpus.match_terms_bounded(&terms, 4, &ctx);
            assert!(!outcome.is_partial(), "hedge must recover shard {stalled}");
            assert_eq!(outcome.matched, full);
            assert!(outcome.hedges >= 1);
            assert!(outcome.hedge_wins >= 1);
        }
    }

    #[test]
    fn panicking_shard_is_contained_and_reported() {
        let corpus = corpus_with_shards(4);
        let terms = spread_terms(&corpus, 2);
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let plan = ChaosPlan::new(1).panic_at("search:shard:2");
        let budget = virtual_budget(1_000_000);
        let ctx = BoundedSearch::new(&budget).with_chaos(&plan);
        let outcome = corpus.match_terms_bounded(&terms, 4, &ctx);
        std::panic::set_hook(hook);
        assert_eq!(outcome.shards_missing, vec![2]);
        assert_eq!(outcome.shard_panics, 1);
    }

    #[test]
    fn injected_delay_within_budget_still_answers_in_full() {
        let corpus = corpus_with_shards(4);
        let terms = spread_terms(&corpus, 2);
        let plan = ChaosPlan::new(1).trigger(
            "search:shard:1",
            0,
            ChaosFault::Delay { us: 5_000 },
        );
        let budget = virtual_budget(10_000);
        let ctx = BoundedSearch::new(&budget).with_chaos(&plan);
        let outcome = corpus.match_terms_bounded(&terms, 4, &ctx);
        assert!(!outcome.is_partial(), "a delay under budget is invisible");
        assert_eq!(outcome.matched, corpus.match_terms(&terms));
    }

    #[test]
    fn breakers_trip_then_skip_then_recover() {
        let corpus = corpus_with_shards(4);
        let terms = spread_terms(&corpus, 2);
        let clock = Arc::new(VirtualClock::new());
        let breakers = ShardBreakers::new(BreakerConfig {
            threshold: 2,
            open_us: 50_000,
        });
        // Shard 3 stalls twice (limited trigger), tripping its breaker.
        let plan = ChaosPlan::new(1).trigger_limited(
            "search:shard:3",
            ChaosFault::Stall,
            2,
        );
        for _ in 0..2 {
            let budget = Budget::with_clock(clock.clone(), 10_000);
            let ctx = BoundedSearch::new(&budget)
                .with_chaos(&plan)
                .with_breakers(&breakers);
            let outcome = corpus.match_terms_bounded(&terms, 4, &ctx);
            assert_eq!(outcome.shards_missing, vec![3]);
        }
        assert_eq!(breakers.trips(), 1);

        // Next request: shard 3 skipped without spending any budget.
        let budget = Budget::with_clock(clock.clone(), 10_000);
        let ctx = BoundedSearch::new(&budget).with_breakers(&breakers);
        let outcome = corpus.match_terms_bounded(&terms, 4, &ctx);
        assert_eq!(outcome.shards_skipped, vec![3]);
        assert_eq!(outcome.absent_shards(), vec![3]);

        // After the open window, the (now healed) shard probes and the
        // breaker closes again.
        clock.advance_us(50_000);
        let budget = Budget::with_clock(clock.clone(), 10_000);
        let ctx = BoundedSearch::new(&budget).with_breakers(&breakers);
        let outcome = corpus.match_terms_bounded(&terms, 4, &ctx);
        assert!(!outcome.is_partial());
        assert_eq!(outcome.matched, corpus.match_terms(&terms));
        assert_eq!(breakers.recoveries(), 1);
    }
}
