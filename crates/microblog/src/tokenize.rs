//! Tweet tokenization.
//!
//! Matching in the baseline detector is defined over lower-cased tokens
//! ("a tweet matches a query if it contains all of its terms after
//! lower-casing", §3), so the tokenizer is deliberately simple: lowercase,
//! split on whitespace, trim surrounding punctuation but preserve leading
//! `#` and `@` sigils (hashtags and mentions are first-class tokens on
//! microblogs).

/// Tokenize tweet text or a query into lower-case tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    text.split_whitespace()
        .filter_map(|raw| {
            let token = trim_token(&raw.to_lowercase());
            if token.is_empty() {
                None
            } else {
                Some(token)
            }
        })
        .collect()
}

/// Trim punctuation from both ends. A leading `#` or `@` survives only
/// when the rest is a well-formed tag/handle (alphanumeric or `_`, like
/// real Twitter handles); otherwise the token degrades to its plain word.
fn trim_token(token: &str) -> String {
    let (sigil, body) = match token.chars().next() {
        Some(c @ ('#' | '@')) => (Some(c), &token[c.len_utf8()..]),
        _ => (None, token),
    };
    let trimmed = body.trim_matches(|c: char| !c.is_alphanumeric());
    if trimmed.is_empty() {
        return String::new();
    }
    match sigil {
        Some(c) if trimmed.chars().all(|ch| ch.is_alphanumeric() || ch == '_') => {
            format!("{c}{trimmed}")
        }
        _ => trimmed.to_string(),
    }
}

/// Extract `@mention` handles (without the sigil) from tokens.
pub fn mentions(tokens: &[String]) -> Vec<&str> {
    tokens
        .iter()
        .filter_map(|t| t.strip_prefix('@'))
        .filter(|h| !h.is_empty())
        .collect()
}

/// If the token stream is a retweet (`rt @handle …`), the retweeted handle.
pub fn retweeted_handle(tokens: &[String]) -> Option<&str> {
    match tokens {
        [rt, second, ..] if rt == "rt" => second.strip_prefix('@'),
        _ => None,
    }
}

/// True if the tweet's token set contains **all** the query's tokens — the
/// baseline's matching rule (§3).
pub fn matches_all(tweet_tokens: &[String], query_tokens: &[String]) -> bool {
    query_tokens
        .iter()
        .all(|q| tweet_tokens.iter().any(|t| t == q))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_and_strips_punctuation() {
        assert_eq!(
            tokenize("Go NINERS! Great win, 49ers..."),
            vec!["go", "niners", "great", "win", "49ers"]
        );
    }

    #[test]
    fn preserves_hashtags_and_mentions() {
        assert_eq!(
            tokenize("RT @NinersFan: #49ers win!"),
            vec!["rt", "@ninersfan", "#49ers", "win"]
        );
    }

    #[test]
    fn mention_extraction() {
        let toks = tokenize("thanks @Alice and @bob!");
        assert_eq!(mentions(&toks), vec!["alice", "bob"]);
    }

    #[test]
    fn retweet_detection() {
        let toks = tokenize("RT @sports_guy: niners looking sharp");
        assert_eq!(retweeted_handle(&toks), Some("sports_guy"));
        let plain = tokenize("no retweet here @sports_guy");
        assert_eq!(retweeted_handle(&plain), None);
    }

    #[test]
    fn matches_all_requires_every_term() {
        let tweet = tokenize("the 49ers draft looks great");
        assert!(matches_all(&tweet, &tokenize("49ers draft")));
        assert!(matches_all(&tweet, &tokenize("DRAFT")));
        assert!(!matches_all(&tweet, &tokenize("49ers nfl")));
        assert!(matches_all(&tweet, &[])); // empty query matches everything
    }

    #[test]
    fn degenerate_tokens_drop() {
        assert!(tokenize("!!! ... @ #").is_empty());
        assert_eq!(tokenize("  spaced   out  "), vec!["spaced", "out"]);
    }
}
