//! The corpus: users, tweets and the indexes the expert detector needs.

use crate::tokenize::tokenize;
use crate::types::{Tweet, TweetId, User, UserId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An indexed microblog corpus.
///
/// Besides the raw tables, the corpus maintains:
/// * a token inverted index for all-terms query matching (§3),
/// * per-user totals (#tweets, #mentions received, #retweets received) —
///   the denominators of the TS / MI / RI features.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Corpus {
    users: Vec<User>,
    tweets: Vec<Tweet>,
    /// token → sorted tweet ids containing it.
    token_postings: HashMap<String, Vec<TweetId>>,
    /// handle → user id.
    handle_index: HashMap<String, UserId>,
    /// Per-user totals.
    tweets_by_user: Vec<u64>,
    mentions_of_user: Vec<u64>,
    retweets_of_user: Vec<u64>,
}

impl Corpus {
    /// Build an indexed corpus from users and tweets. Tweet and user ids
    /// must equal their indices.
    pub fn new(users: Vec<User>, tweets: Vec<Tweet>) -> Corpus {
        let mut handle_index = HashMap::with_capacity(users.len());
        for u in &users {
            handle_index.insert(u.handle.clone(), u.id);
        }
        let mut token_postings: HashMap<String, Vec<TweetId>> = HashMap::new();
        let mut tweets_by_user = vec![0u64; users.len()];
        let mut mentions_of_user = vec![0u64; users.len()];
        let mut retweets_of_user = vec![0u64; users.len()];
        for (index, t) in tweets.iter().enumerate() {
            debug_assert_eq!(
                t.id as usize, index,
                "tweet ids must equal their index for the per-user total vectors"
            );
            tweets_by_user[t.author as usize] += 1;
            for &m in &t.mentions {
                mentions_of_user[m as usize] += 1;
            }
            if let Some(orig) = t.retweet_of {
                retweets_of_user[orig as usize] += 1;
            }
            for token in &t.tokens {
                // Tweets arrive in id order, so a token repeated within
                // this tweet is exactly one whose posting list already ends
                // with this id — an O(1) dedup instead of a scan of every
                // token seen so far in the tweet. The key is cloned only on
                // a token's first appearance in the corpus.
                match token_postings.get_mut(token) {
                    Some(postings) => {
                        if postings.last() != Some(&t.id) {
                            postings.push(t.id);
                        }
                    }
                    None => {
                        token_postings.insert(token.clone(), vec![t.id]);
                    }
                }
            }
        }
        Corpus {
            users,
            tweets,
            token_postings,
            handle_index,
            tweets_by_user,
            mentions_of_user,
            retweets_of_user,
        }
    }

    /// All users.
    pub fn users(&self) -> &[User] {
        &self.users
    }

    /// All tweets.
    pub fn tweets(&self) -> &[Tweet] {
        &self.tweets
    }

    /// One user.
    pub fn user(&self, id: UserId) -> &User {
        &self.users[id as usize]
    }

    /// One tweet.
    pub fn tweet(&self, id: TweetId) -> &Tweet {
        &self.tweets[id as usize]
    }

    /// Resolve a handle to a user id.
    pub fn user_by_handle(&self, handle: &str) -> Option<UserId> {
        self.handle_index.get(handle).copied()
    }

    /// Total tweets authored by `user`.
    pub fn tweets_by(&self, user: UserId) -> u64 {
        self.tweets_by_user[user as usize]
    }

    /// Total mentions received by `user`.
    pub fn mentions_of(&self, user: UserId) -> u64 {
        self.mentions_of_user[user as usize]
    }

    /// Total retweets received by `user`.
    pub fn retweets_of(&self, user: UserId) -> u64 {
        self.retweets_of_user[user as usize]
    }

    /// Tweets matching a query: the tweet must contain **all** the query's
    /// tokens after lower-casing (§3). Implemented as a sorted-postings
    /// intersection starting from the rarest token.
    pub fn match_query(&self, query: &str) -> Vec<TweetId> {
        let tokens = tokenize(query);
        if tokens.is_empty() {
            return Vec::new();
        }
        let mut postings: Vec<&Vec<TweetId>> = Vec::with_capacity(tokens.len());
        for token in &tokens {
            match self.token_postings.get(token) {
                Some(list) => postings.push(list),
                None => return Vec::new(),
            }
        }
        postings.sort_by_key(|list| list.len());
        let mut result: Vec<TweetId> = postings[0].clone();
        for list in &postings[1..] {
            result = intersect_sorted(&result, list);
            if result.is_empty() {
                break;
            }
        }
        result
    }

    /// Approximate corpus payload size in bytes.
    pub fn byte_size(&self) -> u64 {
        self.tweets.iter().map(|t| t.text.len() as u64).sum()
    }

    /// Persist the corpus to a JSON file (indexes are rebuilt on load, so
    /// only users and tweets pay serialization cost).
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let payload = (&self.users, &self.tweets);
        let json = serde_json::to_string(&payload).map_err(std::io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Load a corpus persisted by [`Corpus::save`], rebuilding all indexes.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Corpus> {
        let json = std::fs::read_to_string(path)?;
        let (users, tweets): (Vec<User>, Vec<Tweet>) =
            serde_json::from_str(&json).map_err(std::io::Error::other)?;
        Ok(Corpus::new(users, tweets))
    }
}

fn intersect_sorted(a: &[TweetId], b: &[TweetId]) -> Vec<TweetId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn user(id: UserId, handle: &str) -> User {
        User {
            id,
            handle: handle.to_string(),
            display_name: handle.to_uppercase(),
            description: String::new(),
            followers: 10,
            verified: false,
            expert_domains: vec![],
            spam: false,
        }
    }

    fn corpus() -> Corpus {
        let users = vec![user(0, "alice"), user(1, "bob"), user(2, "carol")];
        let resolve = |h: &str| match h {
            "alice" => Some(0),
            "bob" => Some(1),
            "carol" => Some(2),
            _ => None,
        };
        let tweets = vec![
            Tweet::parse(0, 0, "the 49ers draft was exciting", resolve),
            Tweet::parse(1, 1, "RT @alice: the 49ers draft was exciting", resolve),
            Tweet::parse(2, 1, "niners game today with @carol", resolve),
            Tweet::parse(3, 2, "cooking pasta tonight", resolve),
        ];
        Corpus::new(users, tweets)
    }

    #[test]
    fn match_query_is_conjunctive_and_case_insensitive() {
        let c = corpus();
        assert_eq!(c.match_query("49ers DRAFT"), vec![0, 1]);
        assert_eq!(c.match_query("49ers pasta"), Vec::<TweetId>::new());
        assert_eq!(c.match_query("niners"), vec![2]);
        assert!(c.match_query("").is_empty());
        assert!(c.match_query("unknowntoken").is_empty());
    }

    #[test]
    fn totals_count_mentions_and_retweets() {
        let c = corpus();
        assert_eq!(c.tweets_by(1), 2);
        assert_eq!(c.mentions_of(0), 1); // from the RT text
        assert_eq!(c.mentions_of(2), 1);
        assert_eq!(c.retweets_of(0), 1);
        assert_eq!(c.retweets_of(1), 0);
    }

    #[test]
    fn duplicate_tokens_index_once() {
        let users = vec![user(0, "a")];
        let tweets = vec![Tweet::parse(0, 0, "go go go niners", |_| None)];
        let c = Corpus::new(users, tweets);
        assert_eq!(c.match_query("go"), vec![0]);
    }

    #[test]
    fn save_load_round_trip_rebuilds_indexes() {
        let c = corpus();
        let dir = std::env::temp_dir().join("esharp_corpus_io_test");
        let path = dir.join("corpus.json");
        c.save(&path).unwrap();
        let back = Corpus::load(&path).unwrap();
        assert_eq!(back.users().len(), c.users().len());
        assert_eq!(back.tweets().len(), c.tweets().len());
        assert_eq!(back.match_query("49ers draft"), c.match_query("49ers draft"));
        assert_eq!(back.mentions_of(0), c.mentions_of(0));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn handle_lookup() {
        let c = corpus();
        assert_eq!(c.user_by_handle("bob"), Some(1));
        assert_eq!(c.user_by_handle("nobody"), None);
    }
}
