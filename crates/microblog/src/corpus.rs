//! The corpus: users, tweets and the indexes the expert detector needs.

use crate::index::{intersect, union_sorted, PostingsIndex};
use crate::intern::SymbolTable;
use crate::tokenize::tokenize;
use crate::types::{TokenId, Tweet, TweetId, User, UserId};
use std::collections::HashMap;

/// An indexed microblog corpus.
///
/// Besides the raw tables, the corpus maintains:
/// * a corpus-wide symbol table interning every token to a dense
///   [`TokenId`] (tokens are interned once at build time; the online
///   path never hashes a tweet token again),
/// * each tweet's interned tokens in a flat CSR arena
///   ([`Corpus::tweet_tokens`]),
/// * a CSR token inverted index ([`PostingsIndex`]) for all-terms query
///   matching (§3),
/// * per-user totals (#tweets, #mentions received, #retweets received) —
///   the denominators of the TS / MI / RI features.
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    users: Vec<User>,
    tweets: Vec<Tweet>,
    /// Token text ↔ dense id.
    symbols: SymbolTable,
    /// Tweet `t`'s tokens (in text order, duplicates kept) are
    /// `token_ids[token_offsets[t] .. token_offsets[t + 1]]`.
    token_offsets: Vec<u32>,
    token_ids: Vec<TokenId>,
    /// token id → sorted tweet ids containing it.
    postings: PostingsIndex,
    /// handle → user id.
    handle_index: HashMap<String, UserId>,
    /// Per-user totals.
    tweets_by_user: Vec<u64>,
    mentions_of_user: Vec<u64>,
    retweets_of_user: Vec<u64>,
}

impl Corpus {
    /// Build an indexed corpus from users and tweets. Tweet and user ids
    /// must equal their indices. Tokenization and interning happen here —
    /// this is the only place tweet text is ever tokenized.
    pub fn new(users: Vec<User>, tweets: Vec<Tweet>) -> Corpus {
        let mut handle_index = HashMap::with_capacity(users.len());
        for u in &users {
            handle_index.insert(u.handle.clone(), u.id);
        }
        let mut tweets_by_user = vec![0u64; users.len()];
        let mut mentions_of_user = vec![0u64; users.len()];
        let mut retweets_of_user = vec![0u64; users.len()];
        let mut symbols = SymbolTable::new();
        let mut token_offsets = Vec::with_capacity(tweets.len() + 1);
        let mut token_ids: Vec<TokenId> = Vec::new();
        token_offsets.push(0);
        for (index, t) in tweets.iter().enumerate() {
            debug_assert_eq!(
                t.id as usize, index,
                "tweet ids must equal their index for the per-user total vectors"
            );
            tweets_by_user[t.author as usize] += 1;
            for &m in &t.mentions {
                mentions_of_user[m as usize] += 1;
            }
            if let Some(orig) = t.retweet_of {
                retweets_of_user[orig as usize] += 1;
            }
            for token in tokenize(&t.text) {
                token_ids.push(symbols.intern(&token));
            }
            token_offsets.push(token_ids.len() as u32);
        }
        let postings = PostingsIndex::build(
            symbols.len(),
            token_offsets.windows(2).map(|w| &token_ids[w[0] as usize..w[1] as usize]),
        );
        Corpus {
            users,
            tweets,
            symbols,
            token_offsets,
            token_ids,
            postings,
            handle_index,
            tweets_by_user,
            mentions_of_user,
            retweets_of_user,
        }
    }

    /// Reassemble a corpus from pre-built interned parts (the binary load
    /// path — no re-tokenization, no postings rebuild). Only the two small
    /// hash indexes (handle → user, token text → id) are reconstructed.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        users: Vec<User>,
        tweets: Vec<Tweet>,
        symbols: SymbolTable,
        token_offsets: Vec<u32>,
        token_ids: Vec<TokenId>,
        postings: PostingsIndex,
        tweets_by_user: Vec<u64>,
        mentions_of_user: Vec<u64>,
        retweets_of_user: Vec<u64>,
    ) -> Corpus {
        let mut handle_index = HashMap::with_capacity(users.len());
        for u in &users {
            handle_index.insert(u.handle.clone(), u.id);
        }
        Corpus {
            users,
            tweets,
            symbols,
            token_offsets,
            token_ids,
            postings,
            handle_index,
            tweets_by_user,
            mentions_of_user,
            retweets_of_user,
        }
    }

    /// All users.
    pub fn users(&self) -> &[User] {
        &self.users
    }

    /// All tweets.
    pub fn tweets(&self) -> &[Tweet] {
        &self.tweets
    }

    /// One user.
    pub fn user(&self, id: UserId) -> &User {
        &self.users[id as usize]
    }

    /// One tweet.
    pub fn tweet(&self, id: TweetId) -> &Tweet {
        &self.tweets[id as usize]
    }

    /// A tweet's interned tokens, in text order (duplicates kept).
    pub fn tweet_tokens(&self, id: TweetId) -> &[TokenId] {
        let t = id as usize;
        &self.token_ids[self.token_offsets[t] as usize..self.token_offsets[t + 1] as usize]
    }

    /// The id of a token text, if interned anywhere in the corpus.
    pub fn token_id(&self, text: &str) -> Option<TokenId> {
        self.symbols.get(text)
    }

    /// The text of an interned token.
    pub fn token_text(&self, id: TokenId) -> &str {
        self.symbols.text(id)
    }

    /// Distinct tokens in the corpus.
    pub fn num_tokens(&self) -> usize {
        self.symbols.len()
    }

    /// The sorted tweet ids containing `token`.
    pub fn postings(&self, token: TokenId) -> &[TweetId] {
        self.postings.postings(token)
    }

    /// Resolve a handle to a user id.
    pub fn user_by_handle(&self, handle: &str) -> Option<UserId> {
        self.handle_index.get(handle).copied()
    }

    /// Total tweets authored by `user`.
    pub fn tweets_by(&self, user: UserId) -> u64 {
        self.tweets_by_user[user as usize]
    }

    /// Total mentions received by `user`.
    pub fn mentions_of(&self, user: UserId) -> u64 {
        self.mentions_of_user[user as usize]
    }

    /// Total retweets received by `user`.
    pub fn retweets_of(&self, user: UserId) -> u64 {
        self.retweets_of_user[user as usize]
    }

    /// Tweets matching a query: the tweet must contain **all** the query's
    /// tokens after lower-casing (§3). A sorted-postings intersection
    /// starting from the rarest token; a single-token query borrows its
    /// posting list and copies it only once, at the end.
    pub fn match_query(&self, query: &str) -> Vec<TweetId> {
        match self.match_term(query) {
            TermMatch::Borrowed(list) => list.to_vec(),
            TermMatch::Owned(list) => list,
        }
    }

    /// Like [`Corpus::match_query`], borrowing the posting list outright
    /// when no intersection shrinks it (single-token queries — the common
    /// case for expansion terms).
    fn match_term(&self, term: &str) -> TermMatch<'_> {
        // Fast path: a term already in normalized form — space-separated
        // ASCII lowercase alphanumeric words, which `tokenize` maps to
        // themselves — feeds the symbol table directly. Expansion terms
        // ("draft", "sarah palin news") are stored in exactly this form,
        // so the tokenizer's per-term `Vec<String>` never materializes on
        // the expansion-union path; anything else (sigils, punctuation,
        // uppercase, non-ASCII) takes the full tokenizer below.
        let normalized = term
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b' ');
        let mut lists: Vec<&[TweetId]>;
        if normalized {
            lists = Vec::new();
            for word in term.split_ascii_whitespace() {
                match self.symbols.get(word) {
                    Some(id) => lists.push(self.postings.postings(id)),
                    None => return TermMatch::Owned(Vec::new()),
                }
            }
        } else {
            let tokens = tokenize(term);
            lists = Vec::with_capacity(tokens.len());
            for token in &tokens {
                match self.symbols.get(token) {
                    Some(id) => lists.push(self.postings.postings(id)),
                    None => return TermMatch::Owned(Vec::new()),
                }
            }
        }
        match lists.len() {
            0 => TermMatch::Owned(Vec::new()),
            1 => TermMatch::Borrowed(lists[0]),
            _ => {
                lists.sort_by_key(|list| list.len());
                let mut result = intersect(lists[0], lists[1]);
                for list in &lists[2..] {
                    if result.is_empty() {
                        break;
                    }
                    result = intersect(&result, list);
                }
                TermMatch::Owned(result)
            }
        }
    }

    /// Tweets matching **any** of `terms` (each term itself conjunctive,
    /// as in [`Corpus::match_query`]): a k-way merge over the sorted
    /// per-term match sets. This is the expansion-union hot path —
    /// single-token terms contribute borrowed postings slices, so the
    /// only allocations are the intersections that actually shrink and
    /// the final merged result.
    pub fn match_terms(&self, terms: &[String]) -> Vec<TweetId> {
        let matches: Vec<TermMatch<'_>> =
            terms.iter().map(|term| self.match_term(term)).collect();
        let lists: Vec<&[TweetId]> = matches
            .iter()
            .map(|m| match m {
                TermMatch::Borrowed(list) => *list,
                TermMatch::Owned(list) => list.as_slice(),
            })
            .filter(|list| !list.is_empty())
            .collect();
        union_sorted(&lists)
    }

    /// Approximate corpus payload size in bytes.
    pub fn byte_size(&self) -> u64 {
        self.tweets.iter().map(|t| t.text.len() as u64).sum()
    }

    /// Persist the corpus to a JSON file (indexes are rebuilt on load, so
    /// only users and tweets pay serialization cost). For the O(bytes)
    /// binary format that skips the rebuild, see [`Corpus::save_binary`].
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let payload = (&self.users, &self.tweets);
        let json = serde_json::to_string(&payload).map_err(std::io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Load a corpus persisted by [`Corpus::save`] (JSON, indexes rebuilt)
    /// or [`Corpus::save_binary`] (checksummed frames, indexes loaded
    /// as-is). The format is sniffed from the first byte: a JSON payload
    /// is a `[users, tweets]` array, a binary one starts with a frame
    /// length.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Corpus> {
        let data = std::fs::read(path)?;
        if data.first() == Some(&b'[') {
            let (users, tweets): (Vec<User>, Vec<Tweet>) =
                serde_json::from_slice(&data).map_err(std::io::Error::other)?;
            Ok(Corpus::new(users, tweets))
        } else {
            crate::binio::decode_corpus(&data)
        }
    }
}

/// A per-term match set: borrowed straight from the postings arena when
/// no intersection shrank it.
enum TermMatch<'c> {
    Borrowed(&'c [TweetId]),
    Owned(Vec<TweetId>),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn user(id: UserId, handle: &str) -> User {
        User {
            id,
            handle: handle.to_string(),
            display_name: handle.to_uppercase(),
            description: String::new(),
            followers: 10,
            verified: false,
            expert_domains: vec![],
            spam: false,
        }
    }

    fn corpus() -> Corpus {
        let users = vec![user(0, "alice"), user(1, "bob"), user(2, "carol")];
        let resolve = |h: &str| match h {
            "alice" => Some(0),
            "bob" => Some(1),
            "carol" => Some(2),
            _ => None,
        };
        let tweets = vec![
            Tweet::parse(0, 0, "the 49ers draft was exciting", resolve),
            Tweet::parse(1, 1, "RT @alice: the 49ers draft was exciting", resolve),
            Tweet::parse(2, 1, "niners game today with @carol", resolve),
            Tweet::parse(3, 2, "cooking pasta tonight", resolve),
        ];
        Corpus::new(users, tweets)
    }

    #[test]
    fn match_query_is_conjunctive_and_case_insensitive() {
        let c = corpus();
        assert_eq!(c.match_query("49ers DRAFT"), vec![0, 1]);
        assert_eq!(c.match_query("49ers pasta"), Vec::<TweetId>::new());
        assert_eq!(c.match_query("niners"), vec![2]);
        assert!(c.match_query("").is_empty());
        assert!(c.match_query("unknowntoken").is_empty());
    }

    #[test]
    fn match_terms_unions_per_term_matches() {
        let c = corpus();
        assert_eq!(
            c.match_terms(&["49ers draft".to_string(), "niners".to_string()]),
            vec![0, 1, 2]
        );
        // Overlapping terms dedup; unknown terms contribute nothing.
        assert_eq!(
            c.match_terms(&[
                "49ers".to_string(),
                "draft".to_string(),
                "zzz".to_string()
            ]),
            vec![0, 1]
        );
        assert!(c.match_terms(&[]).is_empty());
    }

    #[test]
    fn totals_count_mentions_and_retweets() {
        let c = corpus();
        assert_eq!(c.tweets_by(1), 2);
        assert_eq!(c.mentions_of(0), 1); // from the RT text
        assert_eq!(c.mentions_of(2), 1);
        assert_eq!(c.retweets_of(0), 1);
        assert_eq!(c.retweets_of(1), 0);
    }

    #[test]
    fn duplicate_tokens_index_once() {
        let users = vec![user(0, "a")];
        let tweets = vec![Tweet::parse(0, 0, "go go go niners", |_| None)];
        let c = Corpus::new(users, tweets);
        assert_eq!(c.match_query("go"), vec![0]);
        // The per-tweet token list keeps text order and duplicates …
        let go = c.token_id("go").unwrap();
        assert_eq!(c.tweet_tokens(0).iter().filter(|&&t| t == go).count(), 3);
        // … but the posting list holds the tweet once.
        assert_eq!(c.postings(go), &[0]);
    }

    #[test]
    fn interned_tokens_round_trip_text() {
        let c = corpus();
        let id = c.token_id("niners").unwrap();
        assert_eq!(c.token_text(id), "niners");
        assert!(c.num_tokens() > 0);
        assert_eq!(c.token_id("absent"), None);
    }

    #[test]
    fn save_load_round_trip_rebuilds_indexes() {
        let c = corpus();
        let dir = std::env::temp_dir().join("esharp_corpus_io_test");
        let path = dir.join("corpus.json");
        c.save(&path).unwrap();
        let back = Corpus::load(&path).unwrap();
        assert_eq!(back.users().len(), c.users().len());
        assert_eq!(back.tweets().len(), c.tweets().len());
        assert_eq!(back.match_query("49ers draft"), c.match_query("49ers draft"));
        assert_eq!(back.mentions_of(0), c.mentions_of(0));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn legacy_json_with_tokens_field_still_loads() {
        // Corpora saved before interning carried a redundant per-tweet
        // `tokens` array; serde skips unknown fields, and load
        // re-tokenizes from text.
        let json = r#"[
            [{"id":0,"handle":"a","display_name":"A","description":"",
              "followers":1,"verified":false,"expert_domains":[],"spam":false}],
            [{"id":0,"author":0,"text":"niners win","tokens":["niners","win"],
              "mentions":[],"retweet_of":null}]
        ]"#;
        let dir = std::env::temp_dir().join("esharp_corpus_legacy_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("legacy.json");
        std::fs::write(&path, json).unwrap();
        let c = Corpus::load(&path).unwrap();
        assert_eq!(c.match_query("niners"), vec![0]);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn handle_lookup() {
        let c = corpus();
        assert_eq!(c.user_by_handle("bob"), Some(1));
        assert_eq!(c.user_by_handle("nobody"), None);
    }
}
